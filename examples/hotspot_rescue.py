#!/usr/bin/env python3
"""Scenario: surviving a noisy neighbour.

On a shared cluster some other group's job is hammering the disk of one
of your data-server nodes (the paper's Figure 8 stressor).  This script
shows the Figure 9 experiment as a story: how badly each I/O scheme
suffers, and how CEFT-PVFS's hot-spot skipping rescues the run — plus
an ablation with the skipping switched off.

Run:  python examples/hotspot_rescue.py
"""

from repro.core import ExperimentConfig, Variant, run_experiment
from repro.core.metrics import degradation

SCALE = 1 / 10


def measure(variant, stressed, **kw):
    cfg = ExperimentConfig(variant=variant, n_workers=8, n_servers=8,
                           n_stressed_disks=1 if stressed else 0,
                           time_limit=1e7, **kw).scaled(SCALE)
    return run_experiment(cfg).execution_time


def main():
    print("8 workers, 8 data servers, one disk stressed by a synchronous")
    print("1 MB append loop (paper Figure 8). Times at 1/10 scale.\n")
    print(f"{'scheme':>22s} {'clean':>9s} {'stressed':>10s} {'slowdown':>9s}")

    rows = [
        ("original (local disk)", Variant.ORIGINAL, {}),
        ("over PVFS", Variant.PVFS, {}),
        ("over CEFT-PVFS", Variant.CEFT_PVFS, {}),
        ("CEFT, skipping OFF", Variant.CEFT_PVFS, {"ceft_skip_hot": False}),
    ]
    for label, variant, kw in rows:
        clean = measure(variant, stressed=False, **kw)
        hot = measure(variant, stressed=True, **kw)
        print(f"{label:>22s} {clean:8.1f}s {hot:9.1f}s "
              f"{degradation(clean, hot):8.1f}x")

    print("\nPaper's measured factors: original 10x, PVFS 21x, CEFT ~2x.")
    print("PVFS suffers most because every worker's stripes cross the hot")
    print("disk; CEFT's metadata server detects the hot spot and clients")
    print("read those stripes from the mirror group instead.")


if __name__ == "__main__":
    main()
