#!/usr/bin/env python3
"""Scenario: sizing the I/O subsystem for a BLAST cluster.

A lab is building an 8-node Linux cluster for sequence search and asks:
how many PVFS data servers are worth deploying, and does the answer
change with the worker count?  This sweep reproduces the reasoning of
the paper's Figure 6 and Section 4.3 (Amdahl analysis) at 1/10 scale.

Run:  python examples/parallel_io_sweep.py
"""

from repro.core import ExperimentConfig, Variant, run_experiment
from repro.core.metrics import amdahl_speedup_limit
from repro.core.report import format_series

SCALE = 1 / 10
WORKERS = (1, 2, 4, 8)
SERVERS = (1, 2, 4, 8, 16)


def main():
    series = {}
    io_shares = {}
    for w in WORKERS:
        times = []
        for s in SERVERS:
            cfg = ExperimentConfig(variant=Variant.PVFS, n_workers=w,
                                   n_servers=s).scaled(SCALE)
            res = run_experiment(cfg)
            times.append(round(res.execution_time, 1))
            if s == max(SERVERS):
                io_shares[w] = res.io_fraction
        series[f"{w} workers"] = times

    print(format_series(
        "Execution time (s) vs PVFS data servers (1/10-scale nt)",
        "servers", list(SERVERS), series))

    print("\nWhy the plateau? Amdahl's Law on the I/O share:")
    for w in WORKERS:
        f = io_shares[w]
        print(f"  {w} workers: I/O is {100 * f:4.1f}% of execution -> "
              f"best possible overall speedup from faster I/O is "
              f"{amdahl_speedup_limit(f):.2f}x")
    print("\nConclusion (matches the paper): ~4 servers capture nearly all")
    print("the benefit; beyond that the search computation dominates.")


if __name__ == "__main__":
    main()
