#!/usr/bin/env python3
"""PSI-BLAST: finding remote homologs a plain blastp can barely see.

A protein family shares a conserved motif skeleton; one "twilight zone"
relative keeps only the motif columns.  Plain blastp ranks it weakly —
after one PSI-BLAST iteration the family profile lights it up.

Run:  python examples/protein_families.py
"""

import numpy as np

from repro.blast import SequenceDB
from repro.blast.psiblast import psiblast

RNG = np.random.default_rng(2003)
AAs = "ARNDCQEGHILKMFPSTWYV"


def rand_prot(n):
    return "".join(RNG.choice(list(AAs), n))


def main():
    L = 220
    ancestor = rand_prot(L)
    conserved = RNG.random(L) < 0.4   # the motif skeleton

    def member(keep_variable):
        out = []
        for i, aa in enumerate(ancestor):
            if conserved[i] or RNG.random() < keep_variable:
                out.append(aa)
            else:
                out.append(RNG.choice([a for a in AAs if a != aa]))
        return "".join(out)

    db = SequenceDB("aa", name="family")
    for i in range(7):
        db.add(f"member{i} close family member", member(0.5))
    db.add("twilight remote homolog (motif only)", member(0.03))
    for i in range(40):
        db.add(f"decoy{i} unrelated protein", rand_prot(L))

    result = psiblast(ancestor, db, iterations=4, inclusion_evalue=1e-3)

    print(f"{'iteration':>10s} {'hits':>6s} {'twilight-zone E-value':>24s}")
    for i, res in enumerate(result.iterations, 1):
        tw = [h for h in res.hits if h.description.startswith("twilight")]
        e = f"{tw[0].best_evalue:.2e}" if tw else "not found"
        print(f"{i:>10d} {len(res.hits):>6d} {e:>24s}")
    print(f"\nconverged: {result.converged} "
          f"(profile built from {result.pssm.n_sequences} sequences)")
    print("\nThe E-value of the remote homolog improves by tens of orders")
    print("of magnitude once the position-specific profile replaces the")
    print("generic BLOSUM62 matrix (Altschul et al. 1997, the paper's")
    print("reference [9]).")


if __name__ == "__main__":
    main()
