#!/usr/bin/env python3
"""What-if capacity planning with the simulated cluster.

The calibrated simulator is useful beyond reproducing the paper: swap
hardware parameters and re-ask its questions.  Three 2003-plausible
upgrades for a BLAST cluster, evaluated against the stock PrairieFire
node on the Figure 9 scenario (8 workers over 8 PVFS servers, one
stressed disk):

* SCSI disks (50 MB/s, 5 ms seeks) instead of IDE;
* doubling RAM to 4 GB;
* gigabit Ethernet (90 MB/s, 150 us) instead of Myrinet.

Run:  python examples/capacity_planning.py
"""

import dataclasses

from repro.cluster.params import (
    DiskParams,
    GB,
    MB,
    MemoryParams,
    NetworkParams,
    NodeParams,
    prairiefire_params,
)
from repro.core import ExperimentConfig, Variant, run_experiment

SCALE = 1 / 10


def measure(label, params, stressed):
    cfg = ExperimentConfig(variant=Variant.PVFS, n_workers=8, n_servers=8,
                           node_params=params,
                           n_stressed_disks=1 if stressed else 0,
                           time_limit=1e7).scaled(SCALE)
    return run_experiment(cfg).execution_time


def main():
    stock = prairiefire_params()
    scenarios = {
        "stock PrairieFire": stock,
        "SCSI disks (50 MB/s)": dataclasses.replace(
            stock, disk=dataclasses.replace(
                stock.disk, read_bandwidth=50 * MB, write_bandwidth=55 * MB,
                seek_time=5e-3)),
        "4 GB RAM": dataclasses.replace(
            stock, memory=dataclasses.replace(stock.memory, ram=4 * GB)),
        "GigE instead of Myrinet": dataclasses.replace(
            stock, network=dataclasses.replace(
                stock.network, bandwidth=90 * MB, latency=150e-6)),
    }

    print("PVFS, 8 workers x 8 servers, 1/10-scale nt")
    print(f"{'configuration':>26s} {'clean (s)':>10s} {'stressed (s)':>13s} "
          f"{'slowdown':>9s}")
    base_clean = None
    for label, params in scenarios.items():
        clean = measure(label, params, stressed=False)
        hot = measure(label, params, stressed=True)
        if base_clean is None:
            base_clean = clean
        print(f"{label:>26s} {clean:10.1f} {hot:13.1f} {hot / clean:8.1f}x")

    print("\nReadings:")
    print(" * Faster disks help the clean case a little (I/O is already a")
    print("   small share) but shrink the hot-spot disaster substantially —")
    print("   the stressor's write batches drain faster and seeks are")
    print("   cheaper, so starved reads are admitted more often.")
    print(" * More RAM does nothing for a single cold query (see the")
    print("   warm-cache bench for where it pays).")
    print(" * The slower network barely matters: 8 striped IDE disks can't")
    print("   saturate even gigabit Ethernet for one client.")


if __name__ == "__main__":
    main()
