#!/usr/bin/env python3
"""Domain scenario: the five BLAST programs on a small genome analysis.

A synthetic "genome" contains a protein-coding gene on its minus
strand.  We locate it with each of the five classic programs
(Section 2.1 of the paper), demonstrating nucleotide, protein, and
translated searches through one API.

Run:  python examples/sequence_analysis.py
"""

import numpy as np

from repro.blast import (
    SequenceDB,
    blastn,
    blastp,
    blastx,
    tblastn,
    tblastx,
    encode_dna,
    reverse_complement,
)
from repro.blast.alphabet import decode_dna

RNG = np.random.default_rng(2003)

# A codon per amino acid (simplified reverse translation).
CODON = {aa: c for aa, c in zip(
    "KNTRSIMQHPLEDAGV*YCWF",
    ["AAA", "AAC", "ACA", "AGA", "AGC", "ATA", "ATG", "CAA", "CAC", "CCA",
     "CTA", "GAA", "GAC", "GCA", "GGA", "GTA", "TAA", "TAC", "TGC", "TGG",
     "TTC"])}


def random_dna(n):
    return "".join(RNG.choice(list("ACGT"), n))


def random_protein(n):
    return "".join(RNG.choice(list("ARNDCQEGHILKMFPSTWYV"), n))


def main():
    # ----------------------------------------------------------- setup
    protein = "M" + random_protein(180)
    gene = "".join(CODON[a] for a in protein) + "TAA"
    gene_rc = decode_dna(reverse_complement(encode_dna(gene)))
    genome = random_dna(2500) + gene_rc + random_dna(1800)

    nt_db = SequenceDB("nt", name="genome")
    nt_db.add("chr1 synthetic chromosome with hidden gene", genome)
    for i in range(3):
        nt_db.add(f"chr{i + 2} background", random_dna(3000))

    aa_db = SequenceDB("aa", name="proteins")
    aa_db.add("prot1 the known protein family member", protein)
    for i in range(3):
        aa_db.add(f"decoy{i} unrelated protein", random_protein(180))

    def show(tag, results):
        best = results.best()
        if best is None:
            print(f"{tag:8s}: no hits")
            return
        hit = results.hits[0]
        print(f"{tag:8s}: {hit.description[:44]:46s} "
              f"E={best.evalue:9.2e} identity={100 * best.identity:5.1f}% "
              f"frame/strand={best.strand:+d}")

    # 1. blastn: nucleotide fragment of the gene vs the genome database.
    show("blastn", blastn(gene[120:420], nt_db))

    # 2. blastp: the protein vs the protein database.
    show("blastp", blastp(protein[20:120], aa_db))

    # 3. blastx: a genomic (minus-strand!) region vs the protein database
    #    — finds the protein via six-frame translation of the query.
    region = genome[2500:2500 + len(gene_rc)]
    show("blastx", blastx(region, aa_db))

    # 4. tblastn: the protein vs the genome — finds the gene's location
    #    even though the database is raw DNA.
    show("tblastn", tblastn(protein[10:110], nt_db))

    # 5. tblastx: translated vs translated (most sensitive, most costly).
    show("tblastx", tblastx(gene[60:360], nt_db))


if __name__ == "__main__":
    main()
