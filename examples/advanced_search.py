#!/usr/bin/env python3
"""Advanced engine features: alignments, filtering, query segmentation.

A mini-pipeline over a synthetic database:

1. run blastn and print NCBI-style pairwise alignments;
2. show DUST low-complexity filtering suppressing a junk hit;
3. split the query WU-BLAST-style (query segmentation) and verify the
   merged results agree with the whole-query search.

Run:  python examples/advanced_search.py
"""

import numpy as np

from repro.blast import SequenceDB, SearchParams, blastn
from repro.blast.queryseg import search_segmented
from repro.blast.render import render_results

RNG = np.random.default_rng(77)


def rand_dna(n):
    return "".join(RNG.choice(list("ACGT"), n))


def main():
    target = rand_dna(500)
    db = SequenceDB.from_fasta_text(
        f">gene1 the real target\n{target}\n"
        f">junk microsatellite\n{'CA' * 200}\n"
        f">bg unrelated\n{rand_dna(450)}\n")

    # A query: a chunk of the target with a small deletion, plus a
    # low-complexity CA-repeat tail picked up from cloning vector.
    q = target[80:280]
    query = q[:90] + q[95:] + "CACACACACACACACACACACACA"

    print("=" * 66)
    print("1. Alignments (note the 5-base deletion)")
    print("=" * 66)
    results = blastn(query, db)
    print(render_results(query, db, results, max_hits=2))

    print("=" * 66)
    print("2. DUST filtering")
    print("=" * 66)
    raw = blastn(query, db)
    filt = blastn(query, db, params=SearchParams(
        word_size=11, gapped_trigger=18, filter_low_complexity=True))
    print(f"without filter: {[h.description.split()[0] for h in raw.hits]}")
    print(f"with DUST     : {[h.description.split()[0] for h in filt.hits]}")
    print("(the CA-repeat 'junk' hit disappears; the real gene stays)\n")

    print("=" * 66)
    print("3. Query segmentation (the paper's Section 2.2 alternative)")
    print("=" * 66)
    whole = blastn(query, db)
    seg = search_segmented(blastn, query, db, n_segments=3, overlap=40)
    wb, sb = whole.best(), seg.best()
    print(f"whole-query best hit : score={wb.score} E={wb.evalue:.2e}")
    print(f"3-segment merged best: score={sb.score} E={sb.evalue:.2e}")
    print("Same subject, same region — but in the parallel setting each")
    print("worker would have needed the ENTIRE database, which is why")
    print("the paper (and mpiBLAST) segment the database instead.")


if __name__ == "__main__":
    main()
