#!/usr/bin/env python3
"""Quickstart: the two halves of the library in five minutes.

1. The real BLAST engine: format a database, run a blastn search.
2. The simulated cluster: run the paper's parallel BLAST over PVFS and
   compare the three I/O schemes.

Run:  python examples/quickstart.py
"""

from repro.blast import SequenceDB, blastn, segment_db
from repro.core import ExperimentConfig, Variant, run_experiment
from repro.workloads import extract_query, synthetic_nt_db


def blast_quickstart():
    print("=" * 64)
    print("1. Real sequence search")
    print("=" * 64)
    # A synthetic nucleotide database shaped like NCBI nt (scaled down).
    db = synthetic_nt_db(total_residues=2_000_000, seed=42)
    print(f"database: {len(db)} sequences, {db.total_residues:,} bases")

    # The paper's workload: a 568-character query cut from the database
    # (theirs came from ecoli.nt), searched with blastn.
    query = extract_query(db, length=568, seed=7)
    results = blastn(query, db, query_id="paper-style-query")
    print(results.report(max_hits=5))

    # mpiBLAST-style database segmentation: search fragments, merge.
    fragments = segment_db(db, 4)
    partials = [blastn(query, frag) for frag in fragments]
    merged = partials[0]
    for p in partials[1:]:
        merged = merged.merge(p)
    best = merged.best()
    print(f"\nmerged over {len(fragments)} fragments -> best hit "
          f"E={best.evalue:.2e}, identity={100 * best.identity:.1f}%")


def cluster_quickstart():
    print()
    print("=" * 64)
    print("2. Simulated cluster: the paper's three I/O schemes")
    print("=" * 64)
    print(f"{'scheme':>12s} {'exec time':>12s} {'I/O share':>10s}")
    for variant in (Variant.ORIGINAL, Variant.PVFS, Variant.CEFT_PVFS):
        cfg = ExperimentConfig(variant=variant, n_workers=8,
                               n_servers=8).scaled(1 / 10)
        res = run_experiment(cfg)
        print(f"{variant.value:>12s} {res.execution_time:10.1f} s "
              f"{100 * res.io_fraction:8.1f} %")
    print("\n(1/10-scale nt database; see benchmarks/ for the full-scale")
    print(" reproduction of every figure in the paper)")


if __name__ == "__main__":
    blast_quickstart()
    cluster_quickstart()
