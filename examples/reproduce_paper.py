#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Uses the programmatic API (`repro.core.figures`); pass a scale factor
to trade fidelity for time (1.0 = the paper's full 2.7 GB nt, a couple
of minutes of wall time; the default 0.1 takes seconds).

Run:  python examples/reproduce_paper.py [scale]
"""

import sys
import time

from repro.core.figures import FIGURES


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"Regenerating all artefacts at scale {scale:g} "
          f"({2.7 * scale:.2f} GB nt model)\n")
    for fig_id, fn in FIGURES.items():
        t0 = time.time()
        result = fn(scale=scale)
        print(result.render())
        print(f"[{fig_id} regenerated in {time.time() - t0:.1f}s wall]\n")
    print("Full-scale runs with paper-vs-measured assertions live in")
    print("benchmarks/ (pytest benchmarks/ --benchmark-only).")


if __name__ == "__main__":
    main()
