"""A2 — Ablation: stripe size.

The paper fixes the stripe size at 64 KB (Section 3) without exploring
it.  This ablation sweeps it: very small stripes multiply per-request
costs and break disk sequentiality; very large stripes reduce the
number of servers a typical read can engage.  The sweep justifies
64 KB as a sane middle ground on this hardware.
"""

import pytest
from conftest import save_report

from repro.core import ExperimentConfig, Variant, run_experiment
from repro.core.report import format_table

KiB = 1 << 10
STRIPES = (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1024 * KiB)
SCALE = 1 / 4  # the sweep is about relative shape; 1/4 scale suffices


def _run():
    out = {}
    for stripe in STRIPES:
        cfg = ExperimentConfig(variant=Variant.PVFS, n_workers=4,
                               n_servers=4, stripe_size=stripe).scaled(SCALE)
        out[stripe] = run_experiment(cfg).execution_time
    return out


def test_ablation_stripe_size(once):
    times = once(_run)
    rows = [[f"{s // KiB} KiB", round(t, 1)] for s, t in times.items()]
    save_report("ablation_stripe", format_table(
        "A2: stripe-size ablation (PVFS, 4 workers x 4 servers, 1/4 scale)",
        ["stripe", "exec time (s)"], rows))

    t = times
    # Tiny stripes are clearly worse than the paper's 64 KiB.
    assert t[4 * KiB] > t[64 * KiB]
    # 64 KiB is within a few percent of the best setting in the sweep.
    best = min(t.values())
    assert t[64 * KiB] <= 1.05 * best
