"""Hedged re-issue vs an injected straggler (real pool, wall clock).

The runtime analog of the paper's hot-spot experiment (Figures 8–9):
one worker is made a straggler by an injected ``slow`` fault, and the
job's wall time is measured with hedging off (the pool waits out the
full stall, as PVFS waits on a hot server) and with hedging on (an
idle worker speculatively re-serves the stuck fragment, as CEFT-PVFS
reads from the mirror group).  The acceptance bar mirrors the paper's
claim: with hedging, the straggler's job completes within 2x the
fault-free wall time; without it, the stall lands in full.

Measured numbers land in ``benchmarks/results/exec_faults.txt`` for
EXPERIMENTS.md to quote.
"""

import time

import numpy as np
import pytest

from repro.blast.score import NucleotideScore
from repro.blast.search import SearchParams
from repro.blast.seqdb import NT, SequenceDB
from repro.exec import ExecPool, Fault, FaultPlan

from conftest import save_report

JOBS = 2
N_FRAGMENTS = 6
TASK_SLEEP = 0.15          # per-task stall so scheduling dominates I/O
STRAGGLER_DELAY = 2.0      # the injected hot-spot stall
HEDGE_AFTER = 0.3          # soft deadline for speculative re-issue


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(11)
    letters = np.array(list("ACGT"))
    db = SequenceDB(NT)
    for i in range(18):
        length = int(rng.integers(150, 400))
        db.add(f"s{i}", "".join(letters[rng.integers(0, 4, length)]))
    query = db.sequence(5)[:200].copy()
    return db, NucleotideScore(), SearchParams(word_size=11), query


def _wall_time(workload, fault_plan, hedge_after, task_timeout):
    db, scheme, params, query = workload
    # granularity=1: the straggler fault targets a specific per-fragment
    # task index, so keep one task per fragment regardless of planning.
    with ExecPool(jobs=JOBS, fault_plan=fault_plan, task_sleep=TASK_SLEEP,
                  hedge_after=hedge_after, task_timeout=task_timeout,
                  task_granularity=1) as pool:
        t0 = time.perf_counter()
        pool.search(query, db, scheme, params, n_fragments=N_FRAGMENTS)
        elapsed = time.perf_counter() - t0
        stats = pool.last_stats
    return elapsed, stats


def test_hedged_reissue_beats_straggler(workload):
    straggler = FaultPlan(faults=(Fault("slow", rank=0, task_index=2,
                                        delay=STRAGGLER_DELAY),))
    fault_free, _ = _wall_time(workload, None, hedge_after=100.0,
                               task_timeout=100.0)
    unhedged, us = _wall_time(workload, straggler, hedge_after=100.0,
                              task_timeout=100.0)
    hedged, hs = _wall_time(workload, straggler, hedge_after=HEDGE_AFTER,
                            task_timeout=100.0)

    report = "\n".join([
        "Hedged re-issue vs injected straggler "
        f"(jobs={JOBS}, fragments={N_FRAGMENTS}, "
        f"task_sleep={TASK_SLEEP}s, straggler +{STRAGGLER_DELAY}s)",
        f"{'condition':<22}{'wall time':>12}{'vs fault-free':>15}",
        f"{'fault-free':<22}{fault_free:>11.2f}s{1.0:>14.2f}x",
        f"{'straggler, no hedge':<22}{unhedged:>11.2f}s"
        f"{unhedged / fault_free:>14.2f}x",
        f"{'straggler, hedged':<22}{hedged:>11.2f}s"
        f"{hedged / fault_free:>14.2f}x",
        f"(hedges={hs.hedges}, hedge_wins={hs.hedge_wins}; "
        f"unhedged run hedged {us.hedges} times)",
    ])
    save_report("exec_faults", report)

    # Without hedging the full stall lands in the job's wall time.
    assert unhedged > fault_free + 0.8 * STRAGGLER_DELAY
    assert us.hedges == 0
    # With hedging the straggler is routed around: the acceptance bar
    # (2x fault-free) plus scheduler-tick slack for loaded CI boxes.
    assert hs.hedge_wins >= 1
    assert hedged <= 2.0 * fault_free + 0.25, \
        f"hedged {hedged:.2f}s vs fault-free {fault_free:.2f}s"
    # And it is strictly better than eating the stall.
    assert hedged < unhedged - 0.5 * STRAGGLER_DELAY
