"""E5 — Extension: cache effects across consecutive queries.

The paper's runs are single-query and cache-cold; real BLAST servers
answer query streams.  Section 4.3 notes nt is "only twice or three
times larger than the size of the RAM" — so whether a fragment fits in
a node's page cache decides whether the *second* query pays any I/O.

This bench runs two consecutive queries per configuration:

* 8 workers (fragment ~340 MB << 2 GB RAM): the second query's I/O is
  nearly free for all schemes — parallel I/O stops mattering entirely;
* 1 worker (fragment 2.7 GB > 1.6 GB cache): the first pass evicts
  itself, so the second query pays full I/O again.
"""

import pytest
from conftest import save_report

from repro.cluster import Cluster
from repro.core.calibration import default_cost_model
from repro.core.report import format_table
from repro.fs.localfs import LocalFS
from repro.parallel.ioadapters import LocalIO
from repro.parallel.iomodel import FragmentSpec
from repro.parallel.mpiblast import run_parallel_blast
from repro.workloads.synthdb import NT_DATABASE_SPEC


def _two_queries(n_workers):
    """Original-BLAST runs of two back-to-back queries; returns the
    mean per-worker I/O time of each query."""
    db = NT_DATABASE_SPEC
    cluster = Cluster(n_nodes=n_workers + 1)
    nodes = list(cluster)
    workers = nodes[1:]
    ios = [LocalIO(LocalFS(n), n) for n in workers]
    byte_sizes = db.fragment_bytes(n_workers)
    res_sizes = db.fragment_residues(n_workers)
    fragments = [FragmentSpec(i, byte_sizes[i], res_sizes[i])
                 for i in range(n_workers)]
    cost = default_cost_model()

    io_times = []
    for _query in range(2):
        # Each job spawns fresh workers (per-job accounting) but reuses
        # the same adapters and nodes, so the page caches persist
        # between the two queries.
        job = run_parallel_blast(nodes[0], workers, ios, fragments, cost,
                                 time_limit=1e7)
        io_times.append(sum(w.io_time for w in job.workers) / n_workers)
    return io_times


def _run():
    return {w: _two_queries(w) for w in (1, 8)}


def test_ext_warm_cache_effect(once):
    results = once(_run)
    rows = []
    for w, (cold, warm) in results.items():
        frag_gb = NT_DATABASE_SPEC.total_bytes / w / 1e9
        rows.append([f"{w} workers ({frag_gb:.2f} GB/frag)",
                     round(cold, 1), round(warm, 1),
                     round(cold / max(warm, 1e-9), 1)])
    save_report("ext_warmcache", format_table(
        "E5: per-worker I/O time (s) of two consecutive queries "
        "(original BLAST, full-scale nt)",
        ["configuration", "query 1 (cold)", "query 2", "ratio"],
        rows, col_width=22))

    cold8, warm8 = results[8]
    cold1, warm1 = results[1]
    # 340 MB fragments fit the 1.6 GB cache: second query nearly free.
    assert warm8 < 0.25 * cold8
    # A 2.7 GB fragment cannot fit: the second query pays again.
    assert warm1 > 0.6 * cold1
