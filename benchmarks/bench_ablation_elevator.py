"""A5 — Ablation: the elevator write-batching mechanism.

DESIGN.md claims the Figure 9 degradations are *caused* by the Linux
2.4 elevator's write preference (reads admitted once per write batch)
and that the PVFS:original ratio (~2x) is caused by request granularity
(64 KB stripe units vs 128 KB readahead).  This ablation validates both
claims by sweeping ``write_batch``:

* with a fair scheduler (batch=1) the degradations shrink massively —
  the hot spot is survivable without any skipping;
* the factors grow with the batch size (the calibrated 18 reproduces
  the paper);
* the PVFS:original ratio stays ~2x at every batch size, because it
  comes from granularity, not from the batch length.
"""

import pytest
from conftest import save_report

from repro.cluster.params import prairiefire_params
from repro.core import ExperimentConfig, Variant, run_experiment
from repro.core.report import format_table

SCALE = 1 / 8
BATCHES = (1, 6, 18)


def _degradation(variant, write_batch):
    params = prairiefire_params().with_disk(write_batch=write_batch)
    base = run_experiment(ExperimentConfig(
        variant=variant, n_workers=8, n_servers=8,
        node_params=params).scaled(SCALE)).execution_time
    hot = run_experiment(ExperimentConfig(
        variant=variant, n_workers=8, n_servers=8, n_stressed_disks=1,
        node_params=params, time_limit=1e7).scaled(SCALE)).execution_time
    return hot / base


def _run():
    return {(v, b): _degradation(v, b)
            for v in (Variant.ORIGINAL, Variant.PVFS)
            for b in BATCHES}


def test_ablation_elevator_mechanism(once):
    degs = once(_run)
    rows = []
    for b in BATCHES:
        o = degs[(Variant.ORIGINAL, b)]
        p = degs[(Variant.PVFS, b)]
        rows.append([b, round(o, 2), round(p, 2), round(p / o, 2)])
    save_report("ablation_elevator", format_table(
        "A5: hot-spot degradation vs elevator write batch (1/8 scale)\n"
        "(batch=18 is the calibrated Linux-2.4 value)",
        ["write batch", "original", "pvfs", "pvfs/original"], rows))

    # Fair scheduling (batch=1) nearly removes the disaster...
    assert degs[(Variant.ORIGINAL, 1)] < 4.0
    assert degs[(Variant.PVFS, 1)] < 6.0
    # ...the factors grow with the batch size...
    for v in (Variant.ORIGINAL, Variant.PVFS):
        assert degs[(v, 6)] > degs[(v, 1)]
        assert degs[(v, 18)] > degs[(v, 6)]
    # ...and the granularity-driven ratio holds throughout.
    for b in (6, 18):
        ratio = degs[(Variant.PVFS, b)] / degs[(Variant.ORIGINAL, b)]
        assert 1.3 < ratio < 2.8, (b, ratio)
