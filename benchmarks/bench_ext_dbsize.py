"""E4 — Extension: the paper's Section 4.3 prediction about database
growth.

"Although we used the largest database available at NCBI ... its size
is only several GBs, only twice or three times larger than the size of
the RAM ...  With the rapid increase of the biological database, it is
highly likely that when the size of the database is in the order of
hundreds of GBs or several TBs, the performance gain due to the
increase of the number of data servers will be much more significant."

This bench tests that prediction: the Figure 6 experiment (server
scaling gain at 8 workers) repeated at 1x, 4x, and 16x the paper's nt
size — with the *same* compute rate per byte, so the I/O share grows
with nothing else changing.  The prediction is wrong for this workload
shape and the bench shows why: blastn compute ALSO scales linearly with
database bytes, so the I/O share (and hence the Amdahl headroom) is
scale-invariant.  What actually grows the parallel-I/O gain is
re-search of a cached database (second query), where compute stays
linear but I/O collapses to the cache-miss share — measured in
bench_ext_warmcache.py.
"""

import pytest
from conftest import save_report

from repro.core import ExperimentConfig, Variant, run_experiment
from repro.core.report import format_table

SIZES = (1.0, 4.0, 16.0)


def _gain(scale):
    """Speedup of 16 servers over 1 server at 8 workers."""
    def run(servers):
        cfg = ExperimentConfig(variant=Variant.PVFS, n_workers=8,
                               n_servers=servers).scaled(scale)
        return run_experiment(cfg)

    r1, r16 = run(1), run(16)
    return (r1.execution_time, r16.execution_time,
            r1.execution_time / r16.execution_time, r16.io_fraction)


def _run():
    return {scale: _gain(scale) for scale in SIZES}


def test_ext_database_size_scaling(once):
    results = once(_run)
    rows = [[f"{s:g}x nt", round(t1, 0), round(t16, 0), round(g, 3),
             round(100 * iofrac, 1)]
            for s, (t1, t16, g, iofrac) in results.items()]
    save_report("ext_dbsize", format_table(
        "E4: gain of 16 vs 1 PVFS servers at 8 workers, by database size\n"
        "(the paper's §4.3 prediction, tested)",
        ["database", "1 server (s)", "16 servers (s)", "gain",
         "I/O share %"], rows, col_width=14))

    gains = [g for (_t1, _t16, g, _f) in results.values()]
    # The per-byte workload is scale-invariant: the server-scaling gain
    # stays within a few percent across a 16x size range, contradicting
    # a naive reading of the paper's prediction (compute grows too).
    assert max(gains) - min(gains) < 0.15 * min(gains)
    # And the gain is real but modest everywhere (Amdahl).
    for g in gains:
        assert 1.1 < g < 2.0
