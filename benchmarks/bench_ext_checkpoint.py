"""E9 — Extension: the write-only mirror image (ref [24]).

The paper's related work (Ross et al., "A case study in application
I/O on Linux clusters") studied FLASH's checkpoint phases — bursty,
large, write-only.  BLAST never exercises the write paths at scale;
this bench does, comparing a FLASH-shaped checkpoint workload on:

* NFS (one server: the baseline everybody had),
* PVFS (RAID-0: all spindles absorb the burst),
* CEFT-PVFS under each write-duplexing protocol (the fault-tolerance
  tax on writes, quantified).
"""

import pytest
from conftest import save_report

from repro.cluster import Cluster
from repro.cluster.params import MB
from repro.core.report import format_table
from repro.fs.ceft import CEFT, WriteProtocol
from repro.fs.nfs import NFS
from repro.fs.pvfs import PVFS
from repro.parallel.ioadapters import ParallelIO, WorkerIO
from repro.workloads.checkpoint import CheckpointSpec, run_checkpoint_workload

SPEC = CheckpointSpec(n_processes=8, bytes_per_process=64 * MB,
                      compute_between=30.0, n_checkpoints=3)


class _NFSAdapter(WorkerIO):
    """Minimal WorkerIO over an NFS client."""

    scheme = "nfs"

    def __init__(self, client):
        self.client = client

    def read(self, path, offset, size):
        yield from self.client.read(path, offset, size)

    def write(self, path, offset, size):
        yield from self.client.write(path, offset, size)

    def ensure_file(self, path, size):
        self.client.fs.populate(path, size)


def _run_on(label):
    cluster = Cluster(n_nodes=17)
    nodes = list(cluster)
    compute_nodes = nodes[9:17]
    if label == "nfs":
        fs = NFS(nodes[0])
        ios = [_NFSAdapter(fs.client(n)) for n in compute_nodes]
    elif label == "pvfs":
        fs = PVFS(nodes[0], nodes[1:9])
        ios = [ParallelIO(fs.client(n)) for n in compute_nodes]
    else:
        proto = WriteProtocol(label)
        fs = CEFT(nodes[0], nodes[1:5], nodes[5:9], protocol=proto,
                  monitor_load=False)
        ios = [ParallelIO(fs.client(n)) for n in compute_nodes]
    return run_checkpoint_workload(compute_nodes, ios, SPEC)


def _run():
    labels = ["nfs", "pvfs"] + [p.value for p in WriteProtocol]
    return {label: _run_on(label) for label in labels}


def test_ext_checkpoint_workload(once):
    results = once(_run)
    rows = [[label, round(r["makespan"], 1),
             round(100 * r["write_fraction"], 1),
             round(r["aggregate_write_mb_s"], 1)]
            for label, r in results.items()]
    save_report("ext_checkpoint", format_table(
        "E9: FLASH-style checkpoints (8 procs x 64 MB x 3, 8 data nodes)",
        ["backend", "makespan (s)", "write share %", "agg write MB/s"],
        rows, col_width=16))

    agg = {label: r["aggregate_write_mb_s"] for label, r in results.items()}
    # One NFS server cannot absorb an 8-process burst; striping can.
    assert agg["pvfs"] > 3 * agg["nfs"]
    # Mirroring costs writes: every CEFT protocol is slower than PVFS.
    for proto in WriteProtocol:
        assert agg[proto.value] < agg["pvfs"]
    # Asynchronous duplexing recovers much of the loss at ack time.
    assert agg["server-async"] > agg["server-sync"]
    # Client-push protocols halve the client NIC's effective bandwidth.
    assert agg["client-sync"] < 0.75 * agg["pvfs"]
