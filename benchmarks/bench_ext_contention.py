"""E3 — Extension: the paper's Section 6 future work.

"Clearly, the load conditions of the memory, network and CPU can also
influence the I/O performance.  We will further study the impact of
contention of these resources in related ongoing work."

This bench runs that study on the simulated cluster: the Figure 9
setup (8 workers over 8 PVFS data servers) with one node contended on
each resource axis — disk (the paper's case), CPU, network, and
memory — both for over-PVFS and over-CEFT-PVFS.
"""

import pytest
from conftest import save_report

from repro.cluster import (
    Cluster,
    cpu_stressor,
    disk_stressor,
    memory_stressor,
    network_stressor,
)
from repro.core import ExperimentConfig, Variant, run_experiment
from repro.core.report import format_table

SCALE = 1 / 8


def _run_with(variant, stress_kind):
    """Build the experiment by hand so arbitrary stressors can be
    attached to one data-server node."""
    from repro.core.calibration import default_cost_model
    from repro.fs.ceft import CEFT
    from repro.fs.pvfs import PVFS
    from repro.parallel.ioadapters import ParallelIO
    from repro.parallel.iomodel import FragmentSpec
    from repro.parallel.mpiblast import run_parallel_blast
    from repro.workloads.synthdb import NT_DATABASE_SPEC

    db = NT_DATABASE_SPEC.scaled(SCALE)
    cluster = Cluster(n_nodes=9)
    nodes = list(cluster)
    if variant is Variant.PVFS:
        fs = PVFS(nodes[0], nodes[1:9])
    else:
        fs = CEFT(nodes[0], nodes[1:5], nodes[5:9], load_period=5.0)
    ios = [ParallelIO(fs.client(n)) for n in nodes[1:9]]
    victim = nodes[1]

    if stress_kind == "disk":
        cluster.sim.process(disk_stressor(victim))
    elif stress_kind == "cpu":
        cluster.sim.process(cpu_stressor(victim, tasks=4))
    elif stress_kind == "network":
        # A bulk stream through the victim's NIC both ways.
        cluster.sim.process(network_stressor(victim, nodes[0]))
        cluster.sim.process(network_stressor(nodes[0], victim))
    elif stress_kind == "memory":
        memory_stressor(victim, fraction=0.95)
    elif stress_kind != "none":
        raise ValueError(stress_kind)

    byte_sizes = db.fragment_bytes(8)
    res_sizes = db.fragment_residues(8)
    fragments = [FragmentSpec(i, byte_sizes[i], res_sizes[i]) for i in range(8)]
    job = run_parallel_blast(nodes[0], nodes[1:9], ios, fragments,
                             default_cost_model(), time_limit=1e7)
    if hasattr(fs, "stop_monitoring"):
        fs.stop_monitoring()
    return job.makespan


def _run():
    out = {}
    for variant in (Variant.PVFS, Variant.CEFT_PVFS):
        for kind in ("none", "disk", "cpu", "network", "memory"):
            out[(variant, kind)] = _run_with(variant, kind)
    return out


def test_ext_resource_contention(once):
    results = once(_run)
    rows = []
    for kind in ("none", "disk", "cpu", "network", "memory"):
        p = results[(Variant.PVFS, kind)]
        c = results[(Variant.CEFT_PVFS, kind)]
        p0 = results[(Variant.PVFS, "none")]
        c0 = results[(Variant.CEFT_PVFS, "none")]
        rows.append([kind, round(p, 1), round(p / p0, 2),
                     round(c, 1), round(c / c0, 2)])
    save_report("ext_contention", format_table(
        "E3: one contended data-server node, 8 workers (1/8 scale)",
        ["contention", "pvfs (s)", "factor", "ceft (s)", "factor"], rows))

    p0 = results[(Variant.PVFS, "none")]
    c0 = results[(Variant.CEFT_PVFS, "none")]
    # Disk contention hurts PVFS by far the most (the paper's result);
    # CEFT routes around it.
    assert results[(Variant.PVFS, "disk")] > 5 * p0
    assert results[(Variant.CEFT_PVFS, "disk")] < 4 * c0
    # CPU contention: in the colocated placement the victim is also a
    # *worker*, so its search compute (not the iod) slows ~2x and the
    # makespan follows the straggler.
    assert 1.3 * p0 < results[(Variant.PVFS, "cpu")] < 3 * p0
    # Network contention slows the victim's flows but far less than
    # disk starvation.
    assert (results[(Variant.PVFS, "network")]
            < results[(Variant.PVFS, "disk")])
    # Memory pressure forces server cache misses: mild slowdown.
    assert results[(Variant.PVFS, "memory")] < 1.6 * p0
