"""E2 — Extension: availability under a data-server crash.

The paper motivates CEFT-PVFS with PVFS's lack of fault tolerance
("the failure of any single cluster node renders the entire file
system service unavailable") but never measures a crash.  This bench
injects one mid-run: a data server dies 30 simulated seconds into an
8-worker search.

* over PVFS: the job dies with an I/O error;
* over CEFT-PVFS: clients fail over to the mirror group and the job
  completes, paying only the failover + lost-parallelism cost;
* a subsequent resync restores the failed server from its mirror.
"""

import pytest
from conftest import save_report

from repro.cluster import Cluster
from repro.core import ExperimentConfig, Variant, run_experiment
from repro.core.report import format_table
from repro.fs.ceft import PRIMARY
from repro.fs.interface import FSError
from repro.parallel.master import JobAborted
from repro.parallel.ioadapters import ParallelIO
from repro.parallel.iomodel import FragmentSpec
from repro.parallel.mpiblast import run_parallel_blast
from repro.core.calibration import default_cost_model

SCALE = 1 / 4
CRASH_AT = 30.0


def _job(variant_fs_builder):
    """Run an 8-worker job with a server crash at CRASH_AT seconds."""
    from repro.workloads.synthdb import NT_DATABASE_SPEC

    db = NT_DATABASE_SPEC.scaled(SCALE)
    cluster = Cluster(n_nodes=9)
    nodes = list(cluster)
    fs, crash = variant_fs_builder(nodes)
    ios = [ParallelIO(fs.client(n)) for n in nodes[1:9]]
    byte_sizes = db.fragment_bytes(8)
    res_sizes = db.fragment_residues(8)
    fragments = [FragmentSpec(i, byte_sizes[i], res_sizes[i])
                 for i in range(8)]

    def crasher():
        yield cluster.sim.timeout(CRASH_AT)
        crash()

    cluster.sim.process(crasher())
    job = run_parallel_blast(nodes[0], nodes[1:9], ios, fragments,
                             default_cost_model(), time_limit=1e7)
    if hasattr(fs, "stop_monitoring"):
        fs.stop_monitoring()
    return job


def _run():
    from repro.fs.ceft import CEFT
    from repro.fs.pvfs import PVFS

    out = {}

    def pvfs_builder(nodes):
        fs = PVFS(nodes[0], nodes[1:9])
        return fs, fs.servers[3].fail

    def ceft_builder(nodes):
        fs = CEFT(nodes[0], nodes[1:5], nodes[5:9], load_period=5.0)
        return fs, fs.primary[3].fail

    try:
        job = _job(pvfs_builder)
        out["pvfs"] = ("completed", job.makespan)
    except JobAborted as exc:
        out["pvfs"] = ("ABORTED: " + exc.cause[:36], float("nan"))

    job = _job(ceft_builder)
    out["ceft"] = ("completed", job.makespan)

    # Clean CEFT baseline for the overhead comparison.
    def ceft_nocrash(nodes):
        fs = CEFT(nodes[0], nodes[1:5], nodes[5:9], load_period=5.0)
        return fs, (lambda: None)

    out["ceft-clean"] = ("completed", _job(ceft_nocrash).makespan)
    return out


def test_ext_failover_availability(once):
    results = once(_run)
    rows = [[name, status, round(t, 1) if t == t else "-"]
            for name, (status, t) in results.items()]
    save_report("ext_failover", format_table(
        "E2: data-server crash 30 s into an 8-worker search (1/4 scale)",
        ["scheme", "outcome", "makespan (s)"], rows, col_width=22))

    assert results["pvfs"][0].startswith("ABORTED")
    assert results["ceft"][0] == "completed"
    # Failover cost is bounded: within 2x of the clean run.
    assert results["ceft"][1] < 2.0 * results["ceft-clean"][1]


def test_ext_resync_bandwidth(once):
    """RAID-10 rebuild: resync streams the failed server's share from
    its mirror at roughly the disk-write rate."""
    from repro.cluster.params import MB
    from repro.fs.ceft import CEFT
    from repro.workloads.synthdb import NT_DATABASE_SPEC

    def run():
        db = NT_DATABASE_SPEC.scaled(1 / 20)
        cluster = Cluster(n_nodes=9)
        nodes = list(cluster)
        fs = CEFT(nodes[0], nodes[1:5], nodes[5:9], monitor_load=False)
        for i, nbytes in enumerate(db.fragment_bytes(8)):
            fs.populate(f"nt.{i:03d}.nsq", nbytes)
        fs.primary[0].fail()
        fs.mark_failed(PRIMARY, 0)

        def proc():
            t0 = cluster.sim.now
            nbytes = yield cluster.sim.process(fs.resync(PRIMARY, 0))
            return nbytes, cluster.sim.now - t0

        p = cluster.sim.process(proc())
        cluster.sim.run_until_complete(p)
        return p.value

    nbytes, elapsed = once(run)
    rate = nbytes / elapsed / MB
    save_report("ext_resync", (
        f"E2b: resync of one failed server: {nbytes / MB:.0f} MB "
        f"in {elapsed:.1f} s = {rate:.1f} MB/s "
        f"(disk write limit: 32 MB/s)"))
    assert nbytes > 0
    assert 10 < rate <= 32.5
