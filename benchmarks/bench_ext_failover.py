"""E2 — Extension: availability under a data-server crash.

The paper motivates CEFT-PVFS with PVFS's lack of fault tolerance
("the failure of any single cluster node renders the entire file
system service unavailable") but never measures a crash.  This bench
injects one mid-run: a data server dies 30 simulated seconds into an
8-worker search.

* over PVFS: the job dies with an I/O error;
* over CEFT-PVFS: clients fail over to the mirror group and the job
  completes, paying only the failover + lost-parallelism cost;
* a subsequent resync restores the failed server from its mirror.

Extended with a fail-time x scheme sweep (the verdict must not depend
on *when* the server dies), a worker-kill case (CEFT's degraded mode:
the master requeues the dead worker's fragment and finishes on the
survivors), and no-orphan assertions: after every failure the event
heap drains with zero abandoned simulation processes.
"""

import pytest
from conftest import save_report

from repro.cluster import Cluster
from repro.core import ExperimentConfig, Variant, run_experiment
from repro.core.report import format_table
from repro.fs.ceft import PRIMARY
from repro.fs.interface import FSError
from repro.parallel.master import JobAborted
from repro.parallel.ioadapters import ParallelIO
from repro.parallel.iomodel import FragmentSpec
from repro.parallel.mpiblast import run_parallel_blast
from repro.core.calibration import default_cost_model

SCALE = 1 / 4
CRASH_AT = 30.0


def _job(variant_fs_builder, crash_at=CRASH_AT, kill_worker=None):
    """Run an 8-worker job with a server crash at *crash_at* seconds.

    *kill_worker* instead interrupts that worker rank at *crash_at*
    (a worker-node crash rather than a data-server crash).  Returns
    ``(job, cluster)`` so callers can drain the simulation and assert
    no orphaned processes survive the failure.
    """
    from repro.workloads.synthdb import NT_DATABASE_SPEC

    db = NT_DATABASE_SPEC.scaled(SCALE)
    cluster = Cluster(n_nodes=9)
    nodes = list(cluster)
    fs, crash = variant_fs_builder(nodes)
    ios = [ParallelIO(fs.client(n)) for n in nodes[1:9]]
    byte_sizes = db.fragment_bytes(8)
    res_sizes = db.fragment_residues(8)
    fragments = [FragmentSpec(i, byte_sizes[i], res_sizes[i])
                 for i in range(8)]

    def crasher():
        yield cluster.sim.timeout(crash_at)
        if kill_worker is not None:
            proc = cluster.sim.find_process(f"worker{kill_worker}")
            if proc is not None:
                proc.interrupt("worker node crashed")
        else:
            crash()

    cluster.sim.process(crasher(), daemon=True)
    try:
        job = run_parallel_blast(nodes[0], nodes[1:9], ios, fragments,
                                 default_cost_model(), time_limit=1e7)
    finally:
        if hasattr(fs, "stop_monitoring"):
            fs.stop_monitoring()
    return job, cluster


def _drain_and_check(cluster):
    """After the job: drain everything in flight; no orphans allowed."""
    cluster.sim.run()
    orphans = cluster.sim.orphans()
    assert orphans == [], f"orphaned processes: {orphans}"


def _pvfs_builder(nodes):
    from repro.fs.pvfs import PVFS

    fs = PVFS(nodes[0], nodes[1:9])
    return fs, fs.servers[3].fail


def _ceft_builder(nodes):
    from repro.fs.ceft import CEFT

    fs = CEFT(nodes[0], nodes[1:5], nodes[5:9], load_period=5.0)
    return fs, fs.primary[3].fail


def _ceft_nocrash(nodes):
    from repro.fs.ceft import CEFT

    fs = CEFT(nodes[0], nodes[1:5], nodes[5:9], load_period=5.0)
    return fs, (lambda: None)


def _run():
    out = {}
    try:
        job, cluster = _job(_pvfs_builder)
        out["pvfs"] = ("completed", job.makespan)
    except JobAborted as exc:
        out["pvfs"] = ("ABORTED: " + exc.cause[:36], float("nan"))

    job, cluster = _job(_ceft_builder)
    _drain_and_check(cluster)
    out["ceft"] = ("completed", job.makespan)

    # Clean CEFT baseline for the overhead comparison.
    job, cluster = _job(_ceft_nocrash)
    _drain_and_check(cluster)
    out["ceft-clean"] = ("completed", job.makespan)
    return out


def test_ext_failover_availability(once):
    results = once(_run)
    rows = [[name, status, round(t, 1) if t == t else "-"]
            for name, (status, t) in results.items()]
    save_report("ext_failover", format_table(
        "E2: data-server crash 30 s into an 8-worker search (1/4 scale)",
        ["scheme", "outcome", "makespan (s)"], rows, col_width=22))

    assert results["pvfs"][0].startswith("ABORTED")
    assert results["ceft"][0] == "completed"
    # Failover cost is bounded: within 2x of the clean run.
    assert results["ceft"][1] < 2.0 * results["ceft-clean"][1]


def test_ext_resync_bandwidth(once):
    """RAID-10 rebuild: resync streams the failed server's share from
    its mirror at roughly the disk-write rate."""
    from repro.cluster.params import MB
    from repro.fs.ceft import CEFT
    from repro.workloads.synthdb import NT_DATABASE_SPEC

    def run():
        db = NT_DATABASE_SPEC.scaled(1 / 20)
        cluster = Cluster(n_nodes=9)
        nodes = list(cluster)
        fs = CEFT(nodes[0], nodes[1:5], nodes[5:9], monitor_load=False)
        for i, nbytes in enumerate(db.fragment_bytes(8)):
            fs.populate(f"nt.{i:03d}.nsq", nbytes)
        fs.primary[0].fail()
        fs.mark_failed(PRIMARY, 0)

        def proc():
            t0 = cluster.sim.now
            nbytes = yield cluster.sim.process(fs.resync(PRIMARY, 0))
            return nbytes, cluster.sim.now - t0

        p = cluster.sim.process(proc())
        cluster.sim.run_until_complete(p)
        return p.value

    nbytes, elapsed = once(run)
    rate = nbytes / elapsed / MB
    save_report("ext_resync", (
        f"E2b: resync of one failed server: {nbytes / MB:.0f} MB "
        f"in {elapsed:.1f} s = {rate:.1f} MB/s "
        f"(disk write limit: 32 MB/s)"))
    assert nbytes > 0
    assert 10 < rate <= 32.5


def test_ext_failover_sweep(once):
    """The verdict must not depend on when the server dies: PVFS
    aborts and CEFT completes at every injection time, and no failure
    leaves an orphaned simulation process behind."""
    def run():
        rows = []
        ceft_clean, cluster = _job(_ceft_nocrash)
        _drain_and_check(cluster)
        # Injection times strictly inside the search (a crash after the
        # last read completes is invisible to either scheme).
        for fail_at in (10.0, 20.0, 35.0):
            try:
                job, cluster = _job(_pvfs_builder, crash_at=fail_at)
                pvfs_outcome = "completed"
            except JobAborted:
                pvfs_outcome = "ABORTED"
            job, cluster = _job(_ceft_builder, crash_at=fail_at)
            _drain_and_check(cluster)
            rows.append([fail_at, pvfs_outcome, "completed",
                         round(job.makespan, 1)])
        return rows, ceft_clean.makespan

    rows, clean = once(run)
    save_report("ext_failover_sweep", format_table(
        "E2c: crash-time sweep (8 workers, 1/4 scale); "
        f"clean CEFT makespan {clean:.1f} s",
        ["crash at (s)", "pvfs", "ceft", "ceft makespan (s)"],
        rows, col_width=18))
    for fail_at, pvfs_outcome, ceft_outcome, makespan in rows:
        assert pvfs_outcome == "ABORTED"
        assert ceft_outcome == "completed"
        assert makespan < 2.0 * clean


def test_ext_worker_kill_degraded_mode(once):
    """A worker-node crash over CEFT: the master requeues the dead
    worker's fragment and the job finishes degraded on 7 workers."""
    def run():
        job, cluster = _job(_ceft_nocrash, crash_at=CRASH_AT,
                            kill_worker=3)
        _drain_and_check(cluster)
        clean, cluster = _job(_ceft_nocrash, crash_at=1e6)
        _drain_and_check(cluster)
        return job, clean.makespan

    job, clean = once(run)
    save_report("ext_worker_kill", (
        f"E2d: worker 3 killed at t={CRASH_AT:.0f} s: job completed "
        f"degraded in {job.makespan:.1f} s (clean: {clean:.1f} s), "
        f"{job.requeues} fragment(s) requeued, "
        f"aborted workers: {job.aborted_workers}"))
    assert job.fragments_done == 8
    assert job.aborted_workers == [3]
    assert job.requeues >= 1
    done = sorted(f for w in job.workers for f in w.fragments)
    assert done == list(range(8))
    assert len(job.workers) == 8          # dead worker still accounted
    assert job.makespan >= clean * 0.9    # no free lunch...
    assert job.makespan < 3.0 * clean     # ...but bounded degradation
