"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper.  The
rendered rows/series are written to ``benchmarks/results/<name>.txt``
(and echoed to stdout, visible with ``pytest -s``) so EXPERIMENTS.md
can quote them; the pytest-benchmark timing wraps the simulation run
itself.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_report(name: str, text: str) -> None:
    """Write a figure/table rendering to the results directory."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The experiments are deterministic discrete-event simulations — there
    is no run-to-run variance worth averaging, and full-scale runs take
    seconds, so one round is both sufficient and honest.
    """

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
