"""F6 — Figure 6: execution time vs number of PVFS data servers.

Workers ∈ {1,2,4,8} × servers ∈ {1,2,4,6,8,12,16}, with the original
BLAST as the per-worker-count baseline.  Paper shape: one-server PVFS
loses to the original everywhere; two servers win for small worker
groups; four servers win everywhere; further servers add nothing
(Amdahl — I/O is a small share of execution once compute dominates),
with no significant gain (or slight deterioration) from 12 to 16.
"""

from conftest import save_report

from repro.core.figures import figure6

WORKERS = (1, 2, 4, 8)
SERVERS = (1, 2, 4, 6, 8, 12, 16)


def test_fig6_server_sweep(once):
    result = once(figure6)
    save_report("fig6_server_sweep", result.render())
    sweep = result.data["sweep"]
    baselines = result.data["baselines"]

    for w in WORKERS:
        times = dict(zip(SERVERS, sweep[w]))
        base = baselines[w]
        # One server always loses to the original.
        assert times[1] > base, f"w={w}"
        # Four servers beat (or at worst match) the original everywhere.
        assert times[4] <= base * 1.01, f"w={w}"
        # Monotone improvement up to 4 servers.
        assert times[2] < times[1]
        assert times[4] < times[2]
        # Plateau: gain beyond 4 servers is marginal compared to 1->4.
        assert times[4] - times[16] < 0.25 * (times[1] - times[4]), f"w={w}"
        # No significant change from 12 to 16 (paper: "no significant
        # gain or even slight deterioration").
        assert abs(times[12] - times[16]) < 0.05 * times[12], f"w={w}"
    # Two servers beat the original for small worker groups (1, 2, 4).
    for w in (1, 2, 4):
        assert dict(zip(SERVERS, sweep[w]))[2] < baselines[w] * 1.01, f"w={w}"
