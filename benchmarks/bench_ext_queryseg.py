"""E1 — Extension: database vs query segmentation (paper §2.2).

The paper asserts that query segmentation "becomes less attractive due
to large I/O overhead" as databases grow.  This bench quantifies the
claim: execution time of both approaches at several database scales
(8 workers over 8 PVFS servers), plus the replication (copy) cost the
original local-disk scheme would pay.
"""

import pytest
from conftest import save_report

from repro.core import (
    ExperimentConfig,
    Parallelization,
    Variant,
    run_experiment,
)
from repro.core.report import format_series

SCALES = (1 / 50, 1 / 10, 1 / 2, 1.0)


def _run():
    series = {"database-seg": [], "query-seg": [], "query-seg copy (orig)": []}
    for scale in SCALES:
        for par, key in ((Parallelization.DATABASE_SEGMENTATION, "database-seg"),
                         (Parallelization.QUERY_SEGMENTATION, "query-seg")):
            cfg = ExperimentConfig(variant=Variant.PVFS, n_workers=8,
                                   n_servers=8, parallelization=par
                                   ).scaled(scale)
            series[key].append(run_experiment(cfg).execution_time)
        orig = ExperimentConfig(
            variant=Variant.ORIGINAL, n_workers=8,
            parallelization=Parallelization.QUERY_SEGMENTATION).scaled(scale)
        series["query-seg copy (orig)"].append(run_experiment(orig).copy_time)
    return series


def test_ext_query_vs_database_segmentation(once):
    series = once(_run)
    save_report("ext_queryseg", format_series(
        "E1: database vs query segmentation, exec time (s), 8 workers",
        "db scale", [f"{s:g}" for s in SCALES],
        {k: [round(v, 1) for v in vs] for k, vs in series.items()}))

    dseg = series["database-seg"]
    qseg = series["query-seg"]
    # Query segmentation always loses with this (long-database) workload...
    for d, q in zip(dseg, qseg):
        assert q > d
    # ...and its relative penalty does not shrink as the database grows.
    assert qseg[-1] / dseg[-1] >= 0.9 * (qseg[0] / dseg[0])
    # Its replication cost alone grows linearly with database size.
    copies = series["query-seg copy (orig)"]
    assert copies[-1] > 40 * copies[0]
