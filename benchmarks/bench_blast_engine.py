"""Microbenchmarks of the real BLAST engine (the non-simulated half).

Not a paper figure — these keep the engine's performance visible and
regression-checked: blastn scan throughput (the concatenated-fragment
kernel), the kernel-vs-loop speedup ratio, ScanCache warm-over-cold
behaviour, protein search, database formatting, and segmentation.
"""

import dataclasses
import os
import time

import numpy as np
import pytest

from repro.blast import ScanCache, SequenceDB, blastn, blastp, segment_db
from repro.blast.alphabet import encode_dna
from repro.blast.score import NucleotideScore
from repro.blast.search import SearchParams, search
from repro.blast.seqdb import format_db
from repro.workloads import extract_query, synthetic_nt_db


@pytest.fixture(scope="module")
def nt_db():
    return synthetic_nt_db(1_000_000, seed=0)


@pytest.fixture(scope="module")
def aa_db():
    rng = np.random.default_rng(0)
    db = SequenceDB("aa")
    for i in range(300):
        db.add(f"p{i}", "".join(
            rng.choice(list("ARNDCQEGHILKMFPSTWYV"), 350)))
    return db


def test_blastn_scan_throughput(benchmark, nt_db):
    query = extract_query(nt_db, length=568, seed=1)
    result = benchmark(blastn, query, nt_db)
    assert result.hits  # the planted query must be found
    mbps = nt_db.total_residues / benchmark.stats["mean"] / 1e6
    # Post-kernel regression floor: the concatenated-fragment kernel
    # sustains ~34 MB/s on the dev box where the legacy per-sequence
    # loop managed ~11; 12 MB/s fails a silent fall-back to the loop
    # while leaving headroom for slower CI machines.  The machine-
    # independent guard is test_scan_kernel_speedup_over_loop below.
    assert mbps > 12.0


def _median_seconds(fn, rounds: int = 3) -> float:
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2]


def test_scan_kernel_speedup_over_loop(nt_db):
    """Same machine, same corpus: the kernel must clearly beat the
    legacy per-sequence loop (machine-portable, unlike absolute MB/s)."""
    query = encode_dna(extract_query(nt_db, length=568, seed=1))
    scheme = NucleotideScore()
    params = SearchParams()
    cache = ScanCache()

    def run_scan():
        return search(query, nt_db, scheme, params, engine="scan",
                      scan_cache=cache)

    def run_loop():
        return search(query, nt_db, scheme, params, engine="loop")

    run_scan()  # populate the cache; measure warm kernel vs loop
    t_scan = _median_seconds(run_scan)
    t_loop = _median_seconds(run_loop)
    assert t_loop / t_scan > 2.0


def test_scan_cache_warm_over_cold(nt_db):
    """Re-querying a cached fragment must skip the packing cost."""
    query = encode_dna(extract_query(nt_db, length=568, seed=1))
    scheme = NucleotideScore()
    params = SearchParams()
    cache = ScanCache()

    def run(clear_first):
        if clear_first:
            cache.clear()
        t0 = time.perf_counter()
        search(query, nt_db, scheme, params, engine="scan",
               scan_cache=cache)
        return time.perf_counter() - t0

    run(clear_first=True)  # JIT/page warmup, discarded
    cold = sorted(run(clear_first=True) for _ in range(3))[1]
    warm = sorted(run(clear_first=False) for _ in range(3))[1]
    stats = cache.stats()
    assert stats["misses"] >= 4 and stats["hits"] >= 3
    assert cold / warm > 1.2  # packing is a measurable share of cold time


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="pool scaling needs at least 4 physical cores")
def test_pool_scaling_four_workers(nt_db):
    """Four pool workers must clearly beat the serial warm kernel on
    the 1M corpus (same machine, same run — machine-portable ratio).

    2.0x at 4 workers: fragment packing is amortized (the pool is
    warm), tasks are overhead-sized fragment ranges, and large results
    ship through the shared-memory arena instead of the pickle pipe —
    half of ideal scaling is the least the design must deliver.
    """
    from repro.exec import ExecPool

    query = encode_dna(extract_query(nt_db, length=568, seed=1))
    scheme = NucleotideScore()
    params = SearchParams()
    cache = ScanCache()

    def run_serial():
        return search(query, nt_db, scheme, params, engine="scan",
                      scan_cache=cache)

    run_serial()  # warm the serial cache
    t_serial = _median_seconds(run_serial)
    with ExecPool(jobs=4) as pool:
        first = pool.search(query, nt_db, scheme, params)  # warm packs
        t_pool = _median_seconds(
            lambda: pool.search(query, nt_db, scheme, params))

    serial = run_serial()
    assert ([(h.subject_id, [dataclasses.astuple(p) for p in h.hsps])
             for h in first.hits] ==
            [(h.subject_id, [dataclasses.astuple(p) for p in h.hsps])
             for h in serial.hits])
    assert t_serial / t_pool > 2.0


def test_gapped_bulk_stage_speedup(aa_db):
    """The two-pass batched gapped stage must clearly beat the scalar
    reference path on a gapped-heavy protein workload — byte-identical
    results, stage time read from the profile buckets (same machine,
    same run: machine-portable ratio)."""
    from dataclasses import replace

    from repro.blast.profile import profiled
    from repro.blast.score import ProteinScore

    db = aa_db.subset(range(120))  # keep the scalar side CI-friendly
    rng = np.random.default_rng(3)
    query = db.sequence(2)[:350].copy()
    query[::9] = (query[::9] + rng.integers(1, 20)) % 20
    scheme = ProteinScore()
    p_bulk = SearchParams(word_size=3)
    p_scalar = replace(p_bulk, gapped_bulk=False)

    def stage_seconds(params):
        best = None
        for _ in range(3):
            with profiled("bench", enabled=True, emit=False) as prof:
                search(query, db, scheme, params, query_id="q")
            t = (prof.stages.get("gapped", 0.0)
                 + prof.stages.get("gapped_bulk", 0.0))
            best = t if best is None else min(best, t)
        return best

    r_bulk = search(query, db, scheme, p_bulk, query_id="q")
    r_scalar = search(query, db, scheme, p_scalar, query_id="q")
    assert ([(h.subject_id, [dataclasses.astuple(p) for p in h.hsps])
             for h in r_bulk.hits] ==
            [(h.subject_id, [dataclasses.astuple(p) for p in h.hsps])
             for h in r_scalar.hits])
    t_bulk = stage_seconds(p_bulk)
    t_scalar = stage_seconds(p_scalar)
    assert t_bulk > 0, "workload produced no gapped work to measure"
    assert t_scalar / t_bulk > 1.5


def test_blastp_search(benchmark, aa_db):
    query = aa_db.sequence_str(7)[40:160]
    result = benchmark(blastp, query, aa_db)
    assert result.hits
    assert result.hits[0].description == "p7"


def test_format_db_throughput(benchmark):
    from repro.workloads import synthetic_nt_fasta

    fasta = synthetic_nt_fasta(300_000, seed=2)
    db = benchmark(format_db, fasta)
    assert db.total_residues >= 300_000


def test_segmentation_throughput(benchmark, nt_db):
    frags = benchmark(segment_db, nt_db, 8)
    assert len(frags) == 8
    sizes = [f.total_residues for f in frags]
    assert max(sizes) - min(sizes) < max(nt_db.lengths())
