"""Microbenchmarks of the real BLAST engine (the non-simulated half).

Not a paper figure — these keep the engine's performance visible and
regression-checked: blastn scan throughput, protein search, database
formatting, and segmentation.
"""

import numpy as np
import pytest

from repro.blast import SequenceDB, blastn, blastp, segment_db
from repro.blast.seqdb import format_db
from repro.workloads import extract_query, synthetic_nt_db


@pytest.fixture(scope="module")
def nt_db():
    return synthetic_nt_db(1_000_000, seed=0)


@pytest.fixture(scope="module")
def aa_db():
    rng = np.random.default_rng(0)
    db = SequenceDB("aa")
    for i in range(300):
        db.add(f"p{i}", "".join(
            rng.choice(list("ARNDCQEGHILKMFPSTWYV"), 350)))
    return db


def test_blastn_scan_throughput(benchmark, nt_db):
    query = extract_query(nt_db, length=568, seed=1)
    result = benchmark(blastn, query, nt_db)
    assert result.hits  # the planted query must be found
    mbps = nt_db.total_residues / benchmark.stats["mean"] / 1e6
    assert mbps > 0.5  # engine scans at O(Mbases/s)


def test_blastp_search(benchmark, aa_db):
    query = aa_db.sequence_str(7)[40:160]
    result = benchmark(blastp, query, aa_db)
    assert result.hits
    assert result.hits[0].description == "p7"


def test_format_db_throughput(benchmark):
    from repro.workloads import synthetic_nt_fasta

    fasta = synthetic_nt_fasta(300_000, seed=2)
    db = benchmark(format_db, fasta)
    assert db.total_residues >= 300_000


def test_segmentation_throughput(benchmark, nt_db):
    frags = benchmark(segment_db, nt_db, 8)
    assert len(frags) == 8
    sizes = [f.total_residues for f in frags]
    assert max(sizes) - min(sizes) < max(nt_db.lengths())
