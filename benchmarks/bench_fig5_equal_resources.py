"""F5 — Figure 5: original vs mpiBLAST-over-PVFS with equal resources.

Workers and data servers share the same nodes (1, 2, 4, 8 of them plus
the master/metadata node).  Paper shape: PVFS loses at one node (TCP
stack + metadata overhead), wins from two nodes on, with the margin
shrinking as compute dominates.
"""

from conftest import save_report

from repro.core.figures import figure5

WORKERS = (1, 2, 4, 8)


def test_fig5_equal_resources(once):
    result = once(figure5)
    save_report("fig5_equal_resources", result.render())

    orig = result.data["original"]
    pvfs = result.data["over PVFS"]
    # PVFS worse at 1 worker...
    assert pvfs[0] > orig[0]
    # ...better at 2+ workers...
    for i in (1, 2, 3):
        assert pvfs[i] < orig[i], f"workers={WORKERS[i]}"
    # ...and the absolute gain shrinks with scale (Amdahl).
    gains = [orig[i] - pvfs[i] for i in (1, 2, 3)]
    assert gains[2] < gains[0]
    # Sanity: both scale down with workers.
    assert orig[3] < orig[0] / 4
    assert pvfs[3] < pvfs[0] / 4
