"""F4 — Figure 4: the application-level I/O trace of the original
parallel BLAST with 8 workers searching 8 nt fragments.

Paper statistics: 144 operations, 89 % reads, read sizes 13 B – 220 MB,
16 writes of 50–778 B with mean ≈ 690 B.
"""

from conftest import save_report

from repro.core.figures import figure4

MB = 1_000_000


def test_fig4_io_trace(once):
    result = once(figure4)
    stats = result.data["stats"]
    save_report("fig4_trace", result.render()
                + "\n\nRaw trace:\n" + result.data["tracer"].dump())

    assert stats.operations == 144
    assert round(100 * stats.read_fraction) == 89
    assert stats.reads.min_bytes == 13
    assert 210 * MB < stats.reads.max_bytes < 230 * MB
    assert stats.writes.count == 16
    assert 50 <= stats.writes.min_bytes
    assert stats.writes.max_bytes <= 778
    assert 500 <= stats.writes.mean_bytes <= 778
