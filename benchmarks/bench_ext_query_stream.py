"""E8 — Extension: the BLAST service view (query streams).

The paper measures one query at a time; a real deployment answers a
stream.  This bench drives Poisson query arrivals through the 8-worker
cluster at increasing load and reports mean/95th-percentile latency for
the original and over-PVFS schemes.

Two effects compose:

* warm caches make every query after the first far cheaper (E5), so
  the sustainable arrival rate is set by the *warm* service time;
* as the arrival rate approaches that service rate, queueing delay
  takes over — the knee every server operator knows.
"""

import numpy as np
import pytest
from conftest import save_report

from repro.cluster import Cluster
from repro.core.calibration import default_cost_model
from repro.core.report import format_table
from repro.fs.localfs import LocalFS
from repro.fs.pvfs import PVFS
from repro.parallel import (
    FragmentSpec,
    LocalIO,
    ParallelIO,
    run_query_stream,
)
from repro.workloads.synthdb import NT_DATABASE_SPEC

SCALE = 1 / 10
N_QUERIES = 12


def _stream(variant, utilisation, seed=0):
    """Run a Poisson stream at the given target utilisation."""
    db = NT_DATABASE_SPEC.scaled(SCALE)
    cluster = Cluster(n_nodes=9)
    nodes = list(cluster)
    workers = nodes[1:9]
    if variant == "original":
        ios = [LocalIO(LocalFS(n), n) for n in workers]
    else:
        fs = PVFS(nodes[0], workers)
        ios = [ParallelIO(fs.client(n)) for n in workers]
    byte_sizes = db.fragment_bytes(8)
    res_sizes = db.fragment_residues(8)
    fragments = [FragmentSpec(i, byte_sizes[i], res_sizes[i])
                 for i in range(8)]
    cost = default_cost_model()

    # Estimate the warm service time with a two-query probe, then set
    # the Poisson rate to the requested utilisation of it.
    probe = run_query_stream(nodes[0], workers, ios, fragments, cost,
                             [0.0, 0.0])
    warm_service = probe[1]["service"]

    rng = np.random.default_rng(seed)
    gaps = rng.exponential(warm_service / utilisation, size=N_QUERIES)
    arrivals = cluster.sim.now + np.cumsum(gaps)
    stream = run_query_stream(nodes[0], workers, ios, fragments, cost,
                              list(arrivals))
    latencies = [q["latency"] for q in stream]
    return (warm_service, float(np.mean(latencies)),
            float(np.percentile(latencies, 95)))


def _run():
    out = {}
    for variant in ("original", "pvfs"):
        for util in (0.5, 0.9):
            out[(variant, util)] = _stream(variant, util)
    return out


def test_ext_query_stream(once):
    results = once(_run)
    rows = [[v, f"{u:.0%}", round(w, 1), round(mean, 1), round(p95, 1)]
            for (v, u), (w, mean, p95) in results.items()]
    save_report("ext_query_stream", format_table(
        "E8: Poisson query stream, 8 workers (1/10-scale nt)",
        ["scheme", "load", "warm svc (s)", "mean lat (s)", "p95 lat (s)"],
        rows, col_width=14))

    for variant in ("original", "pvfs"):
        w50, m50, p50 = results[(variant, 0.5)]
        w90, m90, p90 = results[(variant, 0.9)]
        # Latency at 50% load stays near the service time...
        assert m50 < 3 * w50
        # ...and queueing blows it up near saturation.
        assert m90 > m50
        assert p90 > p50
