"""F7 — Figure 7: PVFS with 8 data servers vs CEFT-PVFS with 4
mirroring 4, on dedicated nodes, workers 1-8.

Paper shape: CEFT-PVFS is only slightly worse than PVFS — its doubled-
parallelism reads involve all 8 disks just like PVFS, and the small
deficit comes from the heavier metadata.  "This performance degradation
is acceptable since CEFT-PVFS needs to manage [a] slightly larger
amount of metadata."
"""

from conftest import save_report

from repro.core.figures import figure7

WORKERS = (1, 2, 3, 4, 5, 6, 7, 8)


def test_fig7_ceft_vs_pvfs(once):
    result = once(figure7)
    save_report("fig7_ceft_vs_pvfs", result.render())

    pvfs = result.data["PVFS 8 servers"]
    ceft = result.data["CEFT 4+4 mirrored"]
    for i, w in enumerate(WORKERS):
        # CEFT trails PVFS slightly — never better, never by much.
        assert ceft[i] >= pvfs[i] * 0.999, f"w={w}"
        assert ceft[i] <= pvfs[i] * 1.10, f"w={w}"
    # Both scale with workers.
    assert pvfs[-1] < pvfs[0] / 4
    assert ceft[-1] < ceft[0] / 4
