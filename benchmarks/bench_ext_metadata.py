"""E6 — Extension: metadata-server scalability.

Both PVFS and CEFT-PVFS route every open through one metadata server
(paper Figure 2 places it with the master).  BLAST's workload — a few
opens per fragment — never stresses it, but metadata-heavy workloads
(many small files) hit the single-MDS wall that later systems (PVFS2,
Lustre DNE) spent years removing.  This bench measures open throughput
vs client count and the impact of co-locating a busy master on the MDS
node.
"""

import pytest
from conftest import save_report

from repro.cluster import Cluster, cpu_stressor
from repro.core.report import format_table
from repro.fs.pvfs import PVFS

OPENS_PER_CLIENT = 200


def _open_throughput(n_clients, stress_mds=False):
    c = Cluster(n_nodes=n_clients + 3)
    nodes = list(c)
    fs = PVFS(nodes[0], nodes[1:3])
    for i in range(OPENS_PER_CLIENT):
        fs.populate(f"f{i}", 1024)
    if stress_mds:
        c.sim.process(cpu_stressor(nodes[0], tasks=8))

    def opener(node):
        client = fs.client(node)
        for i in range(OPENS_PER_CLIENT):
            yield from client.open(f"f{i}")

    procs = [c.sim.process(opener(nodes[3 + i])) for i in range(n_clients)]
    c.sim.run_until_complete(*procs)
    total_opens = n_clients * OPENS_PER_CLIENT
    return total_opens / c.sim.now


def _run():
    sweep = {n: _open_throughput(n) for n in (1, 2, 4, 8, 16)}
    stressed = _open_throughput(8, stress_mds=True)
    return sweep, stressed


def test_ext_metadata_scalability(once):
    sweep, stressed = once(_run)
    rows = [[n, round(tp, 0)] for n, tp in sweep.items()]
    rows.append(["8 (MDS node CPU-stressed)", round(stressed, 0)])
    save_report("ext_metadata", format_table(
        "E6: metadata-open throughput vs clients (single MDS)",
        ["clients", "opens/s"], rows, col_width=26))

    # Throughput rises with clients while the MDS has headroom...
    assert sweep[4] > 1.5 * sweep[1]
    # ...but saturates: 16 clients gain little over 8.
    assert sweep[16] < 1.5 * sweep[8]
    # A CPU-stressed MDS node loses open throughput.
    assert stressed < 0.9 * sweep[8]
