"""A6 — Ablation (engine side): seed word size.

blastn's default word size 11 vs megablast's 28: the classic
sensitivity/speed tradeoff.  Measured on a synthetic database with
planted targets at decreasing identity: larger words scan faster but
stop finding diverged targets once exact runs of `word_size` vanish.
"""

import time

import numpy as np
import pytest
from conftest import save_report

from repro.blast import SequenceDB, SearchParams, blastn
from repro.core.report import format_table

IDENTITIES = (1.0, 0.97, 0.925, 0.90)
WORD_SIZES = (8, 11, 16, 28)


def _build_db(rng):
    """Targets at several identities to one 400-base core + decoys."""
    core = "".join(rng.choice(list("ACGT"), 400))
    db = SequenceDB("nt")
    for ident in IDENTITIES:
        seq = list(core)
        n_mut = round(len(seq) * (1 - ident))
        # Spread mutations evenly so max run length ~ 1/(1-identity).
        if n_mut:
            for pos in np.linspace(3, len(seq) - 4, n_mut).astype(int):
                seq[pos] = {"A": "C", "C": "G", "G": "T",
                            "T": "A"}[seq[pos]]
        db.add(f"target@{ident:.2f}", "".join(seq))
    for i in range(40):
        db.add(f"decoy{i}", "".join(rng.choice(list("ACGT"), 400)))
    return core, db


def _run():
    rng = np.random.default_rng(0)
    core, db = _build_db(rng)
    out = {}
    for w in WORD_SIZES:
        params = SearchParams(word_size=w, gapped_trigger=18)
        t0 = time.perf_counter()
        for _ in range(3):
            res = blastn(core, db, params=params)
        elapsed = (time.perf_counter() - t0) / 3
        found = {hit.description for hit in res.hits
                 if hit.description.startswith("target")}
        out[w] = (found, elapsed)
    return out


def test_ablation_word_size(once):
    results = once(_run)
    rows = []
    for w, (found, elapsed) in results.items():
        marks = ["x" if f"target@{i:.2f}" in found else "-"
                 for i in IDENTITIES]
        rows.append([w, *marks, round(1000 * elapsed, 1)])
    save_report("ablation_wordsize", format_table(
        "A6: word-size ablation (found targets by identity; x = found)",
        ["word size", *(f"{i:.0%}" for i in IDENTITIES), "ms/search"],
        rows))

    # Everybody finds the exact target.
    for w, (found, _t) in results.items():
        assert "target@1.00" in found, w
    # Evenly-spread mutations leave exact runs of ~1/(1-identity) - 1
    # bases, so each word size has a sensitivity floor:
    assert "target@0.90" in results[8][0]       # runs ~9 >= 8
    assert "target@0.93" in results[11][0]      # runs ~12 >= 11
    assert "target@0.90" not in results[11][0]  # runs ~9 < 11
    assert "target@0.93" not in results[28][0]  # nothing for megablast
    assert "target@0.90" not in results[28][0]
    # Bigger words scan no slower (usually faster: fewer hits to extend).
    assert results[28][1] <= results[8][1] * 1.2
