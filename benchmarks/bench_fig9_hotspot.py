"""F9 — Figure 9: one data-server disk stressed by the Figure 8
program, 8 workers and 8 data servers.

Paper result: the original parallel BLAST degrades by a factor of ~10
(its stressed worker's local reads starve), over-PVFS by ~21 (every
worker's stripes cross the hot disk, at finer request granularity), and
over-CEFT-PVFS only by ~2 (clients skip the hot spot and read from its
mirror).
"""

from conftest import save_report

from repro.core.experiment import Variant
from repro.core.figures import figure9

#: Accepted reproduction bands for the degradation factors.
BANDS = {
    Variant.ORIGINAL: (6.0, 14.0),
    Variant.PVFS: (14.0, 30.0),
    Variant.CEFT_PVFS: (1.3, 3.5),
}


def test_fig9_hotspot_degradation(once):
    result = once(figure9)
    save_report("fig9_hotspot", result.render())

    factors = {v: f for v, (_b, _s, f) in result.data.items()}
    # Ordering: CEFT << original < PVFS.
    assert factors[Variant.CEFT_PVFS] < factors[Variant.ORIGINAL]
    assert factors[Variant.ORIGINAL] < factors[Variant.PVFS]
    # Factors inside the reproduction bands.
    for variant, (lo, hi) in BANDS.items():
        assert lo <= factors[variant] <= hi, (variant, factors[variant])
    # PVFS suffers roughly twice the original factor (paper: 21 vs 10).
    ratio = factors[Variant.PVFS] / factors[Variant.ORIGINAL]
    assert 1.4 <= ratio <= 2.8
