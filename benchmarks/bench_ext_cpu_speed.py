"""E7 — Extension: the paper's motivating claim, tested forward.

Introduction: "the performance of storage subsystems has increasingly
lagged behind the performance of computation and communication
subsystems."  Section 4.3 predicts that once I/O is no longer a small
share, "the performance gain due to the increase of the number of data
servers will be much more significant".

This bench sweeps the blastn scan rate (a stand-in for CPU generations:
the 2003 Athlon's 2.2 MB/s up to a 32x faster core) with the *same*
2003 disks, and measures two things per generation:

* the I/O share of execution for the original scheme (grows from ~8 %
  toward dominance);
* the benefit of widening PVFS from 8 to 16 data servers at 8 workers —
  negligible in 2003 (the Figure 6 plateau), decisive once CPUs outrun
  the disks.  This is the server-scaling sensitivity the paper said
  would appear, driven by CPU speed rather than database size (compare
  bench_ext_dbsize.py, where the share is size-invariant).
"""

import dataclasses

import pytest
from conftest import save_report

from repro.core import ExperimentConfig, Variant, run_experiment
from repro.core.calibration import default_cost_model
from repro.core.report import format_table

MB = 1_000_000
SPEEDUPS = (1, 4, 16, 32)
SCALE = 1 / 8


def _faster_cpu(mult):
    """Every CPU cost scales with the generation multiplier."""
    base = default_cost_model()
    return dataclasses.replace(
        base,
        scan_rate=base.scan_rate * mult,
        setup_cpu=base.setup_cpu / mult,
        result_cpu=base.result_cpu / mult,
        merge_cpu=base.merge_cpu / mult,
    )


def _run():
    rows = {}
    for mult in SPEEDUPS:
        cost = _faster_cpu(mult)

        def run(variant, servers):
            return run_experiment(ExperimentConfig(
                variant=variant, n_workers=8, n_servers=servers,
                cost=cost).scaled(SCALE))

        orig = run(Variant.ORIGINAL, 8)
        pvfs8 = run(Variant.PVFS, 8)
        pvfs16 = run(Variant.PVFS, 16)
        rows[mult] = (orig.execution_time, pvfs8.execution_time,
                      pvfs16.execution_time, orig.io_fraction)
    return rows


def test_ext_cpu_speed_trend(once):
    rows = once(_run)
    table = [[f"{m}x", round(o, 1), round(p8, 1), round(p16, 1),
              round(p8 / p16, 2), round(100 * f, 1)]
             for m, (o, p8, p16, f) in rows.items()]
    save_report("ext_cpu_speed", format_table(
        "E7: CPU generations vs 2003 disks (8 workers, 1/8-scale nt)\n"
        "server-scaling gain = PVFS-8-servers / PVFS-16-servers",
        ["CPU speed", "original (s)", "pvfs-8 (s)", "pvfs-16 (s)",
         "8->16 gain", "orig I/O %"], table, col_width=13))

    shares = [f for (_o, _p8, _p16, f) in rows.values()]
    gains = [p8 / p16 for (_o, p8, p16, _f) in rows.values()]
    # The original's I/O share grows monotonically with CPU speed...
    assert all(b > a for a, b in zip(shares, shares[1:]))
    assert shares[0] < 0.12 and shares[-1] > 0.3
    # ...and widening the server pool goes from pointless (the paper's
    # Figure 6 plateau) to clearly worthwhile.
    assert gains[0] < 1.05
    assert gains[-1] > 1.25
    assert gains[-1] > gains[0]
