"""A1 — Ablation: CEFT-PVFS read optimisations (paper §4.4/§4.5 and the
authors' companion paper [6]).

Two switches are isolated:

* **doubled parallelism** — reading half the data from each replica
  group.  Without it a 4+4 CEFT deployment reads from only 4 disks and
  should trail PVFS-8 clearly; with it, CEFT-8-disks ≈ PVFS-8-disks
  (paper: "Doubling the degree of parallelism boosts the read
  performance to approach that of PVFS").
* **hot-spot skipping** — under a stressed disk, skipping is the
  difference between a ~2x and a PVFS-like ~20x degradation.
"""

import pytest
from conftest import save_report

from repro.core import ExperimentConfig, Placement, Variant, run_experiment
from repro.core.report import format_table

SCALE = 1 / 4


def _run():
    def ceft(**kw):
        cfg = ExperimentConfig(variant=Variant.CEFT_PVFS, n_workers=4,
                               n_servers=8, placement=Placement.DEDICATED,
                               time_limit=1e7, **kw).scaled(SCALE)
        return run_experiment(cfg).execution_time

    pvfs = run_experiment(ExperimentConfig(
        variant=Variant.PVFS, n_workers=4, n_servers=8,
        placement=Placement.DEDICATED).scaled(SCALE)).execution_time

    return {
        "pvfs (8 servers)": pvfs,
        "ceft double=on": ceft(),
        "ceft double=off": ceft(ceft_double_parallelism=False),
        "ceft stressed skip=on": ceft(n_stressed_disks=1),
        "ceft stressed skip=off": ceft(n_stressed_disks=1,
                                       ceft_skip_hot=False),
    }


def test_ablation_ceft_read_optimisations(once):
    t = once(_run)
    rows = [[k, round(v, 1)] for k, v in t.items()]
    save_report("ablation_ceft_reads", format_table(
        "A1: CEFT read optimisations (4 workers, 4+4 servers, 1/4 scale)",
        ["configuration", "exec time (s)"], rows, col_width=24))

    # Doubled parallelism brings CEFT within a whisker of PVFS...
    assert t["ceft double=on"] <= 1.08 * t["pvfs (8 servers)"]
    # ...and beats the single-group configuration.
    assert t["ceft double=on"] < t["ceft double=off"]
    # Skipping the hot spot is the dominant effect under stress.
    assert t["ceft stressed skip=on"] < 0.5 * t["ceft stressed skip=off"]
    # With skipping, the stressed run stays within ~3.5x of clean.
    assert t["ceft stressed skip=on"] < 3.5 * t["ceft double=on"]
