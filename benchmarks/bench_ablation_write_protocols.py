"""A3 — Ablation: CEFT-PVFS write-duplexing protocols (the authors'
companion paper [7]).

BLAST is read-dominated, so the paper never exercises writes at scale;
this ablation uses a write-heavy workload to compare the four duplexing
protocols: asynchronous variants acknowledge before the mirror copy is
durable and so finish faster, client-push protocols pay the client's
NIC twice, server-push protocols pay an extra server-to-server hop.
"""

import pytest
from conftest import save_report

from repro.cluster import Cluster
from repro.cluster.params import MB
from repro.core.report import format_table
from repro.fs.ceft import CEFT, WriteProtocol

TOTAL = 200 * MB
CHUNK = 8 * MB


def _write_time(protocol):
    c = Cluster(n_nodes=9)
    nodes = list(c)
    fs = CEFT(nodes[0], nodes[1:5], nodes[5:9], protocol=protocol,
              monitor_load=False)
    client = fs.client(nodes[0])

    def proc():
        yield from client.create("out")
        off = 0
        while off < TOTAL:
            yield from client.write("out", off, CHUNK)
            off += CHUNK
        return c.sim.now

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    ack_time = p.value
    c.sim.run()  # let asynchronous mirroring drain
    durable_time = c.sim.now
    mirrored = sum(s.node.disk.bytes_written for s in fs.mirror)
    return ack_time, durable_time, mirrored


def _run():
    return {proto: _write_time(proto) for proto in WriteProtocol}


def test_ablation_write_protocols(once):
    results = once(_run)
    rows = [[proto.value, round(ack, 2), round(dur, 2),
             round(TOTAL / ack / MB, 1)]
            for proto, (ack, dur, _m) in results.items()]
    save_report("ablation_write_protocols", format_table(
        "A3: write duplexing protocols (200 MB to CEFT 4+4)",
        ["protocol", "ack time (s)", "durable (s)", "MB/s (ack)"],
        rows, col_width=16))

    acks = {p: a for p, (a, _d, _m) in results.items()}
    # Async protocols acknowledge no later than their sync counterparts.
    assert acks[WriteProtocol.CLIENT_ASYNC] <= acks[WriteProtocol.CLIENT_SYNC]
    assert acks[WriteProtocol.SERVER_ASYNC] <= acks[WriteProtocol.SERVER_SYNC]
    # Server-sync pays the extra forwarding hop: slowest ack.
    assert acks[WriteProtocol.SERVER_SYNC] == max(acks.values())
    # Every protocol eventually stores a full mirror copy.
    for proto, (_a, _d, mirrored) in results.items():
        assert mirrored >= TOTAL, proto
