"""A4 — The Amdahl analysis behind Figure 6's plateau (paper §4.3).

For each server count, measure the workers' I/O share of busy time and
compute the Amdahl bound on any further I/O speedup.  The paper's
argument: once I/O is ~10 % of execution, even infinitely fast I/O
cannot buy more than ~1.1x — so the curve must flatten.

Also reproduces the §4.3 quote: "the time spent on I/O operations was
measured to be around 11 % of the total execution time on one worker
node when running the original mpiBLAST [at 2 workers]".
"""

import pytest
from conftest import save_report

from repro.core import ExperimentConfig, Variant, run_experiment
from repro.core.metrics import amdahl_speedup_limit
from repro.core.report import format_table

SERVERS = (1, 2, 4, 8, 16)
SCALE = 1 / 4


def _run():
    rows = []
    for s in SERVERS:
        cfg = ExperimentConfig(variant=Variant.PVFS, n_workers=2,
                               n_servers=s).scaled(SCALE)
        res = run_experiment(cfg)
        rows.append((s, res.execution_time, res.io_fraction))
    orig = run_experiment(ExperimentConfig(
        variant=Variant.ORIGINAL, n_workers=2).scaled(SCALE))
    return rows, orig.io_fraction


def test_ablation_amdahl_io_share(once):
    rows, orig_io = once(_run)
    table_rows = [[s, round(t, 1), round(100 * f, 1),
                   round(amdahl_speedup_limit(f), 3)]
                  for s, t, f in rows]
    save_report("ablation_amdahl", format_table(
        "A4: I/O share and Amdahl bound (PVFS, 2 workers, 1/4 scale)\n"
        f"original-BLAST I/O share at 2 workers: {100 * orig_io:.1f}% "
        "(paper: ~11%)",
        ["servers", "exec (s)", "I/O share %", "max I/O speedup"],
        table_rows, col_width=16))

    shares = {s: f for s, _t, f in rows}
    # I/O share shrinks as servers are added...
    assert shares[4] < shares[1]
    # ...and is small once >= 4 servers (hence the Figure 6 plateau).
    assert shares[4] < 0.12
    assert amdahl_speedup_limit(shares[4]) < 1.15
    # The paper's §4.3 measurement: ~11% I/O for original at 2 workers.
    assert 0.04 < orig_io < 0.15
