"""T1 — Section 4.1 platform microbenchmarks.

The paper quotes Bonnie and Netperf numbers for PrairieFire: disk write
32 MB/s, disk read 26 MB/s, TCP over Myrinet ~112 MB/s.  This bench
runs the equivalent streaming microbenchmarks *inside the simulator*
and checks the calibration: the simulated hardware must reproduce the
testbed figures it was calibrated to.
"""

from conftest import save_report

from repro.core.figures import table1


def test_table1_platform_microbenchmarks(once):
    result = once(table1)
    save_report("table1_micro", result.render())
    for name, (measured, paper) in result.data.items():
        assert 0.9 * paper <= measured <= 1.02 * paper, name
