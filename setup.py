"""Shim so ``pip install -e .`` works offline (no `wheel` package is
available in this environment, so the legacy setup.py-develop editable
path is used instead of PEP 517)."""

from setuptools import setup

setup()
