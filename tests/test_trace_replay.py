"""Tests for trace export/import and replay."""

import pytest

from repro.cluster import Cluster
from repro.cluster.params import MB, MiB
from repro.fs.localfs import LocalFS
from repro.fs.pvfs import PVFS
from repro.parallel.ioadapters import LocalIO, ParallelIO
from repro.trace import TraceCollector, TraceRecord
from repro.trace.replay import export_csv, import_csv, replay


def sample_records():
    return [
        TraceRecord("n0", "read", "a.nsq", 4 * MiB, 0.0, 0.5),
        TraceRecord("n0", "read", "a.nsq", 1 * MiB, 2.0, 2.1),
        TraceRecord("n0", "write", "a.tmp", 700, 3.0, 3.001),
    ]


def test_csv_roundtrip():
    recs = sample_records()
    back = import_csv(export_csv(recs))
    assert back == recs


def test_csv_header_present():
    text = export_csv(sample_records())
    assert text.splitlines()[0] == "start,end,node,op,path,size"


def test_replay_against_local_fs():
    c = Cluster(n_nodes=1)
    io = LocalIO(LocalFS(c[0]), c[0])
    p = c.sim.process(replay(c[0], io, sample_records()))
    c.sim.run_until_complete(p)
    ops, reads, writes = p.value
    assert ops == 3
    assert reads == 5 * MiB
    assert writes == 700
    assert c[0].disk.bytes_read >= 4 * MiB  # first read was cold


def test_replay_preserves_inter_arrival_times():
    c = Cluster(n_nodes=1)
    io = LocalIO(LocalFS(c[0]), c[0])
    p = c.sim.process(replay(c[0], io, sample_records(),
                             preserve_timing=True))
    c.sim.run_until_complete(p)
    # The last op starts at >= 3.0 (original offset from trace start).
    assert c.sim.now >= 3.0


def test_replay_closed_loop_is_faster():
    def run(preserve):
        c = Cluster(n_nodes=1)
        io = LocalIO(LocalFS(c[0]), c[0])
        p = c.sim.process(replay(c[0], io, sample_records(),
                                 preserve_timing=preserve))
        c.sim.run_until_complete(p)
        return c.sim.now

    assert run(False) < run(True)


def test_replay_time_scale():
    def run(scale):
        c = Cluster(n_nodes=1)
        io = LocalIO(LocalFS(c[0]), c[0])
        p = c.sim.process(replay(c[0], io, sample_records(),
                                 time_scale=scale))
        c.sim.run_until_complete(p)
        return c.sim.now

    assert run(2.0) > run(1.0)


def test_replay_against_pvfs():
    """The same trace drives a different file system — the point of the
    replay tool."""
    c = Cluster(n_nodes=3)
    fs = PVFS(c[0], [c[1], c[2]])
    io = ParallelIO(fs.client(c[0]))
    p = c.sim.process(replay(c[0], io, sample_records(),
                             preserve_timing=False))
    c.sim.run_until_complete(p)
    ops, reads, writes = p.value
    assert ops == 3
    assert sum(s.bytes_served for s in fs.servers) == 5 * MiB


def test_replay_rejects_unknown_op():
    c = Cluster(n_nodes=1)
    io = LocalIO(LocalFS(c[0]), c[0])
    bad = [TraceRecord("n0", "fsync", "f", 1, 0.0, 0.1)]
    p = c.sim.process(replay(c[0], io, bad))
    c.sim.run()
    assert p.failed
    assert isinstance(p.value, ValueError)


def test_collector_to_replay_pipeline():
    """End to end: collect from one run, export, import, replay."""
    c = Cluster(n_nodes=1)
    tracer = TraceCollector()
    fs = LocalFS(c[0], tracer=tracer)
    fs.populate("f", 2 * MB)
    io = LocalIO(fs, c[0])

    def workload():
        yield from fs.read(c[0], "f", 0, 2 * MB)
        yield from fs.write(c[0], "f", 0, 512)

    p = c.sim.process(workload())
    c.sim.run_until_complete(p)
    text = export_csv(tracer.records)
    records = import_csv(text)

    c2 = Cluster(n_nodes=1)
    io2 = LocalIO(LocalFS(c2[0]), c2[0])
    p2 = c2.sim.process(replay(c2[0], io2, records))
    c2.sim.run_until_complete(p2)
    ops, reads, writes = p2.value
    assert ops == 2
    assert reads == 2 * MB
    assert writes == 512
