"""The multi-core pool: byte-identical parallel search, dynamic
scheduling, worker-death requeue, retry exhaustion, and shared-memory
hygiene.  The worker loop itself is also driven in-process through a
scripted pipe so its protocol is covered without a subprocess."""

import dataclasses
import os
import signal
import threading
from collections import deque

import numpy as np
import pytest

from repro.blast.scankernel import db_token
from repro.blast.score import NucleotideScore, ProteinScore
from repro.blast.search import SearchParams, search
from repro.blast.seqdb import AA, NT, SequenceDB
from repro.exec import (ExecPool, GreedyScheduler, PoolJobError,
                        RetriesExceeded, plan_fragments, search_parallel)
from repro.exec.pool import JobSpec, PoolConfig, _worker_main
from repro.exec.shm import NAME_PREFIX, ShmRegistry, pack_fragment

NT_LETTERS = np.array(list("ACGT"))
AA_LETTERS = np.array(list("ARNDCQEGHILKMFPSTWYV"))


def shm_segments():
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(("psm_", NAME_PREFIX)))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def diskpack_leftovers():
    """Build artifacts the streaming pack builder must never leak:
    spool directories and half-committed ``*.tmp`` files inside any
    store directory a builder of this process targeted."""
    from repro.exec import diskpack

    found = []
    for root in sorted(diskpack.build_roots()):
        if not os.path.isdir(root):
            continue
        for entry in sorted(os.listdir(root)):
            if (entry.startswith(diskpack.BUILD_DIR_PREFIX)
                    or entry.endswith(".tmp")):
                found.append(os.path.join(root, entry))
    return found


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = shm_segments()
    yield
    assert shm_segments() == before, "test leaked shared-memory segments"
    assert diskpack_leftovers() == [], "test leaked pack build artifacts"


def random_nt_db(rng, n_seqs, min_len=5, max_len=300):
    db = SequenceDB(NT)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"s{i} desc", "".join(NT_LETTERS[rng.integers(0, 4, length)]))
    return db


def random_aa_db(rng, n_seqs, min_len=5, max_len=200):
    db = SequenceDB(AA)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"p{i}", "".join(AA_LETTERS[rng.integers(0, 20, length)]))
    return db


def dump(results):
    """Full byte-level result dump (every HSP field, hit order, ids)."""
    return (results.query_id, results.query_len, results.db_residues,
            results.db_sequences,
            [(h.subject_id, h.description, h.subject_len, h.fragment_id,
              [dataclasses.astuple(p) for p in h.hsps])
             for h in results.hits])


# ----------------------------------------------------------------------
# Scheduling
# ----------------------------------------------------------------------
def test_plan_fragments_partitions_everything():
    rng = np.random.default_rng(0)
    db = random_nt_db(rng, 23)
    bins = plan_fragments(db, 5)
    assert len(bins) == 5
    flat = sorted(i for b in bins for i in b)
    assert flat == list(range(23))
    # Greedy balance: no bin is empty for a 23-sequence database.
    assert all(b for b in bins)


def test_plan_fragments_clamps_and_validates():
    rng = np.random.default_rng(1)
    db = random_nt_db(rng, 3)
    assert len(plan_fragments(db, 10)) == 3
    assert plan_fragments(SequenceDB(NT), 4) == []
    with pytest.raises(ValueError):
        plan_fragments(db, 0)


def test_scheduler_heaviest_first_and_lifecycle():
    sched = GreedyScheduler([("a", 1.0), ("b", 5.0), ("c", 3.0)])
    assert sched.assign(0) == "b"
    assert sched.assign(1) == "c"
    assert not sched.done
    assert sched.complete(0) == "b"
    assert sched.assign(0) == "a"
    sched.complete(0)
    sched.complete(1)
    assert sched.done
    assert sched.assign(7) is None
    assert sorted(sched.completed) == ["a", "b", "c"]


def test_scheduler_requeues_at_front_with_bounded_retries():
    sched = GreedyScheduler([("a", 2.0), ("b", 1.0)], max_retries=1)
    assert sched.assign(0) == "a"
    assert sched.fail(0) == "a"          # retry 1: requeued at front
    assert sched.requeues == 1
    assert sched.assign(1) == "a"
    with pytest.raises(RetriesExceeded):
        sched.fail(1)                     # budget exhausted
    assert sched.fail(3) is None          # idle worker: nothing to fail
    assert sched.drop_pending() == 1      # "b" abandoned
    assert sched.done


def test_scheduler_rejects_duplicates_and_double_assign():
    with pytest.raises(ValueError):
        GreedyScheduler([("a", 1.0), ("a", 2.0)])
    with pytest.raises(ValueError):
        GreedyScheduler([], max_retries=-1)
    sched = GreedyScheduler([("a", 1.0), ("b", 1.0)])
    sched.assign(0)
    with pytest.raises(ValueError):
        sched.assign(0)


# ----------------------------------------------------------------------
# Equivalence with the serial engines
# ----------------------------------------------------------------------
def test_pool_matches_serial_nt_both_strands_many_fragments():
    rng = np.random.default_rng(2)
    db = random_nt_db(rng, 40)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:120].copy() for i in (3, 11, 27)]
    with ExecPool(jobs=2) as pool:
        for nf in (1, 3, 9):
            for qi, q in enumerate(queries):
                par = pool.search(q, db, scheme, params,
                                  query_id=f"q{qi}", n_fragments=nf)
                ser_scan = search(q, db, scheme, params, query_id=f"q{qi}",
                                  engine="scan")
                ser_loop = search(q, db, scheme, params, query_id=f"q{qi}",
                                  engine="loop")
                assert dump(par) == dump(ser_scan) == dump(ser_loop)


def test_pool_matches_serial_protein():
    rng = np.random.default_rng(3)
    db = random_aa_db(rng, 30)
    scheme = ProteinScore()
    params = SearchParams(word_size=3, neighbor_threshold=11,
                          xdrop_ungapped=16)
    q = db.sequence(7)[:80].copy()
    with ExecPool(jobs=2) as pool:
        par = pool.search(q, db, scheme, params, both_strands=False,
                          n_fragments=6)
        assert dump(par) == dump(search(q, db, scheme, params,
                                        both_strands=False))


def test_pool_streaming_many_queries_one_pass():
    rng = np.random.default_rng(4)
    db = random_nt_db(rng, 35)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:100].copy() for i in range(0, 12, 2)]
    ids = [f"stream{i}" for i in range(len(queries))]
    # Pin granularity=1 (legacy one-task-per-fragment) and disable
    # query batching so the task count stays an exact function of
    # queries x fragments.
    with ExecPool(jobs=2, task_granularity=1, query_batch=0) as pool:
        many = pool.search_many(queries, db, scheme, params, query_ids=ids,
                                n_fragments=5)
        assert len(many) == len(queries)
        for q, qid, res in zip(queries, ids, many):
            assert dump(res) == dump(search(q, db, scheme, params,
                                            query_id=qid))
        assert pool.last_stats.tasks_done == len(queries) * 5
        assert pool.last_stats.fragments_done == len(queries) * 5
        # Batched: the whole query set rides one task per fragment (6
        # queries fit one batch), byte-identical to the serial runs.
        batched = pool.search_many(queries, db, scheme, params,
                                   query_ids=ids, n_fragments=5,
                                   query_batch=32)
        assert [dump(r) for r in batched] == [dump(r) for r in many]
        assert pool.last_stats.tasks_done == 5
        assert pool.last_stats.fragments_done == 5


def test_pool_short_query_and_empty_db():
    rng = np.random.default_rng(5)
    db = random_nt_db(rng, 10)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    short = db.sequence(0)[:5].copy()      # shorter than the word size
    with ExecPool(jobs=1) as pool:
        assert dump(pool.search(short, db, scheme, params)) == \
               dump(search(short, db, scheme, params))
        empty = SequenceDB(NT)
        assert dump(pool.search(short, empty, scheme, params)) == \
               dump(search(short, empty, scheme, params))
        assert pool.search_many([], db, scheme, params) == []


def test_pool_keep_fragment_ids_and_pack_reuse():
    rng = np.random.default_rng(6)
    db = random_nt_db(rng, 20)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(2)[:150].copy()
    with ExecPool(jobs=1) as pool:
        tagged = pool.search(q, db, scheme, params, n_fragments=4,
                             keep_fragment_ids=True)
        frags = {h.fragment_id for h in tagged.hits}
        assert frags and frags <= set(range(4))
        # Same (db, k, nf) key: packs are prepared once and reused.
        pool.search(q, db, scheme, params, n_fragments=4)
        assert len(pool._prepared) == 1
        assert pool.release_db(db) == 1
        assert len(pool._prepared) == 0


def test_search_parallel_transient_pool_and_query_ids_validation():
    rng = np.random.default_rng(7)
    db = random_nt_db(rng, 15)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(1)[:90].copy()
    assert dump(search_parallel(q, db, scheme, params, jobs=1)) == \
           dump(search(q, db, scheme, params))
    with ExecPool(jobs=1) as pool:
        assert dump(search_parallel(q, db, scheme, params, pool=pool)) == \
               dump(search(q, db, scheme, params))
        with pytest.raises(ValueError):
            pool.search_many([q], db, scheme, params, query_ids=["a", "b"])


def test_pool_validation_and_close_semantics():
    with pytest.raises(ValueError):
        ExecPool(jobs=0)
    pool = ExecPool(jobs=1)
    pool.close()
    pool.close()                           # idempotent
    with pytest.raises(PoolJobError):
        pool.start()                       # closed pools do not restart


# ----------------------------------------------------------------------
# Fault handling
# ----------------------------------------------------------------------
def test_kill_worker_mid_job_requeues_and_stays_byte_identical():
    rng = np.random.default_rng(8)
    db = random_nt_db(rng, 30, min_len=100, max_len=300)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(5)[:120].copy()
    serial = search(q, db, scheme, params)
    # granularity=1 keeps eight in-flight tasks, so the kill lands
    # while the victim still holds work (range planning would collapse
    # this little database to one task per worker and finish first).
    with ExecPool(jobs=2, task_sleep=0.15, task_granularity=1) as pool:
        pool.start()
        victim = pool.worker_pids()[0]
        timer = threading.Timer(0.25, os.kill, (victim, signal.SIGKILL))
        timer.start()
        try:
            res = pool.search(q, db, scheme, params, n_fragments=8)
        finally:
            timer.cancel()
            timer.join()
        assert dump(res) == dump(serial)
        assert pool.last_stats.worker_deaths == [0]
        assert pool.last_stats.requeues >= 1
        # The survivor carries follow-up jobs alone.
        again = pool.search(q, db, scheme, params, n_fragments=8)
        assert dump(again) == dump(serial)
        assert pool.last_stats.worker_deaths == []


def test_all_workers_dead_fails_job_cleanly():
    rng = np.random.default_rng(9)
    db = random_nt_db(rng, 20, min_len=100, max_len=300)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(3)[:120].copy()
    # Respawn and serial fallback are the new default recovery paths;
    # disable both to pin the PR 1 contract: losing every worker fails
    # the job cleanly instead of hanging or leaking.
    with ExecPool(jobs=1, task_sleep=0.3, max_retries=0,
                  respawn=False, serial_fallback=False) as pool:
        pool.start()
        pid = pool.worker_pids()[0]
        timer = threading.Timer(0.1, os.kill, (pid, signal.SIGKILL))
        timer.start()
        try:
            with pytest.raises(PoolJobError):
                pool.search(q, db, scheme, params, n_fragments=4)
        finally:
            timer.cancel()
            timer.join()
        assert pool.last_stats.worker_deaths == [0]
    # Context exit released every pack despite the failure (the autouse
    # fixture asserts /dev/shm is clean).


def test_worker_error_exhausts_retries_without_killing_pool():
    rng = np.random.default_rng(10)
    db = random_nt_db(rng, 10)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(0)[:90].copy()
    with ExecPool(jobs=1, max_retries=1) as pool:
        pool.start()
        prep = pool._prepare(db, params.word_size, 4, 2)
        # Poison the job table: the worker raises on every task, which
        # must surface as a clean PoolJobError after retries.
        jobs = {0: None}
        tasks = [(((0,), (spec.name,)), 1.0) for spec in prep.specs]
        with pytest.raises(PoolJobError) as err:
            pool._run_tasks(jobs, tasks)
        assert "failed 2 times" in str(err.value)
        assert pool.last_stats.worker_errors >= 2
        # The pool survives worker errors (the worker never died).
        res = pool.search(q, db, scheme, params)
        assert dump(res) == dump(search(q, db, scheme, params))


# ----------------------------------------------------------------------
# Worker loop, driven in-process through a scripted pipe
# ----------------------------------------------------------------------
class ScriptedConn:
    """Feeds a fixed message script to ``_worker_main`` and records
    everything the worker sends back."""

    def __init__(self, script):
        self.script = deque(script)
        self.sent = []

    def send(self, msg):
        self.sent.append(msg)

    def recv(self):
        if not self.script:
            raise EOFError
        return self.script.popleft()


def _job_for(db, q, scheme, params):
    from repro.blast.search import resolve_ka

    ka = resolve_ka(scheme, params, is_protein=False)
    return JobSpec(query=q, query_id="q", scheme=scheme, params=params,
                   both_strands=True, ka=ka,
                   effective_space=(len(q), db.total_residues))


def test_worker_main_protocol_in_process():
    rng = np.random.default_rng(11)
    db = random_nt_db(rng, 12)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(4)[:90].copy()
    registry = ShmRegistry()
    spec = pack_fragment(db, params.word_size, 4,
                         cache_token=(db_token(db), 0, 0), registry=registry)
    job = _job_for(db, q, scheme, params)
    try:
        conn = ScriptedConn([
            ("attach", spec),
            ("attach", spec),               # idempotent re-attach
            ("job", 0, job),
            ("task", 0, (spec.name,)),       # legacy int-qi task
            ("task", (0,), ("no-such-pack",)),  # -> error reply
            ("bogus",),                     # -> unknown-message error
            ("forget_job", 0),
            ("detach", spec.name),
            ("detach", spec.name),          # idempotent re-detach
            ("stop",),
        ])
        _worker_main(3, conn, PoolConfig())
        kinds = [m[0] for m in conn.sent]
        assert kinds == ["ready", "result", "error", "error", "stopped"]
        result_msg = conn.sent[1]
        # A legacy int-qi task is normalized to a one-query batch and
        # echoed back as such; result pairs are (name, qi, res) triples.
        assert result_msg[1:4] == (3, (0,), (spec.name,))
        mode, pairs = result_msg[4]
        assert mode == "inline" and pairs[0][:2] == (spec.name, 0)
        assert dump(pairs[0][2]) == dump(
            search(q, db, scheme, params, query_id="q"))
        assert "KeyError" in conn.sent[2][4]
        assert "unknown message" in conn.sent[3][4]
        stopped = conn.sent[-1]
        assert stopped[1] == 3 and stopped[2]["tasks"] == 1
    finally:
        registry.release(spec.name)


def test_worker_main_eof_tears_down_packs():
    rng = np.random.default_rng(12)
    db = random_nt_db(rng, 8)
    registry = ShmRegistry()
    spec = pack_fragment(db, 11, 4, cache_token=(db_token(db), 0, 1),
                         registry=registry)
    try:
        conn = ScriptedConn([("attach", spec)])  # then EOF, no stop
        _worker_main(0, conn, PoolConfig())
        assert [m[0] for m in conn.sent] == ["ready"]
    finally:
        registry.release(spec.name)


def test_worker_main_reports_attach_failure():
    rng = np.random.default_rng(13)
    db = random_nt_db(rng, 6)
    registry = ShmRegistry()
    spec = pack_fragment(db, 11, 4, cache_token=(db_token(db), 0, 2),
                         registry=registry)
    registry.release(spec.name)             # segment gone before attach
    conn = ScriptedConn([("attach", spec), ("stop",)])
    _worker_main(1, conn, PoolConfig())
    kinds = [m[0] for m in conn.sent]
    assert kinds == ["ready", "error", "stopped"]
    assert "FileNotFoundError" in conn.sent[1][4]


def test_task_sleep_env_hook(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_TASK_SLEEP", "0.125")
    pool = ExecPool(jobs=1)
    try:
        assert pool._cfg.task_sleep == 0.125
    finally:
        pool.close()
    monkeypatch.delenv("REPRO_EXEC_TASK_SLEEP")
    pool = ExecPool(jobs=1, task_sleep=0.5)
    try:
        assert pool._cfg.task_sleep == 0.5
    finally:
        pool.close()


def test_pool_cold_start_leaves_no_mmap_open(tmp_path):
    """The cold-start path mmaps each pack only long enough to memcpy it
    into shm: no disk mapping may survive _prepare, and ExecPool.close()
    must not be holding pack-file descriptors either."""
    from repro.exec.diskpack import build_pack_store, open_pack_count

    rng = np.random.default_rng(21)
    db = random_nt_db(rng, 14)
    store = build_pack_store(db, str(tmp_path / "store"),
                             seqtype=NT, n_fragments=3)
    query = db.sequence(3)[:80].copy()
    params = SearchParams(word_size=11)

    def store_fds():
        fds = []
        for fd in os.listdir("/proc/self/fd"):
            try:
                target = os.readlink(f"/proc/self/fd/{fd}")
            except OSError:
                continue
            if str(tmp_path) in target:
                fds.append(target)
        return fds

    assert open_pack_count() == 0
    pool = ExecPool(jobs=2)
    try:
        got = pool.search(query, store, NucleotideScore(), params,
                          query_id="q")
        assert open_pack_count() == 0, "pool kept a disk pack mmapped"
        assert store_fds() == [], "pool kept pack-file descriptors open"
    finally:
        pool.close()
    assert open_pack_count() == 0
    assert store_fds() == []
    want = search(query, db, NucleotideScore(), params, query_id="q")
    assert dump(got) == dump(want)
