"""The concatenated-fragment scan kernel and its cache.

Covers the PR-3 tentpole: exact equivalence of the ``scan`` engine with
the legacy per-sequence ``loop`` engine (nt and protein, both strands,
randomized databases), the sentinel masking that keeps windows from
spanning sequence boundaries, degenerate databases (short/empty/single
sequences), the bounded LRU ScanCache, the batched ungapped extension,
and the vectorised within-row E scan of the gapped aligner.
"""

import dataclasses

import numpy as np
import pytest

from repro.blast import (ScanCache, SequenceDB, build_scan_structures,
                         default_scan_cache, scan_fragment)
from repro.blast.alphabet import encode_dna, encode_protein
from repro.blast.extend import batched_ungapped_extend, ungapped_extend
from repro.blast.kmer import (_NEIGHBOR_CACHE, _NEIGHBOR_CACHE_MAX,
                              WordIndex, _all_words, word_codes)
from repro.blast.score import BLOSUM62, NucleotideScore, ProteinScore
from repro.blast.search import SearchParams, search
from repro.blast.seqdb import AA, NT

NT_LETTERS = np.array(list("ACGT"))
AA_LETTERS = np.array(list("ARNDCQEGHILKMFPSTWYV"))


def random_nt_db(rng, n_seqs, min_len=5, max_len=400):
    db = SequenceDB(NT)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"s{i}", "".join(NT_LETTERS[rng.integers(0, 4, length)]))
    return db


def random_aa_db(rng, n_seqs, min_len=5, max_len=200):
    db = SequenceDB(AA)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"p{i}", "".join(AA_LETTERS[rng.integers(0, 20, length)]))
    return db


def dump(results):
    return [(h.subject_id, h.subject_len,
             [dataclasses.astuple(p) for p in h.hsps])
            for h in results.hits]


# ---------------------------------------------------------------- structures

def test_structures_layout_and_codes_match_per_sequence():
    rng = np.random.default_rng(0)
    db = random_nt_db(rng, 17, min_len=3, max_len=120)
    k = 11
    structs = build_scan_structures(db, k, base=4)

    assert structs.n_sequences == len(db)
    assert structs.total_residues == db.total_residues
    # Layout: every sequence is recoverable from its slice, and the gap
    # between consecutive sequences is exactly one sentinel symbol.
    for i in range(len(db)):
        assert np.array_equal(structs.subject(i), db.sequence(i))
    sentinels = np.nonzero(structs.concat == 4)[0]
    assert len(sentinels) == len(db) - 1

    # The concatenated codes at each valid position equal the
    # per-sequence rolling codes at the corresponding local position.
    per_seq = {}
    for i in range(len(db)):
        per_seq[i] = word_codes(db.sequence(i), k, 4)
    starts = structs.starts
    for code, gpos in zip(structs.codes, structs.code_pos):
        sid = int(np.searchsorted(starts, gpos, side="right")) - 1
        local = int(gpos - starts[sid])
        assert per_seq[sid][local] == code
    # ... and every per-sequence window is present: counts match.
    assert len(structs.codes) == sum(len(v) for v in per_seq.values())


def test_sentinel_spanning_windows_produce_no_hits():
    # Two runs of A's that abut across the sentinel: a query word longer
    # than either sequence must not match the chimeric join.
    db = SequenceDB(NT)
    db.add("a", "AAAAA")
    db.add("b", "AAAAAA")
    structs = build_scan_structures(db, k=11, base=4)
    assert len(structs.codes) == 0  # no sequence has an 11-mer window

    index = WordIndex.for_dna(encode_dna("A" * 11), k=11)
    assert scan_fragment(index, structs) == []

    # Whole-pipeline view: no hits either.
    res = search(encode_dna("A" * 11), db, NucleotideScore(),
                 SearchParams(), engine="scan", scan_cache=ScanCache())
    assert res.hits == []


def test_short_empty_and_single_sequences():
    db = SequenceDB(NT)
    db.add("tiny", "ACG")                      # shorter than the word size
    db.add("hit", "ACGTACGTACGTACGTACGT")
    db._seqs.append(np.empty(0, dtype=np.uint8))   # empty payload
    db._descriptions.append("empty")
    db._version += 1
    structs = build_scan_structures(db, k=11, base=4)
    assert structs.n_sequences == 3
    assert np.array_equal(structs.lengths, [3, 20, 0])
    # Only the 20-mer contributes windows.
    assert len(structs.codes) == 10

    query = encode_dna("ACGTACGTACGTACGT")
    res_scan = search(query, db, NucleotideScore(), SearchParams(),
                      engine="scan", scan_cache=ScanCache())
    res_loop = search(query, db, NucleotideScore(), SearchParams(),
                      engine="loop")
    assert dump(res_scan) == dump(res_loop)
    assert [h.subject_id for h in res_scan.hits] == [1]


def test_single_sequence_fragment_and_empty_db():
    db = SequenceDB(NT)
    db.add("only", "ACGTACGTACGTACGTACGTACGT")
    structs = build_scan_structures(db, k=11, base=4)
    assert np.count_nonzero(structs.concat == 4) == 0   # no sentinels
    per = word_codes(db.sequence(0), 11, 4)
    assert np.array_equal(structs.codes, per)
    assert np.array_equal(structs.code_pos, np.arange(len(per)))

    empty = SequenceDB(NT)
    structs = build_scan_structures(empty, k=11, base=4)
    assert structs.n_sequences == 0
    assert len(structs.codes) == 0
    index = WordIndex.for_dna(encode_dna("ACGTACGTACGT"), k=11)
    assert scan_fragment(index, structs) == []


def test_scan_fragment_matches_per_sequence_scan():
    rng = np.random.default_rng(7)
    db = random_nt_db(rng, 40)
    k = 11
    query = encode_dna("".join(NT_LETTERS[rng.integers(0, 4, 120)]))
    index = WordIndex.for_dna(query, k)
    structs = build_scan_structures(db, k, base=4)

    got = {sid: (spos, qpos)
           for sid, spos, qpos in scan_fragment(index, structs)}
    for sid in range(len(db)):
        codes = word_codes(db.sequence(sid), k, 4)
        spos, qpos = index.scan(codes)
        if len(spos) == 0:
            assert sid not in got
        else:
            g_spos, g_qpos = got.pop(sid)
            assert np.array_equal(g_spos, spos)
            assert np.array_equal(g_qpos, qpos)
    assert got == {}  # no spurious subjects


# ------------------------------------------------------------- equivalence

def test_engines_equivalent_randomized_nt_both_strands():
    rng = np.random.default_rng(123)
    for trial in range(5):
        db = random_nt_db(rng, 30, min_len=8, max_len=500)
        # Plant a (mutated) copy of part of the query so both strands
        # and the gapped path are exercised.
        query_arr = NT_LETTERS[rng.integers(0, 4, 150)]
        planted = "".join(query_arr[20:120])
        db.add("planted", planted)
        query = encode_dna("".join(query_arr))
        for gapped in (True, False):
            params = SearchParams(gapped=gapped)
            r_scan = search(query, db, NucleotideScore(), params,
                            engine="scan", scan_cache=ScanCache())
            r_loop = search(query, db, NucleotideScore(), params,
                            engine="loop")
            assert dump(r_scan) == dump(r_loop)
        assert any(h.description == "planted" for h in r_scan.hits)


def test_engines_equivalent_randomized_protein():
    rng = np.random.default_rng(321)
    for trial in range(3):
        db = random_aa_db(rng, 25)
        seq = AA_LETTERS[rng.integers(0, 20, 90)]
        db.add("planted", "".join(seq[10:70]))
        query = encode_protein("".join(seq))
        params = SearchParams(word_size=3, neighbor_threshold=11,
                              xdrop_ungapped=16, gapped_trigger=22)
        r_scan = search(query, db, ProteinScore(), params,
                        engine="scan", scan_cache=ScanCache())
        r_loop = search(query, db, ProteinScore(), params, engine="loop")
        assert dump(r_scan) == dump(r_loop)
        assert any(h.description == "planted" for h in r_scan.hits)


def test_engine_argument_validation():
    db = SequenceDB(NT)
    db.add("s", "ACGTACGTACGTACGT")
    with pytest.raises(ValueError, match="engine"):
        search(encode_dna("ACGTACGTACGT"), db, NucleotideScore(),
               SearchParams(), engine="turbo")


# ----------------------------------------------------------------- the cache

def test_scan_cache_hits_and_mutation_invalidation():
    rng = np.random.default_rng(5)
    db = random_nt_db(rng, 6, min_len=30, max_len=60)
    cache = ScanCache()
    s1 = cache.get(db, 11, 4)
    s2 = cache.get(db, 11, 4)
    assert s1 is s2
    assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    # A different word size is a different entry.
    cache.get(db, 7, 4)
    assert cache.stats()["misses"] == 2

    # Mutation bumps the db version: stale structures are not reused.
    db.add("new", "ACGTACGTACGTACGTACGTACGT")
    s3 = cache.get(db, 11, 4)
    assert s3 is not s1
    assert s3.n_sequences == len(db)


def test_scan_cache_lru_entry_bound():
    rng = np.random.default_rng(6)
    dbs = [random_nt_db(rng, 3, min_len=20, max_len=40) for _ in range(5)]
    cache = ScanCache(max_entries=2)
    for db in dbs:
        cache.get(db, 11, 4)
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 3
    # Least-recently-used went first: the two newest survive.
    assert cache.get(dbs[-1], 11, 4) is not None
    assert cache.stats()["hits"] == 1
    cache.get(dbs[0], 11, 4)           # evicted → a fresh miss
    assert cache.stats()["misses"] == 6


def test_scan_cache_byte_bound_keeps_most_recent():
    rng = np.random.default_rng(8)
    dbs = [random_nt_db(rng, 4, min_len=200, max_len=300) for _ in range(3)]
    cache = ScanCache(max_bytes=1)       # every entry exceeds the bound
    for db in dbs:
        cache.get(db, 11, 4)
        assert len(cache) == 1           # most recent always retained
    assert cache.stats()["evictions"] == 2
    assert cache.total_bytes > 1

    with pytest.raises(ValueError):
        ScanCache(max_entries=0)
    with pytest.raises(ValueError):
        ScanCache(max_bytes=0)

    cache.clear()
    assert len(cache) == 0 and cache.total_bytes == 0


def test_default_scan_cache_is_shared_and_used_by_search():
    cache = default_scan_cache()
    assert default_scan_cache() is cache
    db = SequenceDB(NT)
    db.add("s", "ACGTACGTACGTACGTACGTACGT")
    before = cache.stats()["misses"]
    search(encode_dna("ACGTACGTACGT"), db, NucleotideScore(),
           SearchParams(), engine="scan")
    assert cache.stats()["misses"] > before


# ------------------------------------------------------- batched extension

def test_batched_extension_matches_per_seed_reference():
    rng = np.random.default_rng(11)
    scheme = NucleotideScore()
    for trial in range(10):
        query = rng.integers(0, 4, 80).astype(np.uint8)
        subject = rng.integers(0, 4, 120).astype(np.uint8)
        # Seeds in the order the seeding functions emit them: grouped by
        # diagonal, ascending subject position within a diagonal.
        raw = sorted(
            {(int(q), int(s))
             for q, s in zip(rng.integers(0, 70, 12), rng.integers(0, 110, 12))},
            key=lambda t: (t[1] - t[0], t[1]))
        got = batched_ungapped_extend(query, subject, raw, scheme, xdrop=20)

        covered = {}
        expect = []
        for qp, sp in raw:
            dg = sp - qp
            if covered.get(dg, -1) >= sp:
                continue
            hsp = ungapped_extend(query, subject, qp, sp, scheme, xdrop=20)
            covered[dg] = hsp.s_end
            if hsp.score > 0:
                expect.append(hsp)
        assert got == expect


def test_chunked_best_prefix_matches_full_pass():
    from repro.blast.extend import _CHUNK, _best_prefix
    rng = np.random.default_rng(13)
    for trial in range(30):
        n = int(rng.integers(1, 4 * _CHUNK))
        scores = rng.integers(-3, 3, n)
        cum = np.cumsum(scores)
        runmax = np.maximum.accumulate(np.maximum(cum, 0))
        dropped = runmax - cum > 5
        stop = int(np.argmax(dropped)) if dropped.any() else n
        if stop == 0:
            expect = (0, 0)
        else:
            best = int(np.argmax(cum[:stop]))
            expect = (0, 0) if cum[best] <= 0 else (best + 1, int(cum[best]))
        assert _best_prefix(scores, 5) == expect
    assert _best_prefix(np.empty(0, dtype=np.int64), 5) == (0, 0)


# ------------------------------------------------ vectorised gapped E scan

def test_vectorized_e_scan_matches_loop():
    from repro.blast.gapped import _e_scan_loop, _e_scan_vectorized
    rng = np.random.default_rng(17)
    w = 49
    for go, ge in ((5, 2), (11, 1), (3, 2)):
        slot_ge = ge * np.arange(w)
        open_cost = go + slot_ge[:-1]
        scratch = np.empty(w, dtype=np.int64)
        for trial in range(20):
            H0 = rng.integers(-10, 40, w).astype(np.int64)
            codes0 = rng.integers(0, 2, w).astype(np.int8)

            H_l, codes_l = H0.copy(), codes0.copy()
            pe_l = np.zeros(w, dtype=np.int8)
            E_l = _e_scan_loop(H_l, codes_l, pe_l, go, ge)

            H_v, codes_v = H0.copy(), codes0.copy()
            pe_v = np.zeros(w, dtype=np.int8)
            E_v = _e_scan_vectorized(H_v, codes_v, pe_v, go, ge,
                                     slot_ge, open_cost, scratch)
            assert np.array_equal(E_l, E_v)
            assert np.array_equal(H_l, H_v)
            assert np.array_equal(codes_l, codes_v)
            assert np.array_equal(pe_l, pe_v)


def test_gap_open_not_above_extend_still_works_end_to_end():
    # gap_open <= gap_extend forces the reference scan-loop path of the
    # banded aligner; the engines must still agree.
    rng = np.random.default_rng(19)
    db = random_nt_db(rng, 10, min_len=30, max_len=120)
    seq = NT_LETTERS[rng.integers(0, 4, 100)]
    db.add("planted", "".join(seq[5:95]))
    query = encode_dna("".join(seq))
    scheme = NucleotideScore(gap_open=1, gap_extend=2)
    params = SearchParams()
    r_scan = search(query, db, scheme, params, engine="scan",
                    scan_cache=ScanCache())
    r_loop = search(query, db, scheme, params, engine="loop")
    assert dump(r_scan) == dump(r_loop)
    assert r_scan.hits


# ------------------------------------------------------ neighbour cache LRU

def test_neighbor_cache_is_bounded():
    _NEIGHBOR_CACHE.clear()
    for k, n in [(1, 2), (1, 3), (2, 2), (1, 4), (2, 3), (1, 5)]:
        words = _all_words(k, n)
        assert words.shape == (n ** k, k)
        assert len(_NEIGHBOR_CACHE) <= _NEIGHBOR_CACHE_MAX
    assert len(_NEIGHBOR_CACHE) == _NEIGHBOR_CACHE_MAX
    # (1, 2) was evicted long ago; re-deriving it works and re-caches it.
    assert (1, 2) not in _NEIGHBOR_CACHE
    assert _all_words(1, 2).shape == (2, 1)
    assert (1, 2) in _NEIGHBOR_CACHE
    # Recently-used entries survive: touch (2, 3) then add a new key.
    _all_words(2, 3)
    _all_words(3, 2)
    assert (2, 3) in _NEIGHBOR_CACHE
    _NEIGHBOR_CACHE.clear()


# ------------------------------------------------- explicit token eviction

def test_scan_cache_explicit_evict_by_token():
    from repro.blast.scankernel import db_token

    rng = np.random.default_rng(9)
    db1 = random_nt_db(rng, 4, min_len=30, max_len=60)
    db2 = random_nt_db(rng, 4, min_len=30, max_len=60)
    cache = ScanCache()
    cache.get(db1, 11, 4)
    cache.get(db1, 7, 4)          # second word size, same database
    cache.get(db2, 11, 4)
    assert len(cache) == 3

    assert cache.evict(db_token(db1)) == 2
    assert len(cache) == 1        # db2's entry is untouched
    assert cache.evict(db_token(db1)) == 0
    assert cache.get(db2, 11, 4) is not None
    assert cache.stats()["hits"] == 1

    # Unknown tokens are a no-op.
    assert cache.evict(999999) == 0


def test_scan_cache_evicts_entries_when_db_is_garbage_collected():
    import gc

    rng = np.random.default_rng(10)
    cache = ScanCache()
    db = random_nt_db(rng, 3, min_len=20, max_len=40)
    cache.get(db, 11, 4)
    assert len(cache) == 1
    del db
    gc.collect()
    assert len(cache) == 0


def test_scan_cache_put_seeds_external_structures():
    rng = np.random.default_rng(11)
    db = random_nt_db(rng, 5, min_len=30, max_len=60)
    structs = build_scan_structures(db, 11, 4)
    cache = ScanCache()
    cache.put(db, 11, 4, structs)
    # A primed entry is an exact hit: no rebuild, the same object back.
    assert cache.get(db, 11, 4) is structs
    assert cache.stats() == {"hits": 1, "misses": 0, "evictions": 0,
                             "entries": 1, "bytes": structs.nbytes}
    # put participates in the LRU bound like any other entry.
    small = ScanCache(max_entries=1)
    small.put(db, 11, 4, structs)
    other = random_nt_db(rng, 3, min_len=20, max_len=40)
    small.put(other, 11, 4, build_scan_structures(other, 11, 4))
    assert len(small) == 1
    assert small.stats()["evictions"] == 1


def test_db_token_is_stable_and_unique():
    from repro.blast.scankernel import db_token

    rng = np.random.default_rng(12)
    db1 = random_nt_db(rng, 2, min_len=20, max_len=30)
    db2 = random_nt_db(rng, 2, min_len=20, max_len=30)
    t1 = db_token(db1)
    assert db_token(db1) == t1
    assert db_token(db2) != t1
