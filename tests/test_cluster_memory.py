"""Unit tests for the page cache."""

import pytest

from repro.cluster.memory import PageCache
from repro.cluster.params import GB, KiB, MemoryParams


def small_cache(pages=4, page_size=64 * KiB):
    ram = pages * page_size
    return PageCache(MemoryParams(ram=ram, cache_fraction=1.0, page_size=page_size))


def test_miss_then_hit():
    pc = small_cache()
    hit, miss = pc.lookup("f", 0, 64 * KiB)
    assert (hit, miss) == (0, 64 * KiB)
    pc.insert("f", 0, 64 * KiB)
    hit, miss = pc.lookup("f", 0, 64 * KiB)
    assert (hit, miss) == (64 * KiB, 0)


def test_partial_hit_accounting():
    pc = small_cache()
    pc.insert("f", 0, 64 * KiB)  # page 0 only
    hit, miss = pc.lookup("f", 0, 128 * KiB)
    assert hit == 64 * KiB
    assert miss == 64 * KiB


def test_lru_eviction():
    pc = small_cache(pages=2)
    pc.insert("f", 0 * 64 * KiB, 64 * KiB)
    pc.insert("f", 1 * 64 * KiB, 64 * KiB)
    pc.insert("f", 2 * 64 * KiB, 64 * KiB)  # evicts page 0
    assert not pc.contains("f", 0, 64 * KiB)
    assert pc.contains("f", 64 * KiB, 64 * KiB)
    assert pc.cached_pages == 2


def test_lookup_refreshes_lru_order():
    pc = small_cache(pages=2)
    pc.insert("f", 0, 64 * KiB)            # page 0
    pc.insert("f", 64 * KiB, 64 * KiB)     # page 1
    pc.lookup("f", 0, 64 * KiB)            # touch page 0 -> MRU
    pc.insert("f", 128 * KiB, 64 * KiB)    # evicts page 1 (LRU)
    assert pc.contains("f", 0, 64 * KiB)
    assert not pc.contains("f", 64 * KiB, 64 * KiB)


def test_files_are_independent():
    pc = small_cache()
    pc.insert("f", 0, 64 * KiB)
    assert not pc.contains("g", 0, 64 * KiB)


def test_invalidate_drops_only_target_file():
    pc = small_cache()
    pc.insert("f", 0, 64 * KiB)
    pc.insert("g", 0, 64 * KiB)
    pc.invalidate("f")
    assert not pc.contains("f", 0, 64 * KiB)
    assert pc.contains("g", 0, 64 * KiB)


def test_unaligned_ranges_round_to_pages():
    pc = small_cache()
    pc.insert("f", 100, 10)  # touches page 0 only
    assert pc.contains("f", 0, 64 * KiB)
    hit, miss = pc.lookup("f", 50, 100)
    assert hit == 100 and miss == 0


def test_zero_size_lookup():
    pc = small_cache()
    assert pc.lookup("f", 0, 0) == (0, 0)


def test_hit_ratio():
    pc = small_cache()
    assert pc.hit_ratio() == 0.0
    pc.lookup("f", 0, 64 * KiB)      # miss
    pc.insert("f", 0, 64 * KiB)
    pc.lookup("f", 0, 64 * KiB)      # hit
    assert pc.hit_ratio() == pytest.approx(0.5)


def test_default_capacity_matches_ram_fraction():
    pc = PageCache(MemoryParams())
    assert pc.capacity_pages == int(2 * GB * 0.8) // (64 * KiB)
