"""Tests for node assembly, cluster topology, and stressors."""

import pytest

from repro.sim import Simulator, Timeout
from repro.cluster import Cluster, disk_stressor, cpu_stressor
from repro.cluster.params import GB, KiB, MB, MiB, NodeParams, prairiefire_params


def test_cluster_builds_named_nodes():
    c = Cluster(n_nodes=4)
    assert len(c) == 4
    assert c[0].name == "node00"
    assert c.node("node03") is c[3]
    assert list(c) == c.nodes


def test_cluster_requires_one_node():
    with pytest.raises(ValueError):
        Cluster(n_nodes=0)


def test_prairiefire_defaults():
    p = prairiefire_params()
    assert p.cpu.cores == 2
    assert p.disk.read_bandwidth == 26 * MB
    assert p.disk.write_bandwidth == 32 * MB
    assert p.memory.ram == 2 * GB
    assert p.network.bandwidth == 112 * MB


def test_with_disk_override():
    p = prairiefire_params().with_disk(read_bandwidth=50 * MB)
    assert p.disk.read_bandwidth == 50 * MB
    assert p.disk.write_bandwidth == 32 * MB  # untouched


def test_node_send_and_compute():
    c = Cluster(n_nodes=2)
    sim = c.sim

    def proc():
        yield from c[0].send(c[1], 1 * MB)
        yield from c[0].compute(0.5)
        return sim.now

    p = sim.process(proc())
    sim.run_until_complete(p)
    assert p.value > 0.5


def test_disk_stressor_saturates_disk():
    c = Cluster(n_nodes=1)
    sim = c.sim
    node = c[0]
    sim.process(disk_stressor(node))
    sim.run(until=30.0)
    # Stressor writes at near the sequential write rate.
    assert node.disk.bytes_written > 0.7 * 32 * MB * 30
    # The CPUs stay nearly idle (paper: ~95% idle).
    assert node.cpu.utilization() < 0.10


def test_disk_stressor_truncates_at_limit():
    c = Cluster(n_nodes=1)
    sim = c.sim
    node = c[0]
    # Tiny limit so the truncate branch triggers quickly.
    sim.process(disk_stressor(node, buffer_size=MiB, limit=10 * MiB))
    sim.run(until=5.0)
    assert node.disk.bytes_written > 10 * MiB  # wrapped at least once


def test_cpu_stressor_loads_cpu():
    c = Cluster(n_nodes=1)
    sim = c.sim
    node = c[0]
    sim.process(cpu_stressor(node, tasks=2))
    sim.run(until=10.0)
    assert node.cpu.utilization() > 0.9
