"""Tests for synthetic database and query generation."""

import numpy as np
import pytest

from repro.blast import blastn
from repro.workloads import (
    NT_DATABASE_SPEC,
    DatabaseSpec,
    PAPER_QUERY_LENGTH,
    extract_query,
    sample_query_length,
    synthetic_nt_db,
    synthetic_nt_fasta,
    synthetic_query,
)


def test_nt_spec_matches_paper():
    assert NT_DATABASE_SPEC.n_sequences == 1_760_000
    assert NT_DATABASE_SPEC.total_bytes == 2_700_000_000
    assert 1400 < NT_DATABASE_SPEC.mean_length < 1600


def test_spec_scaling():
    s = NT_DATABASE_SPEC.scaled(0.01)
    assert s.total_bytes == 27_000_000
    assert s.n_sequences == 17_600
    with pytest.raises(ValueError):
        NT_DATABASE_SPEC.scaled(0)


def test_fragment_bytes_partition():
    s = DatabaseSpec(10, 1000, 1003)
    frags = s.fragment_bytes(4)
    assert sum(frags) == 1003
    assert max(frags) - min(frags) <= 1
    with pytest.raises(ValueError):
        s.fragment_bytes(0)


def test_fragment_residues_partition():
    s = DatabaseSpec(10, 997, 1000)
    frags = s.fragment_residues(3)
    assert sum(frags) == 997


def test_synthetic_db_size_and_searchability():
    db = synthetic_nt_db(100_000, seed=1)
    assert abs(db.total_residues - 100_000) <= 1
    assert len(db) > 10
    # A query cut from the db must find its source.
    q = extract_query(db, length=200, seed=2)
    res = blastn(q, db)
    assert res.hits
    assert res.best().identity == 1.0


def test_synthetic_db_deterministic():
    a = synthetic_nt_db(10_000, seed=3)
    b = synthetic_nt_db(10_000, seed=3)
    assert len(a) == len(b)
    assert a.sequence_str(0) == b.sequence_str(0)
    c = synthetic_nt_db(10_000, seed=4)
    assert a.sequence_str(0) != c.sequence_str(0)


def test_synthetic_db_length_distribution_heavy_tailed():
    db = synthetic_nt_db(500_000, seed=5)
    lengths = db.lengths()
    assert max(lengths) > 4 * (sum(lengths) / len(lengths))


def test_synthetic_db_validation():
    with pytest.raises(ValueError):
        synthetic_nt_db(0)


def test_synthetic_fasta_parses():
    from repro.blast import parse_fasta

    text = synthetic_nt_fasta(5_000, seed=6)
    recs = parse_fasta(text)
    assert sum(len(r) for r in recs) >= 5_000


def test_sample_query_length_mostly_in_band():
    rng = np.random.default_rng(0)
    lengths = [sample_query_length(rng) for _ in range(1000)]
    in_band = sum(300 <= n <= 600 for n in lengths)
    assert in_band > 850
    assert all(60 <= n <= 3000 for n in lengths)


def test_extract_query_paper_length():
    db = synthetic_nt_db(50_000, seed=7, mean_length=3000)
    q = extract_query(db)
    assert len(q) == PAPER_QUERY_LENGTH


def test_extract_query_no_long_sequence():
    db = synthetic_nt_db(500, seed=8, mean_length=100)
    with pytest.raises(ValueError):
        extract_query(db, length=100_000)


def test_synthetic_query():
    q = synthetic_query(100, seed=9)
    assert len(q) == 100
    assert set(q) <= set("ACGT")
    assert synthetic_query(100, seed=9) == q
