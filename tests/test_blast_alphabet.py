"""Tests for alphabets, encodings, and 2-bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.alphabet import (
    AlphabetError,
    DNA,
    PROTEIN,
    decode_dna,
    decode_protein,
    encode_dna,
    encode_protein,
    pack_2bit,
    reverse_complement,
    unpack_2bit,
)

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=300)


def test_encode_dna_basic():
    enc = encode_dna("ACGT")
    assert list(enc) == [0, 1, 2, 3]


def test_encode_dna_lowercase():
    assert list(encode_dna("acgt")) == [0, 1, 2, 3]


def test_encode_dna_ambiguity_folds_to_a():
    assert list(encode_dna("NRY")) == [0, 0, 0]


def test_encode_dna_strict_rejects_ambiguity():
    with pytest.raises(AlphabetError):
        encode_dna("ACGN", strict=True)


def test_encode_dna_rejects_garbage():
    with pytest.raises(AlphabetError):
        encode_dna("ACG!")


def test_decode_dna_roundtrip():
    s = "GATTACA"
    assert decode_dna(encode_dna(s)) == s


def test_encode_protein_all_letters():
    enc = encode_protein(PROTEIN)
    assert list(enc) == list(range(len(PROTEIN)))


def test_encode_protein_rare_letters_fold_to_x():
    x = PROTEIN.index("X")
    assert list(encode_protein("JO")) == [x, x]


def test_encode_protein_rejects_digit():
    with pytest.raises(AlphabetError):
        encode_protein("ACD1")


def test_decode_protein_roundtrip():
    s = "MKVLAW"
    assert decode_protein(encode_protein(s)) == s


def test_reverse_complement_known():
    enc = encode_dna("AACGT")
    assert decode_dna(reverse_complement(enc)) == "ACGTT"


@settings(max_examples=100)
@given(dna_strings)
def test_reverse_complement_is_involution(s):
    enc = encode_dna(s)
    assert np.array_equal(reverse_complement(reverse_complement(enc)), enc)


@settings(max_examples=100)
@given(dna_strings.filter(lambda s: len(s) > 0))
def test_pack_unpack_roundtrip(s):
    enc = encode_dna(s)
    packed, n = pack_2bit(enc)
    assert n == len(s)
    assert len(packed) == (n + 3) // 4
    assert np.array_equal(unpack_2bit(packed, n), enc)


def test_pack_empty():
    packed, n = pack_2bit(np.array([], dtype=np.uint8))
    assert n == 0 and packed == b""
    assert len(unpack_2bit(packed, 0)) == 0


@settings(max_examples=50)
@given(dna_strings)
def test_encode_decode_roundtrip_property(s):
    assert decode_dna(encode_dna(s)) == s
