"""The framed socket transport: every way a network byte stream can
lie — truncation, corruption, lost sync, lost frames, mid-frame
disconnect — must surface as a *typed* error, never a hang or garbage,
and the reconnect backoff schedule must be assertable against a fake
clock (no real sleeping)."""

import pickle
import random
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.blast.scankernel import db_token
from repro.blast.score import NucleotideScore
from repro.blast.search import SearchParams, resolve_ka, search
from repro.blast.seqdb import NT, SequenceDB
from repro.exec.net import (DATA, FRAME_MAGIC, HEADER_SIZE,
                            MAX_FRAME_PAYLOAD, PING, PONG, FrameConnection,
                            FrameCRCError, FrameDecoder, FrameError,
                            FrameSequenceError, FrameTruncated,
                            NodeConnectError, backoff_delay, connect_backoff,
                            encode_frame, parse_address)
from repro.exec.nodes import NodeAgent
from repro.exec.pool import JobSpec
from repro.exec.results import decode_result_pairs
from repro.exec.shm import ShmRegistry, pack_fragment, read_pack_bytes
from repro.exec.net import pack_wire_meta

NT_LETTERS = np.array(list("ACGT"))


# ----------------------------------------------------------------------
# Frame encode/decode
# ----------------------------------------------------------------------
def test_frame_roundtrip_and_incremental_feed():
    dec = FrameDecoder()
    payloads = [b"", b"x", b"hello world" * 100]
    wire = b"".join(encode_frame(DATA, i, p) for i, p in enumerate(payloads))
    got = []
    # Byte-at-a-time delivery: frames must pop out exactly at their
    # boundaries, never early, never duplicated.
    for i in range(len(wire)):
        dec.feed(wire[i:i + 1])
        got.extend(dec.frames())
    assert [(t, s, p) for t, s, p in got] == \
        [(DATA, i, p) for i, p in enumerate(payloads)]
    assert dec.pending_bytes == 0
    dec.check_eof()                      # clean boundary: no complaint


def test_frame_truncated_at_eof():
    dec = FrameDecoder()
    frame = encode_frame(DATA, 0, b"payload bytes")
    dec.feed(frame[:-3])
    assert list(dec.frames()) == []      # incomplete: waits, no error yet
    with pytest.raises(FrameTruncated):
        dec.check_eof()


def test_frame_truncated_inside_header():
    dec = FrameDecoder()
    dec.feed(encode_frame(DATA, 0, b"abc")[:HEADER_SIZE - 2])
    assert list(dec.frames()) == []
    with pytest.raises(FrameTruncated):
        dec.check_eof()


def test_frame_crc_error_on_flipped_payload_bit():
    dec = FrameDecoder()
    frame = bytearray(encode_frame(DATA, 0, b"payload bytes"))
    frame[HEADER_SIZE + 4] ^= 0x01
    dec.feed(bytes(frame))
    with pytest.raises(FrameCRCError):
        list(dec.frames())


def test_frame_bad_magic_is_lost_sync():
    dec = FrameDecoder()
    frame = bytearray(encode_frame(DATA, 0, b"x"))
    frame[0:4] = b"JUNK"
    dec.feed(bytes(frame))
    with pytest.raises(FrameError):
        list(dec.frames())


def test_frame_unknown_type_rejected():
    dec = FrameDecoder()
    frame = bytearray(encode_frame(DATA, 0, b"x"))
    frame[4:5] = b"Z"
    dec.feed(bytes(frame))
    with pytest.raises(FrameError):
        list(dec.frames())


def test_frame_length_cap_fails_before_allocation():
    # A corrupted length field must be a framing error, not an attempt
    # to buffer a "1 GiB + 1" payload.
    hdr = struct.Struct("<4sc Q I I").pack(FRAME_MAGIC, DATA, 0,
                                           MAX_FRAME_PAYLOAD + 1, 0)
    dec = FrameDecoder()
    dec.feed(hdr)
    with pytest.raises(FrameError, match="cap"):
        list(dec.frames())
    with pytest.raises(ValueError):
        encode_frame(DATA, 0, b"\0" * (MAX_FRAME_PAYLOAD + 1))


def test_frame_sequence_gap_detected():
    dec = FrameDecoder()
    dec.feed(encode_frame(DATA, 0, b"first"))
    dec.feed(encode_frame(DATA, 2, b"third"))   # frame 1 lost
    it = dec.frames()
    assert next(it)[2] == b"first"
    with pytest.raises(FrameSequenceError):
        next(it)


def test_frame_sequence_check_optional():
    dec = FrameDecoder(check_sequence=False)
    dec.feed(encode_frame(DATA, 5, b"a") + encode_frame(DATA, 3, b"b"))
    assert [p for _, _, p in dec.frames()] == [b"a", b"b"]


# ----------------------------------------------------------------------
# FrameConnection over a real socketpair
# ----------------------------------------------------------------------
def _conn_pair():
    a, b = socket.socketpair()
    return FrameConnection(a, name="a"), FrameConnection(b, name="b")


def test_connection_send_recv_poll_roundtrip():
    a, b = _conn_pair()
    try:
        assert not b.poll(0)
        a.send(("task", (0, 1), ("p0",), 7))
        a.send({"n": 2})
        assert b.poll(1.0)
        # One socket read decoded both frames: the second message is
        # queued (no further fd activity will announce it).
        assert b.recv() == ("task", (0, 1), ("p0",), 7)
        assert b.queued == 1
        assert b.poll(0)
        assert b.recv() == {"n": 2}
        assert b.queued == 0
    finally:
        a.close()
        b.close()


def test_connection_ping_pong_refreshes_last_heard():
    a, b = _conn_pair()
    try:
        before = a.last_heard
        time.sleep(0.02)
        a.ping()
        assert a.last_ping > 0
        # b answers the PING inside poll() without surfacing a message.
        assert not b.poll(0.5)
        # The PONG reply lands on a's side and refreshes last_heard
        # even though no DATA message ever arrives.
        assert not a.poll(0.5)
        assert a.last_heard > before
    finally:
        a.close()
        b.close()


def test_connection_clean_close_is_eof():
    a, b = _conn_pair()
    try:
        a.send("bye")
        a.close()
        assert b.recv() == "bye"
        with pytest.raises(EOFError):
            b.recv()
    finally:
        b.close()


def test_connection_midframe_close_is_truncation():
    a, b = socket.socketpair()
    conn = FrameConnection(b, name="victim")
    try:
        frame = encode_frame(DATA, 0, pickle.dumps("never arrives"))
        a.sendall(frame[:len(frame) - 5])
        a.close()
        with pytest.raises(FrameTruncated):
            conn.recv()
    finally:
        conn.close()


def test_connection_closed_raises_oserror():
    a, b = _conn_pair()
    a.close()
    b.close()
    with pytest.raises(OSError):
        a.send("x")
    with pytest.raises(OSError):
        b.recv()


# ----------------------------------------------------------------------
# Address parsing and backoff
# ----------------------------------------------------------------------
def test_parse_address():
    assert parse_address("node7:4321") == ("node7", 4321)
    assert parse_address(":4321") == ("127.0.0.1", 4321)
    assert parse_address(("h", "80")) == ("h", 80)
    assert parse_address(["h", 80]) == ("h", 80)
    for bad in ("nocolon", "host:", "host:notaport", ""):
        with pytest.raises(ValueError):
            parse_address(bad)


def test_backoff_delay_grows_and_caps():
    delays = [backoff_delay(i, base=0.1, factor=2.0, max_delay=1.0,
                            jitter=0.0) for i in range(6)]
    assert delays == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]
    # Jitter only ever stretches the delay (anti-stampede), bounded by
    # the jitter fraction.
    rng = random.Random(42)
    for i in range(6):
        d = backoff_delay(i, base=0.1, factor=2.0, max_delay=1.0,
                          jitter=0.5, rng=rng)
        assert delays[i] <= d <= delays[i] * 1.5


def test_connect_backoff_schedule_with_fake_clock():
    sleeps = []
    tries = []

    def dial(address, timeout):
        tries.append(address)
        if len(tries) < 4:
            raise ConnectionRefusedError("nope")
        return "SOCK"

    sock = connect_backoff("127.0.0.1:9", attempts=5, base_delay=0.05,
                           factor=2.0, max_delay=10.0, jitter=0.0,
                           sleep=sleeps.append, connect=dial)
    assert sock == "SOCK"
    assert len(tries) == 4
    # Three failures -> three backoff sleeps, exponential from base.
    assert sleeps == [0.05, 0.1, 0.2]


def test_connect_backoff_exhaustion_raises_typed_error():
    sleeps = []

    def dial(address, timeout):
        raise ConnectionRefusedError("always down")

    with pytest.raises(NodeConnectError, match="after 3 attempt"):
        connect_backoff(("10.0.0.1", 1), attempts=3, base_delay=0.01,
                        jitter=0.0, sleep=sleeps.append, connect=dial)
    # No sleep after the final failure: the budget bounds wall-clock.
    assert sleeps == [0.01, 0.02]


def test_connect_backoff_jitter_uses_injected_rng():
    recorded = []

    class FixedRng:
        def random(self):
            return 1.0

    def dial(address, timeout):
        if not recorded:
            raise OSError("first")
        return "S"

    connect_backoff("h:1", attempts=2, base_delay=0.1, jitter=0.5,
                    sleep=recorded.append, rng=FixedRng(), connect=dial)
    assert recorded == [pytest.approx(0.15)]


# ----------------------------------------------------------------------
# Agent session protocol (real socket, in-process agent)
# ----------------------------------------------------------------------
def _nt_db(rng, n):
    db = SequenceDB(NT)
    for i in range(n):
        length = int(rng.integers(60, 200))
        db.add(f"s{i}", "".join(NT_LETTERS[rng.integers(0, 4, length)]))
    return db


def test_agent_session_protocol_and_stale_epoch():
    """Drive one agent session message by message: hello handshake,
    publish, task (with the epoch echoed back so the master can discard
    stale stragglers), adopt of a cached identity, and stop."""
    rng = np.random.default_rng(21)
    db = _nt_db(rng, 10)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(3)[:80].copy()
    registry = ShmRegistry()
    spec = pack_fragment(db, params.word_size, 4,
                         cache_token=(db_token(db), 0, 0), registry=registry)
    job = JobSpec(query=q, query_id="q", scheme=scheme, params=params,
                  both_strands=True, ka=resolve_ka(scheme, params, False),
                  effective_space=(len(q), db.total_residues))
    agent = NodeAgent("127.0.0.1", 0, node_id="proto-test")
    server = threading.Thread(target=agent.serve, kwargs={"max_sessions": 2},
                              daemon=True)
    server.start()
    try:
        sock = socket.create_connection(agent.address, timeout=5.0)
        conn = FrameConnection(sock, name="master")
        conn.send(("hello", {"proto": 1, "rank": 9}))
        kind, rank, info = conn.recv()
        assert (kind, rank) == ("ready", 9)
        assert info["node"] == "proto-test" and info["held"] == []

        conn.send(("publish", pack_wire_meta(spec), read_pack_bytes(spec)))
        conn.send(("job", 0, job))
        conn.send(("task", (0,), (spec.name,), 7))
        msg = conn.recv()
        assert msg[0] == "result" and msg[1] == 9
        assert msg[2] == (0,) and msg[3] == (spec.name,)
        assert msg[6] == 7          # epoch echoed: stale-epoch filtering
        mode, blob = msg[4]
        assert mode == "blob"
        pairs = decode_result_pairs(blob)
        serial = search(q, db, scheme, params, query_id="q")
        assert pairs[0][2].tabular() == serial.tabular()

        # An epoch the master has already left behind still comes back
        # tagged — the pool-side pump is what discards it; the agent
        # must never silently swallow a task.
        conn.send(("task", (0,), (spec.name,), 3))
        stale = conn.recv()
        assert stale[0] == "result" and stale[6] == 3

        conn.send(("stop",))
        stopped = conn.recv()
        assert stopped[0] == "stopped" and stopped[2]["tasks"] == 2
        conn.close()

        # Reconnect: the hello reply advertises the cached identity and
        # an adopt re-uses it without reshipping a byte.
        sock = socket.create_connection(agent.address, timeout=5.0)
        conn = FrameConnection(sock, name="master2")
        conn.send(("hello", {"proto": 1, "rank": 9}))
        _, _, info = conn.recv()
        assert tuple(spec.cache_token) in {tuple(t) for t in info["held"]}
        conn.send(("adopt", spec.name, spec.cache_token))
        conn.send(("job", 0, job))
        conn.send(("task", (0,), (spec.name,), 0))
        msg = conn.recv()
        assert msg[0] == "result"
        conn.send(("stop",))
        assert conn.recv()[0] == "stopped"
        conn.close()
    finally:
        server.join(timeout=10.0)
        agent.close()
        registry.release(spec.name)


def test_agent_rejects_adopt_of_unknown_identity():
    agent = NodeAgent("127.0.0.1", 0, node_id="reject-test")
    server = threading.Thread(target=agent.serve, kwargs={"max_sessions": 1},
                              daemon=True)
    server.start()
    try:
        sock = socket.create_connection(agent.address, timeout=5.0)
        conn = FrameConnection(sock, name="master")
        conn.send(("hello", {"rank": 0}))
        assert conn.recv()[0] == "ready"
        conn.send(("adopt", "packX", ("tok", 0, 0)))
        msg = conn.recv()
        assert msg[0] == "error" and "not cached" in msg[4]
        conn.send(("stop",))
        assert conn.recv()[0] == "stopped"
        conn.close()
    finally:
        server.join(timeout=10.0)
        agent.close()
