"""Integration tests for the search driver and the five programs."""

import numpy as np
import pytest

from repro.blast import (
    SequenceDB,
    SearchParams,
    blastn,
    blastp,
    blastx,
    tblastn,
    tblastx,
)
from repro.blast.programs import blastall
from repro.blast.seqdb import segment_db
from repro.blast.translate import six_frames, translate, protein_to_dna_coords
from repro.blast.alphabet import encode_dna, decode_protein, reverse_complement


def rand_dna(rng, n):
    return "".join(rng.choice(list("ACGT"), n))


def rand_prot(rng, n):
    return "".join(rng.choice(list("ARNDCQEGHILKMFPSTWYV"), n))


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def nt_db(rng):
    target = rand_dna(rng, 800)
    db = SequenceDB.from_fasta_text(
        f">target the real one\n{target}\n"
        + "".join(f">decoy{i}\n{rand_dna(rng, 600)}\n" for i in range(6)))
    return db, target


def test_blastn_finds_exact_substring(nt_db):
    db, target = nt_db
    res = blastn(target[200:320], db)
    assert res.hits
    assert res.hits[0].description.startswith("target")
    best = res.best()
    assert best.identity == 1.0
    assert best.s_start == 200 and best.s_end == 320
    assert best.evalue < 1e-20
    assert best.strand == 1


def test_blastn_finds_reverse_complement(nt_db):
    db, target = nt_db
    from repro.blast.alphabet import decode_dna
    rc_query = decode_dna(reverse_complement(encode_dna(target[200:320])))
    res = blastn(rc_query, db)
    assert res.hits
    assert res.hits[0].description.startswith("target")
    assert res.best().strand == -1


def test_blastn_tolerates_mutations(nt_db, rng):
    db, target = nt_db
    q = list(target[100:300])
    # 5% point mutations
    for i in rng.choice(len(q), size=10, replace=False):
        q[i] = rng.choice([c for c in "ACGT" if c != q[i]])
    res = blastn("".join(q), db)
    assert res.hits
    assert res.hits[0].description.startswith("target")
    assert res.best().identity > 0.9


def test_blastn_handles_indel(nt_db):
    db, target = nt_db
    q = target[100:200] + "GG" + target[200:300]
    res = blastn(q, db)
    assert res.hits
    best = res.best()
    assert best.identity > 0.95
    assert best.align_len >= 200


def test_blastn_no_hits_for_unrelated_query(rng):
    db = SequenceDB.from_fasta_text(f">a\n{'AC' * 200}\n")
    res = blastn("G" * 100 + "T" * 11, db,
                 params=SearchParams(evalue_cutoff=1e-5))
    assert not res.hits


def test_blastn_short_query_returns_empty(nt_db):
    db, _ = nt_db
    res = blastn("ACGTA", db)  # shorter than word size
    assert not res.hits


def test_wrong_db_type_raises(nt_db):
    db, _ = nt_db
    with pytest.raises(ValueError):
        blastp("MKV", db)
    aa = SequenceDB("aa")
    aa.add("p", "MKVLAW" * 10)
    with pytest.raises(ValueError):
        blastn("ACGT" * 10, aa)
    with pytest.raises(ValueError):
        tblastn("MKV", aa)
    with pytest.raises(ValueError):
        tblastx("ACGT", aa)
    with pytest.raises(ValueError):
        blastx("ACGT", db)


def test_results_sorted_best_first(nt_db, rng):
    db, target = nt_db
    # Query = exact chunk + a mutated chunk of a decoy to create 2 hits.
    res = blastn(target[0:150], db)
    if len(res.hits) > 1:
        evs = [h.best_evalue for h in res.hits]
        assert evs == sorted(evs)


def test_merge_combines_fragments(nt_db):
    db, target = nt_db
    query = target[100:280]
    frags = segment_db(db, 3)
    partials = [blastn(query, f) for f in frags]
    merged = partials[0]
    for p in partials[1:]:
        merged = merged.merge(p)
    whole = blastn(query, db)
    assert merged.db_residues == whole.db_residues
    assert merged.hits[0].description == whole.hits[0].description
    assert merged.best().score == whole.best().score
    # Merged E-value is rescaled to the full database size.
    assert merged.best().evalue == pytest.approx(whole.best().evalue, rel=0.01)


def test_merge_rejects_different_queries(nt_db):
    db, target = nt_db
    a = blastn(target[:100], db, query_id="q")
    b = blastn(target[:100], db)
    b.query_id = "other"
    with pytest.raises(ValueError):
        a.merge(b)


def test_report_renders(nt_db):
    db, target = nt_db
    res = blastn(target[:100], db)
    text = res.report()
    assert "Query:" in text
    assert "target" in text


def test_blastall_dispatch(nt_db):
    db, target = nt_db
    res = blastall("blastn", target[:100], db)
    assert res.hits
    with pytest.raises(ValueError):
        blastall("megablast", target[:100], db)


# ---------------------------------------------------------------- translated
CODON = {aa: c for aa, c in zip(
    "KNTRSIMQHPLEDAGV*YCWF",
    ["AAA", "AAC", "ACA", "AGA", "AGC", "ATA", "ATG", "CAA", "CAC", "CCA",
     "CTA", "GAA", "GAC", "GCA", "GGA", "GTA", "TAA", "TAC", "TGC", "TGG",
     "TTC"])}


def encode_gene(prot: str) -> str:
    return "".join(CODON[a] for a in prot)


def test_translate_known_codons():
    assert decode_protein(translate(encode_dna("ATGAAATAA"))) == "MK*"


def test_translate_frames():
    dna = encode_dna("TATGAAA")
    assert decode_protein(translate(dna, 1)) == "MK"


def test_translate_validation():
    with pytest.raises(ValueError):
        translate(encode_dna("ACGT"), frame=3)


def test_six_frames_count_and_lengths(rng):
    dna = encode_dna(rand_dna(rng, 31))
    frames = six_frames(dna)
    assert [f for f, _ in frames] == [1, 2, 3, -1, -2, -3]
    for f, prot in frames:
        off = abs(f) - 1
        assert len(prot) == (31 - off) // 3


def test_protein_to_dna_coords_forward():
    assert protein_to_dna_coords(2, 5, 1, 30) == (6, 15)
    assert protein_to_dna_coords(0, 3, 2, 30) == (1, 10)


def test_protein_to_dna_coords_reverse():
    # frame -1 over a 30-base dna: protein pos 0..3 maps to last 9 bases.
    start, end = protein_to_dna_coords(0, 3, -1, 30)
    assert (start, end) == (21, 30)


def test_blastp_pipeline(rng):
    target = rand_prot(rng, 250)
    db = SequenceDB("aa")
    db.add("t target", target)
    db.add("d decoy", rand_prot(rng, 250))
    res = blastp(target[60:140], db)
    assert res.hits[0].description.startswith("t")
    assert res.best().identities == 80


def test_blastx_finds_coding_query(rng):
    prot = rand_prot(rng, 150)
    db = SequenceDB("aa")
    db.add("t target", prot)
    db.add("d decoy", rand_prot(rng, 150))
    res = blastx(encode_gene(prot[30:90]), db)
    assert res.hits
    assert res.hits[0].description.startswith("t")
    assert res.best().strand == 1


def test_tblastn_finds_gene_on_reverse_strand(rng):
    from repro.blast.alphabet import decode_dna
    prot = rand_prot(rng, 120)
    gene = encode_gene(prot)
    rc = decode_dna(reverse_complement(encode_dna(gene)))
    db = SequenceDB.from_fasta_text(
        f">g gene on minus strand\n{rand_dna(rng, 50)}{rc}{rand_dna(rng, 40)}\n"
        f">x decoy\n{rand_dna(rng, 400)}\n")
    res = tblastn(prot[10:90], db)
    assert res.hits
    assert res.hits[0].description.startswith("g")
    # Frame is one of the reverse frames.
    assert "frame-" in res.hits[0].description


def test_tblastx_end_to_end(rng):
    prot = rand_prot(rng, 120)
    gene = encode_gene(prot)
    db = SequenceDB.from_fasta_text(
        f">g gene\n{rand_dna(rng, 33)}{gene}{rand_dna(rng, 21)}\n"
        f">x decoy\n{rand_dna(rng, 400)}\n")
    res = tblastx(gene[60:240], db)
    assert res.hits
    assert res.hits[0].description.startswith("g")
