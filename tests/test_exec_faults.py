"""Fault injection and the hardened pool: plan round-trips, injector
matching, scheduler hedging, and end-to-end chaos runs proving the
pool keeps serving byte-identical results through kill / hang / slow /
drop-result faults, raises on corrupt packs, respawns lost capacity,
degrades gracefully to the serial engine, and tears down in bounded
time — all without leaking a single /dev/shm segment."""

import dataclasses
import os
import threading
import time

import numpy as np
import pytest

from repro.blast.score import NucleotideScore
from repro.blast.search import SearchParams, search
from repro.blast.seqdb import NT, SequenceDB
from repro.exec import (ExecPool, Fault, FaultInjector, FaultPlan,
                        GreedyScheduler, PackIntegrityError, PoolJobError,
                        random_plan)
from repro.exec.faults import FAULT_PLAN_ENV, HANG_FOREVER, FailureLedger
from repro.exec.shm import NAME_PREFIX

NT_LETTERS = np.array(list("ACGT"))


def shm_segments():
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(("psm_", NAME_PREFIX)))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = shm_segments()
    yield
    assert shm_segments() == before, "test leaked shared-memory segments"


def random_nt_db(rng, n_seqs, min_len=100, max_len=300):
    db = SequenceDB(NT)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"s{i} desc", "".join(NT_LETTERS[rng.integers(0, 4, length)]))
    return db


def dump(results):
    """Full byte-level result dump (every HSP field, hit order, ids)."""
    return (results.query_id, results.query_len, results.db_residues,
            results.db_sequences,
            [(h.subject_id, h.description, h.subject_len, h.fragment_id,
              [dataclasses.astuple(p) for p in h.hsps])
             for h in results.hits])


@pytest.fixture
def workload():
    rng = np.random.default_rng(42)
    db = random_nt_db(rng, 24)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:150].copy() for i in (2, 9, 17)]
    serial = [dump(search(q, db, scheme, params)) for q in queries]
    return db, scheme, params, queries, serial


def run_pool(db, scheme, params, queries, **pool_kw):
    with ExecPool(jobs=2, **pool_kw) as pool:
        results = pool.search_many(queries, db, scheme, params,
                                   n_fragments=4)
        live = len(pool._live())
        stats = pool.last_stats
        ledger = pool.ledger.summary()
    return [dump(r) for r in results], live, stats, ledger


# ----------------------------------------------------------------------
# Plans, env hook, injector
# ----------------------------------------------------------------------
def test_fault_plan_json_roundtrip():
    plan = FaultPlan(faults=(Fault("kill", rank=1, task_index=0),
                             Fault("slow", delay=0.5, once=False)),
                     seed=7)
    back = FaultPlan.from_json(plan.to_json())
    assert back == plan
    assert back.seed == 7
    assert len(back) == 2


def test_fault_plan_bare_list_shorthand():
    plan = FaultPlan.from_json('[{"kind": "hang", "rank": 0}]')
    assert plan.faults == (Fault("hang", rank=0),)
    assert plan.seed is None


@pytest.mark.parametrize("text", [
    "not json at all",
    '{"faults": 3}',
    '"a string"',
    '[{"kind": "explode"}]',
    '[{"kind": "kill", "bogus_field": 1}]',
])
def test_fault_plan_bad_input_raises(text):
    with pytest.raises(ValueError):
        FaultPlan.from_json(text)


def test_fault_plan_from_env_inline_and_file(tmp_path, monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    assert FaultPlan.from_env() is None
    plan = FaultPlan(faults=(Fault("kill", rank=0),), seed=3)
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
    assert FaultPlan.from_env() == plan
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    monkeypatch.setenv(FAULT_PLAN_ENV, f"@{path}")
    assert FaultPlan.from_env() == plan


def test_fault_stall_defaults():
    assert Fault("hang").stall == HANG_FOREVER
    assert Fault("slow").stall == pytest.approx(0.75)
    assert Fault("slow", delay=2.0).stall == pytest.approx(2.0)


def test_random_plan_is_deterministic():
    a = random_plan(11, n_workers=4)
    b = random_plan(11, n_workers=4)
    assert a == b and a.seed == 11
    assert all(f.kind != "corrupt_pack" for f in a.faults)
    assert random_plan(12, n_workers=4) != a


def test_injector_rank_filter_and_task_index():
    plan = FaultPlan(faults=(Fault("kill", rank=1, task_index=1),
                             Fault("slow", rank=0)))
    inj0 = FaultInjector(plan, rank=0)
    inj1 = FaultInjector(plan, rank=1)
    # rank 0 only sees the slow fault, on its first task, once.
    assert inj0.on_task(0, 0).kind == "slow"
    assert inj0.on_task(1, 0) is None
    # rank 1's kill is armed against its *second* task.
    assert inj1.on_task(0, 0) is None
    assert inj1.on_task(0, 1).kind == "kill"
    assert inj1.on_task(0, 2) is None


def test_injector_once_false_keeps_firing():
    plan = FaultPlan(faults=(Fault("slow", once=False),))
    inj = FaultInjector(plan, rank=0)
    assert inj.on_task(0, 0) is not None
    assert inj.on_task(1, 1) is not None


def test_injector_attach_matches_corrupt_only():
    plan = FaultPlan(faults=(Fault("corrupt_pack", fragment=2),
                             Fault("kill",)))
    inj = FaultInjector(plan, rank=0)
    assert inj.on_attach(0) is None
    assert inj.on_attach(2).kind == "corrupt_pack"
    assert inj.on_attach(2) is None          # once
    # attach never consumes task faults; the kill is still armed.
    assert inj.on_task(0, 0).kind == "kill"


def test_ledger_counters_and_anomalies():
    led = FailureLedger()
    led.record("requeue", rank=0, task=(0, "f"))
    led.record("hedge", rank=1)
    led.record("result_mismatch", detail="boom")
    assert len(led) == 3
    assert led.count("hedge") == 1
    assert led.summary() == {"requeue": 1, "hedge": 1, "result_mismatch": 1}
    assert led.anomalies() == 1
    led.clear()
    assert len(led) == 0 and led.anomalies() == 0


# ----------------------------------------------------------------------
# Scheduler hedging
# ----------------------------------------------------------------------
def test_scheduler_hedge_first_result_wins():
    sched = GreedyScheduler([("a", 2.0), ("b", 1.0)])
    assert sched.assign(0) == "a"
    assert sched.assign(1) == "b"
    sched.complete(1)
    sched.hedge(1, "a")
    assert sched.holder_count("a") == 2
    assert sched.complete(1) == "a"          # hedge wins
    assert sched.is_completed("a")
    # The losing holder does not keep the run alive (the pool reaps it).
    assert sched.done
    assert sched.complete(0) == "a"          # loser's late result
    assert sched.completed == ["b", "a"]     # counted once
    assert sched.done


def test_scheduler_hedge_loser_failure_costs_nothing():
    sched = GreedyScheduler([("a", 1.0)], max_retries=0)
    sched.assign(0)
    sched.hedge(1, "a")
    # The hedged holder dies: other holder remains, no attempt burned.
    assert sched.fail(1) is None
    assert sched.requeues == 0
    sched.complete(0)
    assert sched.done
    # With max_retries=0 a real (sole-holder) failure would have raised.


def test_scheduler_done_ignores_holders_of_completed_keys():
    sched = GreedyScheduler([("a", 1.0)])
    sched.assign(0)
    sched.hedge(1, "a")
    sched.complete(1)
    assert sched.done                        # rank 0's copy is moot
    # A later failure of the stuck loser is a no-op.
    assert sched.fail(0) is None
    assert sched.done


def test_scheduler_hedge_rejects_busy_or_unknown():
    sched = GreedyScheduler([("a", 1.0), ("b", 1.0)])
    sched.assign(0)
    with pytest.raises(ValueError):
        sched.hedge(0, "a")                  # rank 0 is busy
    with pytest.raises(ValueError):
        sched.hedge(1, "zzz")                # never issued
    sched.complete(0)
    with pytest.raises(ValueError):
        sched.hedge(1, "a")                  # already completed


# ----------------------------------------------------------------------
# End-to-end chaos: the pool keeps serving
# ----------------------------------------------------------------------
def test_kill_fault_respawn_restores_capacity(workload):
    db, scheme, params, queries, serial = workload
    plan = FaultPlan(faults=(Fault("kill", rank=0, task_index=0),))
    got, live, stats, ledger = run_pool(db, scheme, params, queries,
                                        fault_plan=plan, task_sleep=0.05)
    assert got == serial
    assert live == 2, "respawn must restore full configured capacity"
    assert 0 in stats.worker_deaths
    assert stats.respawns >= 1
    assert ledger.get("worker_death", 0) >= 1
    assert ledger.get("respawn", 0) >= 1
    assert ledger.get("requeue", 0) >= 1


def test_hang_fault_hard_deadline_kills_and_recovers(workload):
    db, scheme, params, queries, serial = workload
    plan = FaultPlan(faults=(Fault("hang", rank=0, task_index=0),))
    got, live, stats, ledger = run_pool(
        db, scheme, params, queries, fault_plan=plan,
        hedge_after=100.0, task_timeout=0.8)
    assert got == serial
    assert live == 2
    assert stats.hang_kills >= 1
    assert ledger.get("hang_kill", 0) >= 1
    assert ledger.get("respawn", 0) >= 1


def test_slow_fault_hedged_reissue_wins(workload):
    db, scheme, params, queries, serial = workload
    plan = FaultPlan(faults=(Fault("slow", rank=0, task_index=0,
                                   delay=3.0),))
    got, live, stats, ledger = run_pool(
        db, scheme, params, queries, fault_plan=plan,
        hedge_after=0.25, task_timeout=30.0)
    assert got == serial
    assert stats.hedges >= 1
    assert stats.hedge_wins >= 1, \
        "an idle worker should beat a 3 s straggler"
    assert ledger.get("hedge", 0) >= 1
    assert ledger.get("hedge_win", 0) >= 1
    # No kill was needed: the straggler is routed around, not shot.
    assert stats.hang_kills == 0 and stats.respawns == 0


def test_drop_result_fault_is_recovered(workload):
    db, scheme, params, queries, serial = workload
    plan = FaultPlan(faults=(Fault("drop_result", rank=0, task_index=0),))
    got, live, stats, ledger = run_pool(
        db, scheme, params, queries, fault_plan=plan,
        hedge_after=0.25, task_timeout=2.0)
    assert got == serial
    assert stats.hedges >= 1 or stats.hang_kills >= 1


def test_corrupt_pack_raises_integrity_error(workload):
    db, scheme, params, queries, serial = workload
    plan = FaultPlan(faults=(Fault("corrupt_pack", rank=0, fragment=0),))
    with ExecPool(jobs=2, fault_plan=plan) as pool:
        with pytest.raises(PackIntegrityError):
            pool.search_many(queries, db, scheme, params, n_fragments=4)
        assert pool.ledger.count("integrity") >= 1
        assert pool.last_stats.integrity_failures >= 1
    # Context exit still released every pack (autouse leak fixture).


def test_pool_collapse_degrades_to_serial(workload):
    db, scheme, params, queries, serial = workload
    # Every worker dies on its first task; no respawn, no retries.
    plan = FaultPlan(faults=(Fault("kill"),))
    with ExecPool(jobs=2, fault_plan=plan, max_retries=0,
                  respawn=False) as pool:
        with pytest.warns(RuntimeWarning, match="degraded"):
            results = pool.search_many(queries, db, scheme, params,
                                       n_fragments=4)
        assert [dump(r) for r in results] == serial
        assert pool.last_stats.fallback is True
        assert pool.ledger.count("fallback") == 1
        assert pool.ledger.count("worker_death") >= 1
        assert pool.ledger.anomalies() == 0


def test_no_fallback_raises_pool_job_error(workload):
    db, scheme, params, queries, serial = workload
    plan = FaultPlan(faults=(Fault("kill"),))
    with ExecPool(jobs=2, fault_plan=plan, max_retries=0, respawn=False,
                  serial_fallback=False) as pool:
        with pytest.raises(PoolJobError):
            pool.search_many(queries, db, scheme, params, n_fragments=4)


def test_respawned_pool_reuses_packs_across_runs(workload):
    db, scheme, params, queries, serial = workload
    plan = FaultPlan(faults=(Fault("kill", rank=0, task_index=0),))
    with ExecPool(jobs=2, fault_plan=plan, task_sleep=0.05) as pool:
        first = pool.search_many(queries, db, scheme, params, n_fragments=4)
        assert pool.total_respawns >= 1
        # The respawned worker re-attached the packs: a second, fault-free
        # run must work at full capacity with identical bytes.
        second = pool.search_many(queries, db, scheme, params, n_fragments=4)
        assert [dump(r) for r in second] == serial
    assert [dump(r) for r in first] == serial


def test_env_fault_plan_reaches_the_pool(workload, monkeypatch):
    db, scheme, params, queries, serial = workload
    plan = FaultPlan(faults=(Fault("kill", rank=0, task_index=0),))
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
    got, live, stats, ledger = run_pool(db, scheme, params, queries,
                                        task_sleep=0.05)
    assert got == serial
    assert ledger.get("worker_death", 0) >= 1


def test_timeout_knobs_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_HEARTBEAT", "0.05")
    monkeypatch.setenv("REPRO_EXEC_JOIN_TIMEOUT", "1.5")
    monkeypatch.setenv("REPRO_EXEC_HEDGE_AFTER", "0.4")
    monkeypatch.setenv("REPRO_EXEC_TASK_TIMEOUT", "3.5")
    pool = ExecPool(jobs=1)
    assert pool._heartbeat == pytest.approx(0.05)
    assert pool.join_timeout == pytest.approx(1.5)
    assert pool.hedge_after == pytest.approx(0.4)
    assert pool.task_timeout == pytest.approx(3.5)
    # Explicit arguments beat the environment.
    pool2 = ExecPool(jobs=1, heartbeat=0.3, join_timeout=0.7,
                     hedge_after=1.0, task_timeout=9.0)
    assert pool2._heartbeat == pytest.approx(0.3)
    assert pool2.join_timeout == pytest.approx(0.7)
    assert pool2.hedge_after == pytest.approx(1.0)
    assert pool2.task_timeout == pytest.approx(9.0)


def test_close_escalates_past_hung_worker(workload):
    db, scheme, params, queries, serial = workload
    # A worker stuck in a long in-task sleep ignores "stop"; close()
    # must escalate terminate -> kill inside its bounded budget instead
    # of waiting out the sleep.
    plan = FaultPlan(faults=(Fault("hang", rank=0, task_index=0,
                                   delay=60.0),))
    pool = ExecPool(jobs=1, fault_plan=plan, join_timeout=0.3,
                    hedge_after=100.0, task_timeout=100.0,
                    respawn=False, serial_fallback=False)
    errors = []

    def run():
        try:
            pool.search_many(queries[:1], db, scheme, params, n_fragments=2)
        except Exception as exc:           # expected: pool torn down
            errors.append(exc)

    t = threading.Thread(target=run, daemon=True)
    t.start()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if any(w.busy is not None for w in pool._workers):
            break
        time.sleep(0.02)
    procs = [w.process for w in pool._workers]
    t0 = time.monotonic()
    pool.close()
    elapsed = time.monotonic() - t0
    t.join(timeout=10)
    assert not t.is_alive()
    assert elapsed < 5.0, f"close took {elapsed:.1f}s against a 60s hang"
    for p in procs:
        assert not p.is_alive()
