"""Tests for PSI-BLAST (position-specific iterated search)."""

import numpy as np
import pytest

from repro.blast import SequenceDB, blastp
from repro.blast.alphabet import PROTEIN, encode_protein
from repro.blast.psiblast import (
    PSSM,
    PsiBlastResult,
    build_pssm,
    psiblast,
)
from repro.blast.score import BLOSUM62

AAs = "ARNDCQEGHILKMFPSTWYV"


@pytest.fixture
def family():
    """A protein family with conserved motif columns, one distant
    homolog recognisable mainly through them, and decoys."""
    rng = np.random.default_rng(11)

    def rand_prot(n):
        return "".join(rng.choice(list(AAs), n))

    L = 200
    ancestor = rand_prot(L)
    conserved = rng.random(L) < 0.45

    def member(identity_at_variable):
        out = []
        for i, aa in enumerate(ancestor):
            if conserved[i] or rng.random() < identity_at_variable:
                out.append(aa)
            else:
                out.append(rng.choice([a for a in AAs if a != aa]))
        return "".join(out)

    db = SequenceDB("aa")
    for i in range(6):
        db.add(f"fam{i} close family member", member(0.5))
    db.add("distant remote homolog", member(0.02))
    for i in range(30):
        db.add(f"decoy{i}", rand_prot(L))
    return ancestor, db, conserved


def test_psiblast_requires_protein_db():
    nt = SequenceDB("nt")
    nt.add("x", "ACGT" * 20)
    with pytest.raises(ValueError):
        psiblast("MKVLAW", nt)
    aa = SequenceDB("aa")
    aa.add("p", "MKVLAW" * 5)
    with pytest.raises(ValueError):
        psiblast("MKVLAW", aa, iterations=0)


def test_iteration_one_is_plain_blastp(family):
    ancestor, db, _ = family
    res = psiblast(ancestor, db, iterations=1)
    plain = blastp(ancestor, db)
    assert res.n_iterations == 1
    assert {h.subject_id for h in res.final.hits} == \
        {h.subject_id for h in plain.hits}


def test_pssm_improves_distant_homolog(family):
    """The headline PSI-BLAST behaviour: the remote homolog scores far
    better once the family profile is learned."""
    ancestor, db, _ = family
    res = psiblast(ancestor, db, iterations=3, inclusion_evalue=1e-3)
    assert res.n_iterations >= 2

    def distant_e(r):
        hits = [h for h in r.hits if h.description.startswith("distant")]
        return hits[0].best_evalue if hits else float("inf")

    e1 = distant_e(res.iterations[0])
    e2 = distant_e(res.iterations[1])
    assert e2 < e1 / 1e10


def test_psiblast_converges(family):
    ancestor, db, _ = family
    res = psiblast(ancestor, db, iterations=6, inclusion_evalue=1e-3)
    assert res.converged
    assert res.n_iterations < 6  # stopped early


def test_pssm_structure(family):
    ancestor, db, _ = family
    first = blastp(ancestor, db)
    pssm = build_pssm(encode_protein(ancestor), db, first,
                      inclusion_evalue=1e-3)
    assert pssm.length == len(ancestor)
    assert pssm.matrix.shape == (len(ancestor), len(PROTEIN))
    assert pssm.n_sequences >= 6  # the family got included
    scheme = pssm.scheme()
    assert scheme.matrix.shape == (len(ancestor), len(PROTEIN))


def test_pssm_boosts_conserved_columns(family):
    """Columns conserved across the family get a higher self-score than
    BLOSUM62 gives; variable columns do not explode."""
    ancestor, db, conserved = family
    enc = encode_protein(ancestor)
    first = blastp(ancestor, db)
    pssm = build_pssm(enc, db, first, inclusion_evalue=1e-3)
    self_scores = pssm.matrix[np.arange(len(enc)), enc]
    blosum_scores = BLOSUM62[enc, enc]
    gain = self_scores.astype(int) - blosum_scores.astype(int)
    assert gain[conserved].mean() > gain[~conserved].mean()
    assert gain[conserved].mean() > 0


def test_pssm_no_hits_falls_back_to_blosum():
    """With nothing included, the PSSM reduces to BLOSUM62 rows."""
    db = SequenceDB("aa")
    rng = np.random.default_rng(0)
    db.add("d", "".join(rng.choice(list(AAs), 150)))
    query = "".join(rng.choice(list(AAs), 80))
    first = blastp(query, db)
    enc = encode_protein(query)
    pssm = build_pssm(enc, db, first, inclusion_evalue=1e-30)
    assert np.array_equal(pssm.matrix, BLOSUM62[enc])


def test_psiblast_does_not_drag_in_decoys(family):
    ancestor, db, _ = family
    res = psiblast(ancestor, db, iterations=3, inclusion_evalue=1e-3)
    sig = [h.description for h in res.final.hits if h.best_evalue < 1e-6]
    assert not any(d.startswith("decoy") for d in sig)
    assert sum(d.startswith("fam") for d in sig) == 6
