"""Tests for the gapped X-drop extension (NCBI's adaptive-band DP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.alphabet import encode_dna
from repro.blast.gapped import banded_local_align
from repro.blast.score import NucleotideScore
from repro.blast.sw import smith_waterman_score
from repro.blast.xdrop import xdrop_gapped_extend

SCHEME = NucleotideScore()


def test_exact_match_extends_fully():
    q = encode_dna("ACGTACGTACGTACGT")
    s = encode_dna("TTTT" + "ACGTACGTACGTACGT" + "GGGG")
    aln = xdrop_gapped_extend(q, s, 8, 12, SCHEME)
    assert aln.score == 16
    assert aln.identities == 16
    assert (aln.q_start, aln.q_end) == (0, 16)
    assert (aln.s_start, aln.s_end) == (4, 20)
    assert aln.ops == "M" * 16


def test_seed_validation():
    q = encode_dna("ACGT")
    s = encode_dna("ACGT")
    with pytest.raises(ValueError):
        xdrop_gapped_extend(q, s, 4, 0, SCHEME)
    with pytest.raises(ValueError):
        xdrop_gapped_extend(q, s, 0, 9, SCHEME)


def test_bridges_small_gap():
    left = "ACGTACGTACGT"
    right = "TGCATGCATGCA"
    q = encode_dna(left + "GG" + right)
    s = encode_dna(left + right)
    aln = xdrop_gapped_extend(q, s, 2, 2, SCHEME, xdrop=20)
    assert aln.score == 24 - 7
    assert aln.identities == 24
    assert aln.ops.count("D") == 2


def test_adaptive_band_crosses_shift_outside_fixed_band():
    """A 10-base insertion (gap cost 5 + 10*2 = 25): profitable to
    cross, outside a +/-4 fixed band, found by the adaptive region."""
    left = "ACGGTCAGTACGGTCAGTACGGTCAGTACGGTCAGT"   # 36 matches
    right = "TTGCACCATGGTTGCACCATGGTTGCACCATGG"     # 33 matches
    insert = "CCCCCCCCCC"                           # 10 bases
    q = encode_dna(left + right)
    s = encode_dna(left + insert + right)
    fixed = banded_local_align(q, s, diag=0, scheme=SCHEME, band=4)
    adaptive = xdrop_gapped_extend(q, s, 4, 4, SCHEME, xdrop=80)
    # Affine convention: first gapped position costs gap_open, each of
    # the other 9 costs gap_extend.
    expected = 36 + 33 - (SCHEME.gap_open + 9 * SCHEME.gap_extend)
    # The fixed band cannot reach the right block.
    assert fixed.score <= 36
    # The adaptive region can, and optimally.
    assert adaptive.score == expected
    assert adaptive.ops.count("I") == 10


def test_no_extension_on_mismatch_seed():
    q = encode_dna("AAAAAAAA")
    s = encode_dna("CCCCCCCC")
    aln = xdrop_gapped_extend(q, s, 3, 3, SCHEME, xdrop=5)
    assert aln.score == 0
    assert aln.align_len == 0


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet="ACGT", min_size=12, max_size=60),
       st.integers(0, 59))
def test_self_extension_recovers_identity(s, pos):
    enc = encode_dna(s)
    seed = min(pos, len(s) - 1)
    aln = xdrop_gapped_extend(enc, enc, seed, seed, SCHEME, xdrop=100)
    assert aln.score == len(s)
    assert aln.identities == len(s)


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet="ACGT", min_size=12, max_size=50),
       st.text(alphabet="ACGT", min_size=12, max_size=50))
def test_xdrop_never_exceeds_optimal(a, b):
    qa, sb = encode_dna(a), encode_dna(b)
    exact = smith_waterman_score(qa, sb, SCHEME)
    aln = xdrop_gapped_extend(qa, sb, len(a) // 2, len(b) // 2, SCHEME,
                              xdrop=100)
    assert aln.score <= exact


@settings(max_examples=30, deadline=None)
@given(st.text(alphabet="ACGT", min_size=15, max_size=50),
       st.integers(0, 3), st.integers(0, 50))
def test_xdrop_matches_exact_for_point_mutations(core, n_muts, seed):
    """With generous X, point-mutated pairs align optimally when the
    seed sits inside the alignment."""
    rng = np.random.default_rng(seed)
    q = list(core)
    for _ in range(n_muts):
        q[int(rng.integers(0, len(q)))] = rng.choice(list("ACGT"))
    qa, sb = encode_dna("".join(q)), encode_dna(core)
    mid = len(core) // 2
    if qa[mid] != sb[mid]:
        return  # seed must be a plausible anchor
    exact = smith_waterman_score(qa, sb, SCHEME)
    aln = xdrop_gapped_extend(qa, sb, mid, mid, SCHEME, xdrop=10 ** 6)
    assert aln.score == exact
