"""Unit tests for the local file system."""

import pytest

from repro.cluster import Cluster
from repro.cluster.params import KiB, MB, MiB
from repro.fs.interface import FSError
from repro.fs.localfs import LocalFS
from repro.trace import TraceCollector, analyze


def setup():
    c = Cluster(n_nodes=1)
    fs = LocalFS(c[0], tracer=TraceCollector())
    return c, fs


def test_populate_and_lookup():
    c, fs = setup()
    fs.populate("db.nsq", 10 * MB)
    assert fs.lookup("db.nsq").size == 10 * MB
    assert fs.exists("db.nsq")
    assert not fs.exists("other")
    assert fs.list_files() == ["db.nsq"]


def test_lookup_missing_raises():
    c, fs = setup()
    with pytest.raises(FSError):
        fs.lookup("nope")


def test_read_past_eof_raises():
    c, fs = setup()
    fs.populate("f", 100)

    def proc():
        yield from fs.read(c[0], "f", 50, 100)

    p = c.sim.process(proc())
    c.sim.run()
    assert p.failed
    assert isinstance(p.value, FSError)


def test_cold_read_hits_disk():
    c, fs = setup()
    fs.populate("f", 10 * MB)

    def proc():
        yield from fs.read(c[0], "f", 0, 10 * MB)
        return c.sim.now

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    assert c[0].disk.bytes_read == 10 * MB
    # Roughly the Bonnie read rate.
    assert p.value == pytest.approx(10 * MB / (26 * MB), rel=0.2)


def test_warm_read_served_from_cache():
    c, fs = setup()
    fs.populate("f", 10 * MB)

    def proc():
        yield from fs.read(c[0], "f", 0, 10 * MB)
        t_cold = c.sim.now
        yield from fs.read(c[0], "f", 0, 10 * MB)
        return t_cold, c.sim.now - t_cold

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    t_cold, t_warm = p.value
    assert t_warm < t_cold / 10
    assert c[0].disk.bytes_read == 10 * MB  # no extra disk traffic


def test_read_uses_readahead_granularity():
    c, fs = setup()
    fs.populate("f", 1 * MiB)

    def proc():
        yield from fs.read(c[0], "f", 0, 1 * MiB)

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    # 1 MiB / 128 KiB readahead clusters = 8 disk requests.
    assert c[0].disk.reads_serviced == 8


def test_write_extends_file_and_is_synchronous():
    c, fs = setup()
    fs.populate("f", 0)

    def proc():
        yield from fs.write(c[0], "f", 0, 4 * KiB)
        return c.sim.now

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    assert fs.lookup("f").size == 4 * KiB
    assert c[0].disk.bytes_written == 4 * KiB
    assert p.value > 0  # took simulated time


def test_async_write_skips_disk():
    c, fs = setup()
    fs.populate("f", 0)

    def proc():
        yield from fs.write(c[0], "f", 0, 4 * KiB, sync=False)

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    assert c[0].disk.bytes_written == 0
    assert fs.lookup("f").size == 4 * KiB


def test_truncate_and_unlink():
    c, fs = setup()
    fs.populate("f", 100)

    def proc():
        yield from fs.truncate(c[0], "f")
        assert fs.lookup("f").size == 0
        yield from fs.unlink(c[0], "f")

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    assert not fs.exists("f")


def test_open_returns_meta():
    c, fs = setup()
    fs.populate("f", 123)

    def proc():
        meta = yield from fs.open(c[0], "f")
        return meta.size

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    assert p.value == 123


def test_trace_records_application_ops():
    c, fs = setup()
    fs.populate("f", 1 * MB)

    def proc():
        yield from fs.read(c[0], "f", 0, 1 * MB)
        yield from fs.write(c[0], "f", 0, 100)

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    stats = analyze(fs.tracer)
    assert stats.operations == 2
    assert stats.reads.count == 1
    assert stats.reads.total_bytes == 1 * MB
    assert stats.writes.count == 1
    assert stats.writes.max_bytes == 100
