"""Unit tests for the disk model, including the Figure 8 stressor
interaction that drives the paper's hot-spot experiment."""

import pytest

from repro.sim import Simulator, Timeout
from repro.cluster.disk import Disk, DiskRequest, READ, WRITE
from repro.cluster.params import DiskParams, MB, MiB, KiB


def make_disk(sim, **over):
    return Disk(sim, DiskParams(**over), name="d0")


def test_request_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        DiskRequest(sim, "erase", 0, 1, "s")
    with pytest.raises(ValueError):
        DiskRequest(sim, READ, 0, 0, "s")
    with pytest.raises(ValueError):
        DiskRequest(sim, READ, -1, 1, "s")


def test_sequential_read_bandwidth():
    """A long sequential read stream approaches the Bonnie read rate."""
    sim = Simulator()
    disk = make_disk(sim)
    total = 100 * MB

    def reader(sim, disk):
        off = 0
        chunk = MiB
        while off < total:
            yield disk.read(off, chunk, stream="f")
            off += chunk

    p = sim.process(reader(sim, disk))
    sim.run_until_complete(p)
    rate = total / sim.now
    # One seek at the start, per-request overhead on 100 requests.
    assert 0.9 * 26 * MB < rate <= 26 * MB


def test_sequential_write_bandwidth():
    sim = Simulator()
    disk = make_disk(sim)
    total = 64 * MB

    def writer(sim, disk):
        off = 0
        while off < total:
            yield disk.write(off, MiB, stream="f")
            off += MiB

    p = sim.process(writer(sim, disk))
    sim.run_until_complete(p)
    rate = total / sim.now
    assert 0.9 * 32 * MB < rate <= 32 * MB


def test_random_reads_pay_seek():
    sim = Simulator()
    disk = make_disk(sim)

    def reader(sim, disk):
        # Interleave two far-apart streams: every request seeks.
        for i in range(10):
            yield disk.read(i * 10 * MB, 4 * KiB, stream="a")
            yield disk.read(500 * MB + i * 10 * MB, 4 * KiB, stream="b")

    p = sim.process(reader(sim, disk))
    sim.run_until_complete(p)
    per_req = sim.now / 20
    assert per_req >= DiskParams().seek_time  # dominated by seeks


def test_service_time_formula():
    sim = Simulator()
    disk = make_disk(sim)
    p = disk.params
    seq = disk.service_time(READ, MiB, sequential=True)
    rnd = disk.service_time(READ, MiB, sequential=False)
    assert seq == pytest.approx(p.request_overhead + MiB / p.read_bandwidth)
    assert rnd == pytest.approx(seq + p.seek_time)
    w = disk.service_time(WRITE, MiB, sequential=True)
    assert w < seq  # writes are faster on this drive


def test_counters_and_stats():
    sim = Simulator()
    disk = make_disk(sim)

    def io(sim, disk):
        yield disk.read(0, 1000, stream="f")
        yield disk.write(0, 2000, stream="g")

    p = sim.process(io(sim, disk))
    sim.run_until_complete(p)
    assert disk.bytes_read == 1000
    assert disk.bytes_written == 2000
    assert disk.reads_serviced == 1
    assert disk.writes_serviced == 1
    assert disk.read_latency.count == 1


def test_queue_drains_fifo_within_class():
    sim = Simulator()
    disk = make_disk(sim, write_batch=1, write_anticipation=0.0)
    order = []

    def submit_all(sim, disk):
        evs = []
        for i in range(3):
            ev = disk.read(i * 100 * MB, 4 * KiB, stream=f"s{i}")
            ev.add_callback(lambda e, i=i: order.append(i))
            evs.append(ev)
        for ev in evs:
            yield ev

    p = sim.process(submit_all(sim, disk))
    sim.run_until_complete(p)
    assert order == [0, 1, 2]


def test_write_batching_starves_interleaved_reads():
    """With a continuous synchronous writer, reads make far less
    progress than their fair share — the paper's Section 4.5 mechanism."""
    sim = Simulator()
    disk = make_disk(sim)  # write_batch=16

    stop = 60.0
    read_bytes = [0]

    def writer(sim, disk):
        off = 0
        while sim.now < stop:
            yield disk.write(off, MiB, stream="stress")
            off += MiB
            yield Timeout(sim, 2.5e-3)  # memcpy gap

    def reader(sim, disk):
        off = 0
        while sim.now < stop:
            yield disk.read(off, 64 * KiB, stream="blast")
            off += 64 * KiB
            read_bytes[0] = off

    sim.process(writer(sim, disk))
    sim.process(reader(sim, disk))
    sim.run(until=stop + 5)
    rate = read_bytes[0] / stop
    # Fair share would be ~13 MB/s; the elevator model must starve the
    # reader well below 1 MB/s (paper: order-of-magnitude degradations).
    assert rate < 1 * MB
    assert rate > 0.01 * MB  # but not absolute starvation


def test_larger_read_granularity_suffers_less():
    """Per-request batching penalty means 128 KiB readers out-pace
    64 KiB readers under write stress — why original BLAST (mmap
    readahead) degrades less than over-PVFS (stripe-unit reads)."""

    def stressed_read_rate(chunk):
        sim = Simulator()
        disk = make_disk(sim)
        stop = 60.0
        done = [0]

        def writer(sim, disk):
            off = 0
            while sim.now < stop:
                yield disk.write(off, MiB, stream="stress")
                off += MiB
                yield Timeout(sim, 2.5e-3)

        def reader(sim, disk):
            off = 0
            while sim.now < stop:
                yield disk.read(off, chunk, stream="blast")
                off += chunk
                done[0] = off

        sim.process(writer(sim, disk))
        sim.process(reader(sim, disk))
        sim.run(until=stop + 5)
        return done[0] / stop

    small = stressed_read_rate(64 * KiB)
    large = stressed_read_rate(128 * KiB)
    assert large > 1.5 * small


def test_sample_utilization_window():
    sim = Simulator()
    disk = make_disk(sim)

    def io(sim, disk):
        yield Timeout(sim, 1.0)
        # ~1 second of disk work
        yield disk.read(0, 26 * MB, stream="f")

    p = sim.process(io(sim, disk))
    sim.run_until_complete(p)
    util = disk.sample_utilization()
    assert 0.3 < util < 0.7  # busy ~1s out of ~2s
    sim2_end = sim.run(until=sim.now + 10)
    util2 = disk.sample_utilization()
    assert util2 < 0.05  # idle since last sample


def test_idle_disk_wakes_on_submission():
    sim = Simulator()
    disk = make_disk(sim)

    def late_io(sim, disk):
        yield Timeout(sim, 5.0)
        yield disk.read(0, 4 * KiB, stream="f")
        return sim.now

    p = sim.process(late_io(sim, disk))
    sim.run_until_complete(p)
    assert p.value > 5.0
    assert p.value < 5.1
