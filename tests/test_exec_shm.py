"""Shared-memory fragment packs: layout round trip, PackDB surface,
registry lifetime discipline, and the /dev/shm leak invariant."""

import os

import numpy as np
import pytest

from repro.blast.alphabet import encode_dna
from repro.blast.scankernel import ScanCache, build_scan_structures, db_token
from repro.blast.search import SearchParams, search
from repro.blast.score import NucleotideScore
from repro.blast.seqdb import AA, NT, SequenceDB
from repro.exec.shm import (NAME_PREFIX, AttachedPack, PackDB,
                            PackIntegrityError, ShmRegistry, corrupt_segment,
                            create_pack, default_registry, pack_fragment)

NT_LETTERS = np.array(list("ACGT"))
AA_LETTERS = np.array(list("ARNDCQEGHILKMFPSTWYV"))


def shm_segments():
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(("psm_", NAME_PREFIX)))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def random_nt_db(rng, n_seqs, min_len=5, max_len=300):
    db = SequenceDB(NT)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"s{i} desc", "".join(NT_LETTERS[rng.integers(0, 4, length)]))
    return db


def random_aa_db(rng, n_seqs, min_len=5, max_len=200):
    db = SequenceDB(AA)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"p{i}", "".join(AA_LETTERS[rng.integers(0, 20, length)]))
    return db


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = shm_segments()
    yield
    assert shm_segments() == before, "test leaked shared-memory segments"


def test_pack_roundtrip_preserves_structures_and_headers():
    rng = np.random.default_rng(0)
    db = random_nt_db(rng, 20)
    registry = ShmRegistry()
    structs = build_scan_structures(db, 11, 4)
    spec = create_pack(structs, [db.description(i) for i in range(len(db))],
                       NT, cache_token=("t", 0, 0), fragment_id=0,
                       registry=registry)
    assert spec.name.startswith(NAME_PREFIX + "_")
    pack = AttachedPack(spec)
    try:
        for field in ("concat", "starts", "lengths", "codes", "code_pos"):
            np.testing.assert_array_equal(getattr(pack.structs, field),
                                          getattr(structs, field))
        pdb = PackDB(pack)
        assert len(pdb) == len(db)
        assert pdb.total_residues == db.total_residues
        assert pdb.lengths() == db.lengths()
        for i in range(len(db)):
            assert pdb.description(i) == db.description(i)
            np.testing.assert_array_equal(pdb.sequence(i), db.sequence(i))
        # Cached description path returns the same object.
        assert pdb.description(3) is pdb.description(3)
        assert list(pdb)[2][0] == db.description(2)
    finally:
        pack.close()
        assert registry.release(spec.name)


def test_packdb_serves_scan_search_identically():
    rng = np.random.default_rng(1)
    db = random_nt_db(rng, 25)
    query = db.sequence(4)[:90].copy()
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    registry = ShmRegistry()
    spec = pack_fragment(db, 11, 4, cache_token=(db_token(db), 0, 0),
                         registry=registry)
    pack = AttachedPack(spec)
    try:
        pdb = PackDB(pack)
        cache = ScanCache()
        cache.put(pdb, 11, 4, pack.structs)
        got = search(query, pdb, scheme, params, engine="scan",
                     scan_cache=cache)
        want = search(query, db, scheme, params)
        assert [h.subject_id for h in got.hits] == \
               [h.subject_id for h in want.hits]
        assert [h.description for h in got.hits] == \
               [h.description for h in want.hits]
    finally:
        pack.close()
        registry.release(spec.name)


def test_pack_fragment_records_source_ids():
    rng = np.random.default_rng(2)
    db = random_nt_db(rng, 12)
    sub = db.subset([7, 2, 9], name="frag", fragment_id=5)
    assert sub.source_ids == [7, 2, 9]
    assert sub.fragment_id == 5
    np.testing.assert_array_equal(sub.sequence(1), db.sequence(2))
    registry = ShmRegistry()
    spec = pack_fragment(sub, 11, 4, cache_token=("t", 0, 5),
                         registry=registry)
    try:
        assert spec.source_ids == (7, 2, 9)
        assert spec.fragment_id == 5
        assert spec.n_sequences == 3
    finally:
        registry.release(spec.name)


def test_protein_pack_roundtrip():
    rng = np.random.default_rng(3)
    db = random_aa_db(rng, 15)
    registry = ShmRegistry()
    spec = pack_fragment(db, 3, 20, cache_token=("p", 0, 0),
                         registry=registry)
    pack = AttachedPack(spec)
    try:
        pdb = PackDB(pack)
        assert pdb.seqtype == AA
        for i in range(len(db)):
            np.testing.assert_array_equal(pdb.sequence(i), db.sequence(i))
    finally:
        pack.close()
        registry.release(spec.name)


def test_registry_release_is_idempotent_and_unlinks():
    rng = np.random.default_rng(4)
    db = random_nt_db(rng, 5)
    registry = ShmRegistry()
    spec = pack_fragment(db, 11, 4, cache_token=("r", 0, 0),
                         registry=registry)
    assert spec.name in registry.names()
    assert os.path.exists(f"/dev/shm/{spec.name}")
    assert registry.release(spec.name) is True
    assert not os.path.exists(f"/dev/shm/{spec.name}")
    assert registry.release(spec.name) is False
    assert len(registry) == 0


def test_registry_release_all():
    rng = np.random.default_rng(5)
    db = random_nt_db(rng, 5)
    registry = ShmRegistry()
    for frag in range(3):
        pack_fragment(db, 11, 4, cache_token=("ra", 0, frag),
                      registry=registry)
    assert len(registry) == 3
    assert registry.release_all() == 3
    assert registry.release_all() == 0
    assert len(registry) == 0


def test_attach_after_unlink_fails():
    rng = np.random.default_rng(6)
    db = random_nt_db(rng, 4)
    registry = ShmRegistry()
    spec = pack_fragment(db, 11, 4, cache_token=("u", 0, 0),
                         registry=registry)
    registry.release(spec.name)
    with pytest.raises(FileNotFoundError):
        AttachedPack(spec)


def test_default_registry_is_per_process():
    reg = default_registry()
    assert default_registry() is reg
    assert reg._pid == os.getpid()


def test_pack_spec_carries_checksums_and_attach_verifies():
    rng = np.random.default_rng(7)
    db = random_nt_db(rng, 10)
    registry = ShmRegistry()
    spec = pack_fragment(db, 11, 4, cache_token=("crc", 0, 0),
                         registry=registry)
    try:
        assert spec.checksums, "publish must record per-field CRCs"
        fields = [f for f, _crc in spec.checksums]
        assert "concat" in fields and "starts" in fields
        pack = AttachedPack(spec)          # verifies on attach
        pack.verify()                      # and is re-verifiable
        pack.close()
    finally:
        registry.release(spec.name)


def test_corrupt_segment_fails_attach_with_typed_error():
    rng = np.random.default_rng(8)
    db = random_nt_db(rng, 10, min_len=50, max_len=200)
    registry = ShmRegistry()
    spec = pack_fragment(db, 11, 4, cache_token=("crc", 0, 1),
                         registry=registry)
    try:
        field = corrupt_segment(spec)
        with pytest.raises(PackIntegrityError, match="CRC32 mismatch"):
            AttachedPack(spec)
        # The error names the damaged field and the segment.
        with pytest.raises(PackIntegrityError, match=field):
            AttachedPack(spec)
        # An unverified attach still maps (forensics / tooling path)
        # and flags the damage when asked.
        pack = AttachedPack(spec, verify=False)
        with pytest.raises(PackIntegrityError):
            pack.verify()
        pack.close()
    finally:
        registry.release(spec.name)


def test_corrupt_segment_named_field():
    rng = np.random.default_rng(9)
    db = random_nt_db(rng, 8, min_len=50, max_len=200)
    registry = ShmRegistry()
    spec = pack_fragment(db, 11, 4, cache_token=("crc", 0, 2),
                         registry=registry)
    try:
        assert corrupt_segment(spec, field="starts") == "starts"
        with pytest.raises(PackIntegrityError, match="starts"):
            AttachedPack(spec)
    finally:
        registry.release(spec.name)


def test_empty_descriptions_and_single_sequence():
    db = SequenceDB(NT)
    db.add("", encode_dna("ACGTACGTACGTACG"))
    registry = ShmRegistry()
    spec = pack_fragment(db, 11, 4, cache_token=("e", 0, 0),
                         registry=registry)
    pack = AttachedPack(spec)
    try:
        pdb = PackDB(pack)
        assert pdb.description(0) == ""
        assert len(pdb) == 1
    finally:
        pack.close()
        registry.release(spec.name)
