"""Tests for multi-volume databases, alias files, and XML output."""

import os
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.blast import SequenceDB, blastn
from repro.blast.volumes import (
    AliasFile,
    load_volumes,
    search_volumes,
    split_volumes,
    write_volumes,
)
from repro.blast.xmlout import to_xml


@pytest.fixture
def db():
    rng = np.random.default_rng(0)
    db = SequenceDB("nt", name="mini")
    for i in range(20):
        n = int(rng.integers(200, 800))
        db.add(f"s{i} sequence number {i}",
               "".join(rng.choice(list("ACGT"), n)))
    return db


# ---------------------------------------------------------------- volumes
def test_split_volumes_respects_cap(db):
    vols = split_volumes(db, max_bytes=2000)
    assert len(vols) > 1
    assert sum(len(v) for v in vols) == len(db)
    # Order preserved across volume boundaries.
    descs = [d for v in vols for d, _ in v]
    assert descs == [db.description(i) for i in range(len(db))]


def test_split_volumes_single_when_cap_large(db):
    vols = split_volumes(db, max_bytes=10 ** 9)
    assert len(vols) == 1
    assert len(vols[0]) == len(db)


def test_split_volumes_validation(db):
    with pytest.raises(ValueError):
        split_volumes(db, max_bytes=0)


def test_volume_names_numbered(db):
    vols = split_volumes(db, max_bytes=2000)
    assert vols[0].name == "mini.00"
    assert vols[1].name == "mini.01"


def test_write_and_load_volumes(db, tmp_path):
    alias_path = write_volumes(db, str(tmp_path), max_bytes=2000)
    assert alias_path.endswith("mini.nal")
    assert os.path.exists(alias_path)
    vols = load_volumes(str(tmp_path), "mini")
    assert sum(len(v) for v in vols) == len(db)
    assert sum(v.total_residues for v in vols) == db.total_residues


def test_alias_file_roundtrip():
    alias = AliasFile("nt", ["nt.00", "nt.01"])
    back = AliasFile.parse(alias.render())
    assert back == alias


def test_alias_file_rejects_empty():
    with pytest.raises(ValueError):
        AliasFile.parse("TITLE x\n")


def test_search_volumes_equals_whole_search(db):
    target = db.sequence_str(3)
    query = target[50:min(250, len(target))]
    whole = blastn(query, db)
    vols = split_volumes(db, max_bytes=2000)
    merged = search_volumes(blastn, query, vols)
    assert merged.best().score == whole.best().score
    assert merged.hits[0].description == whole.hits[0].description
    assert merged.db_residues == whole.db_residues


def test_search_volumes_requires_volumes():
    with pytest.raises(ValueError):
        search_volumes(blastn, "ACGT", [])


# ---------------------------------------------------------------- xml
def test_xml_is_well_formed_and_complete(db):
    target = db.sequence_str(5)
    query = target[20:min(220, len(target))]
    res = blastn(query, db, query_id="q1")
    xml = to_xml(res, program="blastn", database="mini")
    root = ET.fromstring(xml)
    assert root.tag == "BlastOutput"
    assert root.findtext("BlastOutput_program") == "blastn"
    assert root.findtext("BlastOutput_query-ID") == "q1"
    hits = root.findall(".//Hit")
    assert len(hits) == len(res.hits)
    hsp = root.find(".//Hsp")
    assert hsp is not None
    assert int(hsp.findtext("Hsp_query-from")) >= 1
    assert int(hsp.findtext("Hsp_identity")) > 0
    stat = root.find(".//Iteration_stat")
    assert int(stat.findtext("Statistics_db-num")) == len(db)


def test_xml_escapes_descriptions():
    db = SequenceDB("nt")
    db.add("weird <&> description", "ACGTACGTACGTACGTACGT")
    res = blastn("ACGTACGTACGTACGTACGT", db)
    xml = to_xml(res)
    ET.fromstring(xml)  # must parse despite special characters
    assert "&lt;&amp;&gt;" in xml


def test_xml_empty_results():
    db = SequenceDB("nt")
    db.add("s", "ACGTACGTACGTACGTACGT")
    res = blastn("TTTTTTTTTTTTGGGGGGGG", db)
    xml = to_xml(res)
    root = ET.fromstring(xml)
    assert root.findall(".//Hit") == []
