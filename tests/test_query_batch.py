"""The multi-query batched scan path: QueryBatch vs per-index scans,
``search_batch`` byte-identity against sequential ``search`` across
alphabets / masking / degenerate query sets, query-batch planning, the
batched task protocol through the real pool (fault injection
included), per-stage profiling output, and the CLI escape hatch."""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.blast.kmer import WordIndex
from repro.blast.profile import PROFILE_ENV
from repro.blast.scankernel import (QueryBatch, build_scan_structures,
                                    scan_fragment, scan_fragment_batch)
from repro.blast.score import NucleotideScore, ProteinScore
from repro.blast.search import SearchParams, search, search_batch
from repro.blast.seqdb import AA, NT, SequenceDB
from repro.exec import ExecPool, Fault, FaultPlan
from repro.exec.schedule import plan_query_batches
from repro.exec.shm import NAME_PREFIX

NT_LETTERS = np.array(list("ACGT"))
AA_LETTERS = np.array(list("ARNDCQEGHILKMFPSTWYV"))


def shm_segments():
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(("psm_", NAME_PREFIX)))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = shm_segments()
    yield
    assert shm_segments() == before, "test leaked shared-memory segments"


def random_nt_db(rng, n_seqs, min_len=50, max_len=300):
    db = SequenceDB(NT)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"s{i} desc", "".join(NT_LETTERS[rng.integers(0, 4, length)]))
    return db


def random_aa_db(rng, n_seqs, min_len=40, max_len=200):
    db = SequenceDB(AA)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"p{i}", "".join(AA_LETTERS[rng.integers(0, 20, length)]))
    return db


def dump(results):
    """Full byte-level result dump (every HSP field, hit order, ids)."""
    return (results.query_id, results.query_len, results.db_residues,
            results.db_sequences,
            [(h.subject_id, h.description, h.subject_len, h.fragment_id,
              [dataclasses.astuple(p) for p in h.hsps])
             for h in results.hits])


def sequential_dumps(queries, db, scheme, params, **kw):
    return [dump(search(q, db, scheme, params, query_id=f"q{i}", **kw))
            for i, q in enumerate(queries)]


def batch_dumps(queries, db, scheme, params, **kw):
    ids = [f"q{i}" for i in range(len(queries))]
    return [dump(r) for r in search_batch(queries, db, scheme, params,
                                          query_ids=ids, **kw)]


# ----------------------------------------------------------------------
# The combined lookup structure
# ----------------------------------------------------------------------
def test_query_batch_scan_matches_per_index_scans():
    rng = np.random.default_rng(50)
    db = random_nt_db(rng, 15)
    structs = build_scan_structures(db, 11, 4)
    queries = [db.sequence(i)[:120].copy() for i in (1, 4, 9, 12)]
    indexes = [WordIndex.for_dna(q, 11) for q in queries]
    batch = QueryBatch(indexes)

    batched = scan_fragment_batch(batch, structs)
    for eid, ix in enumerate(indexes):
        mine = [(sid, spos.tolist(), qpos.tolist())
                for geid, sid, spos, qpos in batched if geid == eid]
        solo = [(sid, spos.tolist(), qpos.tolist())
                for sid, spos, qpos in scan_fragment(ix, structs)]
        assert mine == solo, f"entry {eid} diverges from its solo scan"


def test_query_batch_rejects_mixed_word_sizes():
    rng = np.random.default_rng(51)
    db = random_nt_db(rng, 4)
    q = db.sequence(0)[:80].copy()
    with pytest.raises(ValueError):
        QueryBatch([WordIndex.for_dna(q, 11), WordIndex.for_dna(q, 12)])


# ----------------------------------------------------------------------
# search_batch byte-identity
# ----------------------------------------------------------------------
def test_search_batch_matches_sequential_nt_both_strands():
    rng = np.random.default_rng(52)
    db = random_nt_db(rng, 30)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:140].copy() for i in (0, 7, 14, 21, 28)]
    assert batch_dumps(queries, db, scheme, params) == \
        sequential_dumps(queries, db, scheme, params)


def test_search_batch_matches_sequential_protein():
    rng = np.random.default_rng(53)
    db = random_aa_db(rng, 24)
    scheme = ProteinScore()
    params = SearchParams(word_size=3, neighbor_threshold=11,
                          xdrop_ungapped=16)
    queries = [db.sequence(i)[:70].copy() for i in (2, 8, 15, 20)]
    assert batch_dumps(queries, db, scheme, params, both_strands=False) == \
        sequential_dumps(queries, db, scheme, params, both_strands=False)


def test_search_batch_matches_sequential_with_masking():
    rng = np.random.default_rng(54)
    db = random_nt_db(rng, 20)
    # Low-complexity runs the DUST filter actually masks.
    db.add("lc", "ATATATATATAT" * 20)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11, filter_low_complexity=True)
    queries = [db.sequence(3)[:130].copy(),
               db.sequence(len(db) - 1)[:150].copy(),
               db.sequence(11)[:130].copy()]
    assert batch_dumps(queries, db, scheme, params) == \
        sequential_dumps(queries, db, scheme, params)


def test_search_batch_empty_short_and_duplicate_queries():
    rng = np.random.default_rng(55)
    db = random_nt_db(rng, 18)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(5)[:120].copy()
    queries = [np.array([], dtype=np.uint8),      # empty
               db.sequence(2)[:7].copy(),         # shorter than word size
               q, q.copy(),                       # exact duplicates
               db.sequence(9)[:100].copy()]
    assert batch_dumps(queries, db, scheme, params) == \
        sequential_dumps(queries, db, scheme, params)
    # Degenerate whole-batch cases.
    assert search_batch([], db, scheme, params) == []
    only_short = search_batch([np.array([], dtype=np.uint8)], db, scheme,
                              params)
    assert len(only_short) == 1 and only_short[0].hits == []


def test_search_batch_loop_engine_and_validation():
    rng = np.random.default_rng(56)
    db = random_nt_db(rng, 12)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:90].copy() for i in (1, 6)]
    assert batch_dumps(queries, db, scheme, params, engine="loop") == \
        batch_dumps(queries, db, scheme, params)
    with pytest.raises(ValueError):
        search_batch(queries, db, scheme, params, engine="bogus")
    with pytest.raises(ValueError):
        search_batch(queries, db, scheme, params, query_ids=["just-one"])


# ----------------------------------------------------------------------
# Batch planning
# ----------------------------------------------------------------------
def test_plan_query_batches_shapes():
    assert plan_query_batches(0, 2) == []
    assert plan_query_batches(6, 2, max_batch=32) == [(0, 1, 2, 3, 4, 5)]
    assert plan_query_batches(7, 2, max_batch=3) == [(0, 1, 2), (3, 4),
                                                     (5, 6)]
    for n in (1, 2, 5, 17, 64):
        for max_batch in (1, 3, 32):
            groups = plan_query_batches(n, 2, max_batch=max_batch)
            flat = [qi for g in groups for qi in g]
            assert flat == list(range(n))
            assert all(len(g) <= max_batch for g in groups)
            assert max(len(g) for g in groups) - \
                min(len(g) for g in groups) <= 1


# ----------------------------------------------------------------------
# Through the pool
# ----------------------------------------------------------------------
def test_pool_batched_tasks_byte_identical_at_two_jobs():
    rng = np.random.default_rng(57)
    db = random_nt_db(rng, 26, min_len=100, max_len=300)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:140].copy() for i in (0, 5, 12, 19, 24)]
    ids = [f"q{i}" for i in range(len(queries))]
    serial = sequential_dumps(queries, db, scheme, params)
    with ExecPool(jobs=2) as pool:
        got = pool.search_many(queries, db, scheme, params, query_ids=ids,
                               n_fragments=4)
        # Per-call cap: 2 groups of 3+2 queries, still byte-identical.
        capped = pool.search_many(queries, db, scheme, params,
                                  query_ids=ids, n_fragments=4,
                                  query_batch=3)
    assert [dump(r) for r in got] == serial
    assert [dump(r) for r in capped] == serial


def test_pool_hedges_batched_range_task_under_fault():
    rng = np.random.default_rng(58)
    db = random_nt_db(rng, 24, min_len=100, max_len=300)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:150].copy() for i in (2, 9, 17)]
    serial = sequential_dumps(queries, db, scheme, params)
    plan = FaultPlan(faults=(Fault("drop_result", rank=0, task_index=0),))
    with ExecPool(jobs=2, fault_plan=plan, hedge_after=0.25,
                  task_timeout=2.0) as pool:
        got = pool.search_many(queries, db, scheme, params,
                               query_ids=[f"q{i}"
                                          for i in range(len(queries))],
                               n_fragments=4)
        ledger = pool.ledger.summary()
        recovered = [e.task for e in pool.ledger.entries
                     if e.kind in ("hedge", "requeue", "hang_kill")]
    assert [dump(r) for r in got] == serial
    assert ledger.get("hedge", 0) + ledger.get("requeue", 0) >= 1
    # The recovered unit is a whole batched range task: a tuple of
    # query indexes crossed with a tuple of pack names.
    assert recovered
    qis, names = recovered[0]
    assert isinstance(qis, tuple) and len(qis) == len(queries)
    assert isinstance(names, tuple) and len(names) >= 1


def test_injector_matches_query_inside_batch():
    from repro.exec import FaultInjector

    plan = FaultPlan(faults=(Fault("slow", query=2, delay=0.0),))
    inj = FaultInjector(plan, rank=0)
    assert inj.on_task((0, 1), (0,)) is None       # 2 not in the batch
    fault = inj.on_task((1, 2, 3), (0, 1))
    assert fault is not None and fault.kind == "slow"


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------
def test_profile_emits_stage_json_to_stderr(monkeypatch, capsys):
    monkeypatch.setenv(PROFILE_ENV, "1")
    rng = np.random.default_rng(59)
    db = random_nt_db(rng, 15)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:120].copy() for i in (1, 6, 11)]
    search(queries[0], db, scheme, params)
    search_batch(queries, db, scheme, params)
    err = capsys.readouterr().err.strip().splitlines()
    assert len(err) == 2, "one JSON line per top-level search"
    single, batched = (json.loads(line) for line in err)
    assert single["profile"] == "search"
    assert batched["profile"] == "search_batch"
    assert batched["n_queries"] == len(queries)
    for doc in (single, batched):
        assert set(doc["stages"]) <= {"index", "pack", "scan", "seed",
                                      "extend", "gapped", "gapped_bulk"}
        assert doc["total_s"] >= 0.0
    assert batched["counters"].get("seeds", 0) >= 0


def test_profile_disabled_is_silent(monkeypatch, capsys):
    monkeypatch.setenv(PROFILE_ENV, "0")
    rng = np.random.default_rng(60)
    db = random_nt_db(rng, 8)
    search(db.sequence(1)[:90].copy(), db, NucleotideScore(),
           SearchParams(word_size=11))
    assert capsys.readouterr().err == ""


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_batched_tabular_output_matches_no_query_batch(tmp_path, capsys):
    from repro.cli import main

    rng = np.random.default_rng(61)
    db = random_nt_db(rng, 16, min_len=120, max_len=300)
    db.write(str(tmp_path))
    fasta = tmp_path / "q.fasta"
    with open(fasta, "w") as f:
        for i in (0, 4, 9, 13):
            seq = "".join(NT_LETTERS[db.sequence(i)[:130]])
            f.write(f">q{i}\n{seq}\n")
    dbpath = str(tmp_path / db.name)

    assert main(["blastn", "-d", dbpath, "-i", str(fasta),
                 "-m", "tabular"]) == 0
    batched_out = capsys.readouterr().out
    assert main(["blastn", "-d", dbpath, "-i", str(fasta),
                 "-m", "tabular", "--no-query-batch"]) == 0
    serial_out = capsys.readouterr().out
    assert batched_out == serial_out
    assert batched_out.strip(), "tabular output should not be empty"
