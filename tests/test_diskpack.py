"""The on-disk pack format: round-trip fidelity against the in-RAM
engine, byte-identity with the shm layout, mmap cold start through the
pool, a per-section corruption matrix, crash-mid-build atomicity, the
incremental append path, and the ``packdb`` / ``blastall --db-pack``
CLI surface."""

import dataclasses
import json
import os
import struct
import subprocess
import sys

import numpy as np
import pytest

from repro.blast.scankernel import build_scan_structures
from repro.blast.score import NucleotideScore, ProteinScore
from repro.blast.search import SearchParams, search
from repro.blast.seqdb import AA, NT, SequenceDB
from repro.blast.fasta import FastaRecord
from repro.cli import EXIT_INTEGRITY, main
from repro.exec import ExecPool
from repro.exec.diskpack import (BUILD_DIR_PREFIX, FORMAT_VERSION, MAGIC,
                                 MANIFEST_NAME, DiskPack, PackFormatError,
                                 PackStore, PackStoreBuilder,
                                 build_pack_store, corrupt_pack_file,
                                 open_pack_count, search_store,
                                 sweep_build_leftovers, write_pack)
from repro.exec.shm import (_FIELDS, PackDB, PackIntegrityError,
                            ShmRegistry, create_pack)

NT_LETTERS = np.array(list("ACGT"))
AA_LETTERS = np.array(list("ARNDCQEGHILKMFPSTWYV"))


def shm_segments():
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith("psm_") or n.startswith("repro"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


@pytest.fixture(autouse=True)
def no_leaks():
    before = shm_segments()
    yield
    assert shm_segments() == before, "test leaked shared-memory segments"
    assert open_pack_count() == 0, "test leaked an open DiskPack mapping"


def random_nt_db(rng, n_seqs, min_len=5, max_len=300):
    db = SequenceDB(NT)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"s{i} desc", "".join(NT_LETTERS[rng.integers(0, 4, length)]))
    return db


def random_aa_db(rng, n_seqs, min_len=5, max_len=200):
    db = SequenceDB(AA)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"p{i}", "".join(AA_LETTERS[rng.integers(0, 20, length)]))
    return db


def dump(results):
    """Full byte-level result dump (every HSP field, hit order, ids)."""
    return (results.query_id, results.query_len, results.db_residues,
            results.db_sequences,
            [(h.subject_id, h.description, h.subject_len, h.fragment_id,
              [dataclasses.astuple(p) for p in h.hsps])
             for h in results.hits])


def store_files(directory):
    return sorted(os.listdir(directory))


# ----------------------------------------------------------------------
# Round trip: build → reopen → search, byte-identical to the RAM engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_fragments", [1, 3, 8])
def test_round_trip_nt(tmp_path, n_fragments):
    rng = np.random.default_rng(100 + n_fragments)
    db = random_nt_db(rng, 24)
    store = build_pack_store(db, str(tmp_path / "store"), seqtype=NT,
                             n_fragments=n_fragments)
    assert len(store) == len(db)
    assert store.total_residues == db.total_residues
    assert len(store.packs) == min(n_fragments, len(db))
    params = SearchParams(word_size=11)
    scheme = NucleotideScore()
    for qi in (0, 7, 19):
        q = db.sequence(qi)[:150].copy()
        got = search_store(q, store, scheme, params, query_id=f"q{qi}")
        want = search(q, db, scheme, params, query_id=f"q{qi}")
        assert dump(got) == dump(want)
    # A fresh process would re-open from the manifest: same answer.
    reopened = PackStore.open(str(tmp_path / "store"))
    q = db.sequence(7)[:150].copy()
    assert dump(search_store(q, reopened, scheme, params, query_id="q7")) \
        == dump(search(q, db, scheme, params, query_id="q7"))
    assert store.verify() == len(store.packs)
    assert open_pack_count() == 0


def test_round_trip_protein(tmp_path):
    rng = np.random.default_rng(7)
    db = random_aa_db(rng, 16)
    store = build_pack_store(db, str(tmp_path / "store"), seqtype=AA,
                             n_fragments=3)
    params = SearchParams(word_size=3, neighbor_threshold=11)
    scheme = ProteinScore()
    for qi in (0, 5, 11):
        q = db.sequence(qi)[:90].copy()
        got = search_store(q, store, scheme, params, query_id=f"q{qi}",
                           both_strands=False)
        want = search(q, db, scheme, params, query_id=f"q{qi}",
                      both_strands=False)
        assert dump(got) == dump(want)


def test_round_trip_property_random_corpora(tmp_path):
    """Seeded property loop: random corpora of both residue types, all
    queries byte-identical between the mmapped store and the in-RAM
    database."""
    for seed in (1, 2, 3):
        rng = np.random.default_rng(seed)
        for seqtype in (NT, AA):
            if seqtype == NT:
                db = random_nt_db(rng, int(rng.integers(3, 20)))
                params = SearchParams(word_size=11)
                scheme = NucleotideScore()
            else:
                db = random_aa_db(rng, int(rng.integers(3, 15)))
                params = SearchParams(word_size=3, neighbor_threshold=11)
                scheme = ProteinScore()
            d = str(tmp_path / f"s{seed}-{seqtype}")
            store = build_pack_store(
                db, d, seqtype=seqtype,
                n_fragments=int(rng.integers(1, 6)),
                word_size=params.word_size)
            qi = int(rng.integers(0, len(db)))
            q = db.sequence(qi)[:120].copy()
            got = search_store(q, store, scheme, params, query_id="q")
            want = search(q, db, scheme, params, query_id="q")
            assert dump(got) == dump(want), (seed, seqtype)


def test_empty_and_single_sequence_stores(tmp_path):
    empty = build_pack_store([], str(tmp_path / "empty"), seqtype=NT,
                             n_fragments=3)
    assert len(empty) == 0 and empty.total_residues == 0
    from repro.blast.alphabet import encode_dna
    q = encode_dna("ACGTACGTACGTACGT")
    r = search_store(q, empty, NucleotideScore(), SearchParams(word_size=11))
    assert r.hits == [] and r.db_sequences == 0

    db = SequenceDB(NT)
    db.add("only one", "ACGTACGTACGTACGTACGTACGT")
    one = build_pack_store(db, str(tmp_path / "one"), seqtype=NT,
                           n_fragments=4)
    assert len(one.packs) == 1, "empty fragments must be skipped"
    got = search_store(db.sequence(0), one, NucleotideScore(),
                       SearchParams(word_size=11), query_id="q")
    want = search(db.sequence(0), db, NucleotideScore(),
                  SearchParams(word_size=11), query_id="q")
    assert dump(got) == dump(want)


def test_builder_source_ids_cover_corpus(tmp_path):
    rng = np.random.default_rng(17)
    db = random_nt_db(rng, 21)
    store = build_pack_store(db, str(tmp_path / "store"), seqtype=NT,
                             n_fragments=5)
    seen = []
    for pack in store.open_packs():
        seen.extend(pack.spec.source_ids)
        pack.close()
    assert sorted(seen) == list(range(len(db)))


def test_streaming_build_from_fasta_file(tmp_path):
    rng = np.random.default_rng(23)
    db = random_nt_db(rng, 12)
    fasta = tmp_path / "db.fasta"
    from repro.blast.alphabet import decode_dna
    with open(fasta, "w") as f:
        for i in range(len(db)):
            f.write(f">{db.description(i)}\n{decode_dna(db.sequence(i))}\n")
    store = build_pack_store(str(fasta), str(tmp_path / "store"),
                             seqtype=NT, n_fragments=3)
    q = db.sequence(4)[:100].copy()
    params = SearchParams(word_size=11)
    assert dump(search_store(q, store, NucleotideScore(), params,
                             query_id="q")) \
        == dump(search(q, db, NucleotideScore(), params, query_id="q"))


# ----------------------------------------------------------------------
# Disk layout == shm layout, byte for byte
# ----------------------------------------------------------------------
def test_disk_layout_matches_shm_layout(tmp_path):
    """The whole point of the format: a pack file's data region is the
    shm segment's bytes — same sections, same offsets, same CRCs — so
    cold start is one memcpy, no re-encode."""
    rng = np.random.default_rng(5)
    db = random_nt_db(rng, 9)
    structs = build_scan_structures(db, 11, 4)
    descriptions = [db.description(i) for i in range(len(db))]
    path = str(tmp_path / "frag.rpk")
    write_pack(path, structs, descriptions, seqtype=NT, store_id="sid",
               version=0, fragment_id=0, source_ids=range(len(db)))

    registry = ShmRegistry()
    spec = create_pack(structs, descriptions, NT, ("tok", 0, 0),
                       fragment_id=0, registry=registry)
    try:
        with DiskPack(path) as pack:
            assert pack.layout == tuple(spec.arrays)
            assert pack.checksums == tuple(spec.checksums)
            assert [f for f, _ in pack.checksums] == list(_FIELDS)
            from multiprocessing import shared_memory
            seg = shared_memory.SharedMemory(name=spec.name)
            try:
                assert bytes(pack.data) == bytes(seg.buf[:spec.size])
            finally:
                seg.close()
    finally:
        registry.release(spec.name)


def test_diskpack_feeds_scan_engine_directly(tmp_path):
    """PackDB over a mapping is a first-class scan database: the search
    engine consumes its pre-built structures without touching the
    ScanCache."""
    rng = np.random.default_rng(31)
    db = random_nt_db(rng, 8)
    structs = build_scan_structures(db, 11, 4)
    descriptions = [db.description(i) for i in range(len(db))]
    path = str(tmp_path / "frag.rpk")
    write_pack(path, structs, descriptions, seqtype=NT, store_id="sid",
               version=0, fragment_id=0, source_ids=range(len(db)))
    params = SearchParams(word_size=11)
    q = db.sequence(2)[:100].copy()
    with DiskPack(path) as pack:
        pdb = PackDB(pack)
        assert pdb.scan_structures(11, 4) is pack.structs
        assert pdb.scan_structures(12, 4) is None
        got = search(q, pdb, NucleotideScore(), params, query_id="q",
                     engine="scan")
        del pdb
    want = search(q, db, NucleotideScore(), params, query_id="q")

    def no_frag(d):
        head, hits = d[:4], d[4]
        return head, [(s, desc, sl, [h for h in hsps])
                      for s, desc, sl, _frag, hsps in hits]
    # The PackDB path tags hits with its fragment id; everything else
    # — ids, order, scores, alignments — must be byte-identical.
    assert no_frag(dump(got)) == no_frag(dump(want))


# ----------------------------------------------------------------------
# Pool cold start from disk
# ----------------------------------------------------------------------
def test_pool_cold_start_matches_serial(tmp_path):
    rng = np.random.default_rng(41)
    db = random_nt_db(rng, 18)
    store = build_pack_store(db, str(tmp_path / "store"), seqtype=NT,
                             n_fragments=4)
    params = SearchParams(word_size=11)
    scheme = NucleotideScore()
    queries = [db.sequence(i)[:120].copy() for i in (1, 9)]
    with ExecPool(jobs=2) as pool:
        for qi, q in enumerate(queries):
            par = pool.search(q, store, scheme, params, query_id=f"q{qi}")
            ser = search(q, db, scheme, params, query_id=f"q{qi}")
            assert dump(par) == dump(ser)
        assert open_pack_count() == 0, \
            "cold start must close every mapping after the shm copy"


def test_pool_and_search_store_reject_word_size_mismatch(tmp_path):
    rng = np.random.default_rng(43)
    db = random_nt_db(rng, 6)
    store = build_pack_store(db, str(tmp_path / "store"), seqtype=NT,
                             n_fragments=2, word_size=11)
    q = db.sequence(0)[:80].copy()
    bad = SearchParams(word_size=7)
    with pytest.raises(ValueError, match="word size"):
        search_store(q, store, NucleotideScore(), bad)
    with ExecPool(jobs=1) as pool:
        with pytest.raises(ValueError, match="word size"):
            pool.search(q, store, NucleotideScore(), bad)


# ----------------------------------------------------------------------
# Format negotiation and truncation
# ----------------------------------------------------------------------
def one_pack_file(tmp_path, seed=3, n=8):
    rng = np.random.default_rng(seed)
    db = random_nt_db(rng, n)
    store = build_pack_store(db, str(tmp_path / "store"), seqtype=NT,
                             n_fragments=1)
    return store.pack_path(store.packs[0]), db, store


def test_bad_magic_rejected(tmp_path):
    path, _db, _store = one_pack_file(tmp_path)
    corrupt_pack_file(path, "preamble")
    with pytest.raises(PackFormatError, match="magic"):
        DiskPack(path)
    assert open_pack_count() == 0


def test_unsupported_format_version_rejected(tmp_path):
    path, _db, _store = one_pack_file(tmp_path)
    with open(path, "r+b") as f:
        f.seek(len(MAGIC))
        f.write(struct.pack("<I", FORMAT_VERSION + 1))
    with pytest.raises(PackFormatError, match="version"):
        DiskPack(path)


@pytest.mark.parametrize("keep", [4, 20, 200])
def test_truncated_file_rejected(tmp_path, keep):
    """Cut the file inside the preamble, the header, and the data
    region; every cut is detected before any view is handed out."""
    path, _db, _store = one_pack_file(tmp_path)
    data = open(path, "rb").read()
    open(path, "wb").write(data[:keep])
    with pytest.raises(PackIntegrityError):
        DiskPack(path)
    open(path, "wb").write(data[:-100])
    with pytest.raises(PackIntegrityError, match="truncated"):
        DiskPack(path)


# ----------------------------------------------------------------------
# Corruption matrix: every section, typed error, never a wrong answer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("field", list(_FIELDS) + ["preamble", "header"])
def test_corruption_detected_per_section(tmp_path, field):
    path, _db, store = one_pack_file(tmp_path, seed=9, n=10)
    corrupt_pack_file(path, field)
    with pytest.raises(PackIntegrityError):
        DiskPack(path)
    # The store-level surfaces refuse too — verify, serial search, pool.
    with pytest.raises(PackIntegrityError):
        store.verify()
    from repro.blast.alphabet import encode_dna
    q = encode_dna("ACGTACGTACGTACGTACGT")
    with pytest.raises(PackIntegrityError):
        search_store(q, store, NucleotideScore(), SearchParams(word_size=11))
    assert open_pack_count() == 0


def test_pool_refuses_corrupt_store_before_any_result(tmp_path):
    rng = np.random.default_rng(51)
    db = random_nt_db(rng, 10)
    store = build_pack_store(db, str(tmp_path / "store"), seqtype=NT,
                             n_fragments=3)
    corrupt_pack_file(store.pack_path(store.packs[1]))
    q = db.sequence(0)[:80].copy()
    with ExecPool(jobs=2) as pool:
        with pytest.raises(PackIntegrityError):
            pool.search(q, store, NucleotideScore(), SearchParams(word_size=11))
    assert open_pack_count() == 0


def test_swapped_pack_files_rejected(tmp_path):
    """Two structurally valid packs in each other's places: each file's
    recorded identity disagrees with the manifest entry naming it."""
    rng = np.random.default_rng(53)
    db = random_nt_db(rng, 14)
    store = build_pack_store(db, str(tmp_path / "store"), seqtype=NT,
                             n_fragments=2)
    a = store.pack_path(store.packs[0])
    b = store.pack_path(store.packs[1])
    tmp = a + ".swap"
    os.rename(a, tmp)
    os.rename(b, a)
    os.rename(tmp, b)
    with pytest.raises(PackIntegrityError, match="identity"):
        store.open_packs()
    assert open_pack_count() == 0


def test_manifest_missing_bad_json_and_future_version(tmp_path):
    with pytest.raises(PackFormatError, match="manifest"):
        PackStore.open(str(tmp_path))
    manifest = tmp_path / MANIFEST_NAME
    manifest.write_text("{not json")
    with pytest.raises(PackFormatError, match="unreadable"):
        PackStore.open(str(tmp_path))
    manifest.write_text(json.dumps({"format_version": FORMAT_VERSION + 7}))
    with pytest.raises(PackFormatError, match="version"):
        PackStore.open(str(tmp_path))


# ----------------------------------------------------------------------
# Crash mid-build: atomicity of the commit protocol
# ----------------------------------------------------------------------
_BUILD_SCRIPT = """\
import sys
import numpy as np
from repro.blast.seqdb import NT, SequenceDB
from repro.exec.diskpack import build_pack_store

rng = np.random.default_rng(61)
letters = np.array(list("ACGT"))
db = SequenceDB(NT)
for i in range(16):
    n = int(rng.integers(30, 200))
    db.add(f"s{i}", "".join(letters[rng.integers(0, 4, n)]))
build_pack_store(db, sys.argv[1], seqtype=NT, n_fragments=3)
print("committed")
"""


def _run_build(directory, env_extra=None):
    env = dict(os.environ, PYTHONPATH="src")
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-c", _BUILD_SCRIPT, directory],
        env=env, cwd=os.path.dirname(os.path.dirname(__file__)) or ".",
        capture_output=True, text=True)


@pytest.mark.parametrize("env_extra,desc", [
    ({"REPRO_DISKPACK_CRASH_AFTER_SECTIONS": "3"}, "mid-section-write"),
    ({"REPRO_DISKPACK_CRASH_BEFORE_MANIFEST": "1"}, "before-manifest"),
])
def test_crash_mid_build_leaves_no_readable_pack(tmp_path, env_extra, desc):
    d = str(tmp_path / "store")
    proc = _run_build(d, env_extra)
    assert proc.returncode == 86, (desc, proc.stdout, proc.stderr)
    # Nothing committed: no manifest, and no finished .rpk a reader
    # would trust without one.
    assert not os.path.exists(os.path.join(d, MANIFEST_NAME))
    with pytest.raises(PackFormatError, match="manifest"):
        PackStore.open(d)
    # A clean rebuild over the wreckage succeeds and sweeps it.
    proc = _run_build(d)
    assert proc.returncode == 0, proc.stderr
    assert "committed" in proc.stdout
    leftovers = [f for f in store_files(d)
                 if f.startswith(BUILD_DIR_PREFIX) or f.endswith(".tmp")]
    assert leftovers == []
    store = PackStore.open(d)
    assert store.verify() == len(store.packs)
    assert len(store) == 16


def test_builder_abort_on_exception_cleans_spools(tmp_path):
    d = str(tmp_path / "store")
    with pytest.raises(RuntimeError):
        with PackStoreBuilder(d, seqtype=NT, n_fragments=2) as b:
            b.add("s0", "ACGTACGTACGTACGT")
            raise RuntimeError("caller blew up mid-build")
    assert not os.path.exists(os.path.join(d, MANIFEST_NAME))
    assert [f for f in store_files(d) if f.startswith(BUILD_DIR_PREFIX)] == []
    assert sweep_build_leftovers(d) == []


# ----------------------------------------------------------------------
# Incremental append
# ----------------------------------------------------------------------
def test_append_rebuilds_only_lightest_fragment(tmp_path):
    rng = np.random.default_rng(71)
    db = random_nt_db(rng, 15)
    store = build_pack_store(db, str(tmp_path / "store"), seqtype=NT,
                             n_fragments=3)
    before = {e.fragment_id: e.version for e in store.packs}
    assert set(before.values()) == {0}
    v0 = store._version

    extra = [FastaRecord(f"x{i} new",
                         "".join(NT_LETTERS[rng.integers(0, 4, 80)]))
             for i in range(4)]
    for rec in extra:
        db.add(rec.description, rec.sequence)
    store.append(extra)

    after = {e.fragment_id: e.version for e in store.packs}
    bumped = [f for f in after if after[f] != before[f]]
    assert len(bumped) == 1, "append must re-pack exactly one fragment"
    assert store._version == v0 + 1
    assert len(store) == len(db)
    assert store.total_residues == db.total_residues

    params = SearchParams(word_size=11)
    scheme = NucleotideScore()
    for target in (store, PackStore.open(str(tmp_path / "store"))):
        q = db.sequence(len(db) - 2)[:80].copy()
        got = search_store(q, target, scheme, params, query_id="q")
        want = search(q, db, scheme, params, query_id="q")
        assert dump(got) == dump(want)


def test_append_invalidates_pool_cache(tmp_path):
    """The store's version bump must flow through the pool's staleness
    check: results after append reflect the new records."""
    rng = np.random.default_rng(73)
    db = random_nt_db(rng, 8)
    store = build_pack_store(db, str(tmp_path / "store"), seqtype=NT,
                             n_fragments=2)
    params = SearchParams(word_size=11)
    scheme = NucleotideScore()
    from repro.blast.alphabet import encode_dna
    novel = "".join(NT_LETTERS[rng.integers(0, 4, 120)])
    q = encode_dna(novel)
    with ExecPool(jobs=2) as pool:
        cold = pool.search(q, store, scheme, params, query_id="q")
        store.append([FastaRecord("novel seq", novel)])
        db.add("novel seq", novel)
        warm = pool.search(q, store, scheme, params, query_id="q")
        assert dump(warm) == dump(search(q, db, scheme, params,
                                         query_id="q"))
        assert warm.db_sequences == cold.db_sequences + 1
        assert any(h.description == "novel seq" for h in warm.hits)


# ----------------------------------------------------------------------
# CLI: packdb build / info / verify and blastall --db-pack
# ----------------------------------------------------------------------
@pytest.fixture
def cli_corpus(tmp_path):
    rng = np.random.default_rng(0)
    target = "".join(rng.choice(list("ACGT"), 500))
    fasta = tmp_path / "seqs.fasta"
    fasta.write_text(f">s1 target\n{target}\n>s2 decoy\n"
                     + "".join(rng.choice(list("ACGT"), 400)) + "\n")
    query = tmp_path / "query.fasta"
    query.write_text(f">q1\n{target[100:250]}\n")
    return str(fasta), str(query), str(tmp_path)


def test_cli_packdb_build_info_verify(cli_corpus, capsys):
    fasta, _query, d = cli_corpus
    out_dir = os.path.join(d, "store")
    assert main(["packdb", "build", "-i", fasta, "-o", out_dir,
                 "--fragments", "2"]) == 0
    out = capsys.readouterr().out
    assert "2 sequences" in out
    assert main(["packdb", "info", out_dir, "--verify"]) == 0
    out = capsys.readouterr().out
    assert "fragment" in out.lower()
    assert main(["packdb", "verify", out_dir]) == 0
    capsys.readouterr()
    # Both -i and --from-db, or neither, is a usage error.
    assert main(["packdb", "build", "-o", out_dir + "2"]) == 2
    capsys.readouterr()


def test_cli_packdb_verify_exit_code_on_corruption(cli_corpus, capsys):
    fasta, _query, d = cli_corpus
    out_dir = os.path.join(d, "store")
    main(["packdb", "build", "-i", fasta, "-o", out_dir,
          "--fragments", "1"])
    capsys.readouterr()
    store = PackStore.open(out_dir)
    corrupt_pack_file(store.pack_path(store.packs[0]))
    assert main(["packdb", "verify", out_dir]) == EXIT_INTEGRITY
    assert main(["packdb", "info", out_dir, "--verify"]) == EXIT_INTEGRITY
    capsys.readouterr()


def test_cli_blastall_db_pack_matches_ram_path(cli_corpus, capsys):
    fasta, query, d = cli_corpus
    out_dir = os.path.join(d, "store")
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    main(["packdb", "build", "-i", fasta, "-o", out_dir,
          "--fragments", "2"])
    capsys.readouterr()
    assert main(["blastall", "-p", "blastn", "-d", f"{d}/mini",
                 "-i", query]) == 0
    ram = capsys.readouterr().out
    assert main(["blastall", "-p", "blastn", "--db-pack", out_dir,
                 "-i", query]) == 0
    disk = capsys.readouterr().out
    assert main(["blastall", "-p", "blastn", "--db-pack", out_dir,
                 "-i", query, "--jobs", "2"]) == 0
    disk_par = capsys.readouterr().out
    assert "s1 target" in ram
    assert disk == ram
    assert disk_par == ram


def test_cli_blastall_db_pack_usage_and_integrity(cli_corpus, capsys):
    fasta, query, d = cli_corpus
    out_dir = os.path.join(d, "store")
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    main(["packdb", "build", "-i", fasta, "-o", out_dir,
          "--fragments", "1"])
    capsys.readouterr()
    # -d and --db-pack are mutually exclusive.
    assert main(["blastall", "-p", "blastn", "-d", f"{d}/mini",
                 "--db-pack", out_dir, "-i", query]) == 2
    # Pack stores are nt here; a protein program is a usage error.
    assert main(["blastall", "-p", "blastp", "--db-pack", out_dir,
                 "-i", query]) == 2
    capsys.readouterr()
    store = PackStore.open(out_dir)
    corrupt_pack_file(store.pack_path(store.packs[0]))
    assert main(["blastall", "-p", "blastn", "--db-pack", out_dir,
                 "-i", query]) == EXIT_INTEGRITY
    capsys.readouterr()
    assert open_pack_count() == 0
