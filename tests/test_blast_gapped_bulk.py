"""Equivalence battery for the batched score-only gapped stage.

The two-pass gapped pipeline (``bulk_banded_score`` forward pass +
pointer-matrix traceback for survivors) must be *byte-identical* to the
scalar reference path.  Two layers of checks:

1. Kernel level — ``bulk_banded_score`` returns exactly the scalar
   ``banded_local_align``'s ``(score, q_end, s_end)`` per candidate,
   over random nt / protein / PSSM corpora, band widths 4/24/64, and
   the ``gap_open == gap_extend`` recurrence fallback.

2. Pipeline level — culling (diagonal memoization, E-value reject
   skips, the per-subject cap) never changes the rendered output:
   full result dumps and tabular text match the scalar path
   (``gapped_bulk=False`` / ``REPRO_GAPPED_BULK=0``) through
   ``search``, ``search_batch`` (two-hit and one-hit seeding), the
   process pool at two jobs, and the PSI-BLAST PSSM rounds.
"""

import dataclasses
import os
from dataclasses import replace

import numpy as np
import pytest

from repro.blast.gapped import banded_local_align, bulk_banded_score
from repro.blast.profile import profiled
from repro.blast.psiblast import psiblast
from repro.blast.score import (
    BLOSUM62,
    NucleotideScore,
    ProteinScore,
    ScoringScheme,
)
from repro.blast.search import (
    GAPPED_BULK_ENV,
    SearchParams,
    search,
    search_batch,
)
from repro.blast.seqdb import AA, NT, SequenceDB

NT_LETTERS = np.array(list("ACGT"))
AA_LETTERS = np.array(list("ARNDCQEGHILKMFPSTWYV"))


# ----------------------------------------------------------------------
# Corpus helpers
# ----------------------------------------------------------------------
def random_nt_db(rng, n_seqs, min_len=60, max_len=300):
    db = SequenceDB(NT)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"s{i} desc", "".join(NT_LETTERS[rng.integers(0, 4, length)]))
    return db


def random_aa_db(rng, n_seqs, min_len=60, max_len=250):
    db = SequenceDB(AA)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"p{i}", "".join(AA_LETTERS[rng.integers(0, 20, length)]))
    return db


def mutated_query(db, index, rng, period=9, length=250):
    """An extract with periodic substitutions: keeps seeds alive while
    forcing plenty of near-threshold gapped candidates."""
    q = db.sequence(index)[:length].copy()
    base = 4 if db.seqtype == NT else 20
    q[::period] = (q[::period] + int(rng.integers(1, base))) % base
    return q


def dump(results):
    """Full byte-level result dump (every HSP field, hit order, ids)."""
    return (results.query_id, results.query_len,
            [(h.subject_id, h.description, h.subject_len,
              [dataclasses.astuple(p) for p in h.hsps])
             for h in results.hits])


# ----------------------------------------------------------------------
# 1. Kernel equivalence: bulk scores == scalar traceback scores
# ----------------------------------------------------------------------
def _random_candidates(rng, alphabet_size, n_cand, max_len=90):
    """Random (query, subject, diag) triples packed into flat
    concatenations the way the search driver packs them."""
    q_seqs, s_seqs = [], []
    q_off, q_len, s_off, s_len, diag = [], [], [], [], []
    qpos = spos = 0
    for _ in range(n_cand):
        ql = int(rng.integers(5, max_len))
        sl = int(rng.integers(5, max_len))
        q = rng.integers(0, alphabet_size, ql).astype(np.int64)
        s = rng.integers(0, alphabet_size, sl).astype(np.int64)
        if rng.random() < 0.5:  # half the corpus: planted homology
            k = min(ql, sl)
            s[:k] = q[:k]
            s[::7] = rng.integers(0, alphabet_size, len(s[::7]))
        # Deliberately include diagonals at and beyond the valid range.
        d = int(rng.integers(-ql - 8, sl + 8))
        q_seqs.append(q)
        s_seqs.append(s)
        q_off.append(qpos)
        q_len.append(ql)
        s_off.append(spos)
        s_len.append(sl)
        diag.append(d)
        qpos += ql
        spos += sl
    qcat = np.concatenate(q_seqs)
    scat = np.concatenate(s_seqs)
    return (qcat, scat, np.array(q_off), np.array(q_len),
            np.array(s_off), np.array(s_len), np.array(diag))


def _assert_bulk_matches_scalar(rng, scheme, alphabet_size, band,
                                n_cand=300):
    qcat, scat, q_off, q_len, s_off, s_len, diag = _random_candidates(
        rng, alphabet_size, n_cand)
    score, qend, send = bulk_banded_score(
        qcat, scat, q_off, q_len, s_off, s_len, diag, scheme, band=band)
    for c in range(n_cand):
        q = qcat[q_off[c]:q_off[c] + q_len[c]]
        s = scat[s_off[c]:s_off[c] + s_len[c]]
        aln = banded_local_align(q, s, int(diag[c]), scheme, band=band)
        want = ((aln.score, aln.q_end, aln.s_end) if aln.score > 0
                else (0, 0, 0))
        got = (int(score[c]), int(qend[c]), int(send[c]))
        assert got == want, (
            f"candidate {c}: bulk {got} != scalar {want} "
            f"(ql={q_len[c]} sl={s_len[c]} diag={diag[c]} band={band})")


@pytest.mark.parametrize("band", [4, 24, 64])
def test_bulk_matches_scalar_nucleotide(band):
    rng = np.random.default_rng(100 + band)
    _assert_bulk_matches_scalar(rng, NucleotideScore(), 4, band)


@pytest.mark.parametrize("band", [4, 24, 64])
def test_bulk_matches_scalar_protein(band):
    rng = np.random.default_rng(200 + band)
    _assert_bulk_matches_scalar(rng, ProteinScore(), 20, band)


@pytest.mark.parametrize("band", [4, 24])
def test_bulk_matches_scalar_pssm(band):
    """PSI-BLAST passes query *positions* and a per-position matrix;
    the kernel must gather through that matrix identically."""
    rng = np.random.default_rng(300 + band)
    m = 80  # position count: every query is positions 0..ql-1 < m
    matrix = rng.integers(-4, 9, size=(m, 25)).astype(np.int32)
    matrix.setflags(write=False)
    scheme = ScoringScheme(matrix, 11, 1, "pssm")
    # Queries are position runs, subjects are residues — build by hand.
    q_seqs, s_seqs = [], []
    q_off, q_len, s_off, s_len, diag = [], [], [], [], []
    qpos = spos = 0
    for _ in range(200):
        ql = int(rng.integers(5, m))
        sl = int(rng.integers(5, 90))
        q_seqs.append(np.arange(ql, dtype=np.int64))
        s_seqs.append(rng.integers(0, 20, sl).astype(np.int64))
        q_off.append(qpos)
        q_len.append(ql)
        s_off.append(spos)
        s_len.append(sl)
        diag.append(int(rng.integers(-ql - 4, sl + 4)))
        qpos += ql
        spos += sl
    qcat, scat = np.concatenate(q_seqs), np.concatenate(s_seqs)
    score, qend, send = bulk_banded_score(
        qcat, scat, np.array(q_off), np.array(q_len),
        np.array(s_off), np.array(s_len), np.array(diag), scheme,
        band=band)
    for c in range(len(diag)):
        q = qcat[q_off[c]:q_off[c] + q_len[c]]
        s = scat[s_off[c]:s_off[c] + s_len[c]]
        aln = banded_local_align(q, s, diag[c], scheme, band=band)
        want = ((aln.score, aln.q_end, aln.s_end) if aln.score > 0
                else (0, 0, 0))
        assert (int(score[c]), int(qend[c]), int(send[c])) == want


def test_bulk_gap_open_equals_extend_fallback():
    """gap_open == gap_extend switches the kernel to the per-slot
    E-scan loop; it must stay exact there too."""
    rng = np.random.default_rng(7)
    scheme = NucleotideScore(gap_open=2, gap_extend=2)
    _assert_bulk_matches_scalar(rng, scheme, 4, band=8, n_cand=200)
    scheme = ScoringScheme(BLOSUM62, 3, 3, "aa")
    _assert_bulk_matches_scalar(rng, scheme, 20, band=24, n_cand=150)


def test_bulk_empty_and_degenerate_inputs():
    scheme = NucleotideScore()
    empty = np.array([], dtype=np.int64)
    score, qend, send = bulk_banded_score(
        empty, empty, empty, empty, empty, empty, empty, scheme)
    assert len(score) == len(qend) == len(send) == 0
    # Single candidate whose band misses the subject entirely.
    q = np.array([0, 1, 2, 3], dtype=np.int64)
    s = np.array([0, 1, 2, 3], dtype=np.int64)
    score, qend, send = bulk_banded_score(
        q, s, np.array([0]), np.array([4]), np.array([0]), np.array([4]),
        np.array([500]), scheme, band=4)
    assert (int(score[0]), int(qend[0]), int(send[0])) == (0, 0, 0)


# ----------------------------------------------------------------------
# 2. Pipeline equivalence: culling never changes rendered output
# ----------------------------------------------------------------------
def _scalar(params):
    return replace(params, gapped_bulk=False)


@pytest.mark.parametrize("evalue_cutoff", [10.0, 1e-2])
def test_search_nt_byte_identical(evalue_cutoff):
    rng = np.random.default_rng(40)
    db = random_nt_db(rng, 25)
    params = SearchParams(evalue_cutoff=evalue_cutoff)
    for qi in (2, 7, 11):
        q = mutated_query(db, qi, rng, period=29, length=220)
        bulk = search(q, db, NucleotideScore(), params, query_id="q")
        scal = search(q, db, NucleotideScore(), _scalar(params),
                      query_id="q")
        assert dump(bulk) == dump(scal)
        assert bulk.tabular() == scal.tabular()


@pytest.mark.parametrize("band", [4, 24])
def test_search_protein_byte_identical(band):
    rng = np.random.default_rng(41)
    db = random_aa_db(rng, 30)
    params = SearchParams(word_size=3, band=band)
    for qi in (1, 5, 9):
        q = mutated_query(db, qi, rng, period=9, length=200)
        bulk = search(q, db, ProteinScore(), params, query_id="q")
        scal = search(q, db, ProteinScore(), _scalar(params),
                      query_id="q")
        assert dump(bulk) == dump(scal)
        assert bulk.tabular() == scal.tabular()


@pytest.mark.parametrize("two_hit_window", [40, 0])
def test_search_batch_byte_identical(two_hit_window):
    """Both seeding paths: two-hit (grouped candidates) and one-hit
    (the vectorized bulk-group driver)."""
    rng = np.random.default_rng(42)
    db = random_aa_db(rng, 20)
    params = SearchParams(word_size=3, two_hit_window=two_hit_window)
    queries = [mutated_query(db, qi, rng, period=9, length=180)
               for qi in (0, 3, 6, 12)]
    ids = [f"q{i}" for i in range(len(queries))]
    bulk = search_batch(queries, db, ProteinScore(), params,
                        query_ids=ids)
    scal = search_batch(queries, db, ProteinScore(), _scalar(params),
                        query_ids=ids)
    assert [dump(r) for r in bulk] == [dump(r) for r in scal]


def test_pool_two_jobs_byte_identical():
    from repro.exec import ExecPool

    rng = np.random.default_rng(43)
    db = random_nt_db(rng, 24, min_len=100, max_len=300)
    params = SearchParams()
    scheme = NucleotideScore()
    queries = [mutated_query(db, qi, rng, period=29, length=200)
               for qi in (1, 8, 15)]
    ids = [f"q{i}" for i in range(len(queries))]
    with ExecPool(jobs=2) as pool:
        pooled = pool.search_many(queries, db, scheme, params,
                                  query_ids=ids, n_fragments=4)
    serial = [search(q, db, scheme, _scalar(params), query_id=qid)
              for q, qid in zip(queries, ids)]
    assert [dump(r) for r in pooled] == [dump(r) for r in serial]


def test_psiblast_pssm_rounds_byte_identical(monkeypatch):
    """Round >= 2 searches position indices against a PSSM scheme with
    ``identity_query`` set — the bulk path must survive that too."""
    rng = np.random.default_rng(44)
    db = random_aa_db(rng, 15, min_len=80, max_len=200)
    # Plant a family so the PSSM rounds have material to include.
    seed_seq = db.sequence_str(0)[:120]
    fam = np.frombuffer(seed_seq.encode(), dtype=np.uint8).copy()
    for i in range(4):
        mutant = fam.copy()
        mutant[i + 1::11] = np.frombuffer(
            b"ARND", dtype=np.uint8)[rng.integers(0, 4, len(mutant[i + 1::11]))]
        db.add(f"fam{i}", mutant.tobytes().decode())
    monkeypatch.delenv(GAPPED_BULK_ENV, raising=False)
    bulk = psiblast(seed_seq, db, iterations=3)
    monkeypatch.setenv(GAPPED_BULK_ENV, "0")
    scal = psiblast(seed_seq, db, iterations=3)
    assert bulk.n_iterations == scal.n_iterations
    assert bulk.converged == scal.converged
    assert ([dump(r) for r in bulk.iterations]
            == [dump(r) for r in scal.iterations])


def test_env_kill_switch_forces_scalar(monkeypatch):
    rng = np.random.default_rng(45)
    db = random_aa_db(rng, 30)
    q = mutated_query(db, 2, rng, period=9, length=220)
    params = SearchParams(word_size=3)

    monkeypatch.setenv(GAPPED_BULK_ENV, "0")
    with profiled("t", enabled=True, emit=False) as prof:
        off = search(q, db, ProteinScore(), params, query_id="q")
    assert "gapped_bulk" not in prof.stages

    monkeypatch.delenv(GAPPED_BULK_ENV, raising=False)
    with profiled("t", enabled=True, emit=False) as prof:
        on = search(q, db, ProteinScore(), params, query_id="q")
    assert "gapped_bulk" in prof.stages
    assert dump(on) == dump(off)


def test_tiny_workloads_route_to_scalar():
    """Below ``_BULK_MIN_CANDIDATES`` triggered candidates the batched
    pass costs more than it culls, so the driver routes to the scalar
    path — no ``gapped_bulk`` stage, identical output (both exact)."""
    rng = np.random.default_rng(49)
    db = random_nt_db(rng, 10)
    q = mutated_query(db, 2, rng, period=29, length=200)
    params = SearchParams()
    with profiled("t", enabled=True, emit=False) as prof:
        bulk = search(q, db, NucleotideScore(), params, query_id="q")
    assert prof.counters.get("gapped_trials", 0) > 0  # gapped work ran
    assert "gapped_bulk" not in prof.stages
    scal = search(q, db, NucleotideScore(), _scalar(params), query_id="q")
    assert dump(bulk) == dump(scal)


def test_counters_traceback_bounded_by_trials():
    rng = np.random.default_rng(46)
    db = random_aa_db(rng, 25)
    q = mutated_query(db, 4, rng, period=9, length=220)
    params = SearchParams(word_size=3)
    with profiled("t", enabled=True, emit=False) as prof:
        search(q, db, ProteinScore(), params, query_id="q")
    c = prof.counters
    assert c.get("gapped_trials", 0) > 0
    assert 0 < c.get("gapped_traceback", 0) <= c["gapped_trials"]
    # The whole point of the two-pass stage: most candidates resolve
    # without a pointer-matrix DP on a noisy corpus.
    assert c.get("gapped_culled", 0) > 0


@pytest.mark.parametrize("cap", [1, 3])
def test_max_gapped_per_subject_parity(cap):
    """The cap is a lossy knob — but bulk and scalar must agree on
    exactly what it drops."""
    rng = np.random.default_rng(47)
    db = random_aa_db(rng, 20)
    q = mutated_query(db, 3, rng, period=9, length=200)
    params = SearchParams(word_size=3, max_gapped_per_subject=cap)
    bulk = search(q, db, ProteinScore(), params, query_id="q")
    scal = search(q, db, ProteinScore(), _scalar(params), query_id="q")
    assert dump(bulk) == dump(scal)
    # And the cap actually caps.
    for hit in bulk.hits:
        assert len(hit.hsps) <= max(cap, 1) or cap == 0


def test_gapped_method_xdrop_unaffected():
    """gapped_method='xdrop' bypasses the banded pipeline entirely —
    gapped_bulk must be a no-op there."""
    rng = np.random.default_rng(48)
    db = random_nt_db(rng, 10)
    q = mutated_query(db, 1, rng, period=29, length=180)
    params = SearchParams(gapped_method="xdrop")
    bulk = search(q, db, NucleotideScore(), params, query_id="q")
    scal = search(q, db, NucleotideScore(), _scalar(params), query_id="q")
    assert dump(bulk) == dump(scal)


def test_no_candidates_no_crash():
    """A query with zero seeds exercises the empty-job path."""
    db = SequenceDB(NT)
    db.add("s0", "ACGT" * 40)
    q = np.zeros(30, dtype=np.uint8)  # poly-A: seeds, but vs poly-ACGT
    q[:] = 2  # poly-G — no 11-mer matches ACGT repeats
    res = search(q, db, NucleotideScore(), SearchParams(), query_id="q")
    assert res.hits == []
