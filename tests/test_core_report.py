"""Tests for report formatting."""

import pytest

from repro.core.report import format_comparison, format_series, format_table


def test_format_table_basic():
    text = format_table("Title", ["a", "b"], [[1, 2.5], ["x", 0.001]])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert set(lines[1]) == {"="}
    assert "a" in lines[2] and "b" in lines[2]
    assert "1" in lines[4]
    assert "x" in lines[5]


def test_format_table_number_formats():
    text = format_table("T", ["v"], [[12345.6], [0.0001], [0.0], [42]])
    assert "1.23e+04" in text
    assert "0.0001" in text
    assert "42" in text


def test_format_series_column_per_line():
    text = format_series("S", "x", [1, 2], {"a": [10, 20], "b": [30, 40]})
    lines = text.splitlines()
    assert "a" in lines[2] and "b" in lines[2]
    data_rows = lines[4:]
    assert "10" in data_rows[0] and "30" in data_rows[0]
    assert "20" in data_rows[1] and "40" in data_rows[1]


def test_format_comparison_ratios():
    text = format_comparison("C", ["one", "two"], [10.0, 20.0], [20.0, 20.0])
    assert "2.00" in text   # 20/10
    assert "1.00" in text   # 20/20
    assert "paper" in text and "measured" in text


def test_format_comparison_zero_baseline():
    text = format_comparison("C", ["z"], [0.0], [5.0])
    assert "nan" in text.lower()
