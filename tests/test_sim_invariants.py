"""The runtime invariant checker (:mod:`repro.sim.check`).

Two kinds of coverage: the monitor itself (registration, audits, the
violation ledger) and the component hooks it drives — resources,
stores, containers, disk queues, CPU task sets — including mutation
tests that inject a deliberate bug and assert the checker flags it.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.params import MB
from repro.core.calibration import default_cost_model
from repro.fs.pvfs import PVFS
from repro.fs.striping import StripeLayout
from repro.parallel import FragmentSpec, run_parallel_blast
from repro.parallel.ioadapters import ParallelIO
from repro.sim import (
    Container,
    InvariantViolation,
    PriorityResource,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


# ---------------------------------------------------------------- monitor
def test_monitor_counts_fired_events():
    sim = Simulator()

    def ticker():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)

    sim.process(ticker())
    sim.run()
    assert sim.check.events_fired > 0
    assert sim.check.violations == 0


def test_monitor_rejects_backwards_time():
    sim = Simulator()
    sim.check.note_fire(5.0)
    with pytest.raises(InvariantViolation, match="backwards"):
        sim.check.note_fire(4.0)


def test_bytes_conserved_passes_and_fails():
    sim = Simulator()
    sim.check.bytes_conserved("t", "/f", 100, 100)  # no raise
    with pytest.raises(InvariantViolation, match="byte conservation"):
        sim.check.bytes_conserved("t", "/f", 100, 99)
    assert sim.check.violations == 1
    assert any("byte conservation" in m for m in sim.check.violation_log)


def test_fail_records_in_violation_log():
    sim = Simulator()
    with pytest.raises(InvariantViolation):
        sim.check.fail("synthetic problem")
    # A violation swallowed mid-run (e.g. it only killed one worker
    # process) must resurface in the drain audit.
    with pytest.raises(InvariantViolation, match="synthetic problem"):
        sim.check.assert_drained()


def test_strict_flag_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_STRICT_INVARIANTS", "1")
    assert Simulator().check.strict
    monkeypatch.setenv("REPRO_STRICT_INVARIANTS", "0")
    assert not Simulator().check.strict


def test_clean_empty_sim_drains():
    sim = Simulator()
    sim.run()
    sim.check.assert_consistent()
    sim.check.assert_drained()


# ---------------------------------------------------------------- resources
def test_resource_balanced_use_is_clean():
    sim = Simulator(strict=True)
    res = Resource(sim, capacity=2, name="slots")

    def user():
        req = res.request()
        yield req
        yield sim.timeout(1.0)
        res.release(req)

    for _ in range(5):
        sim.process(user())
    sim.run()
    sim.check.assert_drained()
    assert res.acquires == res.releases == 5


def test_resource_leak_flagged_at_drain():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="slot")

    def leaker():
        yield res.request()          # never released
        yield sim.timeout(1.0)

    def waiter():
        yield sim.timeout(0.5)
        yield res.request()          # blocks forever

    sim.process(leaker(), name="leaker")
    sim.process(waiter(), name="waiter")
    sim.run()
    with pytest.raises(InvariantViolation) as info:
        sim.check.assert_drained()
    msg = str(info.value)
    assert "still held at drain" in msg
    assert "waiter(s) still queued" in msg
    assert "orphaned process" in msg


def test_priority_resource_released_heap_entries_not_flagged():
    """Lazy deletion: a withdrawn PriorityResource request stays on the
    heap but must not count as a queued waiter at drain."""
    sim = Simulator()
    res = PriorityResource(sim, capacity=1, name="pq")

    def holder():
        req = res.request(priority=0)
        yield req
        yield sim.timeout(2.0)
        res.release(req)

    def impatient():
        yield sim.timeout(0.1)
        req = res.request(priority=1)
        res.release(req)             # withdraw before grant
        yield sim.timeout(0.1)

    sim.process(holder())
    sim.process(impatient())
    sim.run()
    sim.check.assert_drained()


def test_store_leftover_getter_is_a_leak():
    sim = Simulator()
    store = Store(sim, capacity=4, name="buf")

    def starved():
        yield store.get()            # nothing ever put

    sim.process(starved(), name="starved")
    sim.run()
    with pytest.raises(InvariantViolation, match="getter"):
        sim.check.assert_drained()


def test_store_leftover_items_are_legal():
    """Abandoned pipeline buffers (a cancelled reader's prefetched
    blocks) may leave items behind; only waiting processes leak."""
    sim = Simulator()
    store = Store(sim, capacity=4, name="buf")

    def producer():
        yield store.put("block")

    sim.process(producer())
    sim.run()
    sim.check.assert_drained()       # item left behind: fine


def test_container_ledger_strict():
    sim = Simulator(strict=True)
    tank = Container(sim, capacity=10.0, init=5.0, name="tank")

    def mover():
        yield tank.get(3.0)
        yield tank.put(2.0)

    sim.process(mover())
    sim.run()
    sim.check.assert_consistent()
    sim.check.assert_drained()
    # Corrupt the ledger behind the container's back: strict audit
    # must notice the level no longer matches init + put - got.
    tank._level += 1.0
    errs = sim.check.audit()
    assert any("ledger" in e or "level" in e for e in errs)


def test_container_waiter_at_drain_is_flagged():
    sim = Simulator()
    tank = Container(sim, capacity=10.0, init=0.0, name="tank")

    def thirsty():
        yield tank.get(1.0)          # never satisfied

    sim.process(thirsty(), name="thirsty")
    sim.run()
    with pytest.raises(InvariantViolation):
        sim.check.assert_drained()


# ---------------------------------------------------------------- cluster
def test_cluster_models_clean_after_real_job():
    """A full master/worker job over PVFS leaves every registered
    component (disks, NICs, CPUs, server stores) in a quiescent state."""
    c = Cluster(n_nodes=8)
    nodes = list(c)
    fs = PVFS(nodes[0], nodes[4:8])
    ios = [ParallelIO(fs.client(w)) for w in nodes[1:4]]
    frags = [FragmentSpec(i, 2 * MB, 2 * MB) for i in range(6)]
    job = run_parallel_blast(nodes[0], nodes[1:4], ios, frags,
                             default_cost_model())
    assert job.fragments_done == 6
    c.sim.run()
    c.sim.check.assert_consistent()
    c.sim.check.assert_drained()


def test_disk_queue_monitor_desync_detected():
    c = Cluster(n_nodes=2)
    disk = c[1].disk
    errs = disk.invariant_errors(strict=True)
    assert errs == []
    disk.queue_len.set(disk.queue_len.level + 1)   # corrupt the monitor
    errs = disk.invariant_errors(strict=True)
    assert any("queue" in e for e in errs)


def test_cpu_monitor_desync_detected():
    c = Cluster(n_nodes=2)
    cpu = c[1].cpu
    assert cpu.invariant_errors(strict=True) == []
    cpu.load.set(3)                                # corrupt the monitor
    assert any("load" in e for e in cpu.invariant_errors(strict=True))


# ---------------------------------------------------------------- mutation
def test_striping_mutation_breaks_byte_conservation():
    """Mutation test: a striping-math bug that silently drops the last
    extent of one server must be flagged by the conservation check —
    first at the faulting read, and again in the drain audit even
    though the job wrapper swallowed the original exception."""
    orig = StripeLayout.extents

    def truncated(self, offset, size):
        per = orig(self, offset, size)
        for lst in reversed(per):
            if lst:
                lst.pop()
                break
        return per

    c = Cluster(n_nodes=8)
    nodes = list(c)
    fs = PVFS(nodes[0], nodes[4:8])
    ios = [ParallelIO(fs.client(w)) for w in nodes[1:4]]
    frags = [FragmentSpec(i, 2 * MB, 2 * MB) for i in range(6)]
    StripeLayout.extents = truncated
    try:
        with pytest.raises(SimulationError):
            # The violation kills the readers; the master then
            # deadlocks waiting for results that never come.
            run_parallel_blast(nodes[0], nodes[1:4], ios, frags,
                               default_cost_model())
    finally:
        StripeLayout.extents = orig
    c.sim.run()
    with pytest.raises(InvariantViolation, match="byte conservation"):
        c.sim.check.assert_drained()
