"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


@pytest.fixture
def fasta_file(tmp_path):
    import numpy as np

    rng = np.random.default_rng(0)
    target = "".join(rng.choice(list("ACGT"), 500))
    path = tmp_path / "seqs.fasta"
    path.write_text(f">s1 target\n{target}\n>s2 decoy\n"
                    + "".join(rng.choice(list("ACGT"), 400)) + "\n")
    query = tmp_path / "query.fasta"
    query.write_text(f">q1\n{target[100:250]}\n")
    return str(path), str(query), str(tmp_path)


def test_formatdb_and_blastall(fasta_file, capsys):
    fasta, query, d = fasta_file
    assert main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"]) == 0
    out = capsys.readouterr().out
    assert "formatted 2 sequences" in out

    assert main(["blastall", "-p", "blastn", "-d", f"{d}/mini",
                 "-i", query]) == 0
    out = capsys.readouterr().out
    assert "s1 target" in out


def test_blastall_with_alignments(fasta_file, capsys):
    fasta, query, d = fasta_file
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    capsys.readouterr()
    assert main(["blastall", "-p", "blastn", "-d", f"{d}/mini",
                 "-i", query, "-a"]) == 0
    out = capsys.readouterr().out
    assert "Query  1" in out
    assert "Sbjct" in out


def test_blastall_evalue_and_filter_flags(fasta_file, capsys):
    fasta, query, d = fasta_file
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    capsys.readouterr()
    assert main(["blastall", "-p", "blastn", "-d", f"{d}/mini",
                 "-i", query, "-e", "1e-10", "-F"]) == 0
    out = capsys.readouterr().out
    assert "s1 target" in out


def test_segmentdb(fasta_file, capsys):
    fasta, query, d = fasta_file
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    outdir = os.path.join(d, "frags")
    assert main(["segmentdb", "-d", f"{d}/mini", "-o", outdir,
                 "-n", "2"]) == 0
    out = capsys.readouterr().out
    assert "fragment 0" in out and "fragment 1" in out
    assert os.path.exists(os.path.join(outdir, "mini.000.nin"))


def test_synthdb(tmp_path, capsys):
    assert main(["synthdb", "-o", str(tmp_path), "-n", "syn",
                 "--residues", "20000"]) == 0
    out = capsys.readouterr().out
    assert "synthetic sequences" in out
    assert os.path.exists(tmp_path / "syn.nin")


def test_experiment_command(capsys):
    assert main(["experiment", "--variant", "pvfs", "--workers", "2",
                 "--servers", "2", "--scale", "0.02", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "execution time" in out
    assert "I/O operations" in out  # trace summary


def test_experiment_queryseg_flag(capsys):
    assert main(["experiment", "--variant", "pvfs", "--workers", "2",
                 "--servers", "2", "--scale", "0.02", "--queryseg"]) == 0
    out = capsys.readouterr().out
    assert "execution time" in out


def test_experiment_original_reports_copy_time(capsys):
    assert main(["experiment", "--variant", "original", "--workers", "2",
                 "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "copy time" in out


def test_reproduce_command(capsys):
    assert main(["reproduce", "--figure", "T1", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Bonnie" in out


def test_blastall_tabular_output(fasta_file, capsys):
    fasta, query, d = fasta_file
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    capsys.readouterr()
    assert main(["blastall", "-p", "blastn", "-d", f"{d}/mini",
                 "-i", query, "-m", "tabular"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert any(line.count("\t") == 11 for line in out)


def test_blastall_xml_output(fasta_file, capsys):
    import xml.etree.ElementTree as ET

    fasta, query, d = fasta_file
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    capsys.readouterr()
    assert main(["blastall", "-p", "blastn", "-d", f"{d}/mini",
                 "-i", query, "-m", "xml"]) == 0
    out = capsys.readouterr().out
    root = ET.fromstring(out.strip())
    assert root.tag == "BlastOutput"


def test_psiblast_command(tmp_path, capsys):
    import numpy as np

    rng = np.random.default_rng(0)
    aas = "ARNDCQEGHILKMFPSTWYV"
    prot = "".join(rng.choice(list(aas), 200))
    fasta = tmp_path / "prots.fasta"
    fasta.write_text(f">p1 target\n{prot}\n>p2 decoy\n"
                     + "".join(rng.choice(list(aas), 200)) + "\n")
    main(["formatdb", "-i", str(fasta), "-d", str(tmp_path), "-n",
          "prot", "-p"])
    query = tmp_path / "q.fasta"
    query.write_text(f">q\n{prot[40:160]}\n")
    capsys.readouterr()
    assert main(["psiblast", "-d", f"{tmp_path}/prot",
                 "-i", str(query), "-j", "2"]) == 0
    out = capsys.readouterr().out
    assert "iteration 1" in out
    assert "p1" in out


def test_blastn_jobs_output_identical_to_serial(fasta_file, capsys):
    fasta, query, d = fasta_file
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    capsys.readouterr()
    assert main(["blastall", "-p", "blastn", "-d", f"{d}/mini",
                 "-i", query, "-m", "tabular"]) == 0
    serial = capsys.readouterr().out
    assert main(["blastn", "-d", f"{d}/mini", "-i", query,
                 "-m", "tabular", "--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == serial
    assert main(["blastall", "-p", "blastn", "-d", f"{d}/mini",
                 "-i", query, "-m", "tabular", "--jobs", "2",
                 "--fragments", "3"]) == 0
    assert capsys.readouterr().out == serial


def test_blastn_task_granularity_flag(fasta_file, capsys):
    fasta, query, d = fasta_file
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    capsys.readouterr()
    assert main(["blastn", "-d", f"{d}/mini", "-i", query,
                 "-m", "tabular"]) == 0
    serial = capsys.readouterr().out
    # Pinned per-fragment tasks and adaptive ranges both match serial.
    for extra in (["--task-granularity", "1"], ["--task-granularity", "2"]):
        assert main(["blastn", "-d", f"{d}/mini", "-i", query,
                     "-m", "tabular", "--jobs", "2"] + extra) == 0
        assert capsys.readouterr().out == serial


def test_blastall_jobs_falls_back_for_translated_programs(fasta_file, capsys):
    fasta, query, d = fasta_file
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    capsys.readouterr()
    assert main(["blastall", "-p", "tblastx", "-d", f"{d}/mini",
                 "-i", query, "--jobs", "2"]) == 0
    captured = capsys.readouterr()
    assert "--jobs applies to blastn/blastp only" in captured.err


# ----------------------------------------------------------------------
# Parallel-run exit codes (fault plans injected via the env hook so
# the CLI code path under test is exactly what users run)
# ----------------------------------------------------------------------
def test_blastn_jobs_corrupt_pack_exit_code(fasta_file, capsys, monkeypatch):
    from repro.cli import EXIT_INTEGRITY

    fasta, query, d = fasta_file
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    capsys.readouterr()
    monkeypatch.setenv("REPRO_EXEC_FAULT_PLAN",
                       '[{"kind": "corrupt_pack", "rank": 0}]')
    assert main(["blastn", "-d", f"{d}/mini", "-i", query,
                 "--jobs", "2"]) == EXIT_INTEGRITY
    captured = capsys.readouterr()
    assert "pack integrity failure" in captured.err
    assert "CRC32" in captured.err


def test_blastn_jobs_pool_failure_exit_code(fasta_file, capsys, monkeypatch):
    from repro.cli import EXIT_POOL_FAILURE

    fasta, query, d = fasta_file
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    capsys.readouterr()
    monkeypatch.setenv("REPRO_EXEC_FAULT_PLAN", '[{"kind": "kill"}]')
    assert main(["blastn", "-d", f"{d}/mini", "-i", query, "--jobs", "2",
                 "--no-respawn", "--no-fallback"]) == EXIT_POOL_FAILURE
    captured = capsys.readouterr()
    assert "pool failure" in captured.err


def test_blastn_jobs_degraded_exit_code(fasta_file, capsys, monkeypatch):
    from repro.cli import EXIT_DEGRADED

    fasta, query, d = fasta_file
    main(["formatdb", "-i", fasta, "-d", d, "-n", "mini"])
    capsys.readouterr()
    assert main(["blastn", "-d", f"{d}/mini", "-i", query,
                 "-m", "tabular"]) == 0
    serial = capsys.readouterr().out
    monkeypatch.setenv("REPRO_EXEC_FAULT_PLAN", '[{"kind": "kill"}]')
    assert main(["blastn", "-d", f"{d}/mini", "-i", query, "-m", "tabular",
                 "--jobs", "2", "--no-respawn"]) == EXIT_DEGRADED
    captured = capsys.readouterr()
    # Degraded, but the answer itself is byte-identical.
    assert captured.out == serial
    assert "degraded" in captured.err
