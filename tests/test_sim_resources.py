"""Unit tests for resources, stores, containers, monitors, RNG streams."""

import pytest

from repro.sim import (
    Container,
    Monitor,
    PriorityResource,
    RandomStreams,
    Resource,
    Simulator,
    Store,
    TimeWeightedMonitor,
    Timeout,
)


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    times = []

    def user(sim, res, hold):
        req = res.request()
        yield req
        start = sim.now
        yield Timeout(sim, hold)
        req.release()
        times.append((start, sim.now))

    for _ in range(4):
        sim.process(user(sim, res, 1.0))
    sim.run()
    starts = sorted(t[0] for t in times)
    assert starts == [0.0, 0.0, 1.0, 1.0]


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_fcfs_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, res, tag):
        req = res.request()
        yield req
        order.append(tag)
        yield Timeout(sim, 1.0)
        req.release()

    for tag in "abc":
        sim.process(user(sim, res, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_resource_release_idempotent():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim, res):
        req = res.request()
        yield req
        req.release()
        req.release()  # second release is a no-op

    p = sim.process(user(sim, res))
    sim.run()
    assert p.ok
    assert res.count == 0


def test_resource_context_manager():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim, res):
        with (yield res.request()):
            yield Timeout(sim, 1.0)
        return res.count

    p = sim.process(user(sim, res))
    sim.run()
    assert p.value == 0


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    got = []

    def holder(sim, res):
        req = res.request()
        yield req
        yield Timeout(sim, 10.0)
        req.release()

    def impatient(sim, res):
        req = res.request()
        yield Timeout(sim, 1.0)  # give up before being granted
        req.release()
        got.append("gave up")

    def patient(sim, res):
        req = res.request()
        yield req
        got.append(("granted", sim.now))
        req.release()

    sim.process(holder(sim, res))
    sim.process(impatient(sim, res))
    sim.process(patient(sim, res))
    sim.run()
    assert "gave up" in got
    assert ("granted", 10.0) in got


def test_priority_resource_orders_by_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder(sim, res):
        req = res.request()
        yield req
        yield Timeout(sim, 5.0)
        req.release()

    def user(sim, res, prio, tag):
        yield Timeout(sim, 1.0)  # arrive after holder owns the resource
        req = res.request(priority=prio)
        yield req
        order.append(tag)
        req.release()

    sim.process(holder(sim, res))
    sim.process(user(sim, res, 2, "low"))
    sim.process(user(sim, res, 0, "high"))
    sim.process(user(sim, res, 1, "mid"))
    sim.run()
    assert order == ["high", "mid", "low"]


def test_priority_resource_release_queued():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)

    def holder(sim, res):
        req = res.request()
        yield req
        yield Timeout(sim, 5.0)
        req.release()

    def quitter(sim, res):
        yield Timeout(sim, 1.0)
        req = res.request(priority=0)
        yield Timeout(sim, 0.5)
        req.release()  # abandon while queued

    def steady(sim, res):
        yield Timeout(sim, 2.0)
        req = res.request(priority=5)
        yield req
        return sim.now

    sim.process(holder(sim, res))
    sim.process(quitter(sim, res))
    p = sim.process(steady(sim, res))
    sim.run()
    assert p.value == 5.0  # quitter's abandoned request did not block


# ---------------------------------------------------------------- Store
def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)

    def producer(sim, store):
        for i in range(3):
            yield Timeout(sim, 1.0)
            yield store.put(i)

    def consumer(sim, store):
        out = []
        for _ in range(3):
            item = yield store.get()
            out.append(item)
        return out

    sim.process(producer(sim, store))
    p = sim.process(consumer(sim, store))
    sim.run()
    assert p.value == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer(sim, store):
        item = yield store.get()
        return (sim.now, item)

    def producer(sim, store):
        yield Timeout(sim, 3.0)
        yield store.put("x")

    p = sim.process(consumer(sim, store))
    sim.process(producer(sim, store))
    sim.run()
    assert p.value == (3.0, "x")


def test_store_bounded_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)

    def producer(sim, store):
        yield store.put("a")
        yield store.put("b")  # blocks until consumer takes "a"
        return sim.now

    def consumer(sim, store):
        yield Timeout(sim, 4.0)
        yield store.get()

    p = sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert p.value == 4.0


# ---------------------------------------------------------------- Container
def test_container_get_blocks_until_level():
    sim = Simulator()
    tank = Container(sim, capacity=100, init=0)

    def filler(sim, tank):
        yield Timeout(sim, 2.0)
        yield tank.put(50)

    def drainer(sim, tank):
        yield tank.get(30)
        return (sim.now, tank.level)

    sim.process(filler(sim, tank))
    p = sim.process(drainer(sim, tank))
    sim.run()
    assert p.value == (2.0, 20.0)


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    tank = Container(sim, capacity=10, init=10)

    def putter(sim, tank):
        yield tank.put(5)
        return sim.now

    def getter(sim, tank):
        yield Timeout(sim, 3.0)
        yield tank.get(5)

    p = sim.process(putter(sim, tank))
    sim.process(getter(sim, tank))
    sim.run()
    assert p.value == 3.0


def test_container_validates_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=5, init=10)
    tank = Container(sim, capacity=5)
    with pytest.raises(ValueError):
        tank.put(-1)
    with pytest.raises(ValueError):
        tank.get(-1)


# ---------------------------------------------------------------- Monitors
def test_monitor_statistics():
    sim = Simulator()
    mon = Monitor(sim)

    def proc(sim, mon):
        for v in (1.0, 2.0, 3.0, 4.0):
            yield Timeout(sim, 1.0)
            mon.observe(v)

    sim.process(proc(sim, mon))
    sim.run()
    assert mon.count == 4
    assert mon.mean == 2.5
    assert mon.minimum == 1.0
    assert mon.maximum == 4.0
    assert mon.total == 10.0
    assert mon.variance == pytest.approx(5.0 / 3.0)
    assert mon.series()[0] == (1.0, 1.0)


def test_time_weighted_monitor_average():
    sim = Simulator()
    mon = TimeWeightedMonitor(sim, initial=0.0)

    def proc(sim, mon):
        yield Timeout(sim, 2.0)
        mon.set(1.0)       # level 0 for [0,2)
        yield Timeout(sim, 2.0)
        mon.set(3.0)       # level 1 for [2,4)
        yield Timeout(sim, 4.0)
        mon.set(0.0)       # level 3 for [4,8)

    sim.process(proc(sim, mon))
    sim.run()
    # integral = 0*2 + 1*2 + 3*4 = 14 over 8 seconds
    assert mon.time_average == pytest.approx(14.0 / 8.0)
    assert mon.maximum == 3.0


# ---------------------------------------------------------------- RNG
def test_rng_streams_are_deterministic():
    a = RandomStreams(seed=7)
    b = RandomStreams(seed=7)
    assert a.stream("disk").random() == b.stream("disk").random()


def test_rng_streams_are_independent_across_names():
    rs = RandomStreams(seed=7)
    x = rs.stream("disk").random(5)
    y = rs.stream("net").random(5)
    assert list(x) != list(y)


def test_rng_stream_is_cached():
    rs = RandomStreams(seed=7)
    assert rs.stream("a") is rs.stream("a")
    assert "a" in rs


def test_rng_different_seeds_differ():
    a = RandomStreams(seed=1)
    b = RandomStreams(seed=2)
    assert a.stream("x").random() != b.stream("x").random()
