"""Tests for the NFS model and the simulated copy phase."""

import pytest

from repro.cluster import Cluster
from repro.cluster.params import KiB, MB
from repro.core import ExperimentConfig, Variant
from repro.core.experiment import measure_copy_phase, run_experiment
from repro.fs.interface import FSError
from repro.fs.localfs import LocalFS
from repro.fs.nfs import NFS


def run(c, gen, limit=1e12):
    p = c.sim.process(gen)
    c.sim.run_until_complete(p, limit=limit)
    if p.failed:
        raise p.value
    return p.value


def test_nfs_read_goes_through_server():
    c = Cluster(n_nodes=2)
    nfs = NFS(c[0])
    nfs.populate("f", 10 * MB)
    client = nfs.client(c[1])

    def proc():
        yield from client.read("f", 0, 10 * MB)
        return c.sim.now

    t = run(c, proc())
    assert nfs.server.bytes_served == 10 * MB
    # Disk I/O is page-granular: whole covering pages are fetched.
    assert 10 * MB <= c[0].disk.bytes_read < 10 * MB + 2 * 64 * KiB
    # Single remote stream: roughly the server's disk read rate.
    assert 10 * MB / t == pytest.approx(26 * MB, rel=0.25)


def test_nfs_concurrent_clients_serialise_on_server():
    c = Cluster(n_nodes=5)
    nfs = NFS(c[0])
    nfs.populate("f", 20 * MB)
    times = []

    def reader(node):
        client = nfs.client(node)
        yield from client.read("f", 0, 20 * MB)
        times.append(c.sim.now)

    procs = [c.sim.process(reader(c[i])) for i in range(1, 5)]
    c.sim.run_until_complete(*procs)
    # First pass is disk-bound; later clients ride the server cache, so
    # aggregate must beat a pure 4x-serialised disk estimate but the
    # makespan is still far beyond a single solo read.
    solo = 20 * MB / (26 * MB)
    assert max(times) > 1.5 * solo


def test_nfs_write():
    c = Cluster(n_nodes=2)
    nfs = NFS(c[0])
    nfs.populate("f", 0)
    client = nfs.client(c[1])

    def proc():
        yield from client.write("f", 0, 1 * MB)

    run(c, proc())
    assert nfs.lookup("f").size == 1 * MB
    assert c[0].disk.bytes_written == 1 * MB


def test_nfs_read_past_eof():
    c = Cluster(n_nodes=2)
    nfs = NFS(c[0])
    nfs.populate("f", 100)
    client = nfs.client(c[1])

    def proc():
        yield from client.read("f", 0, 200)

    with pytest.raises(FSError):
        run(c, proc())


def test_nfs_server_failure_surfaces():
    c = Cluster(n_nodes=2)
    nfs = NFS(c[0])
    nfs.populate("f", 1 * MB)
    nfs.server.fail()
    client = nfs.client(c[1])

    def proc():
        yield from client.read("f", 0, 1 * MB)

    with pytest.raises(FSError, match="unavailable"):
        run(c, proc())


def test_copy_to_local_stages_file():
    c = Cluster(n_nodes=2)
    nfs = NFS(c[0])
    nfs.populate("frag", 5 * MB)
    local = LocalFS(c[1])
    client = nfs.client(c[1])

    def proc():
        n = yield from client.copy_to_local(local, "frag")
        return n

    assert run(c, proc()) == 5 * MB
    assert local.lookup("frag").size == 5 * MB
    assert c[1].disk.bytes_written == 5 * MB


def test_measure_copy_phase_reflects_contention():
    """Concurrent staging through one NFS server is much slower than
    the per-worker single-stream estimate."""
    cfg1 = ExperimentConfig(variant=Variant.ORIGINAL, n_workers=1).scaled(1 / 50)
    cfg8 = ExperimentConfig(variant=Variant.ORIGINAL, n_workers=8).scaled(1 / 50)
    t1 = measure_copy_phase(cfg1)
    t8 = measure_copy_phase(cfg8)
    # 8 workers each copy 1/8 of the data, but share one server: the
    # per-worker copy time shrinks far less than 8x.
    assert t8 > t1 / 4
    assert t1 > 0


def test_simulate_copy_flag_in_experiment():
    cfg = ExperimentConfig(variant=Variant.ORIGINAL, n_workers=2,
                           simulate_copy=True).scaled(1 / 50)
    res = run_experiment(cfg)
    est = run_experiment(ExperimentConfig(
        variant=Variant.ORIGINAL, n_workers=2).scaled(1 / 50))
    # The simulated (contended, disk-to-disk) copy is slower than the
    # analytic single-stream bound.
    assert res.copy_time > est.copy_time
    # Search-phase timing is unchanged by how the copy was accounted.
    assert res.execution_time == pytest.approx(est.execution_time)
