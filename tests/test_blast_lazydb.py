"""Tests for the lazy (on-demand) database view."""

import numpy as np
import pytest

from repro.blast import SequenceDB, blastn
from repro.blast.lazydb import LazySequenceDB
from repro.workloads import extract_query, synthetic_nt_db


@pytest.fixture
def on_disk(tmp_path):
    db = synthetic_nt_db(100_000, seed=21, name="lazy")
    db.write(str(tmp_path))
    return db, str(tmp_path)


def test_lazy_metadata_without_payload_io(on_disk):
    db, d = on_disk
    lazy = LazySequenceDB(d, "lazy")
    index_bytes = lazy.bytes_read
    assert len(lazy) == len(db)
    assert lazy.total_residues == db.total_residues
    assert lazy.lengths() == db.lengths()
    # Metadata queries did not touch sequence data.
    assert lazy.bytes_read == index_bytes
    assert lazy.sequence_reads == 0


def test_lazy_sequence_read_on_demand(on_disk):
    db, d = on_disk
    lazy = LazySequenceDB(d, "lazy")
    assert np.array_equal(lazy.sequence(3), db.sequence(3))
    assert lazy.sequence_reads == 1
    # Cached: second access is free.
    lazy.sequence(3)
    assert lazy.sequence_reads == 1
    assert lazy.description(3) == db.description(3)


def test_lazy_matches_eager_everywhere(on_disk):
    db, d = on_disk
    lazy = LazySequenceDB(d, "lazy")
    for i in range(0, len(db), max(len(db) // 7, 1)):
        assert np.array_equal(lazy.sequence(i), db.sequence(i))
        assert lazy.description(i) == db.description(i)
        assert lazy.sequence_str(i) == db.sequence_str(i)


def test_preload_reads_everything_once(on_disk):
    db, d = on_disk
    lazy = LazySequenceDB(d, "lazy")
    lazy.sequence(2)                       # one sequence already cached
    assert lazy.preload_sequences() == len(db) - 1
    assert lazy.sequence_reads == len(db)
    for i in range(len(db)):
        assert np.array_equal(lazy.sequence(i), db.sequence(i))
    assert lazy.sequence_reads == len(db)  # all served from cache
    assert lazy.preload_sequences() == 0   # nothing left to read


def test_lazy_search_equals_eager_search(on_disk):
    db, d = on_disk
    lazy = LazySequenceDB(d, "lazy")
    query = extract_query(db, length=300, seed=2)
    eager = blastn(query, db)
    viadisk = blastn(query, lazy)
    assert eager.best().score == viadisk.best().score
    assert [h.subject_id for h in eager.hits] == \
        [h.subject_id for h in viadisk.hits]
    # The search had to pull the whole sequence file (scan phase).
    assert lazy.sequence_reads == len(db)


def test_drop_caches_forces_reread(on_disk):
    db, d = on_disk
    lazy = LazySequenceDB(d, "lazy")
    lazy.sequence(0)
    lazy.drop_caches()
    lazy.sequence(0)
    assert lazy.sequence_reads == 2


def test_lazy_type_checks(tmp_path, on_disk):
    db, d = on_disk
    with pytest.raises(ValueError):
        LazySequenceDB(d, "lazy", seqtype="rna")
    with pytest.raises((ValueError, OSError)):
        LazySequenceDB(d, "lazy", seqtype="aa")  # wrong type: .pin missing

    junk = tmp_path / "bad.nin"
    junk.write_bytes(b"XXXX" + b"\0" * 40)
    with pytest.raises((ValueError, OSError)):
        LazySequenceDB(str(tmp_path), "bad")


def test_lazy_subset_materializes_fragment_with_source_ids(on_disk):
    db, d = on_disk
    lazy = LazySequenceDB(d, "lazy")
    before = lazy.sequence_reads
    sub = lazy.subset([4, 0, 2], name="frag", fragment_id=1)
    assert sub.source_ids == [4, 0, 2]
    assert sub.fragment_id == 1
    assert len(sub) == 3
    np.testing.assert_array_equal(sub.sequence(0), db.sequence(4))
    np.testing.assert_array_equal(sub.sequence(2), db.sequence(2))
    assert sub.description(1) == db.description(0)
    # Reads went through the accounted lazy path.
    assert lazy.sequence_reads == before + 3


def test_pool_search_over_lazy_db(on_disk):
    import dataclasses

    from repro.blast.alphabet import encode_dna
    from repro.blast.score import NucleotideScore
    from repro.blast.search import SearchParams, search
    from repro.exec import search_parallel
    from repro.workloads import extract_query

    db, d = on_disk
    lazy = LazySequenceDB(d, "lazy")
    query = encode_dna(extract_query(db, length=200, seed=3))
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)

    def dump(res):
        return [(h.subject_id, h.description, h.subject_len,
                 [dataclasses.astuple(p) for p in h.hsps])
                for h in res.hits]

    par = search_parallel(query, lazy, scheme, params, jobs=2,
                          n_fragments=3)
    assert dump(par) == dump(search(query, db, scheme, params))
