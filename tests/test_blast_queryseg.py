"""Tests for query segmentation (the paper's §2.2 alternative)."""

import numpy as np
import pytest

from repro.blast import SequenceDB, blastn
from repro.blast.queryseg import (
    merge_segment_results,
    search_segmented,
    segment_query,
)
from repro.core import ExperimentConfig, Parallelization, Variant, run_experiment


def rand_dna(rng, n):
    return "".join(rng.choice(list("ACGT"), n))


# ---------------------------------------------------------------- splitting
def test_segment_query_covers_whole_query():
    q = "ACGT" * 100
    segs = segment_query(q, 4, overlap=10)
    assert len(segs) == 4
    assert segs[0].start == 0
    # Reassembling the non-overlapping prefixes gives back the query.
    rebuilt = "".join(q[s.start:segs[i + 1].start] if i + 1 < len(segs)
                      else q[s.start:]
                      for i, s in enumerate(segs))
    assert rebuilt == q


def test_segment_query_overlap_shared():
    q = "A" * 100
    segs = segment_query(q, 2, overlap=20)
    end0 = segs[0].start + len(segs[0].text)
    assert end0 - segs[1].start == 20


def test_segment_query_validation():
    with pytest.raises(ValueError):
        segment_query("ACGT", 0)
    with pytest.raises(ValueError):
        segment_query("ACGT", 2, overlap=-1)


def test_segment_query_single_segment_is_identity():
    q = "ACGTACGT"
    segs = segment_query(q, 1)
    assert len(segs) == 1
    assert segs[0].text == q


def test_more_segments_than_chars_clamped():
    segs = segment_query("ACGTT", 50)
    assert len(segs) == 5


# ---------------------------------------------------------------- merging
@pytest.fixture
def planted_db():
    rng = np.random.default_rng(5)
    target = rand_dna(rng, 600)
    db = SequenceDB.from_fasta_text(
        f">t target\n{target}\n" +
        "".join(f">d{i} decoy\n{rand_dna(rng, 500)}\n" for i in range(4)))
    return db, target


def test_segmented_search_finds_hit_with_correct_coordinates(planted_db):
    db, target = planted_db
    query = target[100:400]  # 300 bases
    merged = search_segmented(blastn, query, db, n_segments=3, overlap=40)
    assert merged.hits
    assert merged.hits[0].description.startswith("t")
    best = merged.best()
    # Coordinates are in full-query space.
    assert 0 <= best.q_start < best.q_end <= len(query)
    assert merged.query_len == len(query)


def test_segmented_matches_unsegmented_top_hit(planted_db):
    db, target = planted_db
    query = target[50:450]
    whole = blastn(query, db)
    seg = search_segmented(blastn, query, db, n_segments=4, overlap=60)
    assert seg.hits[0].description == whole.hits[0].description
    # Each segment's best piece covers a subject subrange of the full hit.
    ws, we = whole.best().s_start, whole.best().s_end
    ss, se = seg.best().s_start, seg.best().s_end
    assert ws <= ss and se <= we


def test_segmented_dedupes_overlap_hits(planted_db):
    db, target = planted_db
    query = target[100:400]
    merged = search_segmented(blastn, query, db, n_segments=3, overlap=80)
    spans = [(h.s_start, h.s_end, h.strand) for h in merged.hits[0].hsps]
    assert len(spans) == len(set(spans))


def test_merge_requires_results():
    with pytest.raises(ValueError):
        merge_segment_results(100, [])


# ---------------------------------------------------------------- simulator
def test_query_segmentation_slower_for_large_db():
    """The paper's §2.2 argument: with a big database, query
    segmentation loses badly to database segmentation."""
    times = {}
    for par in Parallelization:
        cfg = ExperimentConfig(variant=Variant.PVFS, n_workers=4,
                               n_servers=4, parallelization=par).scaled(1 / 50)
        times[par] = run_experiment(cfg).execution_time
    assert (times[Parallelization.QUERY_SEGMENTATION]
            > 1.5 * times[Parallelization.DATABASE_SEGMENTATION])


def test_query_segmentation_copy_cost_is_whole_db():
    cfg_q = ExperimentConfig(
        variant=Variant.ORIGINAL, n_workers=4,
        parallelization=Parallelization.QUERY_SEGMENTATION).scaled(1 / 50)
    cfg_d = ExperimentConfig(variant=Variant.ORIGINAL, n_workers=4).scaled(1 / 50)
    r_q = run_experiment(cfg_q)
    r_d = run_experiment(cfg_d)
    assert r_q.copy_time == pytest.approx(4 * r_d.copy_time, rel=0.01)


def test_query_segmentation_shares_database_files():
    cfg = ExperimentConfig(variant=Variant.PVFS, n_workers=3, n_servers=2,
                           parallelization=Parallelization.QUERY_SEGMENTATION
                           ).scaled(1 / 50)
    frags = cfg.fragments
    assert len(frags) == 3
    assert len({f.file_name("nsq") for f in frags}) == 1  # shared files
    assert len({f.fragment_id for f in frags}) == 3       # distinct tasks
