"""Unit tests for the processor-sharing CPU model."""

import pytest

from repro.sim import Simulator, Timeout
from repro.cluster.cpu import CPU


def test_single_task_runs_at_full_speed():
    sim = Simulator()
    cpu = CPU(sim, cores=2)

    def proc(sim, cpu):
        yield cpu.consume(5.0)
        return sim.now

    p = sim.process(proc(sim, cpu))
    sim.run_until_complete(p)
    assert p.value == pytest.approx(5.0)


def test_two_tasks_on_two_cores_no_slowdown():
    sim = Simulator()
    cpu = CPU(sim, cores=2)

    def proc(sim, cpu):
        yield cpu.consume(5.0)
        return sim.now

    ps = [sim.process(proc(sim, cpu)) for _ in range(2)]
    sim.run_until_complete(*ps)
    for p in ps:
        assert p.value == pytest.approx(5.0)


def test_four_tasks_on_two_cores_halve_speed():
    sim = Simulator()
    cpu = CPU(sim, cores=2)

    def proc(sim, cpu):
        yield cpu.consume(5.0)
        return sim.now

    ps = [sim.process(proc(sim, cpu)) for _ in range(4)]
    sim.run_until_complete(*ps)
    for p in ps:
        assert p.value == pytest.approx(10.0)


def test_staggered_arrivals_share_fairly():
    sim = Simulator()
    cpu = CPU(sim, cores=1)
    finish = {}

    def proc(sim, cpu, tag, start, work):
        yield Timeout(sim, start)
        yield cpu.consume(work)
        finish[tag] = sim.now

    # a runs alone [0,1), then shares with b.
    sim.process(proc(sim, cpu, "a", 0.0, 2.0))
    sim.process(proc(sim, cpu, "b", 1.0, 2.0))
    sim.run()
    # a: 1s alone + 2s shared (rate 1/2) = finishes at 3.0
    assert finish["a"] == pytest.approx(3.0)
    # b: shares [1,3] doing 1s of work, then alone 1s more -> 4.0
    assert finish["b"] == pytest.approx(4.0)


def test_zero_work_completes_immediately():
    sim = Simulator()
    cpu = CPU(sim, cores=1)

    def proc(sim, cpu):
        yield cpu.consume(0.0)
        return sim.now

    p = sim.process(proc(sim, cpu))
    sim.run_until_complete(p)
    assert p.value == 0.0


def test_negative_work_rejected():
    sim = Simulator()
    cpu = CPU(sim, cores=1)
    with pytest.raises(ValueError):
        cpu.consume(-1.0)


def test_cores_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CPU(sim, cores=0)


def test_utilization_accounting():
    sim = Simulator()
    cpu = CPU(sim, cores=2)

    def proc(sim, cpu):
        yield cpu.consume(4.0)
        # idle afterwards
        yield Timeout(sim, 4.0)

    p = sim.process(proc(sim, cpu))
    sim.run_until_complete(p)
    # one core busy for 4s out of 2 cores * 8s = 0.25
    assert cpu.utilization() == pytest.approx(0.25)
    assert cpu.total_work_done == pytest.approx(4.0)


def test_many_tasks_conserve_work():
    sim = Simulator()
    cpu = CPU(sim, cores=2)
    works = [1.0, 2.5, 0.5, 3.0, 1.5]

    def proc(sim, cpu, w, delay):
        yield Timeout(sim, delay)
        yield cpu.consume(w)

    ps = [sim.process(proc(sim, cpu, w, i * 0.3)) for i, w in enumerate(works)]
    sim.run_until_complete(*ps)
    assert cpu.total_work_done == pytest.approx(sum(works))
    # with 2 cores, total wall time >= total work / cores
    assert sim.now >= sum(works) / 2 - 1e-9


def test_run_generator_form():
    sim = Simulator()
    cpu = CPU(sim, cores=1)

    def proc(sim, cpu):
        yield from cpu.run(2.0)
        return sim.now

    p = sim.process(proc(sim, cpu))
    sim.run_until_complete(p)
    assert p.value == pytest.approx(2.0)
