"""Same-seed determinism of the experiment pipeline.

The simulator is single-threaded and fully deterministic, so two runs
of the same :class:`ExperimentConfig` must agree to the last bit —
execution time and the whole JobResult fingerprint.  Representative
figure-6 (PVFS server sweep) and figure-7 (PVFS vs CEFT, dedicated
placement) measurement points are additionally pinned against golden
values in ``benchmarks/results/determinism_golden.json``; any kernel
change that shifts them must regenerate the goldens deliberately::

    PYTHONPATH=src python tests/test_determinism.py --regen
"""

import json
import pathlib

import pytest

from repro.core.experiment import (
    ExperimentConfig,
    Placement,
    Variant,
    run_experiment,
)
from repro.sim.fuzz import job_fingerprint

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parent.parent
               / "benchmarks" / "results" / "determinism_golden.json")

SCALE = 1 / 100

#: The pinned measurement points (all scaled 1/100 like the rest of the
#: test suite; full-scale runs belong in benchmarks/).
CONFIGS = {
    "fig6_pvfs_w4_s4": ExperimentConfig(
        variant=Variant.PVFS, n_workers=4, n_servers=4).scaled(SCALE),
    "fig6_pvfs_w2_s8": ExperimentConfig(
        variant=Variant.PVFS, n_workers=2, n_servers=8).scaled(SCALE),
    "fig7_pvfs_w3_s8_dedicated": ExperimentConfig(
        variant=Variant.PVFS, n_workers=3, n_servers=8,
        placement=Placement.DEDICATED).scaled(SCALE),
    "fig7_ceft_w3_s8_dedicated": ExperimentConfig(
        variant=Variant.CEFT_PVFS, n_workers=3, n_servers=8,
        placement=Placement.DEDICATED).scaled(SCALE),
}


def compute_entry(config):
    res = run_experiment(config)
    return {
        "execution_time": res.execution_time,
        "fingerprint": job_fingerprint(res.job),
    }


def load_goldens():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


# ---------------------------------------------------------------- identity
@pytest.mark.parametrize("name", ["fig6_pvfs_w4_s4",
                                  "fig7_ceft_w3_s8_dedicated"])
def test_same_seed_runs_are_bit_identical(name):
    first = compute_entry(CONFIGS[name])
    second = compute_entry(CONFIGS[name])
    assert first == second                      # includes exact float time


def test_seed_changes_time_but_conserves_work():
    import dataclasses

    base = CONFIGS["fig6_pvfs_w4_s4"]
    a = compute_entry(base)
    b = compute_entry(dataclasses.replace(base, seed=1))
    fp_a, fp_b = a["fingerprint"], b["fingerprint"]
    # Byte totals and fragment coverage are seed-independent ...
    for key in ("fragments_done", "fragments_searched",
                "read_bytes_total", "workers_accounted"):
        assert fp_a[key] == fp_b[key]
    # ... even if the timing noise differs between the seeds.
    assert a["execution_time"] > 0 and b["execution_time"] > 0


# ---------------------------------------------------------------- goldens
@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_pinned_against_golden(name):
    goldens = load_goldens()
    assert name in goldens, (
        f"{name} missing from {GOLDEN_PATH.name}; regenerate with "
        f"'PYTHONPATH=src python tests/test_determinism.py --regen'")
    assert compute_entry(CONFIGS[name]) == goldens[name]


def main(argv=None):
    """Regenerate the golden file (run as a script, never from pytest)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--regen", action="store_true",
                        help="recompute and overwrite the golden file")
    args = parser.parse_args(argv)
    if not args.regen:
        parser.error("nothing to do (did you mean --regen?)")
    goldens = {name: compute_entry(cfg) for name, cfg in sorted(CONFIGS.items())}
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(goldens)} entries to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
