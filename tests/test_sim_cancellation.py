"""Cancellation semantics: Process.cancel, Event.withdraw, AllOf
auto-cancel, and resource release on abandoned requests.

These are the guarantees the failure path relies on: when a fan-out
branch fails or a waiter is killed, everything downstream lets go of
its disk, CPU, NIC, and queue claims, and the simulation drains with
no orphaned processes.
"""

import pytest

from repro.cluster import Cluster
from repro.sim import (
    AllOf,
    AnyOf,
    Container,
    Event,
    Interrupt,
    ProcessCancelled,
    Resource,
    SimulationError,
    Simulator,
    Store,
    Timeout,
)


# ---------------------------------------------------------------- basics
def test_cancel_runs_finally_blocks():
    sim = Simulator()
    cleaned = []

    def victim():
        try:
            yield Timeout(sim, 100.0)
        finally:
            cleaned.append(sim.now)

    p = sim.process(victim())
    sim.run(until=1.0)
    assert p.cancel() is True
    assert cleaned == [1.0]


def test_cancel_fails_process_with_process_cancelled():
    sim = Simulator()

    def victim():
        yield Timeout(sim, 100.0)

    def waiter(target):
        try:
            yield target
        except ProcessCancelled as exc:
            return ("cancelled", exc.cause)
        return "finished"

    v = sim.process(victim())
    w = sim.process(waiter(v))
    sim.run(until=1.0)
    v.cancel("test says so")
    sim.run()
    assert w.value == ("cancelled", "test says so")


def test_cancel_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield Timeout(sim, 1.0)
        return 42

    p = sim.process(quick())
    sim.run()
    assert p.cancel() is False
    assert p.value == 42


def test_cancel_before_first_resume():
    sim = Simulator()
    ran = []

    def victim():
        ran.append(True)
        yield Timeout(sim, 1.0)

    p = sim.process(victim())
    assert p.cancel() is True  # before the bootstrap event fires
    sim.run()
    assert ran == []
    assert not p.is_alive


def test_cancel_cascades_through_waited_process():
    """Cancelling a parent cancels the child it is waiting on, which
    releases the child's resource claim."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    hold = res.request()  # take the only slot

    def child():
        req = res.request()
        try:
            yield req
        finally:
            req.release()

    def parent():
        yield sim.process(child(), name="child")

    p = sim.process(parent(), name="parent")
    sim.run(until=1.0)
    assert res.queue_length == 1
    p.cancel()
    assert res.queue_length == 0  # the child's queued request was withdrawn
    sim.run()
    assert sim.orphans() == []


# ---------------------------------------------------------------- AllOf
def test_allof_failure_cancels_siblings():
    sim = Simulator()
    survived = []

    def failing():
        yield Timeout(sim, 1.0)
        raise RuntimeError("boom")

    def slow():
        yield Timeout(sim, 100.0)
        survived.append(True)

    f = sim.process(failing())
    s = sim.process(slow())

    def waiter():
        try:
            yield AllOf(sim, [f, s])
        except RuntimeError:
            return "failed"

    w = sim.process(waiter())
    sim.run()
    assert w.value == "failed"
    assert survived == []          # the slow sibling never completed...
    assert not s.is_alive          # ...because it was cancelled
    assert sim.orphans() == []


def test_allof_withdraw_cascades_to_components():
    sim = Simulator()

    def slow(delay):
        yield Timeout(sim, delay)

    a = sim.process(slow(50.0))
    b = sim.process(slow(60.0))

    def waiter():
        yield AllOf(sim, [a, b])

    w = sim.process(waiter())
    sim.run(until=1.0)
    w.cancel()
    sim.run()
    assert not a.is_alive and not b.is_alive
    assert sim.orphans() == []


def test_anyof_losers_keep_running():
    """AnyOf must NOT cancel the losing components: infrastructure
    (e.g. the disk scheduler's wakeup) shares those events."""
    sim = Simulator()
    done = []

    def racer(delay, tag):
        yield Timeout(sim, delay)
        done.append(tag)

    a = sim.process(racer(1.0, "fast"))
    b = sim.process(racer(5.0, "slow"))

    def waiter():
        yield AnyOf(sim, [a, b])

    sim.process(waiter())
    sim.run()
    assert done == ["fast", "slow"]


# ---------------------------------------------------------------- resources
def test_cancelled_waiter_releases_resource_queue_slot():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()
    assert res.count == 1

    def waiter():
        req = res.request()
        try:
            yield req
        finally:
            req.release()

    p = sim.process(waiter())
    sim.run(until=1.0)
    assert res.queue_length == 1
    p.cancel()
    assert res.queue_length == 0
    holder.release()
    assert res.count == 0  # nobody phantom-holds the slot


def test_cancelled_store_getter_does_not_swallow_put():
    sim = Simulator()
    store = Store(sim)

    def getter():
        item = yield store.get()
        return item

    doomed = sim.process(getter(), name="doomed")
    lucky = sim.process(getter(), name="lucky")
    sim.run(until=1.0)
    doomed.cancel()
    store.put("msg")
    sim.run()
    assert lucky.value == "msg"  # not eaten by the dead getter


def test_cancelled_container_getter_unblocks_queue():
    sim = Simulator()
    box = Container(sim, capacity=10, init=3)

    def take(amount):
        yield box.get(amount)
        return amount

    big = sim.process(take(8), name="big")       # blocks (needs 8, has 3)
    small = sim.process(take(2), name="small")   # queued behind big
    sim.run(until=1.0)
    assert box.level == 3
    big.cancel()
    sim.run()
    assert small.value == 2
    assert box.level == 1


def test_interrupt_releases_resource_claim():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    holder = res.request()

    def waiter():
        req = res.request()
        try:
            yield req
        except Interrupt:
            return "interrupted"

    p = sim.process(waiter())
    sim.run(until=1.0)
    assert res.queue_length == 1
    p.interrupt()
    sim.run()
    assert p.value == "interrupted"
    assert res.queue_length == 0
    holder.release()
    assert res.count == 0


# ---------------------------------------------------------------- cluster
def test_cancelled_disk_request_leaves_the_queue():
    c = Cluster(n_nodes=1)
    node = c[0]
    sim = c.sim

    def reader(offset):
        yield node.disk.read(offset, 1 << 20, stream="t")

    # Saturate the disk so the victim's request sits queued.
    sim.process(reader(0))
    victim = sim.process(reader(1 << 20))
    sim.run(until=1e-4)  # give both time to enqueue
    victim.cancel()
    t_end = sim.run()
    # Only the survivor's request was serviced.
    assert node.disk.reads_serviced == 1
    assert node.disk.queue_length == 0
    assert t_end < 1.0


def test_cancelled_transfer_releases_nic():
    c = Cluster(n_nodes=3)
    sim = c.sim
    net = c.network

    def move(src, dst, size):
        yield from net.transfer(src, dst, size)
        return sim.now

    blocker = sim.process(move(c[0], c[1], 64 << 20), name="blocker")
    rider = sim.process(move(c[0], c[2], 1 << 20), name="rider")
    sim.run(until=0.01)
    blocker.cancel()
    sim.run()
    # The rider finishes promptly once the tx channel is freed.
    assert rider.ok
    assert net.nic(c[0].name).tx.count == 0
    assert net.nic(c[1].name).rx.count == 0
    assert sim.orphans() == []


def test_cancelled_cpu_task_leaves_active_set():
    c = Cluster(n_nodes=1)
    node, sim = c[0], c.sim

    def burn(seconds):
        yield node.cpu.consume(seconds)
        return sim.now

    doomed = sim.process(burn(1000.0))
    quick = sim.process(burn(1.0))
    sim.run(until=0.1)
    doomed.cancel()
    assert node.cpu.active_tasks == 1
    sim.run()
    # With the hog gone the quick task runs at full rate again.
    assert quick.value < 2.0


# ---------------------------------------------------------------- no orphans
def test_no_orphans_after_pvfs_server_failure():
    """The acceptance check of the tentpole: a dead server fails the
    read, and the failure leaves zero orphaned processes behind."""
    from repro.fs.interface import FSError
    from repro.fs.pvfs import PVFS

    c = Cluster(n_nodes=5)
    nodes = list(c)
    fs = PVFS(nodes[0], nodes[1:5])
    fs.populate("db.nsq", 8 << 20)
    client = fs.client(nodes[0])
    fs.servers[2].fail()

    def app():
        try:
            yield from client.read("db.nsq", 0, 8 << 20)
        except FSError:
            return "failed"
        return "ok"  # pragma: no cover

    p = c.sim.process(app())
    c.sim.run_until_complete(p)
    assert p.value == "failed"
    c.sim.run()  # drain everything still in flight
    assert c.sim.orphans() == []


def test_no_orphans_after_ceft_failover():
    from repro.fs.ceft import CEFT

    c = Cluster(n_nodes=5)
    nodes = list(c)
    fs = CEFT(nodes[0], nodes[1:3], nodes[3:5], monitor_load=False)
    fs.populate("db.nsq", 8 << 20)
    client = fs.client(nodes[0])
    fs.primary[0].fail()

    def app():
        n = yield from client.read("db.nsq", 0, 8 << 20)
        return n

    p = c.sim.process(app())
    c.sim.run_until_complete(p)
    assert p.value == 8 << 20  # failover served the whole range
    c.sim.run()
    assert c.sim.orphans() == []


def test_daemon_processes_are_not_orphans():
    sim = Simulator()

    def loop():
        while True:
            yield Timeout(sim, 1.0)

    sim.process(loop(), daemon=True)
    sim.run(until=5.0)
    assert sim.orphans() == []


def test_find_process_by_name():
    sim = Simulator()

    def loop():
        while True:
            yield Timeout(sim, 1.0)

    p = sim.process(loop(), name="target")
    assert sim.find_process("target") is p
    assert sim.find_process("nonesuch") is None
    p.cancel()
    assert sim.find_process("target") is None


def test_step_on_empty_heap_raises_simulation_error():
    sim = Simulator()
    with pytest.raises(SimulationError, match="empty heap"):
        sim.step()
