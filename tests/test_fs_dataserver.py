"""Direct unit tests for the shared data-server machinery."""

import pytest

from repro.cluster import Cluster
from repro.cluster.params import KiB, MB, MiB
from repro.fs.dataserver import (
    ACK_SIZE,
    REQUEST_SIZE,
    RPC_TIMEOUT,
    DataServer,
    ServerFailure,
)
from repro.fs.pvfs import PVFS


def make_server(unit=64 * KiB, cache=True):
    c = Cluster(n_nodes=2)
    fs = PVFS(c[0], [c[1]])  # gives us a namespace; use its server
    server = DataServer(fs, c[1], 0, unit, use_cache=cache)
    return c, server


def run(c, gen, limit=1e9):
    p = c.sim.process(gen)
    c.sim.run_until_complete(p, limit=limit)
    if p.failed:
        raise p.value
    return p.value


def test_units_chop_extents():
    c, server = make_server(unit=100)
    units = list(server._units([(0, 0, 250), (0, 1000, 50)]))
    assert units == [(0, 100), (100, 100), (200, 50), (1000, 50)]


def test_serve_read_returns_total():
    c, server = make_server()
    n = run(c, server.serve_read(c[0], "f", [(0, 0, 1 * MiB)]))
    assert n == 1 * MiB
    assert server.bytes_served == 1 * MiB
    assert server.requests_served == 1


def test_serve_read_empty_extents_acks():
    c, server = make_server()
    n = run(c, server.serve_read(c[0], "f", []))
    assert n == 0
    assert c[0].nic.bytes_received == ACK_SIZE


def test_serve_write_stores_bytes():
    c, server = make_server()
    n = run(c, server.serve_write(c[0], "f", [(0, 0, 256 * KiB)]))
    assert n == 256 * KiB
    assert server.node.disk.bytes_written == 256 * KiB


def test_serve_write_async_skips_disk():
    c, server = make_server()
    run(c, server.serve_write(c[0], "f", [(0, 0, 256 * KiB)], sync=False))
    assert server.node.disk.bytes_written == 0
    assert server.bytes_stored == 256 * KiB


def test_store_local_no_network():
    c, server = make_server()
    before = c[1].nic.bytes_received
    n = run(c, server.store_local(c[1], "f", [(0, 0, 1 * MiB)]))
    assert n == 1 * MiB
    assert c[1].nic.bytes_received == before
    assert server.node.disk.bytes_written == 1 * MiB


def test_failed_server_times_out_then_raises():
    c, server = make_server()
    server.fail()

    def proc():
        try:
            yield c.sim.process(server.serve_read(c[0], "f", [(0, 0, 1024)]))
        except ServerFailure as exc:
            return (c.sim.now, exc.index)

    t, idx = run(c, proc())
    assert t == pytest.approx(RPC_TIMEOUT)
    assert idx == 0


def test_recover_restores_service():
    c, server = make_server()
    server.fail()
    server.recover()
    n = run(c, server.serve_read(c[0], "f", [(0, 0, 1024)]))
    assert n == 1024


def test_cache_disabled_always_hits_disk():
    c, server = make_server(cache=False)
    run(c, server.serve_read(c[0], "f", [(0, 0, 1 * MiB)]))
    run(c, server.serve_read(c[0], "f", [(0, 0, 1 * MiB)]))
    assert server.node.disk.bytes_read >= 2 * MiB


def test_cache_enabled_second_read_from_memory():
    c, server = make_server(cache=True)
    run(c, server.serve_read(c[0], "f", [(0, 0, 1 * MiB)]))
    first = server.node.disk.bytes_read
    run(c, server.serve_read(c[0], "f", [(0, 0, 1 * MiB)]))
    assert server.node.disk.bytes_read == first


def test_page_granular_disk_reads_stay_sequential():
    """Sub-page request granularity must not cause per-request seeks."""
    c, server = make_server(unit=32 * KiB)
    total = 20 * MB

    def proc():
        yield c.sim.process(server.serve_read(c[0], "f", [(0, 0, total)]))
        return c.sim.now

    t = run(c, proc())
    rate = total / t / MB
    assert rate > 20  # near the 26 MB/s disk limit, not seek-bound
