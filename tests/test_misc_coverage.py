"""Targeted tests for corners not covered elsewhere."""

import numpy as np
import pytest

from repro.cluster import Cluster, memory_stressor
from repro.cluster.params import MB
from repro.core.plot import ascii_chart
from repro.fs.metadata import MD_REQUEST_SIZE, MetadataServer
from repro.fs.pvfs import PVFS


def test_ascii_chart_log_x():
    text = ascii_chart({"a": [(1, 1), (10, 2), (100, 3), (1000, 4)]},
                       log_x=True)
    # All four points present under log spacing (exclude the legend).
    marks = sum(line.count("o") for line in text.splitlines()
                if "|" in line)
    assert marks == 4


def test_memory_stressor_shrinks_cache():
    c = Cluster(n_nodes=1)
    node = c[0]
    # Fill the cache to capacity first.
    node.cache.insert("f", 0, 2_000 * MB)
    before_pages = node.cache.cached_pages
    before_capacity = node.cache.capacity_pages
    dropped = memory_stressor(node, fraction=0.9)
    assert dropped > 0
    assert node.cache.cached_pages < before_pages
    assert node.cache.capacity_pages == int(before_capacity * 0.1)


def test_memory_stressor_validation():
    c = Cluster(n_nodes=1)
    with pytest.raises(ValueError):
        memory_stressor(c[0], fraction=1.5)


def test_metadata_server_rpc_cost():
    c = Cluster(n_nodes=2)
    fs = PVFS(c[0], [c[1]])
    mds = fs.mds

    def proc():
        yield from mds.rpc(c[1])
        return c.sim.now

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    assert p.value > 2 * c.network.params.latency  # two messages
    assert mds.ops_served == 1
    assert c[0].nic.bytes_received == MD_REQUEST_SIZE


def test_lazydb_iteration(tmp_path):
    from repro.blast import SequenceDB
    from repro.blast.lazydb import LazySequenceDB

    db = SequenceDB("nt", name="it")
    db.add("a", "ACGTACGT")
    db.add("b", "TTTTCCCC")
    db.write(str(tmp_path))
    lazy = LazySequenceDB(str(tmp_path), "it")
    items = list(lazy)
    assert len(items) == 2
    assert items[0][0] == "a"
    assert np.array_equal(items[1][1], db.sequence(1))


def test_disk_params_with_disk_helper():
    from repro.cluster.params import prairiefire_params

    p = prairiefire_params().with_disk(write_batch=1, seek_time=0.001)
    assert p.disk.write_batch == 1
    assert p.disk.seek_time == 0.001
    assert p.disk.read_bandwidth == 26 * MB  # untouched


def test_figure_result_data_roundtrip():
    from repro.core.figures import FigureResult

    r = FigureResult("F0", "t", table="TBL", chart="", data={"x": 1})
    assert r.render() == "TBL"
    r2 = FigureResult("F0", "t", table="TBL", chart="CH")
    assert "CH" in r2.render()
