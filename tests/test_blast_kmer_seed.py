"""Tests for word codes, the word index, and seed selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.alphabet import encode_dna, encode_protein
from repro.blast.kmer import WordIndex, dna_word_codes, protein_word_codes, word_codes
from repro.blast.score import ProteinScore
from repro.blast.seed import one_hit_seeds, two_hit_seeds


def test_word_codes_basic():
    enc = encode_dna("ACGT")
    codes = dna_word_codes(enc, k=2)
    # AC=0*4+1, CG=1*4+2, GT=2*4+3
    assert list(codes) == [1, 6, 11]


def test_word_codes_short_sequence():
    assert len(dna_word_codes(encode_dna("AC"), k=11)) == 0


def test_word_codes_exact_length():
    enc = encode_dna("ACGTACGTACG")  # 11 bases
    assert len(dna_word_codes(enc, k=11)) == 1


@settings(max_examples=50)
@given(st.text(alphabet="ACGT", min_size=12, max_size=100))
def test_word_codes_window_count(s):
    enc = encode_dna(s)
    assert len(dna_word_codes(enc, 11)) == len(s) - 10


def test_dna_index_finds_exact_words():
    q = encode_dna("ACGTACGTACGT")
    idx = WordIndex.for_dna(q, k=11)
    subj = encode_dna("TTTTACGTACGTACGTTTTT")
    spos, qpos = idx.scan(dna_word_codes(subj, 11))
    assert len(spos) > 0
    # Every reported pair has matching words.
    for s, qq in zip(spos, qpos):
        assert np.array_equal(subj[s:s + 11], q[qq:qq + 11])


def test_dna_index_no_hits_in_unrelated_subject():
    q = encode_dna("A" * 20)
    idx = WordIndex.for_dna(q, k=11)
    subj = encode_dna("C" * 50)
    spos, qpos = idx.scan(dna_word_codes(subj, 11))
    assert len(spos) == 0


def test_index_contains_and_positions():
    q = encode_dna("ACGTACGTACGTA")  # words at 0,1,2
    idx = WordIndex.for_dna(q, k=11)
    codes = dna_word_codes(q, 11)
    assert int(codes[0]) in idx
    assert list(idx.query_positions(int(codes[0]))) == [0]
    assert idx.n_words == 3


def test_index_repeated_words_report_all_positions():
    q = encode_dna("ACGTACGTACGTACGT")  # repeats: word at 0 == word at 4
    idx = WordIndex.for_dna(q, k=4)
    code = int(dna_word_codes(q[:4], 4)[0])
    positions = idx.query_positions(code)
    assert list(positions) == [0, 4, 8, 12]


def test_protein_neighborhood_includes_exact_word():
    scheme = ProteinScore()
    q = encode_protein("WWW")
    idx = WordIndex.for_protein(q, scheme, k=3, threshold=11)
    codes = protein_word_codes(q, 3)
    assert int(codes[0]) in idx


def test_protein_neighborhood_includes_similar_words():
    scheme = ProteinScore()
    q = encode_protein("WWWW")
    idx = WordIndex.for_protein(q, scheme, k=3, threshold=11)
    # WWF scores 11+11-? W/F = 1 -> 11+11+1 = 23 >= 11: in neighbourhood.
    similar = encode_protein("WWF")
    code = int(protein_word_codes(similar, 3)[0])
    assert code in idx


def test_protein_neighborhood_excludes_dissimilar_words():
    scheme = ProteinScore()
    q = encode_protein("WWW")
    idx = WordIndex.for_protein(q, scheme, k=3, threshold=11)
    diss = encode_protein("PPP")  # W vs P = -4 each: score -12
    code = int(protein_word_codes(diss, 3)[0])
    assert code not in idx


def test_scan_empty_inputs():
    q = encode_dna("ACGTACGTACGT")
    idx = WordIndex.for_dna(q, k=11)
    spos, qpos = idx.scan(np.empty(0, dtype=np.int64))
    assert len(spos) == 0 and len(qpos) == 0


# ---------------------------------------------------------------- seeds
def test_one_hit_seeds_dedupes_runs():
    # Hits at consecutive subject positions on one diagonal = one seed.
    spos = np.array([10, 11, 12, 30])
    qpos = np.array([0, 1, 2, 20])  # diagonals: 10,10,10,10
    seeds = one_hit_seeds(spos, qpos)
    assert seeds == [(0, 10), (20, 30)]


def test_one_hit_seeds_different_diagonals_kept():
    spos = np.array([10, 10])
    qpos = np.array([0, 5])
    seeds = one_hit_seeds(spos, qpos)
    assert len(seeds) == 2


def test_one_hit_seeds_empty():
    assert one_hit_seeds(np.array([]), np.array([])) == []


def test_two_hit_requires_nonoverlapping_pair():
    w = 3
    # Two hits 2 apart (overlapping): no seed.
    seeds = two_hit_seeds(np.array([10, 12]), np.array([0, 2]), w)
    assert seeds == []
    # Two hits 5 apart on one diagonal: seed at the second.
    seeds = two_hit_seeds(np.array([10, 15]), np.array([0, 5]), w)
    assert seeds == [(5, 15)]


def test_two_hit_window_limit():
    w = 3
    seeds = two_hit_seeds(np.array([10, 100]), np.array([0, 90]), w, window=40)
    assert seeds == []


def test_two_hit_dense_run_triggers():
    """An exact long match produces hits at every position (distance 1);
    the stored-hit rule must still fire once the span reaches word_size."""
    n = 20
    spos = np.arange(n) + 50
    qpos = np.arange(n)
    seeds = two_hit_seeds(spos, qpos, word_size=3, window=40)
    assert len(seeds) >= 1
    assert seeds[0] == (3, 53)


def test_two_hit_different_diagonals_never_pair():
    seeds = two_hit_seeds(np.array([10, 20]), np.array([0, 5]), 3)
    assert seeds == []
