"""Unit tests for CEFT-PVFS: mirrored layout, doubled-parallelism reads,
write duplexing protocols, and hot-spot skipping."""

import pytest

from repro.cluster import Cluster, disk_stressor
from repro.cluster.params import KiB, MB, MiB
from repro.fs.ceft import CEFT, PRIMARY, MIRROR, WriteProtocol
from repro.fs.interface import FSError
from repro.trace import TraceCollector


def make_ceft(group=2, n_extra=1, monitor_load=False, **kw):
    c = Cluster(n_nodes=2 * group + n_extra)
    nodes = list(c)
    fs = CEFT(nodes[0],
              primary_nodes=nodes[n_extra:n_extra + group],
              mirror_nodes=nodes[n_extra + group:n_extra + 2 * group],
              tracer=TraceCollector(), monitor_load=monitor_load, **kw)
    return c, fs


def run(c, gen, limit=1e12):
    p = c.sim.process(gen)
    c.sim.run_until_complete(p, limit=limit)
    if p.failed:
        raise p.value
    return p.value


def test_group_size_validation():
    c = Cluster(n_nodes=4)
    with pytest.raises(ValueError):
        CEFT(c[0], [c[1]], [c[2], c[3]])
    with pytest.raises(ValueError):
        CEFT(c[0], [], [])


def test_basic_counts():
    c, fs = make_ceft(group=3)
    assert fs.group_size == 3
    assert fs.n_servers == 6


def test_doubled_parallelism_read_uses_both_groups():
    c, fs = make_ceft(group=2)
    client = fs.client(c[0])
    fs.populate("db", 8 * MiB, mirrored=True)

    def proc():
        yield from client.read("db", 0, 8 * MiB)

    run(c, proc())
    p_bytes = sum(s.bytes_served for s in fs.primary)
    m_bytes = sum(s.bytes_served for s in fs.mirror)
    assert p_bytes == 4 * MiB
    assert m_bytes == 4 * MiB


def test_unmirrored_file_reads_primary_only():
    c, fs = make_ceft(group=2)
    client = fs.client(c[0])
    fs.populate("db", 8 * MiB, mirrored=False)

    def proc():
        yield from client.read("db", 0, 8 * MiB)

    run(c, proc())
    assert sum(s.bytes_served for s in fs.primary) == 8 * MiB
    assert sum(s.bytes_served for s in fs.mirror) == 0


def test_double_parallelism_disabled_reads_one_group():
    c, fs = make_ceft(group=2, double_parallelism=False)
    client = fs.client(c[0])
    fs.populate("db", 8 * MiB, mirrored=True)

    def proc():
        yield from client.read("db", 0, 8 * MiB)

    run(c, proc())
    assert sum(s.bytes_served for s in fs.primary) == 8 * MiB
    assert sum(s.bytes_served for s in fs.mirror) == 0


def test_doubled_parallelism_speeds_up_reads():
    def read_time(double):
        c, fs = make_ceft(group=2, double_parallelism=double)
        client = fs.client(c[0])
        fs.populate("db", 50 * MB, mirrored=True)

        def proc():
            yield from client.read("db", 0, 50 * MB)
            return c.sim.now

        return run(c, proc())

    t_single = read_time(False)
    t_double = read_time(True)
    assert t_double < 0.65 * t_single


def test_read_past_eof_raises():
    c, fs = make_ceft()
    client = fs.client(c[0])
    fs.populate("db", 10)

    def proc():
        yield from client.read("db", 0, 11)

    with pytest.raises(FSError):
        run(c, proc())


@pytest.mark.parametrize("proto", list(WriteProtocol))
def test_write_protocols_store_both_copies(proto):
    c, fs = make_ceft(group=2, protocol=proto)
    client = fs.client(c[0])

    def proc():
        yield from client.create("out")
        yield from client.write("out", 0, 1 * MiB)

    run(c, proc())
    # Let any asynchronous mirroring drain.
    c.sim.run()
    assert sum(s.bytes_stored for s in fs.primary) == 1 * MiB
    stored_on_mirror = sum(
        s.bytes_stored + s.node.disk.bytes_written for s in fs.mirror)
    assert stored_on_mirror >= 1 * MiB


def test_async_client_protocol_acks_before_mirror_done():
    def write_time(proto):
        c, fs = make_ceft(group=2, protocol=proto)
        client = fs.client(c[0])

        def proc():
            yield from client.create("out")
            yield from client.write("out", 0, 8 * MiB)
            return c.sim.now

        t = run(c, proc())
        c.sim.run()
        return t

    t_sync = write_time(WriteProtocol.CLIENT_SYNC)
    t_async = write_time(WriteProtocol.CLIENT_ASYNC)
    assert t_async <= t_sync


def test_server_sync_slower_than_server_async_ack():
    def write_time(proto):
        c, fs = make_ceft(group=2, protocol=proto)
        client = fs.client(c[0])

        def proc():
            yield from client.create("out")
            yield from client.write("out", 0, 8 * MiB)
            return c.sim.now

        t = run(c, proc())
        c.sim.run()
        return t

    assert write_time(WriteProtocol.SERVER_ASYNC) < write_time(WriteProtocol.SERVER_SYNC)


def test_load_collector_flags_stressed_server():
    c, fs = make_ceft(group=2, monitor_load=True, load_period=2.0)
    victim = fs.primary[0].node
    c.sim.process(disk_stressor(victim))
    c.sim.run(until=10.0)
    assert fs.is_hot(PRIMARY, 0)
    assert not fs.is_hot(PRIMARY, 1)
    assert not fs.is_hot(MIRROR, 0)
    fs.stop_monitoring()


def test_hot_spot_reads_rerouted_to_mirror():
    c, fs = make_ceft(group=2, monitor_load=True, load_period=1.0)
    client = fs.client(c[0])
    fs.populate("db", 8 * MiB, mirrored=True)
    victim = fs.primary[0]
    c.sim.process(disk_stressor(victim.node))

    def proc():
        # Wait for detection, then read.
        yield c.sim.timeout(5.0)
        before = victim.bytes_served
        yield from client.read("db", 0, 8 * MiB)
        return victim.bytes_served - before

    served_by_hot = run(c, proc(), limit=4000)
    fs.stop_monitoring()
    assert served_by_hot == 0
    # The mirror of the hot server picked up its share.
    assert fs.mirror[0].bytes_served > 0


def test_skip_hot_disabled_keeps_hot_server_in_path():
    c, fs = make_ceft(group=2, monitor_load=True, load_period=1.0,
                      skip_hot=False)
    client = fs.client(c[0])
    fs.populate("db", 8 * MiB, mirrored=True)
    victim = fs.primary[0]
    c.sim.process(disk_stressor(victim.node))

    def proc():
        yield c.sim.timeout(5.0)
        before = victim.bytes_served
        yield from client.read("db", 0, 8 * MiB)
        return victim.bytes_served - before

    served_by_hot = run(c, proc(), limit=40000)
    fs.stop_monitoring()
    assert served_by_hot > 0


def test_hot_mirror_is_skipped_too():
    """Hot spots can be skipped in either group (multi-node hot spots
    work as long as no mirroring pair is fully hot)."""
    c, fs = make_ceft(group=2, monitor_load=True, load_period=1.0)
    client = fs.client(c[0])
    fs.populate("db", 8 * MiB, mirrored=True)
    victim = fs.mirror[1]
    c.sim.process(disk_stressor(victim.node))

    def proc():
        yield c.sim.timeout(5.0)
        before = victim.bytes_served
        yield from client.read("db", 0, 8 * MiB)
        return victim.bytes_served - before

    served_by_hot = run(c, proc(), limit=4000)
    fs.stop_monitoring()
    assert served_by_hot == 0
    assert fs.primary[1].bytes_served > 0


def test_trace_and_mds_accounting():
    c, fs = make_ceft()
    client = fs.client(c[0])
    fs.populate("db", 1 * MiB)

    def proc():
        yield from client.read("db", 0, 1 * MiB)

    run(c, proc())
    assert len(fs.tracer) == 1
    assert fs.mds.ops_served == 1


def test_truncate_and_unlink():
    c, fs = make_ceft(group=2)
    client = fs.client(c[0])
    fs.populate("db", 1 * MiB, mirrored=True)

    def proc():
        yield from client.read("db", 0, 1 * MiB)
        yield from client.truncate("db", 10)
        assert fs.lookup("db").size == 10
        yield from client.unlink("db")

    run(c, proc())
    assert not fs.exists("db")


# ---------------------------------------------------------------- hot set
def test_recompute_hot_uses_median_of_other_servers():
    """Regression (group_size=2): with four servers and one lone spike,
    a self-inclusive median let the hot server mask itself — 0.9 vs a
    median of 0.5 fails the 2x-median test.  Against the *other*
    servers' median (0.1) it is correctly flagged."""
    c, fs = make_ceft(group=2)
    utils = {
        (PRIMARY, 0): 0.9,
        (PRIMARY, 1): 0.1,
        (MIRROR, 0): 0.1,
        (MIRROR, 1): 0.1,
    }
    hot = fs.collector.recompute_hot(utils)
    assert hot == {(PRIMARY, 0)}


def test_recompute_hot_hysteresis_clears_below_threshold():
    c, fs = make_ceft(group=2)
    fs.collector.hot = {(PRIMARY, 0)}
    # Still warm (above clear_threshold): stays flagged.
    hot = fs.collector.recompute_hot({
        (PRIMARY, 0): 0.6, (PRIMARY, 1): 0.5,
        (MIRROR, 0): 0.5, (MIRROR, 1): 0.5,
    })
    assert hot == {(PRIMARY, 0)}
    # Cooled off: cleared.
    hot = fs.collector.recompute_hot({
        (PRIMARY, 0): 0.2, (PRIMARY, 1): 0.5,
        (MIRROR, 0): 0.5, (MIRROR, 1): 0.5,
    })
    assert hot == set()


def test_recompute_hot_uniformly_busy_cluster_not_flagged():
    """Everyone busy is load, not a hot spot: no server beats twice the
    others' median."""
    c, fs = make_ceft(group=2)
    utils = {k: 0.95 for k in
             [(PRIMARY, 0), (PRIMARY, 1), (MIRROR, 0), (MIRROR, 1)]}
    assert fs.collector.recompute_hot(utils) == set()


def test_recompute_hot_single_server_pair():
    """Degenerate group_size=1: two servers, each compared against the
    other alone."""
    c, fs = make_ceft(group=1)
    hot = fs.collector.recompute_hot({(PRIMARY, 0): 0.9, (MIRROR, 0): 0.1})
    assert hot == {(PRIMARY, 0)}


# ---------------------------------------------------------------- create
def test_duplicate_create_raises_before_any_cost():
    """CEFT uses the same check-then-create helper as PVFS: the second
    create of a path raises FSError and pays no metadata RPC."""
    c, fs = make_ceft(group=2)
    client = fs.client(c[0])

    def proc():
        yield from client.create("dup", size=0, mirrored=True)
        ops_before = fs.mds.ops_served
        with pytest.raises(FSError, match="file exists"):
            yield from client.create("dup")
        assert fs.mds.ops_served == ops_before
        return fs.lookup("dup")

    meta = run(c, proc())
    assert meta.mirrored  # the first create's metadata survived intact


def test_create_mirrored_flag_round_trips():
    c, fs = make_ceft(group=2)
    client = fs.client(c[0])

    def proc():
        m1 = yield from client.create("plain", size=4 * KiB)
        m2 = yield from client.create("both", size=4 * KiB, mirrored=True)
        return m1, m2

    m1, m2 = run(c, proc())
    assert not m1.mirrored
    assert m2.mirrored
