"""Schedule-perturbation fuzzing (:mod:`repro.sim.fuzz`).

Three layers of coverage:

* mechanics — perturbed tie-breaking really permutes same-time events,
  is deterministic per seed, and restores insertion order outside the
  context;
* mutation tests — deliberately order-dependent and leaky models are
  flagged (:class:`ScheduleDivergence` / :class:`InvariantViolation`),
  proving the tooling catches the bug class it exists for;
* regression battery — the failure scenarios PR 1 fixed by hand
  (worker aborts, CEFT failover, simultaneous deaths) hold their end
  state under perturbed schedules with strict invariants on.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.params import MB
from repro.core.calibration import default_cost_model
from repro.fs.ceft import CEFT
from repro.fs.pvfs import PVFS
from repro.parallel import FragmentSpec, run_parallel_blast
from repro.parallel.ioadapters import ParallelIO
from repro.parallel.master import JobAborted
from repro.sim import (
    InvariantViolation,
    Resource,
    ScheduleDivergence,
    ScheduleFuzzer,
    Simulator,
    job_fingerprint,
    perturbed,
)
from repro.sim.engine import default_tie_break_seed

SEEDS = range(8)


def fragments(n, nbytes=2 * MB):
    return [FragmentSpec(i, nbytes, nbytes) for i in range(n)]


def make_ceft_cluster(n_workers=3, group=2):
    c = Cluster(n_nodes=1 + n_workers + 2 * group)
    nodes = list(c)
    workers = nodes[1:1 + n_workers]
    servers = nodes[1 + n_workers:]
    fs = CEFT(nodes[0], servers[:group], servers[group:],
              monitor_load=False)
    ios = [ParallelIO(fs.client(w)) for w in workers]
    return c, nodes[0], workers, ios, fs


def kill_worker_at(sim, rank, at):
    def killer():
        yield sim.timeout(at)
        proc = sim.find_process(f"worker{rank}")
        if proc is not None:
            proc.interrupt("node crashed")

    sim.process(killer(), daemon=True)


def _race_order(seed):
    """Firing order of three same-time processes under one seed."""
    with perturbed(seed):
        sim = Simulator()
        order = []

        def racer(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            sim.process(racer(tag))
        sim.run()
    return tuple(order)


# ---------------------------------------------------------------- mechanics
def test_perturbed_context_sets_and_restores_default():
    assert default_tie_break_seed() is None
    with perturbed(7):
        assert default_tie_break_seed() == 7
        assert Simulator().tie_break_seed == 7
    assert default_tie_break_seed() is None


def test_unperturbed_ties_fire_in_insertion_order():
    assert _race_order(None) == ("a", "b", "c")


def test_perturbation_permutes_ties_deterministically():
    orders = {seed: _race_order(seed) for seed in range(20)}
    # each seed is reproducible ...
    for seed, order in orders.items():
        assert _race_order(seed) == order
    # ... and at least one seed deviates from insertion order
    assert any(o != ("a", "b", "c") for o in orders.values())
    # every order is still a permutation of the same events
    assert all(sorted(o) == ["a", "b", "c"] for o in orders.values())


def test_env_seed_picked_up(monkeypatch):
    monkeypatch.setenv("REPRO_TIE_BREAK_SEED", "42")
    assert Simulator().tie_break_seed == 42


# ---------------------------------------------------------------- mutation
def test_fuzzer_catches_order_dependent_model():
    """Mutation test: a model whose result is whichever same-time
    process fires first must be flagged as a schedule race."""

    def racy():
        sim = Simulator()
        order = []

        def racer(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            sim.process(racer(tag))
        sim.run()
        sim.check.assert_drained()
        return {"winner": order[0]}

    with pytest.raises(ScheduleDivergence) as info:
        ScheduleFuzzer(racy, seeds=range(20)).run()
    assert info.value.seed in range(20)          # failure is replayable
    assert "winner" in str(info.value)


def test_fuzzer_report_collects_divergent_seeds():
    def racy():
        sim = Simulator()
        first = []

        def racer(tag):
            yield sim.timeout(1.0)
            if not first:
                first.append(tag)

        for tag in "ab":
            sim.process(racer(tag))
        sim.run()
        return {"winner": first[0]}

    report = ScheduleFuzzer(racy, seeds=range(20)).run(
        raise_on_divergence=False)
    assert not report.ok
    assert report.failures                       # some seed flipped the tie
    assert report.seeds_passed                   # and some did not
    seeds = [s for s, _ in report.failures]
    assert all(isinstance(e, ScheduleDivergence) for _, e in report.failures)
    assert set(seeds).isdisjoint(report.seeds_passed)


def test_fuzzer_surfaces_invariant_violation_with_seed():
    """A leak that only shows up under a perturbed schedule is
    reported with the seed that exposed it."""

    def leaky():
        sim = Simulator()
        res = Resource(sim, capacity=1, name="slot")

        def leaker():
            req = res.request()
            yield req
            yield sim.timeout(1.0)
            if sim.tie_break_seed is None:       # clean in the baseline,
                res.release(req)                 # leaks under every seed

        sim.process(leaker())
        sim.run()
        sim.check.assert_drained()
        return {}

    with pytest.raises(InvariantViolation, match="perturbation seed=0"):
        ScheduleFuzzer(leaky, seeds=range(3)).run()


# ---------------------------------------------------------------- battery
def scenario_pvfs_happy():
    c = Cluster(n_nodes=8)
    nodes = list(c)
    fs = PVFS(nodes[0], nodes[4:8])
    ios = [ParallelIO(fs.client(w)) for w in nodes[1:4]]
    job = run_parallel_blast(nodes[0], nodes[1:4], ios, fragments(6),
                             default_cost_model())
    c.sim.run()
    c.sim.check.assert_drained()
    return job_fingerprint(job)


def scenario_ceft_worker_kill():
    c, master, workers, ios, fs = make_ceft_cluster(n_workers=3)
    kill_worker_at(c.sim, rank=2, at=5.0)
    job = run_parallel_blast(master, workers, ios, fragments(6),
                             default_cost_model())
    c.sim.run()
    c.sim.check.assert_drained()
    return job_fingerprint(job)


def scenario_ceft_server_crash():
    c, master, workers, ios, fs = make_ceft_cluster(n_workers=3)

    def crasher():
        yield c.sim.timeout(5.0)
        fs.primary[1].fail()

    c.sim.process(crasher(), daemon=True)
    job = run_parallel_blast(master, workers, ios, fragments(6),
                             default_cost_model())
    c.sim.run()
    c.sim.check.assert_drained()
    return job_fingerprint(job)


def scenario_pvfs_server_crash_aborts():
    c = Cluster(n_nodes=8)
    nodes = list(c)
    fs = PVFS(nodes[0], nodes[4:8])
    ios = [ParallelIO(fs.client(w)) for w in nodes[1:4]]

    def crasher():
        yield c.sim.timeout(5.0)
        fs.servers[1].fail()

    c.sim.process(crasher(), daemon=True)
    try:
        run_parallel_blast(nodes[0], nodes[1:4], ios, fragments(6),
                           default_cost_model())
        outcome = "completed"
    except JobAborted as exc:
        outcome = f"aborted:{exc.rank is not None}"
    c.sim.run()
    c.sim.check.assert_drained()
    return {"outcome": outcome}


def scenario_simultaneous_worker_deaths():
    c, master, workers, ios, fs = make_ceft_cluster(n_workers=3)
    for rank in range(3):                        # all die in the same tick
        kill_worker_at(c.sim, rank=rank, at=5.0)
    try:
        job = run_parallel_blast(master, workers, ios, fragments(6),
                                 default_cost_model())
        fp = job_fingerprint(job)
        fp["outcome"] = "completed"
    except JobAborted:
        fp = {"outcome": "aborted"}
    c.sim.run()
    c.sim.check.assert_drained()
    return fp


def scenario_kill_and_crash_tie():
    c, master, workers, ios, fs = make_ceft_cluster(n_workers=3)
    kill_worker_at(c.sim, rank=2, at=5.0)

    def crasher():                               # same instant as the kill
        yield c.sim.timeout(5.0)
        fs.primary[0].fail()

    c.sim.process(crasher(), daemon=True)
    job = run_parallel_blast(master, workers, ios, fragments(6),
                             default_cost_model())
    c.sim.run()
    c.sim.check.assert_drained()
    return job_fingerprint(job)


BATTERY = [
    scenario_pvfs_happy,
    scenario_ceft_worker_kill,
    scenario_ceft_server_crash,
    scenario_pvfs_server_crash_aborts,
    scenario_simultaneous_worker_deaths,
    scenario_kill_and_crash_tie,
]


@pytest.mark.parametrize("scenario", BATTERY, ids=lambda s: s.__name__)
def test_end_state_stable_under_perturbation(scenario):
    report = ScheduleFuzzer(scenario, seeds=SEEDS).run()
    assert report.ok
    assert report.seeds_passed == list(SEEDS)


def test_degraded_fingerprint_values_pinned():
    """Regression pin: the CEFT worker-kill scenario conserves exactly
    these totals (one requeue, worker 2 dead, all six fragments done)."""
    fp = scenario_ceft_worker_kill()
    assert fp["fragments_done"] == 6
    assert fp["fragments_searched"] == list(range(6))
    assert fp["aborted_workers"] == [2]
    assert fp["requeues"] >= 1
    assert fp["workers_accounted"] == 3
