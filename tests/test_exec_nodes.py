"""Multi-node execution: byte-identical remote search over localhost
socket nodes, ship-once pack caching, CEFT-style mirror survival of a
killed node, last-mirror loss degrading to serial, reconnect-adopt, and
the stray-transport sweep in ``ExecPool.close``."""

import dataclasses
import os
import socket
import warnings

import numpy as np
import pytest

from repro.blast.score import NucleotideScore
from repro.blast.search import SearchParams, search
from repro.blast.seqdb import NT, SequenceDB
from repro.exec import ExecPool, PoolJobError
from repro.exec.faults import Fault, FaultPlan
from repro.exec.nodes import NodeFleet
from repro.exec.shm import NAME_PREFIX

NT_LETTERS = np.array(list("ACGT"))


def shm_segments():
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(("psm_", NAME_PREFIX)))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = shm_segments()
    yield
    assert shm_segments() == before, "test leaked shared-memory segments"


def random_nt_db(rng, n_seqs, min_len=5, max_len=300):
    db = SequenceDB(NT)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"s{i} desc", "".join(NT_LETTERS[rng.integers(0, 4, length)]))
    return db


def dump(results):
    return (results.query_id, results.query_len, results.db_residues,
            results.db_sequences,
            [(h.subject_id, h.description, h.subject_len, h.fragment_id,
              [dataclasses.astuple(p) for p in h.hsps])
             for h in results.hits])


def serial_many(queries, db, scheme, params):
    return [search(q, db, scheme, params, query_id=f"q{i}")
            for i, q in enumerate(queries)]


def make_case(seed, n_seqs=20, n_queries=3):
    rng = np.random.default_rng(seed)
    db = random_nt_db(rng, n_seqs)
    queries = [db.sequence(int(rng.integers(0, n_seqs)))[:100].copy()
               for _ in range(n_queries)]
    return db, queries, NucleotideScore(), SearchParams(word_size=11)


# ----------------------------------------------------------------------
# Remote equivalence and ship-once caching
# ----------------------------------------------------------------------
def test_two_nodes_byte_identity_and_ship_once():
    db, queries, scheme, params = make_case(31)
    expected = [dump(r) for r in serial_many(queries, db, scheme, params)]
    with NodeFleet(2) as fleet:
        with ExecPool(jobs=0, nodes=fleet.addresses, replication=2) as pool:
            got = pool.search_many(queries, db, scheme, params,
                                   query_ids=[f"q{i}" for i in
                                              range(len(queries))])
            assert [dump(r) for r in got] == expected
            stats1 = pool.node_ship_stats()
            # replication=2 on 2 nodes: every pack lives on both.
            assert all(s["packs_shipped"] > 0 for s in stats1)
            assert pool.last_stats.remote_results > 0
            assert not pool.last_stats.fallback

            # Second batch through the same pool: the packs are already
            # attached — not a byte reshipped.
            got2 = pool.search_many(queries, db, scheme, params,
                                    query_ids=[f"q{i}" for i in
                                               range(len(queries))])
            assert [dump(r) for r in got2] == expected
            stats2 = pool.node_ship_stats()
            assert [s["bytes_shipped"] for s in stats2] == \
                [s["bytes_shipped"] for s in stats1]
            assert pool.ledger.anomalies() == 0


def test_local_and_remote_mix_matches_serial():
    db, queries, scheme, params = make_case(32)
    expected = [dump(r) for r in serial_many(queries, db, scheme, params)]
    with NodeFleet(1) as fleet:
        with ExecPool(jobs=2, nodes=fleet.addresses) as pool:
            got = pool.search_many(queries, db, scheme, params,
                                   query_ids=[f"q{i}" for i in
                                              range(len(queries))])
            assert [dump(r) for r in got] == expected
            assert not pool.last_stats.fallback
            assert pool.last_stats.tasks_done > 0


# ----------------------------------------------------------------------
# Node loss: mirror survival, last-mirror degradation, reconnect-adopt
# ----------------------------------------------------------------------
def test_killed_node_is_served_by_its_mirror():
    """An injected kill (SIGKILL semantics, no goodbye) on one node
    mid-job: the task requeues onto the mirror that already holds the
    fragments — byte-identical output, no serial fallback."""
    db, queries, scheme, params = make_case(33)
    expected = [dump(r) for r in serial_many(queries, db, scheme, params)]
    plan = FaultPlan(faults=(Fault(kind="kill", task_index=0),))
    with NodeFleet(2, plans=[plan, None]) as fleet:
        with ExecPool(jobs=0, nodes=fleet.addresses, replication=2,
                      respawn=False, heartbeat=0.1) as pool:
            got = pool.search_many(queries, db, scheme, params,
                                   query_ids=[f"q{i}" for i in
                                              range(len(queries))])
            assert [dump(r) for r in got] == expected
            assert len(pool.last_stats.worker_deaths) >= 1
            assert pool.last_stats.requeues >= 1
            assert not pool.last_stats.fallback
            kinds = {e.kind for e in pool.ledger.entries}
            assert "worker_death" in kinds and "requeue" in kinds
            assert pool.ledger.anomalies() == 0


def test_last_mirror_lost_degrades_to_serial():
    """One node, replication 1, killed mid-job: the only holder of the
    fragments is gone.  The pool must degrade to the serial engine —
    byte-identical, never wrong or partial — and say so."""
    db, queries, scheme, params = make_case(34)
    expected = [dump(r) for r in serial_many(queries, db, scheme, params)]
    plan = FaultPlan(faults=(Fault(kind="kill", task_index=0),))
    with NodeFleet(1, plans=[plan]) as fleet:
        with ExecPool(jobs=0, nodes=fleet.addresses, replication=1,
                      respawn=False, heartbeat=0.1) as pool:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always", RuntimeWarning)
                got = pool.search_many(queries, db, scheme, params,
                                       query_ids=[f"q{i}" for i in
                                                  range(len(queries))])
            assert [dump(r) for r in got] == expected
            assert pool.last_stats.fallback
            assert any("serial" in str(w.message) for w in caught)
            assert pool.ledger.count("fallback") == 1
            assert pool.ledger.anomalies() == 0


def test_last_mirror_lost_without_fallback_is_pool_failure():
    db, queries, scheme, params = make_case(35)
    plan = FaultPlan(faults=(Fault(kind="kill", task_index=0),))
    with NodeFleet(1, plans=[plan]) as fleet:
        with ExecPool(jobs=0, nodes=fleet.addresses, replication=1,
                      respawn=False, serial_fallback=False,
                      heartbeat=0.1) as pool:
            with pytest.raises(PoolJobError):
                pool.search_many(queries, db, scheme, params,
                                 query_ids=[f"q{i}" for i in
                                            range(len(queries))])


def test_disconnect_fault_reconnects_and_adopts_cached_packs():
    """A dropped connection (no goodbye) is not a dead node: the pool
    redials with backoff and the agent's identity-keyed pack cache
    turns the re-attach into an ``adopt`` — zero pack bytes reshipped."""
    db, queries, scheme, params = make_case(36)
    expected = [dump(r) for r in serial_many(queries, db, scheme, params)]
    plan = FaultPlan(faults=(Fault(kind="disconnect", task_index=0),))
    with NodeFleet(1, plans=[plan]) as fleet:
        with ExecPool(jobs=0, nodes=fleet.addresses, replication=1,
                      heartbeat=0.1) as pool:
            got = pool.search_many(queries, db, scheme, params,
                                   query_ids=[f"q{i}" for i in
                                              range(len(queries))])
            assert [dump(r) for r in got] == expected
            assert not pool.last_stats.fallback
            assert pool.last_stats.reconnects >= 1
            stats = pool.node_ship_stats()[0]
            assert stats["connects"] >= 2
            assert stats["packs_adopted"] > 0
            assert stats["bytes_saved"] > 0
            assert pool.ledger.anomalies() == 0


def test_fleet_respawn_reserves_same_port_and_reships():
    """A respawned agent is a fresh process (empty cache) on the same
    port: the next run reconnects and ships again — no stale adopt."""
    db, queries, scheme, params = make_case(37)
    expected = [dump(r) for r in serial_many(queries, db, scheme, params)]
    qids = [f"q{i}" for i in range(len(queries))]
    with NodeFleet(1) as fleet:
        addr = fleet.addresses[0]
        with ExecPool(jobs=0, nodes=fleet.addresses, replication=1,
                      heartbeat=0.1) as pool:
            got = pool.search_many(queries, db, scheme, params,
                                   query_ids=qids)
            assert [dump(r) for r in got] == expected
            shipped1 = pool.node_ship_stats()[0]["bytes_shipped"]
            fleet.kill(0)
            fleet.respawn(0)
            assert fleet.addresses[0] == addr
            got2 = pool.search_many(queries, db, scheme, params,
                                    query_ids=qids)
            assert [dump(r) for r in got2] == expected
            stats = pool.node_ship_stats()[0]
            assert stats["connects"] >= 2
            assert stats["bytes_shipped"] > shipped1


# ----------------------------------------------------------------------
# close() hygiene (stray transports, half-open node sockets)
# ----------------------------------------------------------------------
def test_close_sweeps_transports_of_failed_spawn():
    """A pipe pair whose process never started must not leak: the
    failed _spawn registers both ends as strays and close() sweeps
    them even though no worker slot ever held the transport."""
    pool = ExecPool(jobs=1, serial_fallback=False)
    real_ctx = pool._ctx

    class _BoomProcess:
        def __init__(self, *a, **kw):
            pass

        def start(self):
            raise RuntimeError("fork refused")

    class _BoomCtx:
        def __getattr__(self, name):
            if name == "Process":
                return _BoomProcess
            return getattr(real_ctx, name)

    pool._ctx = _BoomCtx()
    try:
        with pytest.raises((RuntimeError, PoolJobError)):
            pool.start()
        strays = list(pool._strays)
        assert strays, "failed spawn registered no stray transports"
    finally:
        pool._ctx = real_ctx
        pool.close()
    assert pool._strays == []
    for end in strays:
        assert end.closed


def test_close_aborts_node_client_outside_worker_slots():
    """A connection opened during _ensure_capacity whose worker slot is
    later lost must not survive close() as a half-open socket: node
    clients are aborted regardless of worker-slot state."""
    with NodeFleet(1) as fleet:
        pool = ExecPool(jobs=0, nodes=fleet.addresses,
                        serial_fallback=False)
        try:
            pool.start()
            client = next(iter(pool._node_clients.values()))
            assert client.alive
            # Simulate the race: the slot vanishes, the connection
            # stays behind.
            pool._workers.clear()
        finally:
            pool.close()
        assert client.conn is None or client.conn.closed


def test_unreachable_node_is_a_typed_failure():
    """A configured node nobody listens on: start() must fail with
    PoolJobError after the bounded dial budget, never hang, and leave
    no half-open client."""
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    addr = s.getsockname()[:2]
    s.close()                          # port is now closed: refused dials
    pool = ExecPool(jobs=0, nodes=[addr], serial_fallback=False,
                    node_connect_attempts=1)
    try:
        with pytest.warns(RuntimeWarning, match="unreachable"):
            with pytest.raises(PoolJobError):
                pool.start()
        assert pool.ledger.count("node_unreachable") >= 1
    finally:
        pool.close()
    for client in pool._node_clients.values():
        assert client.conn is None or client.conn.closed
