"""Fragment-range tasks and shared-memory result shipping: the
overhead-aware planner, the columnar result codec, the per-worker
result arena (CRC discipline included), and the pool behaviours that
ride on them — EMA hygiene, send-failure death accounting, and the
respawn attempt budget."""

import dataclasses
import os
import signal
import threading

import numpy as np
import pytest

from repro.blast.score import NucleotideScore
from repro.blast.search import SearchParams, search
from repro.blast.seqdb import AA, NT, SequenceDB
from repro.exec import (ExecPool, Fault, FaultPlan, PackIntegrityError,
                        ResultArena, decode_result_pairs,
                        encode_result_pairs, estimate_payload_size,
                        plan_task_ranges)
from repro.exec.shm import NAME_PREFIX, ShmRegistry

NT_LETTERS = np.array(list("ACGT"))
AA_LETTERS = np.array(list("ARNDCQEGHILKMFPSTWYV"))


def shm_segments():
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(("psm_", NAME_PREFIX)))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


@pytest.fixture(autouse=True)
def no_segment_leaks():
    before = shm_segments()
    yield
    assert shm_segments() == before, "test leaked shared-memory segments"


def random_nt_db(rng, n_seqs, min_len=5, max_len=300):
    db = SequenceDB(NT)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"s{i} desc", "".join(NT_LETTERS[rng.integers(0, 4, length)]))
    return db


def random_aa_db(rng, n_seqs, min_len=5, max_len=200):
    db = SequenceDB(AA)
    for i in range(n_seqs):
        length = int(rng.integers(min_len, max_len))
        db.add(f"p{i}", "".join(AA_LETTERS[rng.integers(0, 20, length)]))
    return db


def dump(results):
    """Full byte-level result dump (every HSP field, hit order, ids)."""
    return (results.query_id, results.query_len, results.db_residues,
            results.db_sequences,
            [(h.subject_id, h.description, h.subject_len, h.fragment_id,
              [dataclasses.astuple(p) for p in h.hsps])
             for h in results.hits])


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
def test_plan_explicit_granularity_chunks_in_order():
    assert plan_task_ranges([1.0] * 5, 1, 2, granularity=2) == \
        [(0, 1), (2, 3), (4,)]
    assert plan_task_ranges([1.0] * 3, 1, 2, granularity=1) == \
        [(0,), (1,), (2,)]
    # granularity is clamped up to 1, and oversize chunks collapse.
    assert plan_task_ranges([1.0] * 3, 1, 2, granularity=0) == \
        [(0,), (1,), (2,)]
    assert plan_task_ranges([1.0] * 3, 1, 2, granularity=99) == [(0, 1, 2)]
    assert plan_task_ranges([], 1, 2) == []


def test_plan_covers_every_index_exactly_once():
    rng = np.random.default_rng(0)
    for n in (1, 2, 3, 7, 16, 33):
        for jobs in (1, 2, 4, 8):
            for n_queries in (1, 3):
                weights = rng.integers(1, 1000, n).astype(float).tolist()
                ranges = plan_task_ranges(weights, n_queries, jobs)
                flat = [i for r in ranges for i in r]
                assert flat == list(range(n)), (n, jobs, n_queries)
                assert all(r == tuple(range(r[0], r[-1] + 1))
                           for r in ranges), "ranges must be contiguous"


def test_plan_amortizes_small_work_into_few_tasks():
    # The benchmark scenario that measured 0.83x: 1M residues over 4
    # fragments at 2 workers used to be 4 dispatch round-trips; the
    # planner folds it to one range per worker.
    assert plan_task_ranges([250_000.0] * 4, 1, 2) == [(0, 1), (2, 3)]
    # Tiny corpus, many workers: capacity still feeds every worker.
    assert len(plan_task_ranges([100.0] * 8, 1, 4)) == 4
    # Tiny corpus, one worker: a single task (no overhead to amortize).
    assert plan_task_ranges([100.0] * 6, 1, 1) == [(0, 1, 2, 3, 4, 5)]


def test_plan_is_weight_aware():
    # One fat fragment up front: the first cut must come early so the
    # fat fragment does not drag half the light ones with it.
    ranges = plan_task_ranges([1000.0, 1.0, 1.0, 1.0, 1.0, 1.0], 1, 2,
                              overhead_s=1e-9)
    assert ranges[0] == (0,)
    # Plenty of work: balance targets ~2 tasks per worker.
    big = plan_task_ranges([10e6] * 16, 1, 4)
    assert len(big) == 8


# ----------------------------------------------------------------------
# The result codec
# ----------------------------------------------------------------------
def _searched_pairs():
    rng = np.random.default_rng(21)
    db = random_nt_db(rng, 20, min_len=80, max_len=300)
    q = db.sequence(3)[:120].copy()
    res = search(q, db, NucleotideScore(), SearchParams(word_size=11),
                 query_id="q3")
    assert res.hits, "codec test needs real hits"
    return [("pack-a", 0, res)]


def test_result_codec_round_trips_exactly():
    pairs = _searched_pairs()
    blob = encode_result_pairs(pairs)
    back = decode_result_pairs(blob)
    assert len(back) == 1 and back[0][:2] == ("pack-a", 0)
    assert dump(back[0][2]) == dump(pairs[0][2])
    # Including float fields to the last ULP.
    orig = [p for h in pairs[0][2].hits for p in h.hsps]
    got = [p for h in back[0][2].hits for p in h.hsps]
    assert all(a.evalue == b.evalue and a.bit_score == b.bit_score
               for a, b in zip(orig, got))


def test_result_codec_empty_and_multi_pack():
    from repro.blast.search import SearchResults

    empty = SearchResults(query_id="e", query_len=7, db_residues=0,
                          db_sequences=0)
    pairs = _searched_pairs() + [("pack-b", 5, empty)]
    back = decode_result_pairs(encode_result_pairs(pairs))
    assert [(name, qi) for name, qi, _ in back] == [("pack-a", 0),
                                                    ("pack-b", 5)]
    assert back[1][2].hits == []
    assert back[1][2].query_id == "e"


def test_estimate_upper_bounds_encoded_size():
    pairs = _searched_pairs()
    assert estimate_payload_size(pairs) >= len(encode_result_pairs(pairs))


def test_result_codec_rejects_foreign_blob():
    with pytest.raises(ValueError):
        decode_result_pairs(b"not a result blob at all")


# ----------------------------------------------------------------------
# The result arena
# ----------------------------------------------------------------------
def test_arena_write_read_round_trip_and_bounds():
    registry = ShmRegistry()
    arena = ResultArena.create(4096, tag="t", registry=registry)
    try:
        blob = os.urandom(1000)
        desc = arena.write(blob)
        assert arena.read(*desc) == blob
        with pytest.raises(ValueError):
            arena.write(os.urandom(5000))      # does not fit
        with pytest.raises(PackIntegrityError):
            arena.read(4000, 500, 0)           # descriptor out of bounds
    finally:
        arena.close()
        registry.release(arena.spec.name)


def test_arena_crc_mismatch_raises_integrity_error():
    registry = ShmRegistry()
    arena = ResultArena.create(4096, tag="c", registry=registry)
    try:
        offset, nbytes, crc = arena.write(b"x" * 256)
        # Scribble into the slab after the descriptor was taken — the
        # torn-write case the CRC discipline exists to catch.
        arena._shm.buf[17] ^= 0xFF
        with pytest.raises(PackIntegrityError):
            arena.read(offset, nbytes, crc)
    finally:
        arena.close()
        registry.release(arena.spec.name)


# ----------------------------------------------------------------------
# End-to-end through the pool
# ----------------------------------------------------------------------
@pytest.mark.parametrize("granularity", [None, 1, 2])
def test_range_tasks_stay_byte_identical_nt(granularity):
    rng = np.random.default_rng(31)
    db = random_nt_db(rng, 28)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:140].copy() for i in (1, 8, 15)]
    serial = [dump(search(q, db, scheme, params, query_id=f"q{i}"))
              for i, q in enumerate(queries)]
    # query_batch=0 pins the one-query-per-task protocol this test's
    # task accounting is written against.
    with ExecPool(jobs=2, task_granularity=granularity,
                  query_batch=0) as pool:
        got = pool.search_many(queries, db, scheme, params,
                               query_ids=[f"q{i}"
                                          for i in range(len(queries))],
                               n_fragments=6)
        stats = pool.last_stats
    assert [dump(r) for r in got] == serial
    assert stats.fragments_done >= 6 * len(queries)
    if granularity == 1:
        assert stats.tasks_done == 6 * len(queries)
    else:
        assert stats.tasks_done <= 6 * len(queries)


def test_range_tasks_stay_byte_identical_aa():
    from repro.blast.score import ProteinScore

    rng = np.random.default_rng(32)
    db = random_aa_db(rng, 22)
    scheme = ProteinScore()
    params = SearchParams()
    q = db.sequence(5)[:80].copy()
    serial = dump(search(q, db, scheme, params, both_strands=False))
    with ExecPool(jobs=2) as pool:
        got = pool.search(q, db, scheme, params, both_strands=False,
                          n_fragments=5)
    assert dump(got) == serial


def test_arena_shipping_end_to_end():
    rng = np.random.default_rng(33)
    db = random_nt_db(rng, 26, min_len=100, max_len=300)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(2)[:150].copy()
    serial = dump(search(q, db, scheme, params))
    # arena_threshold=0 forces every result through the arena path.
    with ExecPool(jobs=2, arena_threshold=0) as pool:
        got = pool.search(q, db, scheme, params, n_fragments=4)
        stats = pool.last_stats
    assert dump(got) == serial
    assert stats.arena_results > 0
    assert stats.inline_results == 0


def test_tiny_arena_falls_back_to_inline():
    rng = np.random.default_rng(34)
    db = random_nt_db(rng, 18, min_len=100, max_len=250)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(4)[:120].copy()
    serial = dump(search(q, db, scheme, params))
    # Forced-arena threshold but a slab too small for any blob: the
    # worker must ship inline rather than fail the task.
    with ExecPool(jobs=2, arena_threshold=0, result_arena_bytes=64) as pool:
        got = pool.search(q, db, scheme, params, n_fragments=4)
        stats = pool.last_stats
    assert dump(got) == serial
    assert stats.arena_results == 0
    assert stats.inline_results > 0


def test_hedge_reissues_whole_range_task():
    rng = np.random.default_rng(35)
    db = random_nt_db(rng, 24)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:150].copy() for i in (2, 9, 17)]
    serial = [dump(search(q, db, scheme, params)) for q in queries]
    plan = FaultPlan(faults=(Fault("slow", rank=0, task_index=0,
                                   delay=3.0),))
    with ExecPool(jobs=2, fault_plan=plan, hedge_after=0.25,
                  task_timeout=30.0) as pool:
        got = pool.search_many(queries, db, scheme, params, n_fragments=4)
        stats = pool.last_stats
        hedged = [e.task for e in pool.ledger.entries if e.kind == "hedge"]
    assert [dump(r) for r in got] == serial
    assert stats.hedge_wins >= 1
    # The hedged key is a full (query, fragment-range) task.
    assert hedged and all(isinstance(names, tuple) and len(names) >= 1
                          for _qi, names in hedged)


def test_hedged_completion_does_not_feed_task_ema():
    rng = np.random.default_rng(36)
    db = random_nt_db(rng, 24)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:150].copy() for i in (2, 9, 17)]
    plan = FaultPlan(faults=(Fault("slow", rank=0, task_index=0,
                                   delay=3.0),))
    with ExecPool(jobs=2, fault_plan=plan, hedge_after=0.25,
                  task_timeout=30.0) as pool:
        pool.search_many(queries, db, scheme, params, n_fragments=4)
        ema = pool._task_ema
        assert pool.last_stats.hedges >= 1
    # Whichever holder of the hedged task answered first (even the 3 s
    # straggler itself), its elapsed time must not poison the EMA that
    # sizes future soft deadlines: unhedged tasks here run in well
    # under a second.
    assert ema is None or ema < 1.0


def test_send_failure_counts_one_death_and_recovers():
    rng = np.random.default_rng(37)
    db = random_nt_db(rng, 24, min_len=80, max_len=250)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(3)[:130].copy()
    serial = dump(search(q, db, scheme, params))
    with ExecPool(jobs=2) as pool:
        # Warm run: packs prepared and attached, so the severed pipe
        # below fails inside task dispatch (_send_task), not attach.
        warm = pool.search(q, db, scheme, params, n_fragments=6)
        assert dump(warm) == serial
        pool._workers[0].conn.close()
        got = pool.search(q, db, scheme, params, n_fragments=6)
        stats = pool.last_stats
    assert dump(got) == serial
    assert stats.worker_deaths == [0]
    # One death, one respawn attempt — the send failure and the
    # liveness sweep must not both bill the budget.
    assert stats.respawn_attempts == stats.respawns == 1
    assert not stats.fallback


def test_respawn_budget_counts_attempts_not_successes(monkeypatch):
    rng = np.random.default_rng(38)
    db = random_nt_db(rng, 20, min_len=80, max_len=250)
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    q = db.sequence(2)[:120].copy()
    serial = dump(search(q, db, scheme, params))
    with ExecPool(jobs=2, task_sleep=0.2, task_granularity=1,
                  max_respawns=2) as pool:
        pool.start()
        victim = pool.worker_pids()[0]
        # Every replacement is stillborn from here on.
        monkeypatch.setattr(ExecPool, "_await_ready",
                            lambda self, w: False)
        timer = threading.Timer(0.1, os.kill, (victim, signal.SIGKILL))
        timer.start()
        try:
            got = pool.search(q, db, scheme, params, n_fragments=4)
        finally:
            timer.cancel()
            timer.join()
        stats = pool.last_stats
        ledger = pool.ledger.summary()
    assert dump(got) == serial              # the survivor finished alone
    assert not stats.fallback
    assert stats.respawns == 0
    # Exactly the budget was attempted (the pump visits the dead slot
    # every tick); a permanently failing spawn cannot loop forever.
    assert stats.respawn_attempts == 2
    assert ledger.get("respawn_failed", 0) == 2


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="parallel speedup needs at least 2 cores")
def test_two_workers_beat_serial():
    """The regression this PR fixes: with >= 2 real cores the pool must
    never be slower than the serial engine it wraps (was 0.83x)."""
    import time

    from repro.blast.alphabet import encode_dna
    from repro.workloads import extract_query, synthetic_nt_db

    db = synthetic_nt_db(600_000, seed=0)
    query = encode_dna(extract_query(db, length=568, seed=1))
    scheme = NucleotideScore()
    params = SearchParams()

    def median3(fn):
        times = []
        for _ in range(3):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return sorted(times)[1]

    serial_res = search(query, db, scheme, params)
    t_serial = median3(lambda: search(query, db, scheme, params))
    with ExecPool(jobs=2) as pool:
        first = pool.search(query, db, scheme, params)  # pack + attach
        t_pool = median3(lambda: pool.search(query, db, scheme, params))
    assert dump(first) == dump(serial_res)
    assert t_serial / t_pool >= 1.0
