"""Integration tests for the experiment layer: the paper's headline
shapes at reduced database scale."""

import pytest

from repro.core import (
    ExperimentConfig,
    Placement,
    Variant,
    run_experiment,
)
from repro.core.metrics import (
    amdahl_speedup_limit,
    amdahl_time,
    degradation,
    efficiency,
    io_fraction,
    speedup,
)

SCALE = 1 / 50  # ~54 MB database: fast but preserves compute/IO ratios


def run(variant, w, s=None, **kw):
    cfg = ExperimentConfig(variant=variant, n_workers=w,
                           n_servers=s if s is not None else w,
                           **kw).scaled(SCALE)
    return run_experiment(cfg)


# ---------------------------------------------------------------- metrics
def test_speedup_and_degradation():
    assert speedup(10, 5) == 2.0
    assert degradation(10, 30) == 3.0
    with pytest.raises(ValueError):
        speedup(10, 0)
    with pytest.raises(ValueError):
        degradation(0, 10)


def test_io_fraction():
    assert io_fraction(1, 9) == pytest.approx(0.1)
    assert io_fraction(0, 0) == 0.0


def test_amdahl():
    assert amdahl_speedup_limit(0.5) == 2.0
    assert amdahl_speedup_limit(1.0) == float("inf")
    with pytest.raises(ValueError):
        amdahl_speedup_limit(1.5)
    assert amdahl_time(100, 0.1, 10) == pytest.approx(91.0)
    with pytest.raises(ValueError):
        amdahl_time(100, 0.1, 0)


def test_efficiency():
    es = efficiency([10.0, 6.0, 4.0])
    assert es[0] == 1.0
    assert es[1] == pytest.approx(10 / 12)


# ---------------------------------------------------------------- config
def test_config_validation():
    with pytest.raises(ValueError):
        run_experiment(ExperimentConfig(variant=Variant.CEFT_PVFS,
                                        n_servers=5).scaled(SCALE))
    with pytest.raises(ValueError):
        run_experiment(ExperimentConfig(n_workers=0).scaled(SCALE))


def test_fragments_default_to_workers():
    cfg = ExperimentConfig(n_workers=4).scaled(SCALE)
    assert len(cfg.fragments) == 4
    assert sum(f.nbytes for f in cfg.fragments) == cfg.db.total_bytes


def test_scaled_preserves_ratio():
    cfg = ExperimentConfig().scaled(0.1)
    assert cfg.db.total_bytes == pytest.approx(270_000_000, rel=0.01)


# ---------------------------------------------------------------- shapes
def test_workers_scale_execution_time():
    t1 = run(Variant.ORIGINAL, 1).execution_time
    t8 = run(Variant.ORIGINAL, 8).execution_time
    # Near-linear compute scaling; per-fragment setup cost is fixed, so
    # at reduced database scale the ratio sits below the ideal 8.
    assert 3 < t1 / t8 < 9


def test_fig5_pvfs_loses_at_one_worker():
    orig = run(Variant.ORIGINAL, 1).execution_time
    pvfs = run(Variant.PVFS, 1).execution_time
    assert pvfs > orig


def test_fig5_pvfs_wins_at_four_workers():
    orig = run(Variant.ORIGINAL, 4).execution_time
    pvfs = run(Variant.PVFS, 4).execution_time
    assert pvfs < orig


def test_fig6_single_server_pvfs_always_loses():
    for w in (1, 2, 4):
        orig = run(Variant.ORIGINAL, w).execution_time
        pvfs = run(Variant.PVFS, w, s=1).execution_time
        assert pvfs > orig, f"w={w}"


def test_fig6_server_scaling_saturates():
    t = {s: run(Variant.PVFS, 4, s=s).execution_time for s in (1, 4, 16)}
    assert t[4] < t[1]                      # initial gain
    gain_late = t[4] - t[16]
    gain_early = t[1] - t[4]
    assert gain_late < 0.3 * gain_early     # plateau (Amdahl)


def test_fig7_ceft_slightly_slower_than_pvfs():
    tp = run(Variant.PVFS, 4, s=8, placement=Placement.DEDICATED).execution_time
    tc = run(Variant.CEFT_PVFS, 4, s=8, placement=Placement.DEDICATED).execution_time
    assert tc >= tp
    assert tc < 1.15 * tp   # but only slightly (paper: "acceptable")


def test_fig9_degradation_ordering():
    degs = {}
    for variant in (Variant.ORIGINAL, Variant.PVFS, Variant.CEFT_PVFS):
        base = run(variant, 8, s=8).execution_time
        stressed = run(variant, 8, s=8, n_stressed_disks=1,
                       time_limit=1e7).execution_time
        degs[variant] = stressed / base
    # CEFT skips the hot spot; PVFS suffers most (paper: 10x/21x/2x).
    assert degs[Variant.CEFT_PVFS] < degs[Variant.ORIGINAL] < degs[Variant.PVFS]
    assert degs[Variant.CEFT_PVFS] < 4.5
    assert degs[Variant.ORIGINAL] > 4
    assert degs[Variant.PVFS] > 1.5 * degs[Variant.ORIGINAL]


def test_ceft_skip_hot_disabled_degrades_like_pvfs():
    base = run(Variant.CEFT_PVFS, 4, s=4).execution_time
    no_skip = run(Variant.CEFT_PVFS, 4, s=4, n_stressed_disks=1,
                  ceft_skip_hot=False, time_limit=1e7).execution_time
    with_skip = run(Variant.CEFT_PVFS, 4, s=4, n_stressed_disks=1,
                    time_limit=1e7).execution_time
    assert with_skip < no_skip
    assert no_skip / base > 3


def test_io_fraction_small_when_compute_dominates():
    res = run(Variant.ORIGINAL, 2)
    assert 0.03 < res.io_fraction < 0.2  # paper: ~11% at 2 workers


def test_copy_time_reported_for_original_only():
    assert run(Variant.ORIGINAL, 2).copy_time > 0
    assert run(Variant.PVFS, 2).copy_time == 0


def test_trace_collection_through_experiment():
    res = run(Variant.ORIGINAL, 2, trace=True)
    assert res.tracer is not None
    from repro.trace import analyze
    stats = analyze(res.tracer)
    assert stats.operations == 2 * 18  # 18 ops per worker
    assert stats.read_fraction == pytest.approx(0.89, abs=0.01)


def test_dedicated_placement_uses_more_nodes():
    res = run(Variant.PVFS, 2, s=2, placement=Placement.DEDICATED)
    assert res.execution_time > 0
