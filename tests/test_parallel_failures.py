"""Worker-abort handling in the master/worker protocol.

Over CEFT-PVFS the master runs in degraded mode: a dead worker's
fragment is requeued and the job completes on the survivors.  Over
PVFS (or local disks) there is no second copy of the data, so the
first abort takes the whole job down with :class:`JobAborted`.
Either way the master accounts for every worker — including the dead
ones — and the simulation drains with no orphaned processes.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.params import MB
from repro.core.calibration import default_cost_model
from repro.fs.ceft import CEFT
from repro.fs.localfs import LocalFS
from repro.fs.pvfs import PVFS
from repro.parallel import FragmentSpec, LocalIO, run_parallel_blast
from repro.parallel.ioadapters import ParallelIO
from repro.parallel.master import JobAborted


def fragments(n, nbytes=2 * MB):
    return [FragmentSpec(i, nbytes, nbytes) for i in range(n)]


def make_ceft_cluster(n_workers=3, group=2):
    c = Cluster(n_nodes=1 + n_workers + 2 * group)
    nodes = list(c)
    workers = nodes[1:1 + n_workers]
    servers = nodes[1 + n_workers:]
    fs = CEFT(nodes[0], servers[:group], servers[group:],
              monitor_load=False)
    ios = [ParallelIO(fs.client(w)) for w in workers]
    return c, nodes[0], workers, ios, fs


def kill_worker_at(sim, rank, at):
    """Interrupt the named worker process at simulated time *at*."""
    def killer():
        yield sim.timeout(at)
        proc = sim.find_process(f"worker{rank}")
        if proc is not None:
            proc.interrupt("node crashed")

    sim.process(killer(), daemon=True)


# ---------------------------------------------------------------- degraded
def test_worker_kill_over_ceft_completes_degraded():
    c, master, workers, ios, fs = make_ceft_cluster(n_workers=3)
    kill_worker_at(c.sim, rank=2, at=5.0)
    job = run_parallel_blast(master, workers, ios, fragments(6),
                             default_cost_model())
    assert job.fragments_done == 6
    done = sorted(f for w in job.workers for f in w.fragments)
    assert done == list(range(6))       # every fragment searched once
    assert job.aborted_workers == [2]
    assert job.requeues >= 1            # the dead worker's fragment
    assert len(job.workers) == 3        # the dead worker is accounted
    c.sim.run()
    assert c.sim.orphans() == []


def test_worker_kill_over_local_aborts_job():
    c = Cluster(n_nodes=4)
    workers = list(c)[1:]
    ios = [LocalIO(LocalFS(n), n) for n in workers]
    kill_worker_at(c.sim, rank=1, at=5.0)
    with pytest.raises(JobAborted) as info:
        run_parallel_blast(c[0], workers, ios, fragments(6),
                           default_cost_model())
    assert info.value.rank == 1
    c.sim.run()
    assert c.sim.orphans() == []


def test_server_crash_over_pvfs_aborts_job():
    c = Cluster(n_nodes=8)
    nodes = list(c)
    workers, servers = nodes[1:4], nodes[4:8]
    fs = PVFS(nodes[0], servers)
    ios = [ParallelIO(fs.client(w)) for w in workers]

    def crasher():
        yield c.sim.timeout(5.0)
        fs.servers[1].fail()

    c.sim.process(crasher(), daemon=True)
    with pytest.raises(JobAborted):
        run_parallel_blast(nodes[0], workers, ios, fragments(6),
                           default_cost_model())
    c.sim.run()
    assert c.sim.orphans() == []


def test_server_crash_over_ceft_is_invisible_to_the_job():
    """A data-server crash is absorbed below the worker (client-side
    failover), so no worker aborts at all."""
    c, master, workers, ios, fs = make_ceft_cluster(n_workers=3)

    def crasher():
        yield c.sim.timeout(5.0)
        fs.primary[0].fail()

    c.sim.process(crasher(), daemon=True)
    job = run_parallel_blast(master, workers, ios, fragments(6),
                             default_cost_model())
    assert job.fragments_done == 6
    assert job.aborted_workers == []
    assert job.requeues == 0
    c.sim.run()
    assert c.sim.orphans() == []


def test_all_workers_dead_raises_job_aborted_even_degraded():
    c, master, workers, ios, fs = make_ceft_cluster(n_workers=2)
    kill_worker_at(c.sim, rank=1, at=5.0)
    kill_worker_at(c.sim, rank=2, at=6.0)
    with pytest.raises(JobAborted):
        run_parallel_blast(master, workers, ios, fragments(8),
                           default_cost_model())
    c.sim.run()
    assert c.sim.orphans() == []


def test_degraded_mode_override():
    """Explicit degraded_mode=False turns a CEFT worker kill into a
    job abort (the auto-detection is just a default)."""
    c, master, workers, ios, fs = make_ceft_cluster(n_workers=3)
    kill_worker_at(c.sim, rank=2, at=5.0)
    with pytest.raises(JobAborted):
        run_parallel_blast(master, workers, ios, fragments(6),
                           default_cost_model(), degraded_mode=False)


# ---------------------------------------------------------------- accounting
def test_worker_stats_collected_by_master():
    """JobResult.workers comes from the stop acks now: one entry per
    worker, finish times within the job, totals consistent."""
    c = Cluster(n_nodes=4)
    workers = list(c)[1:]
    ios = [LocalIO(LocalFS(n), n) for n in workers]
    job = run_parallel_blast(c[0], workers, ios, fragments(6),
                             default_cost_model())
    assert len(job.workers) == 3
    assert [w.rank for w in job.workers] == [1, 2, 3]
    for w in job.workers:
        assert 0 < w.finish_time <= job.total_time
        assert w.read_bytes > 0
    assert sum(len(w.fragments) for w in job.workers) == 6


def test_dead_worker_partial_stats_are_reported():
    c, master, workers, ios, fs = make_ceft_cluster(n_workers=3)
    kill_worker_at(c.sim, rank=2, at=5.0)
    job = run_parallel_blast(master, workers, ios, fragments(6),
                             default_cost_model())
    dead = next(w for w in job.workers if w.rank == 2)
    # It died mid-fragment: some I/O happened, its finish time is the
    # abort time, well before the job's end.
    assert dead.read_bytes > 0
    assert dead.finish_time < job.total_time
