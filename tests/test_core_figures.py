"""Tests for the programmatic figure regeneration API (reduced scale)."""

import pytest

from repro.core import reproduce
from repro.core.experiment import Variant
from repro.core.figures import (
    FIGURES,
    figure4,
    figure5,
    figure9,
    table1,
)

SCALE = 1 / 100


def test_reproduce_dispatch_accepts_bare_numbers():
    res = reproduce("9", scale=SCALE)
    assert res.figure_id == "F9"
    res = reproduce("T1", scale=SCALE)
    assert res.figure_id == "T1"


def test_reproduce_unknown_figure():
    with pytest.raises(ValueError, match="unknown figure"):
        reproduce("F8", scale=SCALE)  # fig 8 is the stressor listing


def test_all_registered_figures_have_callables():
    assert set(FIGURES) == {"T1", "F4", "F5", "F6", "F7", "F9"}


def test_table1_calibration_holds_at_any_scale():
    res = table1(scale=SCALE)
    for name, (measured, paper) in res.data.items():
        assert 0.85 * paper <= measured <= 1.05 * paper, name
    assert "Bonnie" in res.table


def test_figure4_structure():
    res = figure4(scale=SCALE)
    stats = res.data["stats"]
    assert stats.operations == 144
    assert res.chart  # the scatter is attached
    assert "F4" in res.render()


def test_figure5_shape_at_reduced_scale():
    # 1/50 is the smallest scale where fixed costs do not drown the
    # I/O-scheme differences.
    res = figure5(scale=1 / 50, workers=(1, 4))
    orig = res.data["original"]
    pvfs = res.data["over PVFS"]
    assert pvfs[0] > orig[0]   # loses at 1 worker
    assert pvfs[1] < orig[1]   # wins at 4
    assert "F5" in res.table and res.chart


def test_figure9_ordering_at_reduced_scale():
    res = figure9(scale=1 / 50)
    factors = {v: f for v, (_b, _s, f) in res.data.items()}
    assert factors[Variant.CEFT_PVFS] < factors[Variant.ORIGINAL] \
        < factors[Variant.PVFS]


def test_render_concatenates_table_and_chart():
    res = figure5(scale=SCALE, workers=(1, 2))
    text = res.render()
    assert res.table in text
    assert res.chart in text
