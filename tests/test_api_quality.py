"""Meta-tests: public-API hygiene.

Every module has a docstring; every public class and function exported
from a package ``__init__`` is documented; ``__all__`` lists resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [m.name for m in pkgutil.walk_packages(repro.__path__, "repro.")]
PACKAGES = ["repro", "repro.sim", "repro.cluster", "repro.fs", "repro.blast",
            "repro.parallel", "repro.workloads", "repro.trace", "repro.core"]


@pytest.mark.parametrize("name", MODULES)
def test_every_module_has_docstring(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_exports_resolve(pkg):
    mod = importlib.import_module(pkg)
    for sym in getattr(mod, "__all__", []):
        assert hasattr(mod, sym), f"{pkg}.__all__ lists missing {sym!r}"


@pytest.mark.parametrize("pkg", PACKAGES)
def test_exported_callables_are_documented(pkg):
    mod = importlib.import_module(pkg)
    undocumented = []
    for sym in getattr(mod, "__all__", []):
        obj = getattr(mod, sym, None)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(sym)
    assert not undocumented, f"{pkg}: undocumented exports {undocumented}"


def test_no_module_shadowing():
    """Exported names never silently shadow submodules."""
    import repro.blast
    import repro.core

    assert callable(repro.blast.search) or inspect.ismodule(repro.blast.search)
