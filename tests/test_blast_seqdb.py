"""Tests for the sequence database format and segmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.fasta import FastaRecord
from repro.blast.seqdb import SequenceDB, format_db, segment_db

FASTA = """>s1 first
ACGTACGTAC
>s2 second
TTTTGGGGCCCCAAAA
>s3 third
ACACACAC
"""


def test_from_fasta_text():
    db = SequenceDB.from_fasta_text(FASTA)
    assert len(db) == 3
    assert db.n_sequences == 3
    assert db.total_residues == 10 + 16 + 8
    assert db.description(0) == "s1 first"
    assert db.sequence_str(1) == "TTTTGGGGCCCCAAAA"
    assert db.lengths() == [10, 16, 8]


def test_format_db_alias():
    db = format_db(FASTA, name="nt")
    assert db.name == "nt"
    assert len(db) == 3


def test_add_rejects_empty():
    db = SequenceDB()
    with pytest.raises(ValueError):
        db.add("x", "")


def test_seqtype_validation():
    with pytest.raises(ValueError):
        SequenceDB("rna")


def test_iteration():
    db = SequenceDB.from_fasta_text(FASTA)
    descs = [d for d, _ in db]
    assert descs == ["s1 first", "s2 second", "s3 third"]


def test_write_load_roundtrip_nt(tmp_path):
    db = SequenceDB.from_fasta_text(FASTA, name="mini")
    paths = db.write(str(tmp_path))
    assert all(p.startswith(str(tmp_path)) for p in paths)
    back = SequenceDB.load(str(tmp_path), "mini")
    assert len(back) == len(db)
    for i in range(len(db)):
        assert back.description(i) == db.description(i)
        assert np.array_equal(back.sequence(i), db.sequence(i))


def test_write_load_roundtrip_aa(tmp_path):
    db = SequenceDB("aa", name="prots")
    db.add("p1", "MKVLAW")
    db.add("p2", "ARNDCQEGHIKLM")
    db.write(str(tmp_path))
    back = SequenceDB.load(str(tmp_path), "prots", seqtype="aa")
    assert back.sequence_str(0) == "MKVLAW"
    assert back.sequence_str(1) == "ARNDCQEGHIKLM"


def test_load_type_mismatch(tmp_path):
    db = SequenceDB.from_fasta_text(FASTA, name="mini")
    db.write(str(tmp_path))
    # Loading nt db as aa fails on the paths (different extension) -> OSError,
    # and with matched name+ext but wrong declared type -> ValueError.
    with pytest.raises((OSError, ValueError)):
        SequenceDB.load(str(tmp_path), "mini", seqtype="aa")


def test_load_bad_magic(tmp_path):
    p = tmp_path / "junk.nin"
    p.write_bytes(b"XXXX" + b"\0" * 32)
    db = SequenceDB(name="junk")
    with pytest.raises(ValueError, match="magic"):
        SequenceDB.load(str(tmp_path), "junk")


def test_disk_size_positive(tmp_path):
    db = SequenceDB.from_fasta_text(FASTA, name="mini")
    db.write(str(tmp_path))
    assert db.disk_size(str(tmp_path)) > 0


def test_nt_disk_format_packs_2bit(tmp_path):
    db = SequenceDB(name="packed")
    db.add("x", "A" * 4000)
    _, seq_path, _ = db.write(str(tmp_path))
    import os
    assert os.path.getsize(seq_path) == 1000  # 4 bases/byte


# ---------------------------------------------------------------- segmentation
def test_segment_balances_residues():
    db = SequenceDB()
    rng = np.random.default_rng(0)
    for i in range(40):
        n = int(rng.integers(50, 500))
        db.add(f"s{i}", "".join(rng.choice(list("ACGT"), n)))
    frags = segment_db(db, 4)
    assert len(frags) == 4
    sizes = [f.total_residues for f in frags]
    assert sum(sizes) == db.total_residues
    assert max(sizes) - min(sizes) < 500  # within one max-sequence
    assert sum(len(f) for f in frags) == len(db)
    assert [f.fragment_id for f in frags] == [0, 1, 2, 3]


def test_segment_preserves_every_sequence_exactly_once():
    db = SequenceDB.from_fasta_text(FASTA)
    frags = segment_db(db, 2)
    descs = sorted(d for f in frags for d, _ in f)
    assert descs == sorted(d for d, _ in db)


def test_segment_more_fragments_than_sequences():
    db = SequenceDB.from_fasta_text(FASTA)
    frags = segment_db(db, 10)
    assert len(frags) == 3  # clamped
    assert all(len(f) == 1 for f in frags)


def test_segment_one_fragment_is_whole_db():
    db = SequenceDB.from_fasta_text(FASTA)
    frags = segment_db(db, 1)
    assert len(frags) == 1
    assert frags[0].total_residues == db.total_residues


def test_segment_validation():
    db = SequenceDB.from_fasta_text(FASTA)
    with pytest.raises(ValueError):
        segment_db(db, 0)


@settings(max_examples=30, deadline=None)
@given(n_seqs=st.integers(1, 30), k=st.integers(1, 8), seed=st.integers(0, 10))
def test_segment_property_conserves_everything(n_seqs, k, seed):
    rng = np.random.default_rng(seed)
    db = SequenceDB()
    for i in range(n_seqs):
        db.add(f"s{i}", "".join(rng.choice(list("ACGT"), int(rng.integers(10, 100)))))
    frags = segment_db(db, k)
    assert sum(f.total_residues for f in frags) == db.total_residues
    assert sum(len(f) for f in frags) == len(db)
