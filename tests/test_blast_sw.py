"""Tests for full Smith-Waterman, and banded-vs-exact properties."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.blast.alphabet import encode_dna
from repro.blast.gapped import banded_local_align
from repro.blast.score import NucleotideScore
from repro.blast.sw import SWAlignment, smith_waterman, smith_waterman_score

SCHEME = NucleotideScore()  # +1/-3, gap 5/2
dna = st.text(alphabet="ACGT", min_size=0, max_size=80)


def test_sw_exact_match():
    a = encode_dna("ACGTACGTACGT")
    aln = smith_waterman(a, a, SCHEME)
    assert aln.score == 12
    assert aln.ops == "M" * 12
    assert (aln.q_start, aln.q_end) == (0, 12)


def test_sw_empty_inputs():
    a = encode_dna("ACGT")
    empty = encode_dna("")
    assert smith_waterman(a, empty, SCHEME).score == 0
    assert smith_waterman(empty, a, SCHEME).score == 0
    assert smith_waterman_score(empty, a, SCHEME) == 0


def test_sw_no_positive_alignment():
    aln = smith_waterman(encode_dna("AAAA"), encode_dna("CCCC"), SCHEME)
    assert aln.score == 0
    assert aln.ops == ""


def test_sw_gap_handling():
    q = encode_dna("ACGTACGTACGT" + "GG" + "TGCATGCATGCA")
    s = encode_dna("ACGTACGTACGT" + "TGCATGCATGCA")
    aln = smith_waterman(q, s, SCHEME)
    assert aln.score == 24 - (5 + 2)  # 24 matches, gap of 2
    assert aln.ops.count("D") == 2
    assert aln.ops.count("M") == 24


def test_sw_local_trims():
    q = encode_dna("CCCC" + "ACGTACGTACGT" + "GGGG")
    s = encode_dna("TTTT" + "ACGTACGTACGT" + "AAAA")
    aln = smith_waterman(q, s, SCHEME)
    assert aln.score == 12
    assert aln.q_start == 4 and aln.q_end == 16
    assert aln.s_start == 4 and aln.s_end == 16


@settings(max_examples=60, deadline=None)
@given(dna, dna)
def test_sw_score_matches_traceback_score(a, b):
    qa, sb = encode_dna(a), encode_dna(b)
    assert smith_waterman(qa, sb, SCHEME).score == \
        smith_waterman_score(qa, sb, SCHEME)


@settings(max_examples=60, deadline=None)
@given(dna, dna)
def test_sw_ops_rescore_to_reported_score(a, b):
    """Replaying the traceback ops reproduces the optimal score."""
    qa, sb = encode_dna(a), encode_dna(b)
    aln = smith_waterman(qa, sb, SCHEME)
    qi, si = aln.q_start, aln.s_start
    score = 0
    gap_open = True
    prev = ""
    for op in aln.ops:
        if op == "M":
            score += int(SCHEME.matrix[qa[qi], sb[si]])
            qi += 1
            si += 1
        else:
            score -= SCHEME.gap_extend if op == prev else SCHEME.gap_open
            if op == "D":
                qi += 1
            else:
                si += 1
        prev = op
    assert qi == aln.q_end and si == aln.s_end
    assert score == aln.score


@settings(max_examples=60, deadline=None)
@given(dna, dna)
def test_banded_never_exceeds_exact(a, b):
    """The banded heuristic is a lower bound on the true optimum."""
    qa, sb = encode_dna(a), encode_dna(b)
    exact = smith_waterman_score(qa, sb, SCHEME)
    banded = banded_local_align(qa, sb, diag=0, scheme=SCHEME, band=8).score
    assert banded <= exact


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet="ACGT", min_size=5, max_size=60),
       st.integers(0, 3), st.integers(0, 100))
def test_banded_equals_exact_when_band_covers(core, n_muts, seed):
    """For near-diagonal alignments (few mutations, no big shifts) a
    generous band recovers the exact optimum."""
    rng = np.random.default_rng(seed)
    q = list(core)
    for _ in range(n_muts):
        pos = int(rng.integers(0, len(q)))
        q[pos] = rng.choice(list("ACGT"))
    qa, sb = encode_dna("".join(q)), encode_dna(core)
    exact = smith_waterman_score(qa, sb, SCHEME)
    banded = banded_local_align(qa, sb, diag=0, scheme=SCHEME,
                                band=max(len(core), 8)).score
    assert banded == exact


@settings(max_examples=40, deadline=None)
@given(dna, dna)
def test_sw_symmetry(a, b):
    """score(a, b) == score(b, a) for a symmetric matrix."""
    qa, sb = encode_dna(a), encode_dna(b)
    assert smith_waterman_score(qa, sb, SCHEME) == \
        smith_waterman_score(sb, qa, SCHEME)
