"""Fault-tolerance tests: server failure, failover, and resync.

The paper's Section 1 motivation for CEFT-PVFS: "PVFS ... does not
provide any fault tolerance ... the failure of any single cluster node
renders the entire file system service unavailable", while CEFT's
RAID-10 redundancy keeps data available through single failures.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.params import KiB, MB, MiB
from repro.fs.ceft import CEFT, MIRROR, PRIMARY, WriteProtocol
from repro.fs.dataserver import RPC_TIMEOUT, ServerFailure
from repro.fs.interface import FSError
from repro.fs.pvfs import PVFS


def run(c, gen, limit=1e12):
    p = c.sim.process(gen)
    c.sim.run_until_complete(p, limit=limit)
    if p.failed:
        raise p.value
    return p.value


def make_pvfs(n=4):
    c = Cluster(n_nodes=n + 1)
    fs = PVFS(c[0], list(c)[1:1 + n])
    return c, fs


def make_ceft(group=2, monitor_load=False, **kw):
    c = Cluster(n_nodes=2 * group + 1)
    nodes = list(c)
    fs = CEFT(nodes[0], nodes[1:1 + group], nodes[1 + group:1 + 2 * group],
              monitor_load=monitor_load, **kw)
    return c, fs


# ---------------------------------------------------------------- PVFS
def test_pvfs_read_fails_when_any_server_dies():
    c, fs = make_pvfs(4)
    fs.populate("db", 8 * MiB)
    client = fs.client(c[0])
    fs.servers[2].fail()

    def proc():
        yield from client.read("db", 0, 8 * MiB)

    with pytest.raises(FSError, match="unavailable"):
        run(c, proc())


def test_pvfs_write_fails_when_any_server_dies():
    c, fs = make_pvfs(2)
    client = fs.client(c[0])
    fs.servers[0].fail()

    def proc():
        yield from client.create("out")
        yield from client.write("out", 0, 1 * MiB)

    with pytest.raises(FSError, match="unavailable"):
        run(c, proc())


def test_pvfs_failure_detection_takes_rpc_timeout():
    c, fs = make_pvfs(2)
    fs.populate("db", 1 * MiB)
    client = fs.client(c[0])
    fs.servers[1].fail()

    def proc():
        try:
            yield from client.read("db", 0, 1 * MiB)
        except FSError:
            return c.sim.now

    t = run(c, proc())
    assert t >= RPC_TIMEOUT


def test_pvfs_recovered_server_serves_again():
    c, fs = make_pvfs(2)
    fs.populate("db", 1 * MiB)
    client = fs.client(c[0])
    fs.servers[0].fail()
    fs.servers[0].recover()

    def proc():
        yield from client.read("db", 0, 1 * MiB)

    run(c, proc())  # no exception
    assert fs.servers[0].bytes_served > 0


# ---------------------------------------------------------------- CEFT
def test_ceft_read_survives_primary_failure():
    c, fs = make_ceft(group=2)
    fs.populate("db", 8 * MiB, mirrored=True)
    client = fs.client(c[0])
    fs.fail_server(PRIMARY, 0)

    def proc():
        n = yield from client.read("db", 0, 8 * MiB)
        return n

    assert run(c, proc()) == 8 * MiB
    # The failed server's share came from its mirror instead.
    assert fs.mirror[0].bytes_served > 0
    assert fs.is_failed(PRIMARY, 0)


def test_ceft_read_survives_mirror_failure():
    c, fs = make_ceft(group=2)
    fs.populate("db", 8 * MiB, mirrored=True)
    client = fs.client(c[0])
    fs.fail_server(MIRROR, 1)

    def proc():
        return (yield from client.read("db", 0, 8 * MiB))

    assert run(c, proc()) == 8 * MiB
    assert fs.primary[1].bytes_served > 0


def test_ceft_read_fails_when_whole_pair_is_down():
    c, fs = make_ceft(group=2)
    fs.populate("db", 8 * MiB, mirrored=True)
    client = fs.client(c[0])
    fs.fail_server(PRIMARY, 0)
    fs.fail_server(MIRROR, 0)

    def proc():
        yield from client.read("db", 0, 8 * MiB)

    with pytest.raises(FSError, match="both copies"):
        run(c, proc())


def test_ceft_unmirrored_file_lost_with_primary():
    c, fs = make_ceft(group=2)
    fs.populate("db", 8 * MiB, mirrored=False)
    client = fs.client(c[0])
    fs.fail_server(PRIMARY, 1)

    def proc():
        yield from client.read("db", 0, 8 * MiB)

    with pytest.raises(FSError):
        run(c, proc())


def test_ceft_known_failures_are_routed_around_without_timeout():
    """Once the failure is known (marked), later reads avoid the dead
    server entirely — no RPC timeout on every read."""
    c, fs = make_ceft(group=2)
    fs.populate("db", 8 * MiB, mirrored=True)
    client = fs.client(c[0])
    fs.fail_server(PRIMARY, 0)

    def proc():
        yield from client.read("db", 0, 8 * MiB)  # pays one timeout
        t1 = c.sim.now
        yield from client.read("db", 0, 8 * MiB)  # routed around
        return t1, c.sim.now - t1

    t_first, t_second = run(c, proc())
    assert t_first >= RPC_TIMEOUT
    assert t_second < RPC_TIMEOUT


def test_ceft_heartbeat_detects_failure():
    c, fs = make_ceft(group=2, monitor_load=True, load_period=1.0)
    fs.fail_server(PRIMARY, 1)
    c.sim.run(until=3.0)
    assert fs.is_failed(PRIMARY, 1)
    fs.stop_monitoring()


def test_ceft_client_sync_write_survives_one_group_failure():
    c, fs = make_ceft(group=2, protocol=WriteProtocol.CLIENT_SYNC)
    client = fs.client(c[0])
    fs.fail_server(MIRROR, 0)

    def proc():
        yield from client.create("out", mirrored=True)
        yield from client.write("out", 0, 1 * MiB)

    run(c, proc())
    meta = fs.lookup("out")
    assert meta.resident[PRIMARY]
    assert not meta.resident[MIRROR]


def test_ceft_server_sync_write_fails_on_dead_primary():
    c, fs = make_ceft(group=2, protocol=WriteProtocol.SERVER_SYNC)
    client = fs.client(c[0])
    fs.fail_server(PRIMARY, 0)

    def proc():
        yield from client.create("out")
        yield from client.write("out", 0, 1 * MiB)

    with pytest.raises(FSError, match="primary server down"):
        run(c, proc())


def test_ceft_resync_restores_failed_server():
    c, fs = make_ceft(group=2)
    fs.populate("db", 8 * MiB, mirrored=True)
    client = fs.client(c[0])
    fs.fail_server(PRIMARY, 0)

    def fail_then_resync():
        yield from client.read("db", 0, 8 * MiB)  # discovers the failure
        assert fs.is_failed(PRIMARY, 0)
        nbytes = yield c.sim.process(fs.resync(PRIMARY, 0))
        return nbytes

    nbytes = run(c, fail_then_resync())
    # The recovering server got its local share of the file back.
    assert nbytes == fs.layout.local_size(8 * MiB, 0)
    assert not fs.is_failed(PRIMARY, 0)
    assert fs.primary[0].alive

    def read_after():
        before = fs.primary[0].bytes_served
        yield from client.read("db", 0, 8 * MiB)
        return fs.primary[0].bytes_served - before

    assert run(c, read_after()) > 0  # serving again


def test_ceft_resync_requires_healthy_pair():
    c, fs = make_ceft(group=2)
    fs.populate("db", 8 * MiB, mirrored=True)
    fs.fail_server(PRIMARY, 0)
    fs.fail_server(MIRROR, 0)

    def proc():
        yield c.sim.process(fs.resync(PRIMARY, 0))

    with pytest.raises(FSError, match="resync"):
        run(c, proc())


def test_ceft_resync_moves_data_over_network():
    c, fs = make_ceft(group=2)
    fs.populate("db", 8 * MiB, mirrored=True)
    fs.fail_server(PRIMARY, 0)
    fs.mark_failed(PRIMARY, 0)
    target_node = fs.primary[0].node

    def proc():
        return (yield c.sim.process(fs.resync(PRIMARY, 0)))

    nbytes = run(c, proc())
    assert target_node.nic.bytes_received >= nbytes
    assert target_node.disk.bytes_written >= nbytes
