"""Tests for ungapped X-drop extension and banded gapped alignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.alphabet import encode_dna
from repro.blast.extend import ungapped_extend
from repro.blast.gapped import banded_local_align
from repro.blast.score import NucleotideScore

SCHEME = NucleotideScore()  # +1/-3, gaps 5/2


def test_ungapped_extends_exact_match_fully():
    q = encode_dna("ACGTACGTAC")
    s = encode_dna("TTACGTACGTACTT")
    hsp = ungapped_extend(q, s, 0, 2, SCHEME, xdrop=10)
    assert hsp.q_start == 0 and hsp.s_start == 2
    assert hsp.length == 10
    assert hsp.score == 10
    assert hsp.q_end == 10 and hsp.s_end == 12


def test_ungapped_extends_left_and_right():
    q = encode_dna("AAAACCCCGGGG")
    s = encode_dna("TTAAAACCCCGGGGTT")
    # Seed in the middle.
    hsp = ungapped_extend(q, s, 6, 8, SCHEME, xdrop=10)
    assert hsp.q_start == 0
    assert hsp.s_start == 2
    assert hsp.length == 12
    assert hsp.score == 12


def test_ungapped_stops_at_xdrop():
    # Match block, then a long mismatch run, then another match block
    # that the X-drop must not reach.
    q = encode_dna("AAAAAAAA" + "CCCC" + "AAAAAAAA")
    s = encode_dna("AAAAAAAA" + "GGGG" + "TTTTTTTT")
    hsp = ungapped_extend(q, s, 0, 0, SCHEME, xdrop=5)
    assert hsp.length == 8
    assert hsp.score == 8


def test_ungapped_xdrop_bridges_small_dip():
    # One mismatch (-3) inside matches: bridged when xdrop > 3.
    q = encode_dna("AAAAATAAAAA")
    s = encode_dna("AAAAACAAAAA")
    hsp = ungapped_extend(q, s, 0, 0, SCHEME, xdrop=10)
    assert hsp.length == 11
    assert hsp.score == 10 - 3


def test_ungapped_at_sequence_edges():
    q = encode_dna("ACGT")
    s = encode_dna("ACGT")
    hsp = ungapped_extend(q, s, 3, 3, SCHEME, xdrop=10)
    assert hsp.q_start == 0 and hsp.length == 4


def test_ungapped_no_negative_scores_reported():
    q = encode_dna("AAAA")
    s = encode_dna("CCCC")
    hsp = ungapped_extend(q, s, 0, 0, SCHEME, xdrop=3)
    assert hsp.score == 0
    assert hsp.length == 0


@settings(max_examples=100)
@given(st.text(alphabet="ACGT", min_size=11, max_size=80),
       st.integers(0, 79))
def test_ungapped_self_alignment_is_full_length(s, pos):
    """Extending a sequence against itself from any anchor recovers the
    identity alignment."""
    enc = encode_dna(s)
    anchor = min(pos, len(s) - 1)
    hsp = ungapped_extend(enc, enc, anchor, anchor, SCHEME, xdrop=10 ** 6)
    assert hsp.q_start == 0
    assert hsp.length == len(s)
    assert hsp.score == len(s)


# ---------------------------------------------------------------- gapped
def test_gapped_exact_match():
    q = encode_dna("ACGTACGTACGTACGT")
    s = encode_dna("TTTTACGTACGTACGTACGTTTTT")
    aln = banded_local_align(q, s, diag=4, scheme=SCHEME, band=8)
    assert aln.score == 16
    assert aln.identities == 16
    assert aln.align_len == 16
    assert aln.q_start == 0 and aln.q_end == 16
    assert aln.s_start == 4 and aln.s_end == 20


def test_gapped_alignment_crosses_deletion():
    """A 2-base deletion in the subject: affine gap cost 5+2=7... with
    +1 match the flanks (12+12) minus gap open/extend beats splitting."""
    left = "ACGTACGTACGT"
    right = "TGCATGCATGCA"
    q = encode_dna(left + "GG" + right)
    s = encode_dna(left + right)
    aln = banded_local_align(q, s, diag=0, scheme=SCHEME, band=6)
    # 24 matches, one gap of length 2 (open 5 + extend 2).
    assert aln.score == 24 - 7
    assert aln.identities == 24
    assert aln.align_len == 26
    assert aln.q_start == 0 and aln.q_end == 26
    assert aln.s_start == 0 and aln.s_end == 24


def test_gapped_alignment_crosses_insertion():
    left = "ACGTACGTACGT"
    right = "TGCATGCATGCA"
    q = encode_dna(left + right)
    s = encode_dna(left + "CC" + right)
    aln = banded_local_align(q, s, diag=0, scheme=SCHEME, band=6)
    assert aln.score == 24 - 7
    assert aln.identities == 24
    assert aln.align_len == 26


def test_gapped_local_trims_noise():
    q = encode_dna("CCCC" + "ACGTACGTACGT" + "GGGG")
    s = encode_dna("TTTT" + "ACGTACGTACGT" + "AAAA")
    aln = banded_local_align(q, s, diag=0, scheme=SCHEME, band=4)
    assert aln.score == 12
    assert aln.q_start == 4 and aln.q_end == 16


def test_gapped_no_alignment_returns_zero():
    q = encode_dna("AAAAAAAA")
    s = encode_dna("CCCCCCCC")
    aln = banded_local_align(q, s, diag=0, scheme=SCHEME, band=4)
    assert aln.score == 0
    assert aln.align_len == 0


def test_gapped_respects_band():
    """A shift larger than the band cannot be bridged."""
    left = "ACGTACGTACGT"
    right = "TGCATGCATGCA"
    q = encode_dna(left + right)
    s = encode_dna(left + "C" * 20 + right)
    aln = banded_local_align(q, s, diag=0, scheme=SCHEME, band=4)
    # Only one of the two blocks alignable within the band.
    assert aln.score == 12


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet="ACGT", min_size=4, max_size=60))
def test_gapped_self_alignment_perfect(s):
    enc = encode_dna(s)
    aln = banded_local_align(enc, enc, diag=0, scheme=SCHEME, band=5)
    assert aln.score == len(s)
    assert aln.identities == len(s)
    assert aln.align_len == len(s)


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet="ACGT", min_size=10, max_size=50),
       st.text(alphabet="ACGT", min_size=10, max_size=50))
def test_gapped_score_consistency(a, b):
    """Identities never exceed alignment length; score bounded by
    match-count upper bound."""
    qa, sb = encode_dna(a), encode_dna(b)
    aln = banded_local_align(qa, sb, diag=0, scheme=SCHEME, band=6)
    assert 0 <= aln.identities <= aln.align_len
    assert aln.score <= min(len(a), len(b)) * SCHEME.max_score
    assert aln.q_end - aln.q_start <= aln.align_len
    assert aln.s_end - aln.s_start <= aln.align_len


# ----------------------------------------------------------------------
# Row clipping: the pointer matrices only cover rows whose band
# overlaps the subject.  These tests pin the clipped DP against an
# unclipped pure-python reference at extreme diagonals.
# ----------------------------------------------------------------------
def _reference_banded_score(q, s, diag, scheme, band):
    """Unclipped O(m*w) python DP: best score and end coordinates."""
    m, n, w = len(q), len(s), 2 * band + 1
    go, ge = scheme.gap_open, scheme.gap_extend
    NEG = -(1 << 40)
    H = [0] * (w + 2)
    F = [NEG] * (w + 2)
    best, bi, bj = 0, 0, 0
    for i in range(1, m + 1):
        jbase = i + diag - band
        Hn = [0] * (w + 2)
        Fn = [NEG] * (w + 2)
        E = NEG
        for b in range(w):
            j = jbase + b
            if j < 1 or j > n:
                continue
            sub = int(scheme.matrix[q[i - 1], s[j - 1]])
            h = max(0, H[b + 1] + sub)
            f = max(H[b + 2] - go, F[b + 2] - ge)
            E = max(Hn[b] - go, E - ge) if b > 0 else NEG
            h = max(h, f, E)
            Hn[b + 1], Fn[b + 1] = h, f
            if h > best:
                best, bi, bj = h, i, j
        H, F = Hn, Fn
    return best, bi, bj


def _ops_score(q, s, aln, scheme):
    """Replay ops and recompute the score — validates coordinates."""
    score, i, j = 0, aln.q_start, aln.s_start
    run = None
    for op in aln.ops:
        if op == "M":
            score += int(scheme.matrix[q[i], s[j]])
            i, j = i + 1, j + 1
            run = None
        else:
            score -= scheme.gap_open if run != op else scheme.gap_extend
            run = op
            if op == "D":
                i += 1
            else:
                j += 1
    assert (i, j) == (aln.q_end, aln.s_end)
    return score


@pytest.mark.parametrize("band", [3, 8])
def test_gapped_clipping_matches_unclipped_reference(band):
    rng = np.random.default_rng(9)
    for _ in range(120):
        m = int(rng.integers(4, 40))
        n = int(rng.integers(4, 40))
        q = rng.integers(0, 4, m).astype(np.int64)
        s = rng.integers(0, 4, n).astype(np.int64)
        if rng.random() < 0.5:
            k = min(m, n)
            s[:k] = q[:k]
        diag = int(rng.integers(-m - 2 * band, n + 2 * band))
        aln = banded_local_align(q, s, diag, SCHEME, band=band)
        ref, ri, rj = _reference_banded_score(q, s, diag, SCHEME, band)
        assert aln.score == ref, (m, n, diag, band)
        if aln.score > 0:
            assert (aln.q_end, aln.s_end) == (ri, rj)
            assert _ops_score(q, s, aln, SCHEME) == aln.score


def test_gapped_diag_outside_subject_is_empty():
    """Band entirely past either end of the subject: no DP rows."""
    q = encode_dna("ACGTACGTACGT")
    s = encode_dna("ACGTACGTACGT")
    for diag in (len(s) + 5, -len(q) - 5, 10 ** 6, -(10 ** 6)):
        aln = banded_local_align(q, s, diag, SCHEME, band=4)
        assert aln.score == 0
        assert aln.align_len == 0


def test_gapped_band_grazing_subject_edges():
    """Diagonals where only one or two rows survive clipping."""
    q = encode_dna("ACGTACGTACGTACGT")
    s = encode_dna("ACGTACGTACGTACGT")
    band = 2
    for diag in (len(s) + band - 1, len(s) + band,
                 -len(q) - band + 1, -len(q) - band):
        aln = banded_local_align(q, s, diag, SCHEME, band=band)
        ref, _, _ = _reference_banded_score(q, s, diag, SCHEME, band)
        assert aln.score == ref
