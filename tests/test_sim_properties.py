"""Property-based tests of simulation invariants: conservation laws,
determinism, and monotonicity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.cluster.params import KiB, MB
from repro.core import ExperimentConfig, Variant, run_experiment
from repro.sim import Resource, Simulator, Store, Timeout


# ------------------------------------------------------------ determinism
def test_experiment_is_deterministic():
    def run_once():
        cfg = ExperimentConfig(variant=Variant.PVFS, n_workers=3,
                               n_servers=3).scaled(1 / 100)
        return run_experiment(cfg).execution_time

    assert run_once() == run_once()


def test_experiment_seed_changes_nothing_structural():
    """Different seeds perturb only stochastic components, not shapes."""
    times = []
    for seed in (0, 1):
        cfg = ExperimentConfig(variant=Variant.ORIGINAL, n_workers=2,
                               seed=seed).scaled(1 / 100)
        times.append(run_experiment(cfg).execution_time)
    # Deterministic workload model: identical across cluster seeds.
    assert times[0] == times[1]


def test_ceft_run_deterministic():
    def run_once():
        cfg = ExperimentConfig(variant=Variant.CEFT_PVFS, n_workers=4,
                               n_servers=4, n_stressed_disks=1,
                               time_limit=1e7).scaled(1 / 100)
        return run_experiment(cfg).execution_time

    assert run_once() == run_once()


# ------------------------------------------------------------ conservation
def test_disk_bytes_conservation():
    """Bytes the application reads == bytes the disks deliver plus
    cache hits; disks never deliver more than requested."""
    cfg = ExperimentConfig(variant=Variant.ORIGINAL, n_workers=2,
                           trace=True).scaled(1 / 100)
    res = run_experiment(cfg)
    app_reads = sum(w.read_bytes for w in res.job.workers)
    assert app_reads > 0


def test_network_byte_conservation():
    """Every byte sent is received (full-duplex links, no loss)."""
    c = Cluster(n_nodes=3)

    def proc(src, dst, size):
        yield from c.network.transfer(src, dst, size)

    sizes = [1 * MB, 2 * MB, 512 * KiB]
    procs = [c.sim.process(proc(c[i % 3], c[(i + 1) % 3], s))
             for i, s in enumerate(sizes)]
    c.sim.run_until_complete(*procs)
    sent = sum(n.nic.bytes_sent for n in c)
    received = sum(n.nic.bytes_received for n in c)
    assert sent == received == sum(sizes)


def test_pvfs_serves_exactly_requested_bytes():
    from repro.fs.pvfs import PVFS

    c = Cluster(n_nodes=5)
    fs = PVFS(c[0], list(c)[1:])
    fs.populate("f", 10 * MB)
    client = fs.client(c[0])

    def proc():
        yield from client.read("f", 123, 5 * MB)

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    assert sum(s.bytes_served for s in fs.servers) == 5 * MB


def test_ceft_serves_exactly_requested_bytes_under_skip():
    from repro.cluster import disk_stressor
    from repro.fs.ceft import CEFT

    c = Cluster(n_nodes=5)
    fs = CEFT(c[0], [c[1], c[2]], [c[3], c[4]], load_period=1.0)
    fs.populate("f", 10 * MB)
    client = fs.client(c[0])
    c.sim.process(disk_stressor(c[1]))

    def proc():
        yield c.sim.timeout(5.0)  # let detection happen
        base = sum(s.bytes_served for s in fs.primary + fs.mirror)
        yield from client.read("f", 0, 4 * MB)
        return sum(s.bytes_served for s in fs.primary + fs.mirror) - base

    p = c.sim.process(proc())
    c.sim.run_until_complete(p, limit=1e5)
    fs.stop_monitoring()
    assert p.value == 4 * MB


@settings(max_examples=20, deadline=None)
@given(offset=st.integers(0, 5 * MB), size=st.integers(0, 3 * MB),
       n_servers=st.integers(1, 6))
def test_pvfs_read_byte_conservation_property(offset, size, n_servers):
    from repro.fs.pvfs import PVFS

    c = Cluster(n_nodes=n_servers + 1)
    fs = PVFS(c[0], list(c)[1:])
    fs.populate("f", 10 * MB)
    client = fs.client(c[0])

    def proc():
        yield from client.read("f", offset, size)

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    assert sum(s.bytes_served for s in fs.servers) == size


# ------------------------------------------------------------ monotonicity
def test_more_data_takes_longer():
    t_small = run_experiment(ExperimentConfig(
        variant=Variant.ORIGINAL, n_workers=2).scaled(1 / 200)).execution_time
    t_big = run_experiment(ExperimentConfig(
        variant=Variant.ORIGINAL, n_workers=2).scaled(1 / 50)).execution_time
    assert t_big > 2 * t_small


def test_cpu_work_conservation_under_sharing():
    from repro.cluster.cpu import CPU

    sim = Simulator()
    cpu = CPU(sim, cores=2)
    works = [0.5, 1.5, 2.5, 0.25]

    def proc(w, delay):
        yield Timeout(sim, delay)
        yield cpu.consume(w)

    ps = [sim.process(proc(w, i * 0.1)) for i, w in enumerate(works)]
    sim.run_until_complete(*ps)
    assert cpu.total_work_done == pytest.approx(sum(works))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(0.01, 2.0), min_size=1, max_size=8),
       st.integers(1, 4))
def test_processor_sharing_bounds(works, cores):
    """Completion time is bounded below by max(work) and total/cores,
    and above by the fully-serialised sum."""
    from repro.cluster.cpu import CPU

    sim = Simulator()
    cpu = CPU(sim, cores=cores)

    def proc(w):
        yield cpu.consume(w)

    ps = [sim.process(proc(w)) for w in works]
    sim.run_until_complete(*ps)
    lower = max(max(works), sum(works) / cores)
    assert sim.now >= lower - 1e-9
    assert sim.now <= sum(works) + 1e-9


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(1, 200), min_size=1, max_size=10))
def test_store_is_lossless_fifo(items):
    sim = Simulator()
    store = Store(sim)

    def producer():
        for x in items:
            yield store.put(x)

    def consumer():
        out = []
        for _ in items:
            out.append((yield store.get()))
        return out

    sim.process(producer())
    p = sim.process(consumer())
    sim.run_until_complete(p)
    assert p.value == items
