"""The documentation's code must run: execute every python block in
docs/TUTORIAL.md and the README quickstart snippets."""

import contextlib
import io
import os
import re

import pytest

ROOT = os.path.join(os.path.dirname(__file__), "..")


def _blocks(path):
    with open(os.path.join(ROOT, path)) as f:
        text = f.read()
    return re.findall(r"```python\n(.*?)```", text, re.S)


def test_tutorial_blocks_execute():
    blocks = _blocks("docs/TUTORIAL.md")
    assert len(blocks) >= 4
    env = {}
    for i, code in enumerate(blocks):
        with contextlib.redirect_stdout(io.StringIO()):
            exec(compile(code, f"<tutorial-{i}>", "exec"), env)


def test_readme_blocks_execute():
    blocks = _blocks("README.md")
    python_blocks = [b for b in blocks if "import" in b]
    assert python_blocks
    for i, code in enumerate(python_blocks):
        env = {}
        with contextlib.redirect_stdout(io.StringIO()):
            exec(compile(code, f"<readme-{i}>", "exec"), env)
