"""Tests for the message-passing layer and the master/worker protocol."""

import pytest

from repro.cluster import Cluster
from repro.cluster.params import MB
from repro.core.calibration import default_cost_model
from repro.fs.localfs import LocalFS
from repro.parallel import (
    FragmentSpec,
    LocalIO,
    Messenger,
    run_parallel_blast,
)


def test_messenger_send_recv():
    c = Cluster(n_nodes=2)
    m = Messenger()
    m.register(0, c[0])
    m.register(1, c[1])

    def sender():
        yield from m.send(0, 1, {"hello": True}, 100)

    def receiver():
        src, payload = yield from m.recv(1)
        return (src, payload)

    c.sim.process(sender())
    p = c.sim.process(receiver())
    c.sim.run_until_complete(p)
    assert p.value == (0, {"hello": True})


def test_messenger_fifo_order_per_pair():
    c = Cluster(n_nodes=2)
    m = Messenger()
    m.register(0, c[0])
    m.register(1, c[1])

    def sender():
        for i in range(5):
            yield from m.send(0, 1, i, 64)

    def receiver():
        out = []
        for _ in range(5):
            _, payload = yield from m.recv(1)
            out.append(payload)
        return out

    c.sim.process(sender())
    p = c.sim.process(receiver())
    c.sim.run_until_complete(p)
    assert p.value == [0, 1, 2, 3, 4]


def test_messenger_recv_blocks_until_message():
    c = Cluster(n_nodes=2)
    m = Messenger()
    m.register(0, c[0])
    m.register(1, c[1])

    def late_sender():
        yield c.sim.timeout(5.0)
        yield from m.send(0, 1, "x", 64)

    def receiver():
        yield from m.recv(1)
        return c.sim.now

    c.sim.process(late_sender())
    p = c.sim.process(receiver())
    c.sim.run_until_complete(p)
    assert p.value > 5.0


def test_messenger_double_register_rejected():
    c = Cluster(n_nodes=1)
    m = Messenger()
    m.register(0, c[0])
    with pytest.raises(ValueError):
        m.register(0, c[0])


def test_messenger_counters():
    c = Cluster(n_nodes=2)
    m = Messenger()
    m.register(0, c[0])
    m.register(1, c[1])

    def proc():
        yield from m.send(0, 1, None, 1000)

    p = c.sim.process(proc())
    c.sim.run_until_complete(p)
    assert m.messages_sent == 1
    assert m.bytes_sent == 1000
    assert m.pending(1) == 1


# ---------------------------------------------------------------- job
def small_fragments(n, nbytes=2 * MB, residues=2 * MB):
    return [FragmentSpec(i, nbytes, residues) for i in range(n)]


def run_local_job(n_workers, n_fragments):
    c = Cluster(n_nodes=n_workers + 1)
    workers = list(c)[1:]
    ios = [LocalIO(LocalFS(node), node) for node in workers]
    cost = default_cost_model()
    job = run_parallel_blast(c[0], workers, ios,
                             small_fragments(n_fragments), cost)
    return job


def test_job_completes_all_fragments():
    job = run_local_job(n_workers=2, n_fragments=6)
    assert job.fragments_done == 6
    done = sorted(f for w in job.workers for f in w.fragments)
    assert done == list(range(6))


def test_job_each_fragment_done_exactly_once():
    job = run_local_job(n_workers=3, n_fragments=7)
    done = [f for w in job.workers for f in w.fragments]
    assert len(done) == len(set(done)) == 7


def test_job_single_worker_does_everything():
    job = run_local_job(n_workers=1, n_fragments=4)
    assert job.workers[0].fragments == [0, 1, 2, 3]


def test_job_more_workers_than_fragments():
    job = run_local_job(n_workers=4, n_fragments=2)
    assert job.fragments_done == 2
    idle = [w for w in job.workers if not w.fragments]
    assert len(idle) == 2


def test_job_makespan_scales_down_with_workers():
    t1 = run_local_job(n_workers=1, n_fragments=4).makespan
    t4 = run_local_job(n_workers=4, n_fragments=4).makespan
    assert t4 < t1 / 2.5


def test_job_accounts_io_and_compute():
    job = run_local_job(n_workers=2, n_fragments=2)
    for w in job.workers:
        assert w.io_time > 0
        assert w.compute_time > 0
        assert w.read_bytes > 0
        assert w.write_bytes > 0


def test_job_validation():
    c = Cluster(n_nodes=2)
    with pytest.raises(ValueError):
        run_parallel_blast(c[0], [c[1]], [], small_fragments(1),
                           default_cost_model())
    with pytest.raises(ValueError):
        run_parallel_blast(c[0], [], [], small_fragments(1),
                           default_cost_model())


def test_query_stream_sequential_service():
    from repro.parallel import run_query_stream

    c = Cluster(n_nodes=3)
    workers = [c[1], c[2]]
    ios = [LocalIO(LocalFS(n), n) for n in workers]
    stream = run_query_stream(c[0], workers, ios, small_fragments(2),
                              default_cost_model(), [0.0, 0.0, 1000.0])
    assert len(stream) == 3
    # Query 1 queues behind query 0; query 2 arrives after an idle gap.
    assert stream[1]["start"] == pytest.approx(stream[0]["finish"])
    assert stream[1]["latency"] > stream[1]["service"]
    assert stream[2]["start"] == pytest.approx(1000.0)
    # Latency = service plus the sub-millisecond protocol lead-in
    # (worker spawn + query broadcast before the master's clock starts).
    assert stream[2]["latency"] == pytest.approx(stream[2]["service"],
                                                 rel=1e-3)
    # Warm caches: later queries are not slower than the first.
    assert stream[2]["service"] <= stream[0]["service"] * 1.01


def test_query_stream_rejects_unsorted_arrivals():
    from repro.parallel import run_query_stream

    c = Cluster(n_nodes=2)
    ios = [LocalIO(LocalFS(c[1]), c[1])]
    with pytest.raises(ValueError):
        run_query_stream(c[0], [c[1]], ios, small_fragments(1),
                         default_cost_model(), [5.0, 1.0])
