"""Unit + property tests for the stripe layout arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.striping import StripeLayout

KiB = 1 << 10


def test_validation():
    with pytest.raises(ValueError):
        StripeLayout(0)
    with pytest.raises(ValueError):
        StripeLayout(4, 0)
    with pytest.raises(ValueError):
        list(StripeLayout(4).units(-1, 10))


def test_server_of_round_robin():
    lay = StripeLayout(4, stripe_size=64 * KiB)
    assert lay.server_of(0) == 0
    assert lay.server_of(64 * KiB - 1) == 0
    assert lay.server_of(64 * KiB) == 1
    assert lay.server_of(4 * 64 * KiB) == 0  # wraps


def test_server_offset():
    lay = StripeLayout(4, stripe_size=64 * KiB)
    # Byte at file offset 5 stripes + 100 lives on server 1, local unit 1.
    off = 5 * 64 * KiB + 100
    assert lay.server_of(off) == 1
    assert lay.server_offset(off) == 64 * KiB + 100


def test_units_single_stripe():
    lay = StripeLayout(4, stripe_size=64 * KiB)
    units = list(lay.units(10, 100))
    assert units == [(0, 10, 100, 10)]


def test_units_cross_stripe_boundary():
    lay = StripeLayout(2, stripe_size=100)
    units = list(lay.units(50, 100))
    assert units == [(0, 50, 50, 50), (1, 0, 50, 100)]


def test_extents_merge_contiguous():
    lay = StripeLayout(2, stripe_size=100)
    # Range covering stripes 0..3: server 0 gets stripes 0 and 2, which
    # are contiguous in its local space (local offsets 0..100, 100..200).
    per = lay.extents(0, 400)
    assert per[0] == [(0, 0, 200)]
    assert per[1] == [(1, 0, 200)]


def test_extents_empty_range():
    lay = StripeLayout(3)
    assert lay.extents(0, 0) == [[], [], []]


def test_server_bytes_balanced_for_full_cycles():
    lay = StripeLayout(4, stripe_size=100)
    totals = lay.server_bytes(0, 800)
    assert totals == [200, 200, 200, 200]


def test_local_size_with_remainder():
    lay = StripeLayout(3, stripe_size=100)
    # 350 bytes: server0 gets 100+50? No: units 0,1,2 (100 each) then
    # unit 3 (50) lands back on server 0.
    assert lay.local_size(350, 0) == 150
    assert lay.local_size(350, 1) == 100
    assert lay.local_size(350, 2) == 100


# ---------------------------------------------------------------- property
@settings(max_examples=200, deadline=None)
@given(
    n=st.integers(1, 16),
    stripe=st.integers(256, 1 << 18),
    offset=st.integers(0, 1 << 30),
    size=st.integers(0, 1 << 18),
)
def test_units_partition_the_range(n, stripe, offset, size):
    """Units exactly tile [offset, offset+size) in file order."""
    lay = StripeLayout(n, stripe)
    pos = offset
    total = 0
    for server, soff, length, fpos in lay.units(offset, size):
        assert fpos == pos
        assert 0 < length <= stripe
        assert 0 <= server < n
        assert lay.server_of(fpos) == server
        assert lay.server_offset(fpos) == soff
        pos += length
        total += length
    assert total == size


@settings(max_examples=200, deadline=None)
@given(
    n=st.integers(1, 16),
    stripe=st.integers(256, 1 << 16),
    offset=st.integers(0, 1 << 24),
    size=st.integers(0, 1 << 17),
)
def test_extents_conserve_bytes(n, stripe, offset, size):
    lay = StripeLayout(n, stripe)
    per = lay.extents(offset, size)
    assert len(per) == n
    assert sum(e[2] for bucket in per for e in bucket) == size
    # Extents never overlap in server-local space.
    for s, bucket in enumerate(per):
        spans = sorted((e[1], e[1] + e[2]) for e in bucket)
        for (a1, a2), (b1, b2) in zip(spans, spans[1:]):
            assert a2 <= b1
        for e in bucket:
            assert e[0] == s


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(1, 12),
    stripe=st.integers(1, 1 << 16),
    fsize=st.integers(0, 1 << 26),
)
def test_local_sizes_sum_to_file_size(n, stripe, fsize):
    lay = StripeLayout(n, stripe)
    assert sum(lay.local_size(fsize, s) for s in range(n)) == fsize


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(1, 8),
    stripe=st.integers(128, 1 << 14),
    fsize=st.integers(1, 1 << 19),
)
def test_local_size_matches_units(n, stripe, fsize):
    lay = StripeLayout(n, stripe)
    per_unit = lay.server_bytes(0, fsize)
    for s in range(n):
        assert lay.local_size(fsize, s) == per_unit[s]
