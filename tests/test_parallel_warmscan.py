"""Warm scan-structure modeling in the simulated worker path.

The engine's ScanCache makes a repeat search of the same fragment
cheaper; the simulation mirrors this with the cost model's
``warm_compute_factor`` and per-worker warm-fragment sets threaded
through :func:`run_parallel_blast` / :func:`run_query_stream`.  The
default factor of 1.0 must leave every existing experiment untouched.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.cluster.params import MB
from repro.core.calibration import BlastCostModel, default_cost_model
from repro.fs.localfs import LocalFS
from repro.parallel import (FragmentSpec, LocalIO, fragment_steps,
                            run_parallel_blast)
from repro.parallel.mpiblast import run_query_stream


def small_fragments(n, nbytes=2 * MB, residues=2 * MB):
    return [FragmentSpec(i, nbytes, residues) for i in range(n)]


def make_local(n_workers):
    c = Cluster(n_nodes=n_workers + 1)
    workers = list(c)[1:]
    ios = [LocalIO(LocalFS(node), node) for node in workers]
    return c, workers, ios


def total_compute(steps):
    return sum(s.seconds for s in steps if s.seconds)


def test_compute_seconds_warm_factor():
    cost = BlastCostModel(warm_compute_factor=0.25)
    cold = cost.compute_seconds(10 * MB)
    warm = cost.compute_seconds(10 * MB, warm=True)
    assert warm == pytest.approx(0.25 * cold)
    # The default model is cold-equals-warm (factor 1.0).
    default = default_cost_model()
    assert default.warm_compute_factor == 1.0
    assert (default.compute_seconds(MB, warm=True)
            == default.compute_seconds(MB))
    assert default.with_warm_factor(0.5).warm_compute_factor == 0.5


def test_fragment_steps_warm_scales_compute_not_io():
    spec = FragmentSpec(0, 4 * MB, 4 * MB)
    cost = BlastCostModel(warm_compute_factor=0.5)
    cold = fragment_steps(spec, cost, rng=np.random.default_rng(1))
    warm = fragment_steps(spec, cost, rng=np.random.default_rng(1),
                          warm=True)
    # Same step sequence: kinds, files, offsets and sizes unchanged.
    assert [(s.kind, s.path, s.offset, s.size) for s in cold] == \
        [(s.kind, s.path, s.offset, s.size) for s in warm]
    # Compute shrinks; the fixed setup CPU stays.
    assert total_compute(warm) < total_compute(cold)
    assert total_compute(warm) > cost.setup_cpu


def test_fragment_steps_default_warm_is_noop():
    spec = FragmentSpec(0, 4 * MB, 4 * MB)
    cost = default_cost_model()
    cold = fragment_steps(spec, cost, rng=np.random.default_rng(2))
    warm = fragment_steps(spec, cost, rng=np.random.default_rng(2),
                          warm=True)
    assert [(s.kind, s.path, s.offset, s.size, s.seconds) for s in cold] == \
        [(s.kind, s.path, s.offset, s.size, s.seconds) for s in warm]


def test_warm_sets_populated_and_second_job_faster():
    cost = default_cost_model().with_warm_factor(0.3)

    c, workers, ios = make_local(2)
    warm_sets = [set() for _ in workers]
    job1 = run_parallel_blast(c[0], workers, ios, small_fragments(4), cost,
                              warm_fragments=warm_sets)
    assert job1.fragments_done == 4
    # Every completed fragment landed in its worker's warm set.
    assert sorted(f for s in warm_sets for f in s) == list(range(4))

    # Fresh cluster, pre-warmed sets: the same job runs faster than the
    # cold one (every fragment this time hits a warm set only if the
    # scheduler gives it to the same worker — so warm everything).
    c2, workers2, ios2 = make_local(2)
    hot = [set(range(4)) for _ in workers2]
    job2 = run_parallel_blast(c2[0], workers2, ios2, small_fragments(4),
                              cost, warm_fragments=hot)
    assert job2.makespan < job1.makespan


def test_warm_fragments_validation():
    c, workers, ios = make_local(2)
    with pytest.raises(ValueError, match="warm-fragment"):
        run_parallel_blast(c[0], workers, ios, small_fragments(2),
                           default_cost_model(), warm_fragments=[set()])


def test_query_stream_warms_up_service_times():
    cost = default_cost_model().with_warm_factor(0.3)
    c, workers, ios = make_local(2)
    rows = run_query_stream(c[0], workers, ios, small_fragments(4), cost,
                            arrival_times=[0.0, 0.0, 0.0])
    # Later queries reuse cached scan structures: service time drops
    # (query 0 also pays the cold page cache; 1 and 2 are steady state).
    assert rows[1]["service"] < rows[0]["service"]
    assert rows[2]["service"] == pytest.approx(rows[1]["service"])

    # The drop exceeds what the page cache alone delivers at factor 1.
    c2, workers2, ios2 = make_local(2)
    base = run_query_stream(c2[0], workers2, ios2, small_fragments(4),
                            default_cost_model(),
                            arrival_times=[0.0, 0.0, 0.0])
    assert rows[1]["service"] < base[1]["service"]


def test_query_stream_default_factor_unchanged_service():
    # Factor 1.0: the warm bookkeeping must not change timings at all.
    # Compare the stream against manual per-query jobs with no warm
    # modeling on an identical fresh cluster.
    c, workers, ios = make_local(2)
    rows = run_query_stream(c[0], workers, ios, small_fragments(4),
                            default_cost_model(),
                            arrival_times=[0.0, 0.0])
    c2, workers2, ios2 = make_local(2)
    manual = [run_parallel_blast(c2[0], workers2, ios2, small_fragments(4),
                                 default_cost_model()).makespan
              for _ in range(2)]
    assert rows[0]["service"] == pytest.approx(manual[0])
    assert rows[1]["service"] == pytest.approx(manual[1])
