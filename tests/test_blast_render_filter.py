"""Tests for alignment rendering and low-complexity filtering."""

import numpy as np
import pytest

from repro.blast import SequenceDB, SearchParams, blastn, blastp
from repro.blast.alphabet import decode_dna, encode_dna, encode_protein, \
    reverse_complement
from repro.blast.filter import (
    apply_query_filter,
    dust_mask,
    dust_score,
    masked_positions,
    seg_mask,
    shannon_entropy,
)
from repro.blast.render import render_hsp, render_results


def rand_dna(rng, n):
    return "".join(rng.choice(list("ACGT"), n))


# ---------------------------------------------------------------- render
@pytest.fixture
def rendered():
    rng = np.random.default_rng(3)
    target = rand_dna(rng, 400)
    db = SequenceDB.from_fasta_text(f">t1 target sequence\n{target}\n")
    q = list(target[50:200])
    del q[60:62]                       # 2-base deletion
    q[20] = {"A": "C"}.get(q[20], "A")  # 1 mismatch
    query = "".join(q)
    res = blastn(query, db)
    return query, db, res, render_results(query, db, res)


def test_render_contains_blocks(rendered):
    query, db, res, text = rendered
    assert "Query  1" in text
    assert "Sbjct" in text
    assert ">t1 target sequence" in text
    assert "Score =" in text and "Expect =" in text


def test_render_shows_gap_and_mismatch(rendered):
    query, db, res, text = rendered
    assert "-" in text.split("Query  61")[1].splitlines()[0]  # the deletion
    best = res.best()
    assert f"Identities = {best.identities}/{best.align_len}" in text


def test_render_lines_are_consistent(rendered):
    """Query/match/subject lines of each block have equal width and the
    match line marks exactly the identities."""
    query, db, res, text = rendered
    lines = text.splitlines()
    total_bars = 0
    for i, line in enumerate(lines):
        if line.startswith("Query  "):
            qchunk = line.split()[2]
            col = line.index(qchunk, 7)
            mline = lines[i + 1][col:col + len(qchunk)]
            schunk = lines[i + 2].split()[2]
            assert len(qchunk) == len(schunk)
            padded = mline.ljust(len(qchunk))
            for qc, sc, mc in zip(qchunk, schunk, padded):
                if mc == "|":
                    assert qc == sc != "-"
            total_bars += padded.count("|")
    assert total_bars == res.best().identities


def test_render_coordinates_match_hsp(rendered):
    query, db, res, text = rendered
    best = res.best()
    first_q = [l for l in text.splitlines() if l.startswith("Query  ")][0]
    assert first_q.split()[1] == str(best.q_start + 1)
    first_s = [l for l in text.splitlines() if l.startswith("Sbjct  ")][0]
    assert first_s.split()[1] == str(best.s_start + 1)


def test_render_minus_strand_coordinates():
    rng = np.random.default_rng(4)
    target = rand_dna(rng, 300)
    db = SequenceDB.from_fasta_text(f">t minus test\n{target}\n")
    rc_query = decode_dna(reverse_complement(encode_dna(target[100:220])))
    res = blastn(rc_query, db)
    assert res.best().strand == -1
    text = render_results(rc_query, db, res)
    assert "Plus / Minus" in text
    # Query coordinates run downwards for minus-strand alignments.
    qlines = [l for l in text.splitlines() if l.startswith("Query  ")]
    first_start = int(qlines[0].split()[1])
    last_end = int(qlines[-1].split()[-1])
    assert first_start > last_end
    assert last_end == 1


def test_render_bad_ops_rejected():
    from repro.blast.search import HSP

    hsp = HSP(0, 2, 0, 2, 2, 1.0, 1.0, 2, 2, ops="MX")
    with pytest.raises(ValueError):
        render_hsp("AC", "AC", hsp)


def test_render_ops_span_must_match_coords():
    from repro.blast.search import HSP

    hsp = HSP(0, 3, 0, 2, 2, 1.0, 1.0, 2, 2, ops="MM")  # q span says 3
    with pytest.raises(ValueError, match="span"):
        render_hsp("ACG", "AC", hsp)


# ---------------------------------------------------------------- dust
def test_dust_score_homopolymer_high():
    poly_a = encode_dna("A" * 64)
    assert dust_score(poly_a) > 10


def test_dust_score_random_low():
    rng = np.random.default_rng(0)
    rand = encode_dna(rand_dna(rng, 64))
    assert dust_score(rand) < 1.5


def test_dust_mask_flags_homopolymer_run():
    rng = np.random.default_rng(1)
    seq = rand_dna(rng, 100) + "A" * 80 + rand_dna(rng, 100)
    mask = dust_mask(encode_dna(seq))
    assert mask[120:160].all()          # inside the run
    assert not mask[:60].any()          # clean prefix untouched


def test_dust_mask_short_sequence():
    assert not dust_mask(encode_dna("ACG")).any()


def test_dust_mask_tandem_repeat():
    seq = "ACACACACAC" * 10
    assert dust_mask(encode_dna(seq)).mean() > 0.8


# ---------------------------------------------------------------- seg
def test_entropy_uniform_vs_constant():
    assert shannon_entropy(np.arange(12), 25) == pytest.approx(np.log2(12))
    assert shannon_entropy(np.zeros(12, dtype=int), 25) == 0.0


def test_seg_mask_flags_poly_q():
    rng = np.random.default_rng(2)
    aas = "ARNDCQEGHILKMFPSTWYV"
    seq = "".join(rng.choice(list(aas), 50)) + "Q" * 30 + \
          "".join(rng.choice(list(aas), 50))
    mask = seg_mask(encode_protein(seq))
    assert mask[55:75].all()
    assert not mask[:30].any()


def test_seg_mask_random_protein_unmasked():
    rng = np.random.default_rng(3)
    seq = "".join(rng.choice(list("ARNDCQEGHILKMFPSTWYV"), 200))
    assert seg_mask(encode_protein(seq)).mean() < 0.1


# ----------------------------------------------------------- integration
def test_masked_positions_cover_overlapping_words():
    mask = np.zeros(20, dtype=bool)
    mask[10] = True
    wp = masked_positions(mask, word_size=5)
    assert wp[6:11].all()       # words starting 6..10 cover position 10
    assert not wp[:6].any()
    assert not wp[11:].any()


def test_filter_suppresses_low_complexity_hits():
    """A poly-A query matches a poly-A decoy without filtering; with
    DUST on, the junk hit disappears while a real hit survives."""
    rng = np.random.default_rng(7)
    real = rand_dna(rng, 300)
    db = SequenceDB.from_fasta_text(
        f">real target\n{real}\n>junk poly-a\n{'A' * 400}\n")
    query = real[50:150] + "A" * 60

    hits_raw = blastn(query, db).hits
    assert any(h.description.startswith("junk") for h in hits_raw)

    params = SearchParams(word_size=11, gapped_trigger=18,
                          filter_low_complexity=True)
    hits_filtered = blastn(query, db, params=params).hits
    assert not any(h.description.startswith("junk") for h in hits_filtered)
    assert any(h.description.startswith("real") for h in hits_filtered)


def test_apply_query_filter_dispatch():
    mask, wp = apply_query_filter(encode_dna("A" * 100), False, 11)
    assert mask.any() and wp.any()
    mask, wp = apply_query_filter(encode_protein("Q" * 40), True, 3)
    assert mask.any() and wp.any()


def test_render_protein_alignment():
    rng = np.random.default_rng(8)
    aas = "ARNDCQEGHILKMFPSTWYV"
    prot = "".join(rng.choice(list(aas), 250))
    db = SequenceDB("aa")
    db.add("p1 target protein", prot)
    res = blastp(prot[50:170], db)
    from repro.blast.render import render_results

    text = render_results(prot[50:170], db, res)
    assert "Query  1" in text
    assert "p1 target protein" in text
    # Protein identity bars: every bar column is a true identity.
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if line.startswith("Query  "):
            qchunk = line.split()[2]
            col = line.index(qchunk, 7)
            mline = lines[i + 1][col:col + len(qchunk)]
            schunk = lines[i + 2].split()[2]
            for qc, sc, mc in zip(qchunk, schunk, mline.ljust(len(qchunk))):
                if mc == "|":
                    assert qc == sc
