"""Unit tests for PVFS."""

import pytest

from repro.cluster import Cluster
from repro.cluster.params import KiB, MB, MiB
from repro.fs.interface import FSError
from repro.fs.pvfs import PVFS
from repro.trace import TraceCollector


def make_pvfs(n_servers=4, n_extra=1, stripe=64 * KiB, **kw):
    """Cluster with n_servers data nodes + n_extra client/MDS nodes."""
    c = Cluster(n_nodes=n_servers + n_extra)
    fs = PVFS(c[0], list(c)[n_extra:n_extra + n_servers], stripe_size=stripe,
              tracer=TraceCollector(), **kw)
    return c, fs


def run(c, gen):
    p = c.sim.process(gen)
    c.sim.run_until_complete(p)
    if p.failed:
        raise p.value
    return p.value


def test_requires_data_servers():
    c = Cluster(n_nodes=1)
    with pytest.raises(ValueError):
        PVFS(c[0], [])


def test_open_costs_metadata_rpc():
    c, fs = make_pvfs()
    client = fs.client(c[0])

    fs.populate("db", 10 * MB)

    def proc():
        yield from client.open("db")
        return c.sim.now

    t = run(c, proc())
    assert t > 0
    assert fs.mds.ops_served == 1


def test_open_missing_file_raises():
    c, fs = make_pvfs()
    client = fs.client(c[0])

    def proc():
        yield from client.open("ghost")

    with pytest.raises(FSError):
        run(c, proc())


def test_read_spreads_over_all_servers():
    c, fs = make_pvfs(n_servers=4)
    client = fs.client(c[0])
    fs.populate("db", 8 * MiB)

    def proc():
        yield from client.read("db", 0, 8 * MiB)

    run(c, proc())
    for server in fs.servers:
        assert server.bytes_served == 2 * MiB
        assert server.node.disk.bytes_read == 2 * MiB


def test_small_read_touches_one_server():
    c, fs = make_pvfs(n_servers=4)
    client = fs.client(c[0])
    fs.populate("db", 10 * MB)

    def proc():
        yield from client.read("db", 0, 1000)

    run(c, proc())
    served = [s.bytes_served for s in fs.servers]
    assert served == [1000, 0, 0, 0]


def test_parallel_read_faster_than_single_server():
    def read_time(n_servers):
        c, fs = make_pvfs(n_servers=n_servers)
        client = fs.client(c[0])
        fs.populate("db", 50 * MB)

        def proc():
            yield from client.read("db", 0, 50 * MB)
            return c.sim.now

        return run(c, proc())

    t1 = read_time(1)
    t4 = read_time(4)
    # 4 disks at 26 MB/s aggregate ~104 MB/s, under the 112 MB/s NIC cap.
    assert t4 < t1 / 2.5


def test_client_nic_caps_aggregate_bandwidth():
    c, fs = make_pvfs(n_servers=8)
    client = fs.client(c[0])
    size = 100 * MB
    fs.populate("db", size)

    def proc():
        yield from client.read("db", 0, size)
        return c.sim.now

    t = run(c, proc())
    rate = size / t
    # 8 disks could deliver 208 MB/s but the client NIC is 112 MB/s.
    assert rate <= 112 * MB
    assert rate > 80 * MB


def test_read_past_eof_raises():
    c, fs = make_pvfs()
    client = fs.client(c[0])
    fs.populate("db", 100)

    def proc():
        yield from client.read("db", 0, 200)

    with pytest.raises(FSError):
        run(c, proc())


def test_write_stripes_to_servers():
    c, fs = make_pvfs(n_servers=2)
    client = fs.client(c[0])

    def proc():
        yield from client.create("out")
        yield from client.write("out", 0, 1 * MiB)

    run(c, proc())
    assert fs.lookup("out").size == 1 * MiB
    for server in fs.servers:
        assert server.bytes_stored == 512 * KiB
        assert server.node.disk.bytes_written == 512 * KiB


def test_create_existing_raises():
    c, fs = make_pvfs()
    fs.populate("db", 1)
    client = fs.client(c[0])

    def proc():
        yield from client.create("db")

    with pytest.raises(FSError):
        run(c, proc())


def test_zero_byte_read_is_free_of_data_traffic():
    c, fs = make_pvfs()
    client = fs.client(c[0])
    fs.populate("db", 100)

    def proc():
        yield from client.read("db", 0, 0)

    run(c, proc())
    assert all(s.bytes_served == 0 for s in fs.servers)


def test_server_cache_accelerates_second_read():
    c, fs = make_pvfs(n_servers=2)
    client = fs.client(c[0])
    fs.populate("db", 4 * MiB)

    def proc():
        yield from client.read("db", 0, 4 * MiB)
        t1 = c.sim.now
        yield from client.read("db", 0, 4 * MiB)
        return t1, c.sim.now - t1

    t_cold, t_warm = run(c, proc())
    assert t_warm < t_cold
    disk_after = sum(s.node.disk.bytes_read for s in fs.servers)
    assert disk_after == 4 * MiB  # second read was all cache hits


def test_trace_collects_client_level_ops():
    c, fs = make_pvfs()
    client = fs.client(c[0])
    fs.populate("db", 1 * MiB)

    def proc():
        yield from client.read("db", 0, 1 * MiB)

    run(c, proc())
    assert len(fs.tracer) == 1
    rec = fs.tracer.records[0]
    assert rec.op == "read" and rec.size == 1 * MiB


def test_concurrent_clients_share_servers():
    c, fs = make_pvfs(n_servers=2, n_extra=3)
    fs.populate("db", 20 * MB)
    times = {}

    def reader(node, tag):
        client = fs.client(node)
        yield from client.read("db", 0, 20 * MB)
        times[tag] = c.sim.now

    c.sim.process(reader(c[0], "a"))
    c.sim.process(reader(c[1], "b"))
    c.sim.run()
    # Both complete; server disks bound the aggregate so each takes
    # roughly twice the solo time.
    solo = 20 * MB / (2 * 26 * MB)
    assert times["a"] > 1.5 * solo
    assert times["b"] > 1.5 * solo


def test_truncate_and_unlink():
    c, fs = make_pvfs(n_servers=2)
    client = fs.client(c[0])
    fs.populate("db", 1 * MiB)

    def proc():
        yield from client.read("db", 0, 1 * MiB)
        yield from client.truncate("db", 100)
        assert fs.lookup("db").size == 100
        yield from client.unlink("db")

    run(c, proc())
    assert not fs.exists("db")
    assert fs.mds.ops_served >= 3  # open + truncate + unlink


def test_unlink_missing_raises():
    c, fs = make_pvfs()
    client = fs.client(c[0])

    def proc():
        yield from client.unlink("ghost")

    with pytest.raises(FSError):
        run(c, proc())
