"""Tests for the checkpoint workload generator."""

import pytest

from repro.cluster import Cluster
from repro.cluster.params import MB
from repro.fs.localfs import LocalFS
from repro.fs.pvfs import PVFS
from repro.parallel.ioadapters import LocalIO, ParallelIO
from repro.workloads.checkpoint import CheckpointSpec, run_checkpoint_workload


def test_spec_totals():
    spec = CheckpointSpec(4, 10 * MB, 5.0, 3)
    assert spec.total_bytes == 120 * MB


def test_local_checkpoints_write_everything():
    c = Cluster(n_nodes=2)
    nodes = [c[0], c[1]]
    ios = [LocalIO(LocalFS(n), n) for n in nodes]
    spec = CheckpointSpec(n_processes=2, bytes_per_process=4 * MB,
                          compute_between=1.0, n_checkpoints=2,
                          shared_file=False)
    out = run_checkpoint_workload(nodes, ios, spec)
    written = sum(n.disk.bytes_written for n in nodes)
    assert written == spec.total_bytes
    assert out["makespan"] > 2.0  # at least the compute phases
    assert 0 < out["write_fraction"] < 1


def test_shared_file_stripes_over_servers():
    c = Cluster(n_nodes=5)
    fs = PVFS(c[0], list(c)[1:3])
    compute = list(c)[3:5]
    ios = [ParallelIO(fs.client(n)) for n in compute]
    spec = CheckpointSpec(n_processes=2, bytes_per_process=4 * MB,
                          compute_between=0.5, n_checkpoints=1)
    run_checkpoint_workload(compute, ios, spec)
    stored = [s.bytes_stored for s in fs.servers]
    assert sum(stored) == spec.total_bytes
    assert min(stored) > 0  # both servers participated


def test_more_processes_than_nodes_round_robin():
    c = Cluster(n_nodes=2)
    nodes = [c[0], c[1]]
    ios = [LocalIO(LocalFS(n), n) for n in nodes]
    spec = CheckpointSpec(n_processes=5, bytes_per_process=1 * MB,
                          compute_between=0.1, n_checkpoints=1,
                          shared_file=False)
    out = run_checkpoint_workload(nodes, ios, spec)
    assert sum(n.disk.bytes_written for n in nodes) == spec.total_bytes


def test_validation():
    c = Cluster(n_nodes=1)
    with pytest.raises(ValueError):
        run_checkpoint_workload([], [],
                                CheckpointSpec(1, 1, 1.0, 1))
    with pytest.raises(ValueError):
        run_checkpoint_workload([c[0]], [],
                                CheckpointSpec(1, 1, 1.0, 1))
