"""Cross-validation of the Figure 4 I/O model against (a) the paper's
published trace statistics and (b) file-level I/O measured from the
real engine in this repository.

The model cannot be validated against NCBI BLAST itself (no network,
no nt database), so two anchors are used:

* the aggregate statistics the paper reports for its own trace
  (Section 4.2): operation mix, size extremes, write-size range;
* the real engine's database loader: reading a formatted fragment from
  disk is dominated by the sequence file, with small index reads first —
  the same structure the model generates.
"""

import io
import os

import numpy as np
import pytest

from repro.blast import SequenceDB, blastn, segment_db
from repro.core.calibration import default_cost_model
from repro.parallel.iomodel import (
    FragmentSpec,
    fragment_files,
    fragment_steps,
    steps_summary,
)
from repro.workloads import extract_query, synthetic_nt_db

MB = 1_000_000


def paper_fragment(i=0):
    return FragmentSpec(i, 337_500_000, 322_500_000)


# ----------------------------------------------------------- paper anchors
def test_paper_trace_aggregates_8_workers():
    """144 ops, 89% reads, reads 13 B..220 MB, writes 50-778 B mean~690."""
    cost = default_cost_model()
    all_reads, all_writes = [], []
    for i in range(8):
        steps = fragment_steps(paper_fragment(i), cost)
        all_reads += [s.size for s in steps if s.kind in ("read", "scan")]
        all_writes += [s.size for s in steps if s.kind == "write"]
    ops = len(all_reads) + len(all_writes)
    assert ops == 144
    assert len(all_reads) / ops == pytest.approx(0.89, abs=0.01)
    assert min(all_reads) == 13
    assert max(all_reads) == pytest.approx(220 * MB, rel=0.01)
    assert len(all_writes) == 16
    assert all(50 <= w <= 778 for w in all_writes)
    mean_w = sum(all_writes) / len(all_writes)
    assert 500 <= mean_w <= 778  # paper: ~690 B


def test_model_total_read_volume_close_to_fragment_size():
    """The worker reads the fragment roughly once, plus modest re-reads."""
    s = steps_summary(fragment_steps(paper_fragment(), default_cost_model()))
    ratio = s["read_bytes"] / paper_fragment().nbytes
    assert 1.0 <= ratio <= 1.4


# ------------------------------------------------------ real-engine anchor
class _CountingReader(io.FileIO):
    """File wrapper recording read sizes."""

    reads = []  # class-level log: [(path-suffix, size)]

    def read(self, size=-1):
        data = super().read(size)
        type(self).reads.append((os.path.basename(self.name), len(data)))
        return data


def _load_with_counting(tmp_path, name):
    import builtins

    _CountingReader.reads = []
    real_open = builtins.open

    def counting_open(path, mode="r", *a, **kw):
        if "b" in mode and "r" in mode and str(path).startswith(str(tmp_path)):
            return _CountingReader(path, "r")
        return real_open(path, mode, *a, **kw)

    builtins.open = counting_open
    try:
        return SequenceDB.load(str(tmp_path), name), list(_CountingReader.reads)
    finally:
        builtins.open = real_open


def test_real_fragment_load_matches_model_structure(tmp_path):
    """Loading a real formatted fragment: sequence-file bytes dominate,
    index metadata is read first in small pieces — the structure the
    model's step timeline encodes."""
    db = synthetic_nt_db(200_000, seed=11)
    frag = segment_db(db, 4)[0]
    frag.write(str(tmp_path))
    loaded, reads = _load_with_counting(tmp_path, frag.name)

    assert len(loaded) == len(frag)
    by_ext = {}
    for name, size in reads:
        by_ext.setdefault(name.rsplit(".", 1)[1], []).append(size)
    # Sequence data dominates the bytes moved.
    assert sum(by_ext["nsq"]) > sum(by_ext["nhr"])
    assert sum(by_ext["nsq"]) > sum(by_ext["nin"])
    # The index is consulted first, starting with a small magic read.
    first_file, first_size = reads[0]
    assert first_file.endswith(".nin")
    assert first_size <= 16
    # Total bytes read ~= on-disk footprint (each file read once).
    total = sum(size for _, size in reads)
    assert total == pytest.approx(frag.disk_size(str(tmp_path)), rel=0.01)


def test_real_search_is_read_only(tmp_path):
    """The search path itself issues no database writes (the paper's 11%
    writes are temp-result records, not database mutations)."""
    db = synthetic_nt_db(50_000, seed=12)
    db.write(str(tmp_path))
    before = {p: os.path.getmtime(p) for p in db.paths(str(tmp_path))}
    loaded = SequenceDB.load(str(tmp_path), db.name)
    query = extract_query(loaded, length=300, seed=1)
    res = blastn(query, loaded)
    assert res.hits  # the planted query hits its source
    after = {p: os.path.getmtime(p) for p in db.paths(str(tmp_path))}
    assert before == after
