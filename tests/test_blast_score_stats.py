"""Tests for scoring schemes and Karlin-Altschul statistics."""

import math

import numpy as np
import pytest

from repro.blast.alphabet import PROTEIN, encode_protein
from repro.blast.score import BLOSUM62, NucleotideScore, ProteinScore
from repro.blast.stats import karlin_altschul_params, KarlinAltschul


def test_blosum62_is_symmetric():
    assert np.array_equal(BLOSUM62, BLOSUM62.T)


def test_blosum62_known_entries():
    def s(a, b):
        return BLOSUM62[PROTEIN.index(a), PROTEIN.index(b)]

    assert s("A", "A") == 4
    assert s("W", "W") == 11
    assert s("C", "C") == 9
    assert s("A", "R") == -1
    assert s("W", "A") == -3
    assert s("E", "Z") == 4
    assert s("*", "*") == 1
    assert s("A", "*") == -4
    assert s("U", "C") == 9  # U scored like C


def test_blosum62_immutable():
    with pytest.raises(ValueError):
        BLOSUM62[0, 0] = 99


def test_nucleotide_score_defaults():
    sch = NucleotideScore()
    assert sch.score(0, 0) == 1
    assert sch.score(0, 1) == -3
    assert sch.gap_open == 5 and sch.gap_extend == 2
    assert sch.max_score == 1


def test_nucleotide_score_validation():
    with pytest.raises(ValueError):
        NucleotideScore(match=0)
    with pytest.raises(ValueError):
        NucleotideScore(mismatch=1)


def test_pair_scores_vectorised():
    sch = NucleotideScore()
    xs = np.array([0, 1, 2, 3])
    ys = np.array([0, 1, 0, 3])
    assert list(sch.pair_scores(xs, ys)) == [1, 1, -3, 1]


def test_ungapped_lambda_dna_matches_literature():
    """For +1/-3 with uniform base composition, lambda ~= 1.374."""
    sch = NucleotideScore(gap_open=10 ** 9)  # penalties irrelevant here
    ka = karlin_altschul_params(sch.matrix)
    assert ka.lam == pytest.approx(1.374, abs=0.01)


def test_ungapped_lambda_blosum62_close_to_literature():
    """Ungapped BLOSUM62 lambda ~= 0.318 (Robinson frequencies)."""
    ka = karlin_altschul_params(BLOSUM62)
    assert ka.lam == pytest.approx(0.318, abs=0.02)
    assert ka.h > 0


def test_gapped_constants_lookup():
    ka = karlin_altschul_params(BLOSUM62, gapped_key="aa:blosum62:11/1")
    assert ka.lam == pytest.approx(0.267)
    assert ka.k == pytest.approx(0.041)


def test_evalue_monotone_in_score():
    ka = KarlinAltschul(lam=1.0, k=0.5, h=1.0)
    assert ka.evalue(50, 100, 1000) < ka.evalue(40, 100, 1000)


def test_evalue_scales_with_search_space():
    ka = KarlinAltschul(lam=1.0, k=0.5, h=1.0)
    assert ka.evalue(50, 100, 2000) == pytest.approx(2 * ka.evalue(50, 100, 1000))


def test_bit_score_definition():
    ka = KarlinAltschul(lam=0.5, k=0.1, h=1.0)
    raw = 100
    expected = (0.5 * raw - math.log(0.1)) / math.log(2)
    assert ka.bit_score(raw) == pytest.approx(expected)


def test_raw_for_evalue_inverts_evalue():
    ka = KarlinAltschul(lam=0.7, k=0.2, h=1.0)
    raw = ka.raw_for_evalue(1e-5, 500, 10 ** 6)
    assert ka.evalue(raw, 500, 10 ** 6) == pytest.approx(1e-5)


def test_positive_expected_score_rejected():
    m = np.ones((4, 4))  # all matches positive: invalid
    with pytest.raises(ValueError):
        karlin_altschul_params(m + 0.0)
