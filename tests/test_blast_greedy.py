"""Tests for greedy extension and megablast."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast import SequenceDB
from repro.blast.alphabet import encode_dna
from repro.blast.greedy import GreedyExtension, greedy_extend, megablast


def test_exact_match_consumes_everything():
    a = encode_dna("ACGTACGTACGT")
    ext = greedy_extend(a, a)
    assert ext.q_consumed == 12
    assert ext.s_consumed == 12
    assert ext.matches == 12
    assert ext.differences == 0
    assert ext.score == 12
    assert ext.identity == 1.0


def test_empty_inputs():
    a = encode_dna("ACGT")
    e = encode_dna("")
    assert greedy_extend(a, e).score == 0
    assert greedy_extend(e, a).score == 0


def test_single_mismatch_bridged():
    q = encode_dna("AAAAAAAA" + "C" + "GGGGGGGG")
    s = encode_dna("AAAAAAAA" + "T" + "GGGGGGGG")
    ext = greedy_extend(q, s, match=1, penalty=3)
    assert ext.matches == 16
    assert ext.differences == 1
    assert ext.score == 16 - 3


def test_single_gap_bridged():
    q = encode_dna("AAAAAAAA" + "GGGGGGGG")
    s = encode_dna("AAAAAAAA" + "C" + "GGGGGGGG")
    ext = greedy_extend(q, s, match=1, penalty=3)
    assert ext.matches == 16
    assert ext.differences == 1
    assert ext.q_consumed == 16
    assert ext.s_consumed == 17


def test_stops_when_not_worth_crossing():
    # 8 matches, then pure noise: crossing costs more than it earns.
    q = encode_dna("AAAAAAAA" + "CCCCCCCCCCCC")
    s = encode_dna("AAAAAAAA" + "GGGGGGGGGGGG")
    ext = greedy_extend(q, s, match=1, penalty=3, xdrop=6)
    assert ext.score == 8
    assert ext.matches == 8


def test_max_diff_bounds_work():
    rng = np.random.default_rng(0)
    q = encode_dna("".join(rng.choice(list("ACGT"), 200)))
    s = encode_dna("".join(rng.choice(list("ACGT"), 200)))
    ext = greedy_extend(q, s, max_diff=5)
    assert ext.differences <= 5


@settings(max_examples=50, deadline=None)
@given(st.text(alphabet="ACGT", min_size=1, max_size=60))
def test_self_extension_is_perfect(s):
    enc = encode_dna(s)
    ext = greedy_extend(enc, enc)
    assert ext.matches == len(s)
    assert ext.differences == 0


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet="ACGT", min_size=20, max_size=80),
       st.integers(1, 4), st.integers(0, 100))
def test_few_mutations_recovered(core, n_muts, seed):
    """Point mutations inside a long match: greedy crosses them all and
    matches everything else."""
    rng = np.random.default_rng(seed)
    q = list(core)
    positions = set()
    for _ in range(n_muts):
        # keep mutations away from the very start (anchor) and end
        pos = int(rng.integers(5, max(6, len(q) - 5)))
        q[pos] = {"A": "C", "C": "G", "G": "T", "T": "A"}[q[pos]]
        positions.add(pos)
    qa, sb = encode_dna("".join(q)), encode_dna(core)
    ext = greedy_extend(qa, sb, match=1, penalty=1, xdrop=10 ** 9,
                        max_diff=40)
    # The naive expectation is one mismatch per mutation, but greedy may
    # do better: a mutated base can realign against a nearby identical
    # base via gaps.  So: at least the naive match count, never more
    # than two differences per mutation, and (near-)full consumption.
    assert ext.matches >= len(core) - len(positions)
    assert ext.differences <= 2 * len(positions)
    assert ext.q_consumed >= len(core) - len(positions)
    assert ext.score >= len(core) - 2 * len(positions)


# ---------------------------------------------------------------- megablast
def test_megablast_finds_high_identity_hit():
    rng = np.random.default_rng(3)
    target = "".join(rng.choice(list("ACGT"), 500))
    db = SequenceDB.from_fasta_text(
        f">t target\n{target}\n>d decoy\n"
        + "".join(rng.choice(list("ACGT"), 400)) + "\n")
    res = megablast(target[100:300], db)
    assert res.hits
    assert res.hits[0].description.startswith("t")
    assert res.best().identity == 1.0


def test_megablast_large_word_skips_weak_similarity():
    """A ~94%-identity region with no 28-base exact run: megablast misses it
    (by design), blastn finds it."""
    from repro.blast import blastn

    rng = np.random.default_rng(4)
    core = "".join(rng.choice(list("ACGT"), 300))
    mutated = list(core)
    for i in range(0, len(mutated), 16):  # a mismatch every 16 bases:
        # runs of 15 anchor an 11-mer (blastn) but never a 28-mer.
        mutated[i] = {"A": "C", "C": "G", "G": "T", "T": "A"}[mutated[i]]
    db = SequenceDB.from_fasta_text(f">t\n{''.join(mutated)}\n")
    assert blastn(core, db).hits
    assert not megablast(core, db).hits


def test_megablast_requires_nt():
    aa = SequenceDB("aa")
    aa.add("p", "MKVLAW" * 10)
    with pytest.raises(ValueError):
        megablast("ACGT" * 10, aa)
