"""Edge-case tests for the search engine: degenerate inputs that a
downstream user will eventually feed it."""

import numpy as np
import pytest

from repro.blast import (
    SequenceDB,
    SearchParams,
    blastn,
    blastp,
    search,
)
from repro.blast.alphabet import encode_dna
from repro.blast.score import NucleotideScore


def test_query_equal_to_word_size():
    db = SequenceDB("nt")
    db.add("s", "ACGTACGTACGTACGTACGT")
    res = blastn("ACGTACGTACG", db)  # exactly 11 bases
    assert res.query_len == 11
    # May or may not pass the E-value cutoff, but must not crash and
    # any hits must be perfect.
    for hit in res.hits:
        for h in hit.hsps:
            assert h.identity == 1.0


def test_single_sequence_single_base_db():
    db = SequenceDB("nt")
    db.add("tiny", "A")
    res = blastn("ACGTACGTACGT", db)
    assert res.hits == []


def test_query_longer_than_every_subject():
    db = SequenceDB("nt")
    db.add("short", "ACGTACGTACGTACG")
    res = blastn("ACGTACGTACGTACG" * 10, db)
    # The short subject is still findable inside the long query.
    assert res.hits
    assert res.best().s_start == 0


def test_homopolymer_query_and_subject():
    db = SequenceDB("nt")
    db.add("polya", "A" * 200)
    res = blastn("A" * 100, db)
    assert res.hits
    best = res.best()
    assert best.identity == 1.0
    # Massive word-hit count must still dedupe to few HSPs.
    assert len(res.hits[0].hsps) <= SearchParams().max_hsps


def test_ambiguity_codes_in_query():
    db = SequenceDB("nt")
    db.add("s", "A" * 50 + "CGCGCGCGCGCG" + "T" * 50)
    res = blastn("NNNNNCGCGCGCGCGCGNNNNN", db)  # Ns fold to A
    assert res is not None  # no crash; hits depend on folding


def test_empty_database():
    db = SequenceDB("nt")
    res = blastn("ACGT" * 10, db)
    assert res.hits == []
    assert res.db_sequences == 0
    assert res.report()  # renders without error


def test_protein_query_shorter_than_word():
    db = SequenceDB("aa")
    db.add("p", "MKVLAWMKVLAW")
    res = blastp("MK", db)
    assert res.hits == []


def test_duplicate_sequences_in_db():
    db = SequenceDB("nt")
    seq = "ACGTACGTACGTACGTACGTACGTACGTACGT"
    db.add("a", seq)
    db.add("b", seq)
    res = blastn(seq, db)
    assert len(res.hits) == 2
    assert res.hits[0].best_score == res.hits[1].best_score


def test_query_is_entire_subject():
    db = SequenceDB("nt")
    seq = "ACGGTTAACCGGTTAACCGTATATGCGCAT" * 3
    db.add("s", seq)
    res = blastn(seq, db)
    best = res.best()
    assert best.q_start == 0 and best.q_end == len(seq)
    assert best.identity == 1.0


def test_gapped_disabled_blast1_mode():
    rng = np.random.default_rng(0)
    target = "".join(rng.choice(list("ACGT"), 300))
    db = SequenceDB("nt")
    db.add("t", target)
    params = SearchParams(word_size=11, gapped=False)
    res = blastn(target[50:170], db, params=params)
    assert res.hits
    assert res.best().ops == "M" * res.best().align_len


def test_max_hsps_cap_enforced():
    # A subject with many repeated copies of the query region.
    unit = "ACGGTTAACCGGTTAACCGTATATGCGCAT"
    db = SequenceDB("nt")
    db.add("repeats", ("TTTTTTTTTT" + unit) * 30)
    params = SearchParams(word_size=11, max_hsps=3, gapped_trigger=18)
    res = blastn(unit, db, params=params)
    assert res.hits
    assert len(res.hits[0].hsps) <= 3


def test_strict_evalue_cutoff_suppresses_everything():
    rng = np.random.default_rng(1)
    db = SequenceDB("nt")
    db.add("s", "".join(rng.choice(list("ACGT"), 400)))
    res = blastn("".join(rng.choice(list("ACGT"), 60)), db,
                 params=SearchParams(word_size=11, evalue_cutoff=1e-30))
    assert res.hits == []


def test_search_with_explicit_scheme_and_single_strand():
    from repro.blast.alphabet import encode_dna

    db = SequenceDB("nt")
    db.add("s", "ACGTACGTACGTACGTACGTACGT")
    res = search(encode_dna("ACGTACGTACGTACGT"), db, NucleotideScore(),
                 SearchParams(word_size=11), both_strands=False)
    assert all(h.strand == 1 for hit in res.hits for h in hit.hsps)


def test_gapped_method_xdrop_equivalent_on_simple_case():
    rng = np.random.default_rng(9)
    target = "".join(rng.choice(list("ACGT"), 400))
    db = SequenceDB("nt")
    db.add("t", target)
    q = target[50:150] + "GGGGGGGGGG" + target[150:250]
    scores = {}
    for method in ("banded", "xdrop"):
        res = blastn(q, db, params=SearchParams(
            word_size=11, gapped_trigger=18, gapped_method=method))
        scores[method] = res.best().score
    assert scores["banded"] == scores["xdrop"]
