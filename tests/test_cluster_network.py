"""Unit tests for the network model."""

import pytest

from repro.sim import Simulator
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.params import MB, MiB, NetworkParams, NodeParams


def two_nodes(sim, **net_over):
    params = NodeParams(network=NetworkParams(**net_over))
    net = Network(sim, params.network)
    a = Node(sim, "a", net, params)
    b = Node(sim, "b", net, params)
    return net, a, b


def test_transfer_approaches_tcp_bandwidth():
    sim = Simulator()
    net, a, b = two_nodes(sim)
    size = 100 * MB

    def proc():
        yield from net.transfer(a, b, size)
        return sim.now

    p = sim.process(proc())
    sim.run_until_complete(p)
    rate = size / p.value
    assert 0.9 * 112 * MB < rate <= 112 * MB


def test_small_message_dominated_by_latency():
    sim = Simulator()
    net, a, b = two_nodes(sim)

    def proc():
        yield from net.transfer(a, b, 100)
        return sim.now

    p = sim.process(proc())
    sim.run_until_complete(p)
    assert p.value >= net.params.latency
    assert p.value < 10 * net.params.latency


def test_local_transfer_costs_only_cpu():
    sim = Simulator()
    net, a, b = two_nodes(sim)

    def proc():
        yield from net.transfer(a, a, 10 * MB)
        return sim.now

    p = sim.process(proc())
    sim.run_until_complete(p)
    assert p.value < 1e-1  # far faster than the 90ms wire time
    assert a.nic.bytes_sent == 0


def test_two_flows_share_receiver_nic():
    """Two senders into one receiver each get ~half the bandwidth."""
    sim = Simulator()
    params = NodeParams()
    net = Network(sim, params.network)
    a = Node(sim, "a", net, params)
    b = Node(sim, "b", net, params)
    c = Node(sim, "c", net, params)
    size = 50 * MB
    times = {}

    def proc(src, tag):
        yield from net.transfer(src, c, size)
        times[tag] = sim.now

    sim.process(proc(a, "a"))
    sim.process(proc(b, "b"))
    sim.run()
    solo = size / params.network.bandwidth
    for tag in ("a", "b"):
        assert times[tag] == pytest.approx(2 * solo, rel=0.1)


def test_full_duplex_no_interference():
    """a->b and b->a proceed concurrently at full rate."""
    sim = Simulator()
    net, a, b = two_nodes(sim)
    size = 50 * MB
    times = {}

    def proc(src, dst, tag):
        yield from net.transfer(src, dst, size)
        times[tag] = sim.now

    sim.process(proc(a, b, "ab"))
    sim.process(proc(b, a, "ba"))
    sim.run()
    solo = size / net.params.bandwidth
    for tag in ("ab", "ba"):
        assert times[tag] == pytest.approx(solo, rel=0.1)


def test_transfer_counters():
    sim = Simulator()
    net, a, b = two_nodes(sim)

    def proc():
        yield from net.transfer(a, b, 1 * MB)

    p = sim.process(proc())
    sim.run_until_complete(p)
    assert a.nic.bytes_sent == 1 * MB
    assert b.nic.bytes_received == 1 * MB
    assert net.messages_delivered == 1
    assert net.bytes_delivered == 1 * MB


def test_negative_size_rejected():
    sim = Simulator()
    net, a, b = two_nodes(sim)

    def proc():
        yield from net.transfer(a, b, -1)

    p = sim.process(proc())
    sim.run()
    assert p.failed
    assert isinstance(p.value, ValueError)


def test_duplicate_attach_rejected():
    sim = Simulator()
    net, a, b = two_nodes(sim)
    with pytest.raises(ValueError):
        net.attach(a)


def test_message_time_helper():
    sim = Simulator()
    net, a, b = two_nodes(sim)
    assert net.message_time(0) == net.params.latency
    assert net.message_time(112 * MB) == pytest.approx(1.0 + net.params.latency)
