"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Simulator,
    SimulationError,
    StopProcess,
    Timeout,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start=5.0)
    assert sim.now == 5.0


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc(sim):
        yield Timeout(sim, 2.5)
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [2.5]


def test_timeout_value_passed_back():
    sim = Simulator()
    seen = []

    def proc(sim):
        v = yield Timeout(sim, 1.0, value="payload")
        seen.append(v)

    sim.process(proc(sim))
    sim.run()
    assert seen == ["payload"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Timeout(sim, -1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield Timeout(sim, delay)
        order.append(tag)

    sim.process(proc(sim, 3.0, "c"))
    sim.process(proc(sim, 1.0, "a"))
    sim.process(proc(sim, 2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_creation_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield Timeout(sim, 1.0)
        order.append(tag)

    for tag in "abcde":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == list("abcde")


def test_run_until_stops_early():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield Timeout(sim, 10.0)
        fired.append(True)

    sim.process(proc(sim))
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert not fired
    sim.run()
    assert fired == [True]


def test_run_until_in_past_rejected():
    sim = Simulator(start=10.0)
    with pytest.raises(SimulationError):
        sim.run(until=5.0)


def test_process_return_value():
    sim = Simulator()

    def child(sim):
        yield Timeout(sim, 1.0)
        return 42

    def parent(sim):
        result = yield sim.process(child(sim))
        assert result == 42
        return "done"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "done"


def test_stop_process_sets_value():
    sim = Simulator()

    def proc(sim):
        yield Timeout(sim, 1.0)
        raise StopProcess("early")

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "early"
    assert p.ok


def test_process_exception_marks_failed():
    sim = Simulator()

    def bad(sim):
        yield Timeout(sim, 1.0)
        raise ValueError("boom")

    p = sim.process(bad(sim))
    sim.run()
    assert p.failed
    assert isinstance(p.value, ValueError)


def test_failed_child_raises_in_parent():
    sim = Simulator()
    caught = []

    def child(sim):
        yield Timeout(sim, 1.0)
        raise ValueError("child broke")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent(sim))
    sim.run()
    assert caught == ["child broke"]


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 17

    p = sim.process(bad(sim))
    sim.run()
    assert p.failed
    assert isinstance(p.value, SimulationError)


def test_yield_event_from_other_simulator_fails():
    sim1, sim2 = Simulator(), Simulator()

    def bad(sim):
        yield Timeout(sim2, 1.0)

    p = sim1.process(bad(sim1))
    sim1.run()
    assert p.failed


def test_bare_event_succeed():
    sim = Simulator()
    ev = sim.event()
    seen = []

    def waiter(sim, ev):
        v = yield ev
        seen.append((sim.now, v))

    def trigger(sim, ev):
        yield Timeout(sim, 4.0)
        ev.succeed("go")

    sim.process(waiter(sim, ev))
    sim.process(trigger(sim, ev))
    sim.run()
    assert seen == [(4.0, "go")]


def test_event_cannot_be_scheduled_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    ev = Timeout(sim, 1.0)
    hits = []
    ev.add_callback(lambda e: hits.append(1))
    ev.cancel()
    sim.run()
    assert hits == []


def test_callback_on_already_triggered_event_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x")
    sim.run()
    hits = []
    ev.add_callback(lambda e: hits.append(e.value))
    assert hits == ["x"]


def test_allof_waits_for_all():
    sim = Simulator()
    results = []

    def proc(sim):
        evs = [Timeout(sim, d, value=d) for d in (3.0, 1.0, 2.0)]
        vals = yield AllOf(sim, evs)
        results.append((sim.now, vals))

    sim.process(proc(sim))
    sim.run()
    assert results == [(3.0, [3.0, 1.0, 2.0])]


def test_allof_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        vals = yield AllOf(sim, [])
        return vals

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == []


def test_allof_propagates_failure():
    sim = Simulator()

    def child_ok(sim):
        yield Timeout(sim, 1.0)

    def child_bad(sim):
        yield Timeout(sim, 2.0)
        raise RuntimeError("nope")

    def proc(sim):
        yield AllOf(sim, [sim.process(child_ok(sim)), sim.process(child_bad(sim))])

    p = sim.process(proc(sim))
    sim.run()
    assert p.failed
    assert isinstance(p.value, RuntimeError)


def test_anyof_returns_first():
    sim = Simulator()

    def proc(sim):
        slow = Timeout(sim, 5.0, value="slow")
        fast = Timeout(sim, 1.0, value="fast")
        v = yield AnyOf(sim, [slow, fast])
        return (sim.now, v)

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == (1.0, "fast")


def test_interrupt_raises_in_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield Timeout(sim, 100.0)
        except Interrupt as exc:
            log.append((sim.now, exc.cause))

    def poker(sim, target):
        yield Timeout(sim, 2.0)
        target.interrupt("wake up")

    target = sim.process(sleeper(sim))
    sim.process(poker(sim, target))
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick(sim):
        yield Timeout(sim, 1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_uncaught_interrupt_fails_process():
    sim = Simulator()

    def sleeper(sim):
        yield Timeout(sim, 100.0)

    def poker(sim, target):
        yield Timeout(sim, 1.0)
        target.interrupt()

    target = sim.process(sleeper(sim))
    sim.process(poker(sim, target))
    sim.run()
    assert target.failed
    assert isinstance(target.value, Interrupt)


def test_run_until_complete_detects_deadlock():
    sim = Simulator()

    def stuck(sim):
        yield sim.event()  # never triggered

    p = sim.process(stuck(sim))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(p)


def test_run_until_complete_finishes_targets():
    sim = Simulator()

    def proc(sim, d):
        yield Timeout(sim, d)

    p1 = sim.process(proc(sim, 1.0))
    p2 = sim.process(proc(sim, 2.0))
    sim.process(proc(sim, 50.0))  # background, not waited on
    sim.run_until_complete(p1, p2)
    assert p1.triggered and p2.triggered
    assert sim.now == 2.0


def test_peek_returns_next_event_time():
    sim = Simulator()

    def proc(sim):
        yield Timeout(sim, 7.0)

    sim.process(proc(sim))
    # The bootstrap event is at t=0.
    assert sim.peek() == 0.0
    sim.step()
    assert sim.peek() == 7.0


def test_nested_process_chain():
    sim = Simulator()

    def leaf(sim):
        yield Timeout(sim, 1.0)
        return 1

    def mid(sim):
        v = yield sim.process(leaf(sim))
        yield Timeout(sim, 1.0)
        return v + 1

    def root(sim):
        v = yield sim.process(mid(sim))
        return v + 1

    p = sim.process(root(sim))
    sim.run()
    assert p.value == 3
    assert sim.now == 2.0


def test_run_on_empty_heap_returns_now():
    sim = Simulator()
    assert sim.run() == 0.0
    assert sim.run(until=5.0) == 5.0
    assert sim.now == 5.0


def test_process_generator_name_used():
    sim = Simulator()

    def named(sim):
        yield Timeout(sim, 1.0)

    p = sim.process(named(sim), name="custom")
    assert p.name == "custom"
    sim.run()


def test_anyof_with_failed_winner():
    sim = Simulator()

    def bad(sim):
        yield Timeout(sim, 1.0)
        raise RuntimeError("first and broken")

    def waiter(sim):
        yield AnyOf(sim, [sim.process(bad(sim)), Timeout(sim, 5.0)])

    p = sim.process(waiter(sim))
    sim.run()
    assert p.failed
    assert isinstance(p.value, RuntimeError)


def test_deeply_nested_timeouts_perform():
    """A thousand sequential timeouts complete without issue."""
    sim = Simulator()

    def long_runner(sim):
        for _ in range(1000):
            yield Timeout(sim, 0.001)
        return sim.now

    p = sim.process(long_runner(sim))
    sim.run_until_complete(p)
    assert p.value == pytest.approx(1.0)
