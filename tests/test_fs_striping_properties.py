"""Property-based tests for the stripe layout arithmetic.

Seeded random (offset, size, stripe_size, n_servers) combinations
exercise the algebraic contracts the file systems rely on: the
offset ↔ (server, server_offset) mapping round-trips, every byte of a
range is covered exactly once, per-server extents never overlap, and
the three byte-accounting views (units, extents, server_bytes,
local_size) agree with each other.
"""

import random

import pytest

from repro.fs.striping import StripeLayout

SEED = 20260805
N_CASES = 200


def random_cases(seed=SEED, n=N_CASES):
    """Deterministic stream of (layout, offset, size) cases spanning
    aligned, unaligned, tiny, and multi-cycle ranges."""
    rng = random.Random(seed)
    cases = []
    for _ in range(n):
        n_servers = rng.randint(1, 9)
        stripe = rng.choice([1, 7, 512, 4096, 64 * 1024])
        layout = StripeLayout(n_servers, stripe)
        cycle = stripe * n_servers
        offset = rng.choice([
            0,
            rng.randrange(stripe),
            rng.randrange(4 * cycle + 1),
            rng.randrange(stripe) + cycle * rng.randrange(3),
        ])
        size = rng.choice([
            0, 1, stripe - 1 if stripe > 1 else 1, stripe, stripe + 1,
            rng.randrange(6 * cycle + 1),
        ])
        cases.append((layout, offset, size))
    return cases


CASES = random_cases()


def case_id(case):
    layout, offset, size = case
    return f"s{layout.n_servers}x{layout.stripe_size}+{offset}:{size}"


# ---------------------------------------------------------------- pointwise
@pytest.mark.parametrize("layout,offset,size", CASES, ids=map(case_id, CASES))
def test_units_cover_range_exactly_once(layout, offset, size):
    """The unit decomposition is a gap-free, overlap-free partition of
    [offset, offset + size) in file-offset order."""
    pos = offset
    total = 0
    for server, soff, length, foff in layout.units(offset, size):
        assert foff == pos                     # contiguous, in order
        assert 0 < length <= layout.stripe_size
        assert 0 <= server < layout.n_servers
        # round-trip: the file offset maps back to this (server, soff)
        assert layout.server_of(foff) == server
        assert layout.server_offset(foff) == soff
        pos += length
        total += length
    assert pos == offset + size
    assert total == size


@pytest.mark.parametrize("layout,offset,size", CASES, ids=map(case_id, CASES))
def test_extents_conserve_bytes_and_never_overlap(layout, offset, size):
    per_server = layout.extents(offset, size)
    assert len(per_server) == layout.n_servers
    assert sum(length for bucket in per_server
               for _, _, length in bucket) == size
    for server, bucket in enumerate(per_server):
        last_end = -1
        for srv, soff, length in bucket:
            assert srv == server
            assert length > 0
            assert soff > last_end             # sorted and disjoint
            last_end = soff + length - 1


@pytest.mark.parametrize("layout,offset,size", CASES, ids=map(case_id, CASES))
def test_server_bytes_agrees_with_extents(layout, offset, size):
    per_server = layout.extents(offset, size)
    assert layout.server_bytes(offset, size) == [
        sum(length for _, _, length in bucket) for bucket in per_server]


# ---------------------------------------------------------------- whole-file
@pytest.mark.parametrize("layout,offset,size", CASES, ids=map(case_id, CASES))
def test_local_size_matches_full_file_scan(layout, offset, size):
    """local_size's closed form equals brute-force accounting of a file
    read from byte 0 (reusing the case's offset + size as the length)."""
    file_size = offset + size
    scanned = layout.server_bytes(0, file_size)
    assert [layout.local_size(file_size, s)
            for s in range(layout.n_servers)] == scanned
    assert sum(scanned) == file_size


def test_round_trip_every_byte_small_exhaustive():
    """Exhaustive check on a small layout: byte → (server, local) is
    injective and dense per server."""
    layout = StripeLayout(n_servers=3, stripe_size=4)
    seen = {}
    for offset in range(96):
        key = (layout.server_of(offset), layout.server_offset(offset))
        assert key not in seen, f"bytes {seen.get(key)} and {offset} collide"
        seen[key] = offset
    # per server, local offsets are 0..31 with no holes
    for server in range(3):
        locals_ = sorted(l for (s, l) in seen if s == server)
        assert locals_ == list(range(32))


def test_degenerate_layouts():
    one = StripeLayout(n_servers=1, stripe_size=64)
    assert one.server_bytes(13, 1000) == [1000]
    assert one.local_size(1000, 0) == 1000
    with pytest.raises(ValueError):
        StripeLayout(n_servers=0)
    with pytest.raises(ValueError):
        StripeLayout(n_servers=2, stripe_size=0)
    with pytest.raises(ValueError):
        list(StripeLayout(2).units(-1, 10))
