"""Tests for the ASCII figure rendering."""

import pytest

from repro.core.plot import ascii_chart, figure4_scatter, figure_lines
from repro.trace import TraceRecord


def test_ascii_chart_basic_scatter():
    text = ascii_chart({"a": [(0, 0), (1, 1), (2, 4)]}, title="T",
                       x_label="x", y_label="y")
    assert "T" in text
    assert "o" in text
    assert "[o = a]" in text
    assert "(y: y)" in text


def test_ascii_chart_multiple_series_distinct_markers():
    text = ascii_chart({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
    assert "o" in text and "x" in text
    assert "o = a" in text and "x = b" in text


def test_ascii_chart_log_y_places_extremes():
    text = ascii_chart({"a": [(0, 10), (1, 1e7)]}, log_y=True)
    lines = [l for l in text.splitlines() if "|" in l]
    # The small value sits near the bottom, the big one near the top.
    top_half = "".join(lines[:len(lines) // 2])
    bottom_half = "".join(lines[len(lines) // 2:])
    assert "o" in top_half and "o" in bottom_half


def test_ascii_chart_empty_rejected():
    with pytest.raises(ValueError):
        ascii_chart({})


def test_ascii_chart_connect_draws_line():
    text = ascii_chart({"a": [(0, 0), (10, 10)]}, connect=True)
    assert "." in text


def test_ascii_chart_constant_series():
    # Degenerate ranges must not crash.
    text = ascii_chart({"a": [(1, 5), (1, 5)]})
    assert "o" in text


def test_figure4_scatter_from_records():
    records = [
        TraceRecord("n0", "read", "f", 13, 0.0, 0.1),
        TraceRecord("n0", "read", "f", 220_000_000, 1.0, 2.0),
        TraceRecord("n0", "write", "g", 700, 3.0, 3.1),
    ]
    text = figure4_scatter(records)
    assert "read" in text and "write" in text
    assert "time (seconds)" in text


def test_figure_lines_shape():
    text = figure_lines([1, 2, 4, 8],
                        {"original": [100, 60, 35, 20],
                         "pvfs": [110, 55, 30, 18]},
                        "title", "workers")
    assert "title" in text
    assert "workers" in text
    assert text.count("\n") > 15
