"""Tests for length adjustment / effective search space."""

import numpy as np
import pytest

from repro.blast import SequenceDB, SearchParams, blastn
from repro.blast.stats import (
    KarlinAltschul,
    effective_search_space,
    length_adjustment,
)

KA = KarlinAltschul(lam=1.28, k=0.46, h=0.85)


def test_length_adjustment_positive_for_realistic_sizes():
    l = length_adjustment(KA, 568, 2_580_000_000, 1_760_000)
    assert 20 < l < 60  # ~ln(K m n)/H scale


def test_length_adjustment_grows_with_search_space():
    small = length_adjustment(KA, 500, 10 ** 6, 100)
    big = length_adjustment(KA, 500, 10 ** 9, 10 ** 5)
    assert big > small


def test_length_adjustment_degenerate_inputs():
    assert length_adjustment(KA, 0, 1000) == 0
    assert length_adjustment(KA, 100, 0) == 0
    assert length_adjustment(KA, 100, 1000, 0) == 0
    assert length_adjustment(KarlinAltschul(1.0, 0.5, 0.0), 100, 1000) == 0


def test_length_adjustment_never_exceeds_lengths():
    # Tiny query: the adjustment must not consume the whole sequence.
    l = length_adjustment(KA, 15, 10 ** 8, 10 ** 4)
    assert 0 <= l < 15 or l == 0


def test_effective_search_space_shrinks_both_axes():
    m_eff, n_eff = effective_search_space(KA, 568, 10 ** 9, 10 ** 6)
    assert m_eff < 568
    assert n_eff < 10 ** 9
    assert m_eff > 0 and n_eff > 0


def test_effective_lengths_raise_significance():
    """With the edge correction on, E-values shrink (smaller space)."""
    rng = np.random.default_rng(0)
    target = "".join(rng.choice(list("ACGT"), 600))
    db = SequenceDB.from_fasta_text(
        f">t\n{target}\n" +
        "".join(f">d{i}\n{''.join(rng.choice(list('ACGT'), 500))}\n"
                for i in range(5)))
    query = target[100:250]
    plain = blastn(query, db)
    adjusted = blastn(query, db, params=SearchParams(
        word_size=11, gapped_trigger=18, effective_lengths=True))
    assert adjusted.best().evalue < plain.best().evalue
    # Same alignment either way.
    assert adjusted.best().score == plain.best().score
