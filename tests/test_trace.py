"""Tests for trace records, collection, and Section 4.2 statistics."""

import pytest

from repro.trace import TraceCollector, TraceRecord, analyze


def rec(op="read", size=100, start=0.0, end=1.0, node="n0", path="f"):
    return TraceRecord(node, op, path, size, start, end)


def test_record_duration():
    assert rec(start=1.0, end=3.5).duration == 2.5


def test_record_row_renders():
    row = rec().as_row()
    assert "read" in row and "f" in row


def test_collector_records_and_iterates():
    c = TraceCollector()
    c.record("n0", "read", "f", 10, 0.0, 1.0)
    c.record("n1", "write", "g", 20, 1.0, 2.0)
    assert len(c) == 2
    assert [r.op for r in c] == ["read", "write"]


def test_collector_disabled_drops_records():
    c = TraceCollector(enabled=False)
    c.record("n0", "read", "f", 10, 0.0, 1.0)
    assert len(c) == 0


def test_collector_filter():
    c = TraceCollector()
    c.record("n0", "read", "a.nsq", 10, 0.0, 1.0)
    c.record("n0", "write", "a.tmp", 20, 1.0, 2.0)
    c.record("n1", "read", "b.nsq", 30, 2.0, 3.0)
    assert len(c.filter(op="read")) == 2
    assert len(c.filter(node="n1")) == 1
    assert len(c.filter(path_prefix="a.")) == 2
    assert len(c.filter(op="read", node="n0")) == 1


def test_collector_clear_and_dump():
    c = TraceCollector()
    c.record("n0", "read", "f", 10, 0.0, 1.0)
    dump = c.dump()
    assert "read" in dump and "start" in dump
    c.clear()
    assert len(c) == 0


def test_analyze_basic_stats():
    records = [
        rec(op="read", size=100),
        rec(op="read", size=300),
        rec(op="write", size=50),
    ]
    stats = analyze(records)
    assert stats.operations == 3
    assert stats.read_fraction == pytest.approx(2 / 3)
    assert stats.reads.count == 2
    assert stats.reads.mean_bytes == 200
    assert stats.reads.min_bytes == 100
    assert stats.reads.max_bytes == 300
    assert stats.writes.total_bytes == 50


def test_analyze_empty():
    stats = analyze([])
    assert stats.operations == 0
    assert stats.read_fraction == 0.0


def test_analyze_rejects_unknown_op():
    with pytest.raises(ValueError):
        analyze([rec(op="fsync")])


def test_stats_report_renders():
    stats = analyze([rec(op="read", size=10 ** 7), rec(op="write", size=700)])
    text = stats.report()
    assert "50% reads" in text
    assert "mean=700" in text.replace(" ", "").replace("B", "") or "700" in text
