"""Property-based tests of the whole search pipeline: planted matches
are always found, coordinates are exact, invariants hold under random
inputs."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.blast import SequenceDB, SearchParams, blastn, blastp
from repro.blast.alphabet import decode_dna, encode_dna, reverse_complement

dna = st.text(alphabet="ACGT", min_size=0, max_size=400)


@settings(max_examples=40, deadline=None)
@given(
    background=st.text(alphabet="ACGT", min_size=200, max_size=400),
    start_frac=st.floats(0.0, 0.7),
    length=st.integers(30, 120),
    seed=st.integers(0, 100),
)
def test_planted_exact_substring_is_always_found(background, start_frac,
                                                 length, seed):
    """Any exact substring of length >= 30 must be found with perfect
    identity and exact subject coordinates."""
    start = int(start_frac * (len(background) - 1))
    length = min(length, len(background) - start)
    assume(length >= 30)
    query = background[start:start + length]
    rng = np.random.default_rng(seed)
    db = SequenceDB.from_fasta_text(
        f">target\n{background}\n>decoy\n"
        + "".join(rng.choice(list("ACGT"), 300)) + "\n")
    res = blastn(query, db)
    target_hits = [h for h in res.hits if h.description == "target"]
    assert target_hits, "planted substring missed"
    best = max((hsp for h in target_hits for hsp in h.hsps),
               key=lambda h: h.score)
    assert best.identity == 1.0
    # The true placement must be covered (repeats may extend further).
    assert best.s_start <= start
    assert best.s_end >= start + length - (length // 10)


@settings(max_examples=30, deadline=None)
@given(
    background=st.text(alphabet="ACGT", min_size=150, max_size=300),
    length=st.integers(40, 100),
)
def test_planted_substring_found_on_minus_strand(background, length):
    start = (len(background) - length) // 2
    assume(start >= 0)
    piece = background[start:start + length]
    rc = decode_dna(reverse_complement(encode_dna(piece)))
    db = SequenceDB.from_fasta_text(f">t\n{background}\n")
    res = blastn(rc, db)
    assert res.hits
    assert any(h.strand == -1 for hit in res.hits for h in hit.hsps)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_hsp_invariants_on_random_queries(data):
    """Whatever the inputs, reported HSPs satisfy basic geometry and
    statistics invariants."""
    rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
    db = SequenceDB.from_fasta_text(
        "".join(f">s{i}\n{''.join(rng.choice(list('ACGT'), 200))}\n"
                for i in range(3)))
    query = "".join(rng.choice(list("ACGT"),
                               data.draw(st.integers(11, 150))))
    res = blastn(query, db)
    for hit in res.hits:
        subject_len = hit.subject_len
        for h in hit.hsps:
            assert 0 <= h.q_start <= h.q_end <= len(query)
            assert 0 <= h.s_start <= h.s_end <= subject_len
            assert 0 <= h.identities <= h.align_len
            assert h.align_len >= max(h.q_end - h.q_start,
                                      h.s_end - h.s_start)
            assert h.evalue >= 0
            assert h.score > 0
            if h.ops:
                assert len(h.ops) == h.align_len
                assert h.ops.count("M") + h.ops.count("D") == h.q_end - h.q_start
                assert h.ops.count("M") + h.ops.count("I") == h.s_end - h.s_start


@settings(max_examples=15, deadline=None)
@given(
    n_frags=st.integers(2, 5),
    seed=st.integers(0, 50),
)
def test_fragment_merge_equals_whole_search(n_frags, seed):
    """Database segmentation + merge finds the same best hit with the
    same score as searching the whole database."""
    from repro.blast.seqdb import segment_db

    rng = np.random.default_rng(seed)
    db = SequenceDB("nt")
    for i in range(8):
        db.add(f"s{i}", "".join(rng.choice(list("ACGT"), 300)))
    target_id = int(rng.integers(0, 8))
    target = db.sequence_str(target_id)
    query = target[50:200]

    whole = blastn(query, db)
    frags = segment_db(db, n_frags)
    merged = None
    for frag in frags:
        r = blastn(query, frag)
        merged = r if merged is None else merged.merge(r)
    assert whole.hits and merged.hits
    assert merged.best().score == whole.best().score
    assert merged.hits[0].description == whole.hits[0].description


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_search_is_deterministic(seed):
    rng = np.random.default_rng(seed)
    db = SequenceDB("nt")
    db.add("s", "".join(rng.choice(list("ACGT"), 500)))
    query = db.sequence_str(0)[100:220]

    def run():
        res = blastn(query, db)
        return [(h.subject_id, hsp.score, hsp.q_start, hsp.s_start)
                for h in res.hits for hsp in h.hsps]

    assert run() == run()
