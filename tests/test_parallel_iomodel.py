"""Tests for the BLAST I/O access-pattern model (paper Figure 4)."""

import numpy as np
import pytest

from repro.core.calibration import default_cost_model
from repro.parallel.iomodel import (
    FragmentSpec,
    fragment_files,
    fragment_steps,
    steps_summary,
)

MB = 1_000_000


def paper_fragment(i=0):
    """One of 8 nt fragments: 337.5 MB on disk, ~322 M residues."""
    return FragmentSpec(i, 337_500_000, 322_500_000)


def test_fragment_files_split():
    files = fragment_files(paper_fragment())
    assert len(files) == 3
    total = sum(files.values())
    assert total == pytest.approx(337_500_000, rel=0.01)
    nsq = files["nt.000.nsq"]
    assert nsq == pytest.approx(0.65 * 337_500_000, rel=0.01)


def test_steps_match_figure4_op_counts():
    """Per worker: 16 reads + 2 writes (144 ops for 8 workers, 89% reads)."""
    s = steps_summary(fragment_steps(paper_fragment(), default_cost_model()))
    assert s["n_reads"] == 16
    assert s["n_writes"] == 2
    total_ops = 8 * (s["n_reads"] + s["n_writes"])
    assert total_ops == 144
    read_frac = s["n_reads"] / (s["n_reads"] + s["n_writes"])
    assert read_frac == pytest.approx(0.89, abs=0.01)


def test_steps_match_figure4_read_sizes():
    """Reads span 13 B to ~220 MB."""
    s = steps_summary(fragment_steps(paper_fragment(), default_cost_model()))
    assert s["min_read"] == 13
    assert s["max_read"] == pytest.approx(220 * MB, rel=0.01)
    mean = s["read_bytes"] / s["n_reads"]
    assert 5 * MB < mean < 40 * MB  # "large reads", tens of MB


def test_steps_match_figure4_write_sizes():
    steps = fragment_steps(paper_fragment(), default_cost_model())
    writes = [st.size for st in steps if st.kind == "write"]
    assert len(writes) == 2
    assert all(50 <= w <= 778 for w in writes)


def test_compute_matches_cost_model_within_variance():
    cost = default_cost_model()
    spec = paper_fragment()
    s = steps_summary(fragment_steps(spec, cost))
    expected = cost.compute_seconds(spec.residues) + cost.setup_cpu + cost.result_cpu
    assert s["compute_seconds"] == pytest.approx(expected, rel=0.35)


def test_steps_deterministic_per_fragment():
    cost = default_cost_model()
    a = fragment_steps(paper_fragment(3), cost)
    b = fragment_steps(paper_fragment(3), cost)
    assert a == b
    c = fragment_steps(paper_fragment(4), cost)
    assert a != c


def test_reads_stay_within_files():
    spec = paper_fragment()
    files = fragment_files(spec)
    for st in fragment_steps(spec, default_cost_model()):
        if st.kind in ("read", "scan"):
            assert st.offset >= 0
            assert st.offset + st.size <= files[st.path], st


def test_tiny_fragment_still_valid():
    spec = FragmentSpec(0, 10_000, 9_000)
    steps = fragment_steps(spec, default_cost_model())
    s = steps_summary(steps)
    assert s["n_writes"] == 2
    assert s["read_bytes"] > 0
    files = fragment_files(spec)
    for st in steps:
        if st.kind in ("read", "scan"):
            assert st.offset + st.size <= files[st.path]


def test_scan_is_single_app_level_read():
    steps = fragment_steps(paper_fragment(), default_cost_model())
    scans = [st for st in steps if st.kind == "scan"]
    assert len(scans) == 1
    assert scans[0].seconds > 0
