"""Tests for FASTA parsing and writing."""

import pytest

from repro.blast.fasta import FastaRecord, parse_fasta, write_fasta


def test_parse_single_record():
    recs = parse_fasta(">seq1 a test\nACGT\nACGT\n")
    assert len(recs) == 1
    assert recs[0].description == "seq1 a test"
    assert recs[0].sequence == "ACGTACGT"
    assert recs[0].id == "seq1"
    assert len(recs[0]) == 8


def test_parse_multiple_records():
    recs = parse_fasta(">a\nAC\n>b\nGT\n>c\nTT\n")
    assert [r.id for r in recs] == ["a", "b", "c"]
    assert [r.sequence for r in recs] == ["AC", "GT", "TT"]


def test_parse_uppercases_and_strips():
    recs = parse_fasta(">a\n  ac gt  \n")
    assert recs[0].sequence == "ACGT"


def test_parse_skips_blank_lines():
    recs = parse_fasta("\n>a\nAC\n\nGT\n\n")
    assert recs[0].sequence == "ACGT"


def test_parse_rejects_data_before_header():
    with pytest.raises(ValueError, match="before header"):
        parse_fasta("ACGT\n>a\nAC\n")


def test_parse_rejects_empty_sequence():
    with pytest.raises(ValueError, match="empty sequence"):
        parse_fasta(">a\n>b\nAC\n")


def test_parse_empty_input():
    assert parse_fasta("") == []


def test_write_roundtrip():
    recs = [FastaRecord("a desc", "ACGT" * 30), FastaRecord("b", "TTTT")]
    text = write_fasta(recs, width=50)
    back = parse_fasta(text)
    assert back == recs


def test_write_wraps_lines():
    text = write_fasta([FastaRecord("a", "A" * 100)], width=30)
    body = [l for l in text.splitlines() if not l.startswith(">")]
    assert max(len(l) for l in body) == 30


def test_write_empty():
    assert write_fasta([]) == ""
