#!/usr/bin/env python
"""Machine-readable engine microbenchmark: emits BENCH_blast.json.

Measures the real BLAST engine (not the simulation) on a synthetic
nucleotide corpus: kernel throughput warm and cold, the legacy
per-sequence loop for comparison, per-stage timings (fragment packing,
query index build, fragment scan), and an old-vs-new equivalence smoke
check.  The JSON keeps the perf trajectory comparable across PRs.

Absolute MB/s is machine-dependent, so the regression check (``--check
BASELINE.json``) compares the *kernel-over-loop speedup ratio* — both
sides measured on the same machine in the same run — against the
baseline's ratio, failing when it falls more than ``--tolerance``
(default 0.30) below it.

Usage::

    PYTHONPATH=src python tools/bench_engine.py \
        --residues 1000000 --rounds 3 --jobs 4 \
        --out benchmarks/results/BENCH_blast.json
    PYTHONPATH=src python tools/bench_engine.py \
        --residues 300000 --check benchmarks/results/BENCH_blast.json

``--jobs N`` additionally times the multi-core pool (``repro.exec``)
at every power-of-two worker count up to ``N`` (the ``parallel_sweep``
list) and reports each point's speedup over the serial warm search.
Sweep points needing more workers than the machine has cores are
recorded as annotated skips, never measured — a 1-core runner cannot
demonstrate (or honestly refute) parallel speedup.  Any point that
*was* measured with ``jobs >= 2`` must reach speedup >= 1.0 or the run
fails: the pool existing at all is only justified by beating serial.
Every run also times the multi-query batched kernel
(``search_batch``) against N sequential searches at 8 and 32 queries
(the ``multi_query`` section: speedup, aggregate MB/s, per-query
latency); on a gate-sized corpus the 8-query batch must reach
``MULTI_QUERY_FLOOR`` (1.5x) or the run fails.
Every run also times the two-pass batched gapped stage against the
scalar reference path on a fixed protein corpus (the ``gapped``
section: ``gapped_stage_bulk_s`` / ``gapped_stage_scalar_s`` /
``gapped_speedup``, gated >= ``GAPPED_FLOOR`` = 1.5x), and records the
per-stage ``REPRO_PROFILE=1`` view of one warm search on the nt corpus
(the ``profile`` section) so stage shares trend alongside end-to-end
MB/s.
Every run also measures the multi-node socket runtime (the
``multinode`` section): two localhost :class:`repro.exec.NodeFleet`
agents swept at 1 and 2 nodes remote-only, with pack bytes on the wire
recorded per point — the sweep itself demonstrates ship-once caching
(the 2-node point adopts what the 1-node point shipped) and a final
fresh-master connection must re-ship **zero** bytes against the warm
fleet or the run fails.  Runners without enough cores for the agents
plus the master record an annotated skip.
Every run also times the on-disk pack store (``repro.exec.diskpack``):
building packs from FASTA, a full rebuild-from-FASTA restart, and the
mmap cold start that replaces it.  Cold start must come in under 25%
of the rebuild (``DISKPACK_COLD_CEILING``) or the run fails — the
format's entire justification is killing that startup cost.
``--out`` appends a compact record of every run to the JSON's
``history`` list (carried forward from the existing file, deduplicated
per git commit), with the machine's core count and CPU model alongside
— absolute numbers only trend meaningfully on known hardware.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time

#: Timing floor: medians over fewer than 3 rounds are too noisy to
#: trend across PRs, so ``--rounds`` is clamped up to this.
ROUNDS_MIN = 3
ROUNDS_DEFAULT = 3


def _median(samples):
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def machine_info() -> dict:
    """Core count, CPU model and platform — absolute MB/s numbers are
    meaningless in the history without them."""
    model = None
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "cpu_count": os.cpu_count(),
        "cpu_model": model or platform.processor() or "unknown",
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _time(fn, rounds):
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return _median(samples)


def _dump_results(results):
    return [(h.subject_id, h.subject_len,
             [dataclasses.astuple(p) for p in h.hsps])
            for h in results.hits]


def git_commit() -> str:
    """Current HEAD (short), or None outside a git checkout."""
    import subprocess

    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def measure_parallel(db, query, scheme, params, jobs: int, rounds: int,
                     serial_warm_s: float, serial_dump) -> dict:
    """Time the process pool against the same corpus and query the
    serial engine was timed on (warm packs, same-machine same-run)."""
    from repro.exec import ExecPool

    with ExecPool(jobs=jobs) as pool:
        first = pool.search(query, db, scheme, params)  # packs + attach
        equivalent = _dump_results(first) == serial_dump
        par_s = _time(lambda: pool.search(query, db, scheme, params), rounds)
        n_fragments = sum(len(p.specs) for p in pool._prepared.values())
        stats = pool.last_stats
    return {
        "jobs": jobs,
        "n_fragments": n_fragments,
        "tasks": stats.tasks_done if stats else None,
        "mbps": db.total_residues / par_s / 1e6,
        "search_parallel_s": par_s,
        "speedup_over_serial": serial_warm_s / par_s,
        "equivalent": equivalent,
    }


def measure_diskpack(db, query, scheme, params, rounds: int,
                     serial_dump) -> dict:
    """Time the pack-store cold start against a full rebuild.

    Both sides are timed to *search-ready* — the first query's own scan
    costs the same either way and would only dilute the ratio.
    ``rebuild_from_fasta_s`` is the formatdb-equivalent path a restart
    without packs pays: parse the FASTA corpus, encode it, build the
    scan structures.  ``cold_start_s`` is the pack path: open the
    manifest, mmap + CRC-verify every pack (the structures are zero-copy
    views into the mappings, so at that point the store is serving).
    The ratio is the startup cost the format exists to eliminate; the
    gate requires cold start under 25% of the rebuild.  Answer fidelity
    is asserted separately: one query through the cold store must match
    the in-RAM engine byte for byte."""
    import shutil
    import tempfile

    from repro.blast.fasta import FastaRecord, write_fasta
    from repro.blast.seqdb import SequenceDB
    from repro.exec.diskpack import (PackStore, build_pack_store,
                                     search_store)

    tmp = tempfile.mkdtemp(prefix="bench-rpk-")
    try:
        fasta_path = os.path.join(tmp, "corpus.fasta")
        records = [FastaRecord(db.description(i), db.sequence_str(i))
                   for i in range(len(db))]
        with open(fasta_path, "w") as f:
            f.write(write_fasta(records))
        store_dir = os.path.join(tmp, "store")

        t0 = time.perf_counter()
        build_pack_store(fasta_path, store_dir, seqtype=db.seqtype,
                         n_fragments=4, word_size=params.word_size)
        build_s = time.perf_counter() - t0
        store_bytes = sum(
            os.path.getsize(os.path.join(store_dir, f))
            for f in os.listdir(store_dir))

        from repro.blast.scankernel import build_scan_structures

        base = 25 if db.seqtype == "aa" else 4

        def rebuild():
            with open(fasta_path) as f:
                fresh = SequenceDB.from_fasta_text(f.read(),
                                                   seqtype=db.seqtype)
            build_scan_structures(fresh, params.word_size, base)

        def cold_start():
            store = PackStore.open(store_dir)
            for pack in store.open_packs(verify=True):
                pack.close()

        cold_results = search_store(query, PackStore.open(store_dir),
                                    scheme, params)
        equivalent = _dump_results(cold_results) == serial_dump
        # Millisecond-scale timings: extra rounds are nearly free and
        # keep the gate's median out of scheduler noise on small CI
        # runners.
        dp_rounds = max(rounds, 7)
        rebuild_s = _time(rebuild, dp_rounds)
        cold_s = _time(cold_start, dp_rounds)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "build_s": build_s,
        "rebuild_from_fasta_s": rebuild_s,
        "cold_start_s": cold_s,
        "cold_over_rebuild": cold_s / rebuild_s,
        "store_bytes": store_bytes,
        "n_fragments": 4,
        "equivalent": equivalent,
    }


#: Acceptance ceiling: pack cold start must cost less than this
#: fraction of the rebuild-from-FASTA path it replaces.
DISKPACK_COLD_CEILING = 0.25

#: Acceptance floor: the two-pass batched gapped stage must beat the
#: scalar reference path by at least this factor on the protein corpus.
GAPPED_FLOOR = 1.5

#: Protein corpus size for the gapped-stage measurement.  Random
#: protein under blastp's neighbourhood seeding yields a dense stream
#: of trigger-passing, E-value-rejected candidates — the gapped-heavy
#: regime the two-pass pipeline exists for — and at this size the
#: scalar reference side still finishes in CI-friendly time.
GAPPED_AA_RESIDUES = 40_000

#: Acceptance floor: the batched multi-query kernel must beat N
#: sequential searches by at least this factor at 8 queries...
MULTI_QUERY_FLOOR = 1.5
#: ...but only on corpora at least this large: on tiny corpora the
#: per-hit gapped work (identical either way) dominates the database
#: pass the batch amortizes, so the ratio says nothing about the
#: kernel.
MULTI_QUERY_GATE_RESIDUES = 1_000_000


def measure_multi_query(db, scheme, params, rounds: int) -> dict:
    """Batched vs sequential multi-query search on warm structures.

    For each batch size, times N sequential ``search()`` calls against
    one ``search_batch()`` over the same queries (distinct extracts of
    the corpus, so hit volume is realistic), asserts the results match
    byte for byte, and reports aggregate scan throughput (residues x
    queries per second) plus the per-query latency the batch amortizes
    the database pass down to."""
    from repro.blast.alphabet import encode_dna
    from repro.blast.scankernel import ScanCache
    from repro.blast.search import search, search_batch
    from repro.workloads import extract_query

    cache = ScanCache()
    points = []
    for n in (8, 32):
        queries = [encode_dna(extract_query(db, length=568, seed=100 + i))
                   for i in range(n)]
        ids = [f"mq{i}" for i in range(n)]

        def sequential():
            return [search(q, db, scheme, params, query_id=ids[i],
                           engine="scan", scan_cache=cache)
                    for i, q in enumerate(queries)]

        def batched():
            return search_batch(queries, db, scheme, params,
                                query_ids=ids, scan_cache=cache)

        seq_res = sequential()     # also warms the scan structures
        bat_res = batched()
        equivalent = ([_dump_results(r) for r in seq_res]
                      == [_dump_results(r) for r in bat_res])
        seq_s = _time(sequential, rounds)
        bat_s = _time(batched, rounds)
        points.append({
            "n_queries": n,
            "sequential_s": seq_s,
            "batched_s": bat_s,
            "speedup": seq_s / bat_s,
            "aggregate_mbps": n * db.total_residues / bat_s / 1e6,
            "per_query_latency_s": bat_s / n,
            "equivalent": equivalent,
        })
    return {"floor": MULTI_QUERY_FLOOR,
            "gate_residues": MULTI_QUERY_GATE_RESIDUES,
            "points": points}


def measure_gapped(rounds: int,
                   aa_residues: int = GAPPED_AA_RESIDUES) -> dict:
    """Two-pass batched gapped stage vs the scalar reference path.

    The workload is a protein corpus searched with a noisy query (a
    corpus extract with every 9th residue mutated): blastp's
    neighbourhood seeding triggers gapped refinement all over the
    database, and nearly every candidate is an E-value reject — the
    exact population the bulk score-only pass culls before traceback.
    Stage time is read from the profile buckets (``gapped`` +
    ``gapped_bulk``), not end-to-end wall time, so the gate measures
    the stage it gates.  Results must match the scalar path byte for
    byte.
    """
    from dataclasses import replace

    from repro.blast.profile import profiled
    from repro.blast.score import ProteinScore
    from repro.blast.search import SearchParams, search
    from repro.workloads import synthetic_aa_db

    db = synthetic_aa_db(aa_residues, seed=7)
    query = db.sequence(1)[:350].copy()
    query[::9] = (query[::9] + 1) % 20
    scheme = ProteinScore()
    p_bulk = SearchParams(word_size=3)
    p_scalar = replace(p_bulk, gapped_bulk=False)

    def stage_time(params):
        samples, counters = [], {}
        for _ in range(rounds):
            with profiled("bench_gapped", enabled=True, emit=False) as prof:
                search(query, db, scheme, params, query_id="bench")
            samples.append(prof.stages.get("gapped", 0.0)
                           + prof.stages.get("gapped_bulk", 0.0))
            counters = {k: v for k, v in prof.counters.items()
                        if k.startswith("gapped")}
        return _median(samples), counters

    r_bulk = search(query, db, scheme, p_bulk, query_id="bench")
    r_scalar = search(query, db, scheme, p_scalar, query_id="bench")
    equivalent = _dump_results(r_bulk) == _dump_results(r_scalar)
    bulk_s, bulk_counters = stage_time(p_bulk)
    scalar_s, scalar_counters = stage_time(p_scalar)
    return {
        "floor": GAPPED_FLOOR,
        "corpus": {"residues": db.total_residues,
                   "n_sequences": len(db), "seqtype": "aa",
                   "query_len": int(len(query)), "seed": 7},
        "gapped_stage_bulk_s": bulk_s,
        "gapped_stage_scalar_s": scalar_s,
        "gapped_speedup": scalar_s / bulk_s if bulk_s else float("inf"),
        "counters_bulk": bulk_counters,
        "counters_scalar": scalar_counters,
        "equivalent": equivalent,
    }


def gapped_gate(result: dict) -> list:
    """Hard gate on the batched gapped stage (empty = pass): results
    must match the scalar reference path exactly and the stage speedup
    must reach the floor."""
    g = result.get("gapped")
    if not g:
        return []
    failures = []
    if not g.get("equivalent", True):
        failures.append("gapped: two-pass bulk results disagree with "
                        "the scalar reference path")
    sp = g.get("gapped_speedup", 0.0)
    if sp < g.get("floor", GAPPED_FLOOR):
        failures.append(
            f"gapped: bulk stage speedup is {sp:.2f}x < "
            f"{g.get('floor', GAPPED_FLOOR):.1f}x floor — the two-pass "
            f"pipeline is not paying for itself")
    return failures


def multi_query_gate(result: dict) -> list:
    """Hard gate on the batched kernel (empty = pass): results must
    match sequential searches exactly at every point, and at 8 queries
    on a gate-sized corpus the batch must reach the speedup floor."""
    mq = result.get("multi_query")
    if not mq:
        return []
    failures = []
    for e in mq.get("points", []):
        if not e.get("equivalent", True):
            failures.append(f"multi_query n={e['n_queries']}: batched "
                            f"results disagree with sequential searches")
    if result.get("corpus", {}).get("residues", 0) >= \
            mq.get("gate_residues", MULTI_QUERY_GATE_RESIDUES):
        pt8 = next((e for e in mq.get("points", [])
                    if e.get("n_queries") == 8), None)
        if pt8 and pt8["speedup"] < mq.get("floor", MULTI_QUERY_FLOOR):
            failures.append(
                f"multi_query: batched speedup at 8 queries is "
                f"{pt8['speedup']:.2f}x < {mq.get('floor'):.1f}x floor — "
                f"the batched kernel is not paying for itself")
    return failures


def diskpack_gate(result: dict) -> list:
    """Hard gate on the pack cold-start measurement (empty = pass)."""
    dp = result.get("diskpack")
    if not dp:
        return []
    failures = []
    if not dp.get("equivalent", True):
        failures.append("diskpack: cold-start or rebuild results disagree "
                        "with the in-RAM engine")
    ratio = dp.get("cold_over_rebuild", 0.0)
    if ratio >= DISKPACK_COLD_CEILING:
        failures.append(
            f"diskpack: cold start is {ratio:.1%} of a rebuild "
            f"(ceiling {DISKPACK_COLD_CEILING:.0%}) — the pack format is "
            f"not paying for itself")
    return failures


def measure_multinode(db, query, scheme, params, rounds: int,
                      serial_warm_s: float, serial_dump) -> dict:
    """The socket transport against the same corpus: two localhost node
    agents (:class:`repro.exec.NodeFleet`), swept at 1 and 2 nodes,
    remote-only.

    Loopback TCP is the *floor* of what the paper's real cluster
    interconnect costs, so the point of the section is not a speedup
    gate (a remote-only loopback run also pays frame pickling the local
    shm arena avoids) but the trend of the two costs the multi-node
    design actually controls: per-run search time as nodes are added,
    and pack bytes on the wire.  The sweep itself demonstrates
    ship-once: the 1-node point cold-ships every pack to node 0, the
    2-node point finds node 0 already holding them (``bytes_saved``)
    and ships only to node 1, and the final fresh-master connection
    adopts everything — ``reship_bytes`` must be 0.  Runners without
    enough cores for two agents plus the master record an annotated
    skip, never a meaningless number."""
    cpu = os.cpu_count() or 1
    if cpu < 3:
        return {"skipped": f"requires >= 3 cores for 2 node agents "
                           f"+ the master (cpu_count={cpu})"}
    from repro.exec import ExecPool
    from repro.exec.nodes import NodeFleet

    points = []
    with NodeFleet(2) as fleet:
        for n_nodes in (1, 2):
            with ExecPool(jobs=0, nodes=fleet.addresses[:n_nodes],
                          replication=min(2, n_nodes)) as pool:
                first = pool.search(query, db, scheme, params)
                equivalent = _dump_results(first) == serial_dump
                par_s = _time(lambda: pool.search(query, db, scheme,
                                                  params), rounds)
                ship = pool.node_ship_stats()
                points.append({
                    "n_nodes": n_nodes,
                    "search_s": par_s,
                    "mbps": db.total_residues / par_s / 1e6,
                    "speedup_over_serial": serial_warm_s / par_s,
                    "bytes_shipped": sum(s["bytes_shipped"] for s in ship),
                    "bytes_saved": sum(s["bytes_saved"] for s in ship),
                    "equivalent": equivalent,
                })
        # A fresh master against the warm fleet: every pack is adopted
        # by identity — the reconnect path ships ~0 bytes.
        with ExecPool(jobs=0, nodes=fleet.addresses,
                      replication=2) as pool:
            t0 = time.perf_counter()
            fresh = pool.search(query, db, scheme, params)
            warm_connect_s = time.perf_counter() - t0
            ship = pool.node_ship_stats()
            warm = {
                "search_s": warm_connect_s,
                "reship_bytes": sum(s["bytes_shipped"] for s in ship),
                "adopted_bytes_saved": sum(s["bytes_saved"] for s in ship),
                "equivalent": _dump_results(fresh) == serial_dump,
            }
    return {"n_fragments_shipped": None, "points": points,
            "warm_reconnect": warm}


def multinode_gate(result: dict) -> list:
    """Hard gate on the multi-node section (empty = pass): every
    measured point must match the serial engine exactly, and a fresh
    master against a warm fleet must adopt instead of re-shipping."""
    mn = result.get("multinode")
    if not mn or mn.get("skipped"):
        return []
    failures = []
    for e in mn.get("points", []):
        if not e.get("equivalent", True):
            failures.append(f"multinode n_nodes={e['n_nodes']}: remote "
                            f"results disagree with the serial engine")
    warm = mn.get("warm_reconnect") or {}
    if not warm.get("equivalent", True):
        failures.append("multinode: warm-reconnect results disagree with "
                        "the serial engine")
    if warm.get("reship_bytes", 0) != 0:
        failures.append(
            f"multinode: fresh master re-shipped "
            f"{warm['reship_bytes']} pack bytes to a warm fleet — the "
            f"identity cache (ship-once) is not working")
    return failures


def sweep_jobs(max_jobs: int) -> list:
    """Worker counts to sweep: powers of two up to *max_jobs*, plus
    *max_jobs* itself (so ``--jobs 6`` measures 2, 4, 6)."""
    pts = {j for j in (2 ** i for i in range(1, 11)) if j <= max_jobs}
    if max_jobs > 1:
        pts.add(max_jobs)
    return sorted(pts)


def measure_parallel_sweep(db, query, scheme, params, max_jobs: int,
                           rounds: int, serial_warm_s: float,
                           serial_dump) -> list:
    """One entry per sweep point.  Points beyond the machine's core
    count are *recorded as skips*, not measured: oversubscribed workers
    time-slice one core, so the number would be meaningless noise — and
    on a 1-core machine it reads as a parallel regression that isn't
    one (the gate must not misfire there)."""
    cpu = os.cpu_count() or 1
    entries = []
    for j in sweep_jobs(max_jobs):
        if j > cpu:
            entries.append({
                "jobs": j,
                "skipped": f"requires >= {j} cores (cpu_count={cpu})",
            })
            continue
        entries.append(measure_parallel(db, query, scheme, params, j,
                                        rounds, serial_warm_s, serial_dump))
    return entries


def parallel_gate(result: dict) -> list:
    """Hard acceptance gate: every *measured* sweep point with
    ``jobs >= 2`` must beat serial (speedup >= 1.0) and match its
    results exactly.  Returns the list of failure messages (empty =
    pass); skipped points never fail the gate."""
    failures = []
    for e in result.get("parallel_sweep") or []:
        if e.get("skipped") or e.get("jobs", 0) < 2:
            continue
        if not e.get("equivalent", True):
            failures.append(f"jobs={e['jobs']}: parallel pool disagrees "
                            f"with the serial engine")
        speedup = e.get("speedup_over_serial", 0.0)
        if speedup < 1.0:
            failures.append(f"jobs={e['jobs']}: speedup over serial is "
                            f"{speedup:.2f}x < 1.0x — the pool is slower "
                            f"than not using it")
    return failures


def run_benchmarks(residues: int, rounds: int,
                   jobs: int = 0) -> dict:
    from repro.blast.alphabet import encode_dna
    from repro.blast.kmer import WordIndex
    from repro.blast.scankernel import (ScanCache, build_scan_structures,
                                        scan_fragment)
    from repro.blast.score import NucleotideScore
    from repro.blast.search import SearchParams, search
    from repro.workloads import extract_query, synthetic_nt_db

    db = synthetic_nt_db(residues, seed=0)
    query = encode_dna(extract_query(db, length=568, seed=1))
    scheme = NucleotideScore()
    params = SearchParams()
    cache = ScanCache()

    # Equivalence smoke: the kernel must reproduce the loop exactly.
    r_scan = search(query, db, scheme, params, engine="scan",
                    scan_cache=cache)
    r_loop = search(query, db, scheme, params, engine="loop")
    equivalent = _dump_results(r_scan) == _dump_results(r_loop)

    # Stage timings.
    k, base = params.word_size, 4
    pack_s = _time(lambda: build_scan_structures(db, k, base), rounds)
    structs = build_scan_structures(db, k, base)
    index_s = _time(lambda: WordIndex.for_dna(query, k), rounds)
    index = WordIndex.for_dna(query, k)
    scan_s = _time(lambda: scan_fragment(index, structs), rounds)

    # End-to-end searches.
    def cold():
        cache.clear()
        search(query, db, scheme, params, engine="scan", scan_cache=cache)

    def warm():
        search(query, db, scheme, params, engine="scan", scan_cache=cache)

    cold_s = _time(cold, rounds)
    warm()  # ensure the cache is populated before warm timing
    warm_s = _time(warm, rounds)
    loop_s = _time(lambda: search(query, db, scheme, params, engine="loop"),
                   rounds)

    # Per-stage profile of one warm search on the benchmark corpus —
    # the REPRO_PROFILE=1 view, recorded so future PRs can read stage
    # shares (where the milliseconds actually go) instead of only
    # end-to-end MB/s.
    from repro.blast.profile import profiled

    with profiled("bench_profile", enabled=True, emit=False) as prof:
        search(query, db, scheme, params, engine="scan", scan_cache=cache)
    profile = {"stages": {k: round(v, 6) for k, v in prof.stages.items()},
               "counters": dict(prof.counters)}

    diskpack = measure_diskpack(db, query, scheme, params, rounds,
                                _dump_results(r_scan))
    multi_query = measure_multi_query(db, scheme, params, rounds)
    gapped = measure_gapped(rounds)
    multinode = measure_multinode(db, query, scheme, params, rounds,
                                  warm_s, _dump_results(r_scan))

    parallel = None
    parallel_sweep = None
    if jobs and jobs > 1:
        parallel_sweep = measure_parallel_sweep(
            db, query, scheme, params, jobs, rounds, warm_s,
            _dump_results(r_scan))
        # Headline "parallel" entry: the widest point that actually ran,
        # else the widest skip (so a 1-core runner records *why* there
        # is no number instead of a misleading 0.x speedup).
        measured = [e for e in parallel_sweep if not e.get("skipped")]
        parallel = measured[-1] if measured else parallel_sweep[-1]

    return {
        "schema": 5,
        "corpus": {"residues": db.total_residues,
                   "n_sequences": len(db),
                   "query_len": int(len(query)),
                   "seed": 0},
        "rounds": rounds,
        "machine": machine_info(),
        "throughput_mbps": db.total_residues / warm_s / 1e6,
        "loop_mbps": db.total_residues / loop_s / 1e6,
        "speedup_kernel_over_loop": loop_s / warm_s,
        "warm_over_cold": cold_s / warm_s,
        "stages": {
            "pack_s": pack_s,
            "index_s": index_s,
            "scan_s": scan_s,
            "search_cold_s": cold_s,
            "search_warm_s": warm_s,
            "search_loop_s": loop_s,
        },
        "profile": profile,
        "diskpack": diskpack,
        "multi_query": multi_query,
        "gapped": gapped,
        "multinode": multinode,
        "parallel": parallel,
        "parallel_sweep": parallel_sweep,
        "equivalent": equivalent,
    }


def _history_entry(result: dict) -> dict:
    """Compact per-run record appended to the JSON's ``history`` list."""
    entry = {
        "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "commit": git_commit(),
        "throughput_mbps": result["throughput_mbps"],
        "speedup_kernel_over_loop": result["speedup_kernel_over_loop"],
        "cpu_count": result["machine"]["cpu_count"],
    }
    par = result.get("parallel")
    if par:
        entry["parallel_jobs"] = par["jobs"]
        if par.get("skipped"):
            entry["parallel_skipped"] = par["skipped"]
        else:
            entry["parallel_speedup"] = par["speedup_over_serial"]
    dp = result.get("diskpack")
    if dp:
        entry["diskpack_cold_over_rebuild"] = dp["cold_over_rebuild"]
    mq8 = next((e for e in (result.get("multi_query") or {})
                .get("points", []) if e.get("n_queries") == 8), None)
    if mq8:
        entry["multi_query_speedup_8"] = mq8["speedup"]
    g = result.get("gapped")
    if g:
        entry["gapped_speedup"] = g["gapped_speedup"]
    mn = result.get("multinode")
    if mn:
        if mn.get("skipped"):
            entry["multinode_skipped"] = mn["skipped"]
        else:
            pt2 = next((e for e in mn.get("points", [])
                        if e.get("n_nodes") == 2), None)
            if pt2:
                entry["multinode_speedup_2"] = pt2["speedup_over_serial"]
            entry["multinode_reship_bytes"] = \
                (mn.get("warm_reconnect") or {}).get("reship_bytes")
    return entry


def write_out(result: dict, path: str) -> None:
    """Write the run to *path*, carrying the existing file's history
    forward and appending this run — trends survive regeneration.
    Re-running at the same commit *replaces* that commit's entry
    instead of stacking duplicates (iterating on a branch would
    otherwise fill the history with copies of one data point)."""
    history = []
    if os.path.exists(path):
        try:
            with open(path) as f:
                history = json.load(f).get("history", [])
        except (OSError, ValueError):
            history = []
    entry = _history_entry(result)
    if entry.get("commit") is not None:
        history = [h for h in history if h.get("commit") != entry["commit"]]
    result = dict(result)
    result["history"] = history + [entry]
    with open(path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")


def check_against(current: dict, baseline_path: str, tolerance: float) -> int:
    with open(baseline_path) as f:
        baseline = json.load(f)
    if baseline.get("corpus") != current.get("corpus"):
        # The kernel-over-loop ratio shifts with corpus shape (smaller
        # corpora flatter the loop), so a cross-corpus comparison can
        # only catch gross regressions: double the allowed drop instead
        # of pretending the numbers are commensurable.
        tolerance = min(0.9, tolerance * 2)
        print("WARNING: corpus differs from baseline; the speedup ratio "
              "shifts with corpus shape, so the comparison is loose and "
              f"tolerance is widened to {tolerance:.0%} "
              f"(baseline {baseline.get('corpus')}, "
              f"current {current.get('corpus')})")
    base_ratio = baseline["speedup_kernel_over_loop"]
    cur_ratio = current["speedup_kernel_over_loop"]
    floor = (1.0 - tolerance) * base_ratio
    print(f"kernel-over-loop speedup: current {cur_ratio:.2f}x, "
          f"baseline {base_ratio:.2f}x, floor {floor:.2f}x "
          f"(tolerance {tolerance:.0%})")
    ok = True
    if not current["equivalent"]:
        print("FAIL: scan and loop engines disagree on SearchResults")
        ok = False
    if cur_ratio < floor:
        print("FAIL: kernel speedup regressed past tolerance")
        ok = False
    # Parallel speedup trend: compared only when both sides actually
    # measured it (same machine class implied by the corpus warning
    # above); a skipped/absent side is not a regression.
    base_par = baseline.get("parallel") or {}
    cur_par = current.get("parallel") or {}
    if ("speedup_over_serial" in base_par
            and "speedup_over_serial" in cur_par):
        base_sp = base_par["speedup_over_serial"]
        cur_sp = cur_par["speedup_over_serial"]
        par_floor = (1.0 - tolerance) * base_sp
        print(f"parallel speedup (jobs={cur_par.get('jobs')}): current "
              f"{cur_sp:.2f}x, baseline {base_sp:.2f}x, floor "
              f"{par_floor:.2f}x")
        if cur_sp < par_floor:
            print("FAIL: parallel speedup regressed past tolerance")
            ok = False
    cur_dp = current.get("diskpack") or {}
    if "cold_over_rebuild" in cur_dp:
        print(f"diskpack cold start: {cur_dp['cold_start_s']*1e3:.1f} ms, "
              f"{cur_dp['cold_over_rebuild']:.1%} of a "
              f"{cur_dp['rebuild_from_fasta_s']*1e3:.1f} ms rebuild "
              f"(ceiling {DISKPACK_COLD_CEILING:.0%})")
    # Multi-query batched speedup trend: like the parallel trend, only
    # compared when both sides measured the 8-query point.
    def _mq8(doc):
        return next((e for e in (doc.get("multi_query") or {})
                     .get("points", []) if e.get("n_queries") == 8), None)
    base_mq8, cur_mq8 = _mq8(baseline), _mq8(current)
    if base_mq8 and cur_mq8:
        mq_floor = (1.0 - tolerance) * base_mq8["speedup"]
        print(f"multi-query batched speedup (8 queries): current "
              f"{cur_mq8['speedup']:.2f}x, baseline "
              f"{base_mq8['speedup']:.2f}x, floor {mq_floor:.2f}x")
        if cur_mq8["speedup"] < mq_floor:
            print("FAIL: multi-query batched speedup regressed past "
                  "tolerance")
            ok = False
    # Gapped-stage speedup trend: same shape as the multi-query trend —
    # only compared when both sides measured it (same fixed protein
    # corpus on both sides, so no cross-corpus caveat applies).
    base_g = baseline.get("gapped") or {}
    cur_g = current.get("gapped") or {}
    if "gapped_speedup" in base_g and "gapped_speedup" in cur_g:
        g_floor = (1.0 - tolerance) * base_g["gapped_speedup"]
        print(f"gapped-stage bulk speedup: current "
              f"{cur_g['gapped_speedup']:.2f}x, baseline "
              f"{base_g['gapped_speedup']:.2f}x, floor {g_floor:.2f}x")
        if cur_g["gapped_speedup"] < g_floor:
            print("FAIL: gapped-stage bulk speedup regressed past "
                  "tolerance")
            ok = False
    cur_mn = current.get("multinode") or {}
    if cur_mn.get("skipped"):
        print(f"multinode: skipped ({cur_mn['skipped']})")
    elif cur_mn.get("points"):
        for e in cur_mn["points"]:
            print(f"multinode n_nodes={e['n_nodes']}: "
                  f"{e['speedup_over_serial']:.2f}x vs serial, "
                  f"{e['bytes_shipped']} B shipped / "
                  f"{e['bytes_saved']} B saved")
        warm = cur_mn.get("warm_reconnect") or {}
        print(f"multinode warm reconnect: {warm.get('reship_bytes')} B "
              f"re-shipped, {warm.get('adopted_bytes_saved')} B adopted")
    for msg in (parallel_gate(current) + diskpack_gate(current)
                + multi_query_gate(current) + gapped_gate(current)
                + multinode_gate(current)):
        print(f"FAIL: {msg}")
        ok = False
    if ok:
        print("OK: engine performance within tolerance of baseline")
    return 0 if ok else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--residues", type=int, default=1_000_000,
                    help="corpus size in residues (default 1M)")
    ap.add_argument("--rounds", type=int, default=ROUNDS_DEFAULT,
                    help="timing rounds per measurement; median is kept "
                         f"(clamped to >= {ROUNDS_MIN})")
    ap.add_argument("--jobs", type=int, default=0,
                    help="also benchmark the multi-core pool with this "
                         "many workers (0 = skip)")
    ap.add_argument("--out", default=None,
                    help="write BENCH_blast.json here")
    ap.add_argument("--check", default=None, metavar="BASELINE",
                    help="compare against a committed BENCH_blast.json; "
                         "exit 1 on regression past --tolerance")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop of the kernel-over-loop "
                         "speedup vs the baseline (default 0.30)")
    args = ap.parse_args(argv)

    rounds = max(ROUNDS_MIN, args.rounds)
    result = run_benchmarks(args.residues, rounds, jobs=args.jobs)
    print(json.dumps(result, indent=2))
    if args.out:
        write_out(result, args.out)
        print(f"[written to {args.out}]")
    if args.check:
        return check_against(result, args.check, args.tolerance)
    if not result["equivalent"]:
        print("FAIL: scan and loop engines disagree on SearchResults")
        return 1
    failures = (parallel_gate(result) + diskpack_gate(result)
                + multi_query_gate(result) + gapped_gate(result)
                + multinode_gate(result))
    for msg in failures:
        print(f"FAIL: {msg}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
