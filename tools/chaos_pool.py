#!/usr/bin/env python3
"""Chaos sweep for the real execution pool.

Runs the hardened :class:`repro.exec.ExecPool` under a battery of
seeded random fault plans (kill / hang / slow / drop-result — see
``repro.exec.faults.random_plan``) and checks, for every seed, the
paper's "keeps serving" contract:

* ``search_many`` output stays **byte-identical** to the serial scan
  engine (degraded serial fallback counts — same bytes by design);
* the pool ends the sweep at **full configured capacity** (respawn
  recovered every injected crash);
* the failure ledger contains **zero anomalies** (events the hardened
  pool must never produce);
* no ``repro_``/``psm_`` shared-memory segment survives in /dev/shm.

Any violation prints the offending seed (replay with
``--seed N --verbose``) and the tool exits non-zero, so CI can run it
as a smoke gate::

    PYTHONPATH=src python tools/chaos_pool.py               # 8 seeds
    PYTHONPATH=src python tools/chaos_pool.py --seeds 25
    PYTHONPATH=src python tools/chaos_pool.py --seed 7 --verbose

``--transport socket`` runs the same contract over the multi-node
runtime instead: two localhost :class:`repro.exec.NodeFleet` agents
serve the pool over framed TCP, the seeded plans draw from the network
fault kinds too (disconnect / partition / delay / reorder), and every
fragment is mirrored onto both nodes so an agent killed mid-job is
served by its mirror.  Between batches the fleet respawns any dead
agent healthy, so the post-recovery batch also proves reconnect (and
the ship-once pack cache) rather than a lucky survivor.
"""

import argparse
import dataclasses
import os
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

JOBS = 2
N_NODES = 2
N_FRAGMENTS = 4
N_QUERIES = 3


def shm_segments():
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith(("psm_", "repro_")))
    except FileNotFoundError:  # non-Linux
        return []


def dump(results):
    """Byte-level result fingerprint (every HSP field, order, ids)."""
    return (results.query_id, results.query_len, results.db_residues,
            results.db_sequences,
            [(h.subject_id, h.description, h.subject_len, h.fragment_id,
              [dataclasses.astuple(p) for p in h.hsps])
             for h in results.hits])


def build_workload():
    import numpy as np

    from repro.blast.score import NucleotideScore
    from repro.blast.search import SearchParams, search
    from repro.blast.seqdb import NT, SequenceDB

    rng = np.random.default_rng(2024)
    db = SequenceDB(NT)
    letters = np.array(list("ACGT"))
    for i in range(24):
        length = int(rng.integers(100, 300))
        db.add(f"s{i}", "".join(letters[rng.integers(0, 4, length)]))
    scheme = NucleotideScore()
    params = SearchParams(word_size=11)
    queries = [db.sequence(i)[:150].copy() for i in (2, 9, 17)][:N_QUERIES]
    serial = [dump(search(q, db, scheme, params)) for q in queries]
    return db, scheme, params, queries, serial


def run_seed_socket(seed, workload, verbose=False):
    """One sweep iteration over the socket transport (two localhost
    node agents, mirrored fragments); returns violation strings."""
    import warnings

    from repro.exec import ExecPool, random_plan
    from repro.exec.faults import NET_FAULT_KINDS
    from repro.exec.nodes import NodeFleet

    db, scheme, params, queries, serial = workload
    # The recoverable vocabulary plus every network kind; corrupt_pack
    # stays out, as in the pipe sweep — a corrupted pack is a *fatal*
    # integrity stop (exit 4) by design, not a survivable fault.  Each
    # agent gets its own plan (rank-blind selectors would fire on both
    # mirrors at once and defeat the survival test).
    kinds = ("kill", "hang", "slow", "drop_result", *sorted(NET_FAULT_KINDS))
    plans = [random_plan(seed * 2 + i, n_workers=1, kinds=kinds,
                         slow_delay=0.5)
             for i in range(N_NODES)]
    violations = []
    with NodeFleet(N_NODES, plans=plans, task_sleep=0.05) as fleet:
        with ExecPool(jobs=0, nodes=fleet.addresses, replication=2,
                      heartbeat=0.1, hedge_after=0.3, task_timeout=2.0,
                      node_timeout=1.0, task_granularity=1) as pool:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                results = pool.search_many(queries, db, scheme, params,
                                           n_fragments=N_FRAGMENTS)
            got = [dump(r) for r in results]
            if got != serial:
                violations.append("results diverged from the serial engine")
                pool.ledger.record("result_mismatch", detail=f"seed {seed}")
            # Respawn the whole fleet healthy (no plans): unlike a
            # local pipe worker the pool cannot re-fork a remote agent,
            # only re-dial it, so recovery from an agent death is the
            # supervisor's move.  Respawning the survivors too discards
            # any still-armed late fault (a once-fault with a high
            # task_index would otherwise fire *inside* the recovery
            # batch and fail the capacity check by construction).
            for i in range(N_NODES):
                fleet.respawn(i, fault_plan=None)
            second = pool.search_many(queries, db, scheme, params,
                                      n_fragments=N_FRAGMENTS)
            if [dump(r) for r in second] != serial:
                violations.append("post-recovery results diverged")
            live = sum(1 for w in pool._workers if w.alive)
            if live != N_NODES:
                violations.append(
                    f"capacity not restored: {live}/{N_NODES} nodes live")
            anomalies = pool.ledger.anomalies()
            if anomalies:
                violations.append(f"{anomalies} ledger anomaly entries")
            summary = pool.ledger.summary()
            ship = pool.node_ship_stats()
    if verbose:
        for i, plan in enumerate(plans):
            print(f"  node {i} plan: {plan.to_json()}")
        print(f"  ledger: {summary}")
        print(f"  ship: {ship}")
    return violations


def run_seed(seed, workload, verbose=False):
    """One sweep iteration; returns a list of violation strings."""
    import warnings

    from repro.exec import ExecPool, random_plan

    db, scheme, params, queries, serial = workload
    plan = random_plan(seed, n_workers=JOBS)
    violations = []
    # granularity=1 pins the legacy one-task-per-fragment protocol so a
    # seeded plan's task_index selectors keep meaning the same event.
    with ExecPool(jobs=JOBS, fault_plan=plan, task_sleep=0.05,
                  hedge_after=0.3, task_timeout=1.5,
                  task_granularity=1) as pool:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            results = pool.search_many(queries, db, scheme, params,
                                       n_fragments=N_FRAGMENTS)
        got = [dump(r) for r in results]
        if got != serial:
            violations.append("results diverged from the serial engine")
            pool.ledger.record("result_mismatch", detail=f"seed {seed}")
        # A second, fault-free batch must run at restored capacity.
        second = pool.search_many(queries, db, scheme, params,
                                  n_fragments=N_FRAGMENTS)
        if [dump(r) for r in second] != serial:
            violations.append("post-recovery results diverged")
        live = sum(1 for w in pool._workers if w.alive)
        if live != JOBS:
            violations.append(
                f"capacity not restored: {live}/{JOBS} workers live")
        anomalies = pool.ledger.anomalies()
        if anomalies:
            violations.append(f"{anomalies} ledger anomaly entries")
        summary = pool.ledger.summary()
    if verbose:
        print(f"  plan: {plan.to_json()}")
        print(f"  ledger: {summary}")
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seeds", type=int, default=8,
                        help="number of random plans to sweep (default 8)")
    parser.add_argument("--seed", type=int, default=None,
                        help="replay a single seed")
    parser.add_argument("--verbose", action="store_true",
                        help="print each seed's plan and ledger summary")
    parser.add_argument("--transport", choices=["pipe", "socket"],
                        default="pipe",
                        help="pipe = local fork workers (default); "
                             "socket = two localhost node agents over "
                             "framed TCP with mirrored fragments")
    args = parser.parse_args(argv)
    sweep = run_seed if args.transport == "pipe" else run_seed_socket

    before = shm_segments()
    workload = build_workload()
    seeds = [args.seed] if args.seed is not None else list(range(args.seeds))
    failed = 0
    for seed in seeds:
        t0 = time.time()
        violations = sweep(seed, workload, verbose=args.verbose)
        status = "ok" if not violations else "FAIL"
        print(f"{status} seed={seed} ({time.time() - t0:.2f}s)")
        for v in violations:
            failed += 1
            print(f"     {v}  [replay: --seed {seed} --verbose]")
    leaked = [s for s in shm_segments() if s not in before]
    if leaked:
        failed += 1
        print(f"FAIL leaked shared-memory segments: {leaked}")
    if failed:
        print(f"{failed} violation(s) across {len(seeds)} seed(s)")
        return 1
    print(f"all {len(seeds)} seed(s) clean: byte-identical results, "
          f"capacity restored, no anomalies, no leaks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
