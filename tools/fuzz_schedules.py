#!/usr/bin/env python3
"""Run the schedule-perturbation battery from the command line.

Replays every scenario in the battery (the protocol-level failure
scenarios from ``tests/test_schedule_fuzz.py`` plus scaled
experiment-pipeline runs) under N perturbation seeds with strict
invariant checking, and reports the first divergent seed so it can be
replayed with ``REPRO_TIE_BREAK_SEED=<seed>``::

    PYTHONPATH=src python tools/fuzz_schedules.py            # 25 seeds
    PYTHONPATH=src python tools/fuzz_schedules.py --seeds 100
    PYTHONPATH=src python tools/fuzz_schedules.py --list
"""

import argparse
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "tests"))


def battery():
    """(name, scenario) pairs: protocol scenarios + experiment runs."""
    import test_schedule_fuzz as tsf
    from repro.core.experiment import (
        ExperimentConfig, Placement, Variant, run_experiment)
    from repro.sim.fuzz import job_fingerprint

    def experiment(variant, **kw):
        def run():
            cfg = ExperimentConfig(variant=variant, **kw).scaled(1 / 100)
            return job_fingerprint(run_experiment(cfg).job)
        return run

    scenarios = [(fn.__name__, fn) for fn in tsf.BATTERY]
    scenarios += [
        ("experiment_pvfs_w4_s4",
         experiment(Variant.PVFS, n_workers=4, n_servers=4)),
        ("experiment_ceft_w3_s8_dedicated",
         experiment(Variant.CEFT_PVFS, n_workers=3, n_servers=8,
                    placement=Placement.DEDICATED)),
    ]
    return scenarios


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seeds", type=int, default=25,
                        help="perturbation seeds per scenario (default 25)")
    parser.add_argument("--only", metavar="NAME",
                        help="run a single scenario by name")
    parser.add_argument("--list", action="store_true",
                        help="list scenario names and exit")
    args = parser.parse_args(argv)

    from repro.sim.fuzz import ScheduleFuzzer

    scenarios = battery()
    if args.list:
        for name, _ in scenarios:
            print(name)
        return 0
    if args.only:
        scenarios = [(n, f) for n, f in scenarios if n == args.only]
        if not scenarios:
            parser.error(f"unknown scenario {args.only!r} (see --list)")

    failed = 0
    for name, scenario in scenarios:
        t0 = time.time()
        try:
            report = ScheduleFuzzer(scenario, seeds=range(args.seeds)).run()
        except Exception as exc:  # divergence or invariant violation
            failed += 1
            print(f"FAIL {name}: {exc}")
            print(f"     replay with REPRO_TIE_BREAK_SEED and "
                  f"REPRO_STRICT_INVARIANTS=1")
            continue
        print(f"ok   {name}: {len(report.seeds_passed)} seeds, "
              f"{time.time() - t0:.1f}s")
    if failed:
        print(f"{failed}/{len(scenarios)} scenario(s) diverged")
        return 1
    print(f"all {len(scenarios)} scenarios stable under "
          f"{args.seeds} perturbed schedules")
    return 0


if __name__ == "__main__":
    sys.exit(main())
