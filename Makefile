# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench examples reproduce figures clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick pass over every runnable example.
examples:
	@for e in examples/*.py; do \
		echo "== $$e =="; \
		$(PYTHON) $$e || exit 1; \
	done

# Regenerate every paper artefact at reduced scale (fast sanity pass).
figures:
	$(PYTHON) examples/reproduce_paper.py 0.1

# The full-scale regeneration with paper-vs-measured assertions.
reproduce: bench
	@echo "Rendered artefacts:"
	@ls benchmarks/results/

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
