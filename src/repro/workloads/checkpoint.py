"""Checkpoint workloads (the paper's related work, ref [24]).

Ross et al. studied FLASH astrophysics I/O on Linux clusters — write-
only checkpoint and plotfile phases, the mirror image of BLAST's
read-dominated pattern.  This generator reproduces that shape so the
write paths (PVFS striping, CEFT duplexing protocols, NFS) can be
exercised under a realistic scientific workload, not just
microbenchmarks.

A checkpoint phase: every process writes its slab of the global state
to a shared file (striped FS) or its own file, roughly simultaneously —
the bursty, aligned, large-write pattern parallel file systems were
built for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

from repro.sim import AllOf

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.parallel.ioadapters import WorkerIO


@dataclass(frozen=True)
class CheckpointSpec:
    """One application's checkpointing behaviour."""

    #: Number of writer processes.
    n_processes: int
    #: Bytes each process writes per checkpoint.
    bytes_per_process: int
    #: Simulated compute time between checkpoints.
    compute_between: float
    #: Number of checkpoint phases.
    n_checkpoints: int
    #: One shared striped file (True) or a file per process (False).
    shared_file: bool = True

    @property
    def total_bytes(self) -> int:
        return self.n_processes * self.bytes_per_process * self.n_checkpoints


def run_checkpoint_workload(nodes: Sequence["Node"],
                            ios: Sequence["WorkerIO"],
                            spec: CheckpointSpec,
                            time_limit: float = 1e9) -> dict:
    """Run the workload; returns totals.

    ``nodes[i]``/``ios[i]`` host process i (round-robin if
    ``spec.n_processes`` exceeds the node count).  Returns a dict with
    the makespan, pure write time (sum over the slowest process), and
    effective aggregate write bandwidth during checkpoint phases.
    """
    if not nodes or len(nodes) != len(ios):
        raise ValueError("need matching nodes and ios")
    sim = nodes[0].sim
    write_times: List[float] = []

    # Pre-create the files.
    if spec.shared_file:
        ios[0].ensure_file("checkpoint.dat",
                           spec.n_processes * spec.bytes_per_process)
    else:
        for p in range(spec.n_processes):
            ios[p % len(ios)].ensure_file(f"checkpoint.{p:04d}", 0)

    def process(pid: int):
        node = nodes[pid % len(nodes)]
        io = ios[pid % len(ios)]
        io_total = 0.0
        for ck in range(spec.n_checkpoints):
            yield node.cpu.consume(spec.compute_between)
            t0 = sim.now
            if spec.shared_file:
                offset = pid * spec.bytes_per_process
                yield from io.write("checkpoint.dat", offset,
                                    spec.bytes_per_process)
            else:
                yield from io.write(f"checkpoint.{pid:04d}",
                                    ck * spec.bytes_per_process,
                                    spec.bytes_per_process)
            io_total += sim.now - t0
        write_times.append(io_total)

    start = sim.now
    procs = [sim.process(process(p)) for p in range(spec.n_processes)]
    sim.run_until_complete(*procs, limit=time_limit)
    makespan = sim.now - start
    write_time = max(write_times) if write_times else 0.0
    compute = spec.n_checkpoints * spec.compute_between
    return {
        "makespan": makespan,
        "write_time_max": write_time,
        "write_fraction": write_time / makespan if makespan else 0.0,
        "aggregate_write_mb_s": (spec.total_bytes / 1e6
                                 / max(makespan - compute, 1e-9)),
    }
