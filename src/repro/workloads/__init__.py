"""Workload generation: synthetic nt-like databases and query sampling.

The NCBI ``nt`` database used by the paper (1.76 M sequences, 2.7 GB)
is neither redistributable nor practical to regenerate byte-for-byte;
these generators produce nucleotide databases with the same aggregate
shape (sequence-length distribution, residue totals) at any scale, plus
the paper's query model (90 % of real queries are 300–600 characters;
the paper uses a 568-character query from ``ecoli.nt``).
"""

from repro.workloads.synthdb import (
    NT_DATABASE_SPEC,
    DatabaseSpec,
    synthetic_aa_db,
    synthetic_nt_db,
    synthetic_nt_fasta,
)
from repro.workloads.checkpoint import CheckpointSpec, run_checkpoint_workload
from repro.workloads.queries import (
    PAPER_QUERY_LENGTH,
    extract_query,
    sample_query_length,
    synthetic_query,
)

__all__ = [
    "CheckpointSpec",
    "DatabaseSpec",
    "NT_DATABASE_SPEC",
    "PAPER_QUERY_LENGTH",
    "run_checkpoint_workload",
    "extract_query",
    "sample_query_length",
    "synthetic_aa_db",
    "synthetic_nt_db",
    "synthetic_nt_fasta",
    "synthetic_query",
]
