"""Synthetic sequence databases shaped like NCBI ``nt`` and ``nr``.

The paper's nt snapshot: 1.76 million sequences, 2.7 GB total — a mean
sequence length of ~1530 bases.  Real nt lengths are heavy-tailed; a
log-normal with sigma ≈ 1.1 reproduces the qualitative shape (many
short ESTs, few chromosome-scale monsters).  The protein counterpart
(:func:`synthetic_aa_db`) mirrors nr's ~350-residue mean — protein
searches are the gapped-heavy workload the benchmark suite uses to
exercise the refinement stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.blast.seqdb import SequenceDB

GB = 1_000_000_000


@dataclass(frozen=True)
class DatabaseSpec:
    """Aggregate description of a database, real or virtual.

    ``total_bytes`` is the on-disk footprint the I/O subsystem sees
    (the paper quotes the 2.7 GB raw size, which is what gets copied
    or striped); ``total_residues`` is the search workload.
    """

    n_sequences: int
    total_residues: int
    total_bytes: int
    name: str = "nt"

    @property
    def mean_length(self) -> float:
        return self.total_residues / self.n_sequences

    def scaled(self, factor: float, name: Optional[str] = None) -> "DatabaseSpec":
        """A proportionally smaller (or larger) database."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return DatabaseSpec(
            n_sequences=max(1, int(self.n_sequences * factor)),
            total_residues=max(1, int(self.total_residues * factor)),
            total_bytes=max(1, int(self.total_bytes * factor)),
            name=name or f"{self.name}@{factor:g}",
        )

    def fragment_bytes(self, n_fragments: int) -> List[int]:
        """On-disk size of each of ``n_fragments`` balanced fragments."""
        if n_fragments < 1:
            raise ValueError("n_fragments must be >= 1")
        base, rem = divmod(self.total_bytes, n_fragments)
        return [base + (1 if i < rem else 0) for i in range(n_fragments)]

    def fragment_residues(self, n_fragments: int) -> List[int]:
        base, rem = divmod(self.total_residues, n_fragments)
        return [base + (1 if i < rem else 0) for i in range(n_fragments)]


#: The nt snapshot of the paper (Section 4.1): 1.76 M sequences, 2.7 GB.
NT_DATABASE_SPEC = DatabaseSpec(
    n_sequences=1_760_000,
    total_residues=2_580_000_000,   # ~2.58 G bases in a 2.7 GB FASTA
    total_bytes=2_700_000_000,
    name="nt",
)

_BASES = np.frombuffer(b"ACGT", dtype=np.uint8)


def _sample_lengths(rng: np.random.Generator, n: int, mean: float,
                    sigma: float = 1.1, min_len: int = 60) -> np.ndarray:
    """Log-normal lengths with the requested mean."""
    mu = np.log(mean) - sigma ** 2 / 2
    lengths = rng.lognormal(mu, sigma, size=n).astype(np.int64)
    return np.maximum(lengths, min_len)


def synthetic_nt_db(total_residues: int, seed: int = 0,
                    mean_length: float = 1530.0, name: str = "synth-nt"
                    ) -> SequenceDB:
    """Generate a real, searchable nucleotide database of roughly
    *total_residues* bases."""
    if total_residues < 1:
        raise ValueError("total_residues must be >= 1")
    rng = np.random.default_rng(seed)
    db = SequenceDB("nt", name=name)
    produced = 0
    while produced < total_residues:
        n = int(_sample_lengths(rng, 1, mean_length)[0])
        n = min(n, total_residues - produced) if total_residues - produced >= 60 \
            else total_residues - produced
        n = max(n, 1)
        seq = _BASES[rng.integers(0, 4, size=n)].tobytes().decode()
        db.add(f"synth{len(db):07d} synthetic nt-like sequence", seq)
        produced += n
    return db


_AMINO = np.frombuffer(b"ARNDCQEGHILKMFPSTWYV", dtype=np.uint8)


def synthetic_aa_db(total_residues: int, seed: int = 0,
                    mean_length: float = 350.0, name: str = "synth-aa"
                    ) -> SequenceDB:
    """Generate a real, searchable protein database of roughly
    *total_residues* residues (nr-like ~350-residue mean length).

    Random protein still produces a dense word-hit stream under
    blastp's neighbourhood seeding, so these databases are the
    benchmark suite's gapped-heavy workload.
    """
    if total_residues < 1:
        raise ValueError("total_residues must be >= 1")
    rng = np.random.default_rng(seed)
    db = SequenceDB("aa", name=name)
    produced = 0
    while produced < total_residues:
        n = int(_sample_lengths(rng, 1, mean_length, sigma=0.45,
                                min_len=40)[0])
        remaining = total_residues - produced
        n = min(n, remaining) if remaining >= 40 else remaining
        n = max(n, 1)
        seq = _AMINO[rng.integers(0, 20, size=n)].tobytes().decode()
        db.add(f"synth{len(db):07d} synthetic nr-like sequence", seq)
        produced += n
    return db


def synthetic_nt_fasta(total_residues: int, seed: int = 0,
                       mean_length: float = 1530.0) -> str:
    """FASTA text form of :func:`synthetic_nt_db`."""
    from repro.blast.fasta import FastaRecord, write_fasta

    db = synthetic_nt_db(total_residues, seed, mean_length)
    records = [FastaRecord(db.description(i), db.sequence_str(i))
               for i in range(len(db))]
    return write_fasta(records)
