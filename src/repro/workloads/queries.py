"""Query sampling.

Pedretti et al. (paper ref [13]) observed that ~90 % of biologists'
query sequences are 300–600 characters; the paper fixes a 568-character
nucleotide query extracted from ``ecoli.nt``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blast.seqdb import SequenceDB

#: The paper's query length (Section 4.1).
PAPER_QUERY_LENGTH = 568

_BASES = np.frombuffer(b"ACGT", dtype=np.uint8)


def sample_query_length(rng: np.random.Generator) -> int:
    """Draw a query length: 90 % uniform in [300, 600], 10 % in a wider
    tail [60, 3000]."""
    if rng.random() < 0.9:
        return int(rng.integers(300, 601))
    return int(rng.integers(60, 3001))


def extract_query(db: SequenceDB, length: int = PAPER_QUERY_LENGTH,
                  seed: int = 0) -> str:
    """Cut a query of *length* bases out of a database sequence (the
    paper extracts its query from ecoli.nt) — guaranteed to have a hit."""
    rng = np.random.default_rng(seed)
    candidates = [i for i in range(len(db)) if len(db.sequence(i)) >= length]
    if not candidates:
        raise ValueError(f"no database sequence is >= {length} bases")
    sid = int(rng.choice(candidates))
    seq = db.sequence_str(sid)
    start = int(rng.integers(0, len(seq) - length + 1))
    return seq[start:start + length]


def synthetic_query(length: int = PAPER_QUERY_LENGTH, seed: int = 0) -> str:
    """A random query of *length* bases (no planted hit)."""
    rng = np.random.default_rng(seed)
    return _BASES[rng.integers(0, 4, size=length)].tobytes().decode()
