"""Event primitives: bare events, timeouts, composite events, interrupts."""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.sim.engine import NORMAL, URGENT, SimulationError, Simulator


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessCancelled(Exception):
    """The value of a process that was cancelled before it finished.

    Raised in any process that waits on a cancelled process.  Unlike
    :class:`Interrupt`, cancellation is not delivered *into* the target
    process — its generator is closed (``finally`` blocks still run)
    and whatever it was waiting on is withdrawn, releasing the
    underlying resource.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` (or
    :meth:`fail`) schedules it; when the simulator pops it, it *fires*:
    all registered callbacks run with the event as argument.  Processes
    wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "triggered", "scheduled", "cancelled", "_value", "_failed")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        #: True once the event has fired (callbacks have run).
        self.triggered = False
        #: True once the event sits on the heap.
        self.scheduled = False
        #: A cancelled event is skipped when popped.
        self.cancelled = False
        self._value: Any = None
        self._failed = False

    # ------------------------------------------------------------------
    @property
    def value(self) -> Any:
        """The event's payload (or the exception if it failed)."""
        return self._value

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def ok(self) -> bool:
        return self.triggered and not self._failed

    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with an optional payload."""
        self._value = value
        self.sim.schedule(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters see *exception* raised."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._failed = True
        self._value = exception
        self.sim.schedule(self, delay)
        return self

    def cancel(self) -> None:
        """Prevent a scheduled event from firing."""
        self.cancelled = True

    def withdraw(self) -> None:
        """The (sole) waiter no longer wants this event.

        Called when the process waiting on this event is cancelled or
        interrupted.  Subclasses backed by a shared resource override
        this to release their claim (dequeue a disk request, give back
        a NIC slot, leave a store's waiter queue); the base class just
        makes sure the event can never fire.

        Withdrawal assumes exclusive ownership: do not withdraw an
        event that other waiters still hold callbacks on.
        """
        if not self.triggered:
            self.cancelled = True

    # ------------------------------------------------------------------
    def fire(self) -> None:
        """Run callbacks.  Called by the simulator only."""
        if self.triggered:
            raise SimulationError(f"{self!r} fired twice")
        self.triggered = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    # ------------------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register *fn* to run when the event fires (immediately if it
        already has)."""
        if self.triggered:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else ("scheduled" if self.scheduled else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: Simulator, delay: float, value: Any = None):
        super().__init__(sim)
        self.delay = float(delay)
        self._value = value
        sim.schedule(self, self.delay)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        super().__init__(sim)
        self.events: List[Event] = list(events)
        self._count = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _release_pending(self, exclude: Optional[Event] = None) -> None:
        """Detach from and withdraw every component that has not fired.

        Withdrawn processes are cancelled and release their resources;
        withdrawn plain events simply never fire.
        """
        for ev in self.events:
            if ev is exclude or ev.triggered or ev.scheduled:
                continue
            ev.callbacks = [cb for cb in ev.callbacks
                            if getattr(cb, "__self__", None) is not self]
            ev.withdraw()

    def withdraw(self) -> None:
        """Cascade: the condition's waiter is gone, so nobody will ever
        see the components either — cancel them too."""
        super().withdraw()
        self._release_pending()


class AllOf(_Condition):
    """Fires when *all* component events have fired.

    The payload is the list of component values, in the original order.
    If any component fails, the condition fails with that exception
    *and cancels the still-pending components*: a failed fan-out leaves
    no sibling running to silently perturb later measurements (see
    :meth:`repro.sim.process.Process.cancel`).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered or self.scheduled:
            return
        if event.failed:
            self.fail(event.value)
            self._release_pending(exclude=event)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed([ev.value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the *first* component event fires.

    The payload is that first event's value; the winning event itself is
    available as :attr:`winner`.
    """

    __slots__ = ("winner",)

    def __init__(self, sim: Simulator, events: Iterable[Event]):
        self.winner: Optional[Event] = None
        super().__init__(sim, events)

    def _check(self, event: Event) -> None:
        if self.triggered or self.scheduled:
            return
        self.winner = event
        if event.failed:
            self.fail(event.value)
        else:
            self.succeed(event.value)
