"""Runtime invariant checking for the simulation kernel.

Every :class:`~repro.sim.engine.Simulator` owns an
:class:`InvariantMonitor` (``sim.check``).  Components that manage a
conserved quantity — counted resources, continuous containers, stores,
disk queues, CPU task sets, NIC channels — register themselves at
construction and expose two audit hooks:

``invariant_errors(strict)``
    Steady-state consistency: capacity never exceeded, no negative
    levels, internal counters in agreement.  Safe to call at any time;
    must not mutate simulation state.

``drain_errors()``
    Quiescence: once the event heap has drained, every acquire must
    have been balanced by a release, every queue must be empty.  A
    non-empty queue at drain is a leaked slot — exactly the class of
    bug PR 1 fixed by hand.

Cheap O(1) checks (capacity, level bounds, queue accounting) are always
on and raise :class:`InvariantViolation` at the mutation that breaks
them.  ``strict=True`` (or ``REPRO_STRICT_INVARIANTS=1`` in the
environment) additionally verifies the conservation ledgers
(acquires == releases + holders, container level == init + put - got,
store occupancy == puts - gets) on every audit.

The byte-conservation hooks (:meth:`InvariantMonitor.bytes_conserved`)
are called by the PVFS/CEFT clients after each striped read/write so a
routing or failover bug that drops or duplicates a stripe unit fails
loudly instead of silently skewing a measurement — the same
conservation-checking discipline used to validate the systematic I/O
stacks in PAPERS.md (Ching et al.; Thakur et al.).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class InvariantViolation(SimulationError):
    """An internal conservation or consistency invariant was broken.

    This always indicates a bug in the simulation kernel or a model
    built on it, never a legitimate simulated outcome (those surface as
    :class:`~repro.fs.interface.FSError`, :class:`JobAborted`, ...).
    """


class InvariantMonitor:
    """Per-simulator registry and audit driver for invariant checks."""

    def __init__(self, sim: "Simulator", strict: bool = False):
        self.sim = sim
        self.strict = bool(strict)
        self._components: List[Any] = []
        #: Count of violations raised through :meth:`fail`.
        self.violations = 0
        #: Messages of those violations.  A violation raised inside a
        #: process generator kills that process but is otherwise easy
        #: to swallow (the master sees only a dead worker); the ledger
        #: makes it resurface in :meth:`drain_audit`.
        self.violation_log: List[str] = []
        #: Monotonic count of fired events (see ``Simulator.step``).
        self.events_fired = 0
        self._max_fire_time = float("-inf")

    # ------------------------------------------------------------------
    def register(self, component: Any) -> None:
        """Track *component* for :meth:`audit` / :meth:`assert_drained`.

        The component must implement ``invariant_errors(strict)`` and
        ``drain_errors()`` (both returning lists of message strings).
        """
        self._components.append(component)

    # ------------------------------------------------------------------
    def fail(self, message: str) -> None:
        """Raise :class:`InvariantViolation` (single choke point, so the
        hot-path call sites stay one-line ``if`` statements)."""
        self.violations += 1
        msg = f"t={self.sim.now:.6f}: {message}"
        self.violation_log.append(msg)
        raise InvariantViolation(msg)

    def note_fire(self, when: float) -> None:
        """Record one event firing; virtual time must be monotonic."""
        self.events_fired += 1
        if when < self._max_fire_time:
            self.fail(f"virtual time ran backwards: {when} after "
                      f"{self._max_fire_time}")
        self._max_fire_time = when

    def bytes_conserved(self, tag: str, path: str,
                        expected: int, actual: int) -> None:
        """Assert a striped transfer moved exactly the requested bytes."""
        if actual != expected:
            self.fail(f"{tag}: byte conservation violated for {path!r}: "
                      f"expected {expected}, got {actual}")

    # ------------------------------------------------------------------
    def audit(self) -> List[str]:
        """Steady-state sweep: collect (do not raise) every consistency
        error across registered components."""
        errors: List[str] = []
        for c in self._components:
            errors.extend(c.invariant_errors(self.strict))
        return errors

    def drain_audit(self) -> List[str]:
        """Quiescence sweep: steady-state errors plus balanced
        acquire/release and empty-queue checks, plus orphaned
        processes.  Only meaningful after ``sim.run()`` has drained."""
        errors = list(self.violation_log)
        errors.extend(self.audit())
        if self.sim.peek() != float("inf"):
            errors.append("event heap is not drained")
        for c in self._components:
            errors.extend(c.drain_errors())
        for p in self.sim.orphans():
            errors.append(f"orphaned process {p.name!r} still alive at drain")
        return errors

    def assert_consistent(self) -> None:
        """Raise on any steady-state inconsistency."""
        errors = self.audit()
        if errors:
            self.violations += 1
            raise InvariantViolation(
                "; ".join(errors[:10])
                + (f" (+{len(errors) - 10} more)" if len(errors) > 10 else ""))

    def assert_drained(self) -> None:
        """Raise unless the simulation reached a clean quiescent state:
        no held slots, no queued waiters, no orphaned processes."""
        errors = self.drain_audit()
        if errors:
            self.violations += 1
            raise InvariantViolation(
                "; ".join(errors[:10])
                + (f" (+{len(errors) - 10} more)" if len(errors) > 10 else ""))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<InvariantMonitor strict={self.strict} "
                f"components={len(self._components)} "
                f"events={self.events_fired}>")
