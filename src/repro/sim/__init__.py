"""Discrete-event simulation kernel.

A small, dependency-free, SimPy-flavoured engine: processes are Python
generators that ``yield`` events; the :class:`~repro.sim.engine.Simulator`
advances virtual time by popping events off a heap.  Everything in
:mod:`repro.cluster` and :mod:`repro.fs` is built on this kernel.

Quick example::

    from repro.sim import Simulator, Timeout

    sim = Simulator()

    def hello(sim):
        yield Timeout(sim, 3.0)
        print(f"t={sim.now}")

    sim.process(hello(sim))
    sim.run()          # prints t=3.0
"""

from repro.sim.engine import Simulator, SimulationError, StopProcess
from repro.sim.check import InvariantMonitor, InvariantViolation
from repro.sim.fuzz import (
    FuzzReport,
    ScheduleDivergence,
    ScheduleFuzzer,
    job_fingerprint,
    perturbed,
    strict_checking,
)
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    ProcessCancelled,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.resources import (
    Container,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.rng import RandomStreams
from repro.sim.monitor import Monitor, TimeWeightedMonitor

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "FuzzReport",
    "Interrupt",
    "InvariantMonitor",
    "InvariantViolation",
    "Monitor",
    "PriorityResource",
    "Process",
    "ProcessCancelled",
    "RandomStreams",
    "Resource",
    "ScheduleDivergence",
    "ScheduleFuzzer",
    "Simulator",
    "SimulationError",
    "StopProcess",
    "Store",
    "TimeWeightedMonitor",
    "Timeout",
    "job_fingerprint",
    "perturbed",
    "strict_checking",
]
