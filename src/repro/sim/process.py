"""Generator-based simulation processes."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import URGENT, SimulationError, Simulator, StopProcess
from repro.sim.events import Event, Interrupt


class Process(Event):
    """A running simulation activity.

    Wraps a generator: every value the generator yields must be an
    :class:`~repro.sim.events.Event`; the process sleeps until that event
    fires, at which point the event's value is sent back into the
    generator (or its exception thrown, if it failed).

    The process is itself an event that fires when the generator returns;
    the generator's return value (``return x`` / ``raise StopProcess(x)``)
    becomes the process's value, so processes can wait on each other::

        def child(sim):
            yield Timeout(sim, 1.0)
            return 42

        def parent(sim):
            result = yield sim.process(child(sim))
            assert result == 42
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: Simulator, generator: Generator, name: Optional[str] = None):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume once, now (URGENT so spawning is prompt but
        # still passes through the event loop for determinism).
        boot = Event(sim)
        boot.add_callback(self._resume)
        boot.succeed(priority=URGENT)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self.triggered and not self.scheduled

    # ------------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is an error; interrupting a
        process that is waiting detaches it from the event it was
        waiting on (the event may still fire, but the process will not
        see it).
        """
        if self.triggered or self.scheduled:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waited = self._waiting_on
        if waited is not None and not waited.triggered:
            # Detach: replace our callback with a no-op by filtering.
            waited.callbacks = [cb for cb in waited.callbacks if getattr(cb, "__self__", None) is not self]
        self._waiting_on = None
        kick = Event(self.sim)
        kick.add_callback(lambda ev: self._throw(Interrupt(cause)))
        kick.succeed(priority=URGENT)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.failed:
                target = self.generator.throw(event.value)
            else:
                target = self.generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value, priority=URGENT)
            return
        except StopProcess as stop:
            self.generator.close()
            self.succeed(stop.value, priority=URGENT)
            return
        except Interrupt as exc:
            # Uncaught interrupt terminates the process as failed.
            self.fail(exc)
            return
        except Exception as exc:
            self.fail(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value, priority=URGENT)
            return
        except StopProcess as stop:
            self.generator.close()
            self.succeed(stop.value, priority=URGENT)
            return
        except Exception as err:
            self.fail(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}, which is not an Event"))
            return
        if target.sim is not self.sim:
            self.fail(SimulationError(
                f"process {self.name!r} yielded an event from another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'done' if self.triggered else 'alive'}>"
