"""Generator-based simulation processes."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import URGENT, SimulationError, Simulator, StopProcess
from repro.sim.events import Event, Interrupt, ProcessCancelled


class Process(Event):
    """A running simulation activity.

    Wraps a generator: every value the generator yields must be an
    :class:`~repro.sim.events.Event`; the process sleeps until that event
    fires, at which point the event's value is sent back into the
    generator (or its exception thrown, if it failed).

    The process is itself an event that fires when the generator returns;
    the generator's return value (``return x`` / ``raise StopProcess(x)``)
    becomes the process's value, so processes can wait on each other::

        def child(sim):
            yield Timeout(sim, 1.0)
            return 42

        def parent(sim):
            result = yield sim.process(child(sim))
            assert result == 42
    """

    __slots__ = ("generator", "name", "daemon", "_waiting_on")

    def __init__(self, sim: Simulator, generator: Generator,
                 name: Optional[str] = None, daemon: bool = False):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: Infrastructure loop (disk scheduler, load monitor): excluded
        #: from :meth:`Simulator.orphans` accounting.
        self.daemon = daemon
        self._waiting_on: Optional[Event] = None
        sim._processes.add(self)
        self.add_callback(self._unregister)
        # Bootstrap: resume once, now (URGENT so spawning is prompt but
        # still passes through the event loop for determinism).
        boot = Event(sim)
        boot.add_callback(self._resume)
        boot.succeed(priority=URGENT)
        # Track the bootstrap like any other wait so that cancelling a
        # process before it ever runs detaches it cleanly.
        self._waiting_on = boot

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        return not self.triggered and not self.scheduled

    # ------------------------------------------------------------------
    def _unregister(self, event: Event) -> None:
        self.sim._processes.discard(self)

    def _detach(self) -> Optional[Event]:
        """Remove our resume callback from the awaited event (if any)."""
        waited = self._waiting_on
        self._waiting_on = None
        if waited is not None and not waited.triggered:
            waited.callbacks = [cb for cb in waited.callbacks
                                if getattr(cb, "__self__", None) is not self]
            return waited
        return None

    # ------------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is an error.  The event the
        process was waiting on is withdrawn (its resource claim is
        released); the process may catch the :class:`Interrupt` and
        continue — re-acquiring whatever it needs.
        """
        if self.triggered or self.scheduled:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waited = self._detach()
        if waited is not None:
            waited.withdraw()
        kick = Event(self.sim)
        kick.add_callback(lambda ev: self._throw(Interrupt(cause)))
        kick.succeed(priority=URGENT)

    # ------------------------------------------------------------------
    def cancel(self, cause: Any = None) -> bool:
        """Terminate the process without giving it a say.

        The generator is closed (``GeneratorExit`` unwinds it, running
        ``finally`` blocks — cleanup must be synchronous) and the event
        it was waiting on is withdrawn, releasing disk queue slots, NIC
        channels, CPU shares, and store/queue positions all the way
        down the wait graph (waiting on another process cancels that
        process too).  The process event fails with
        :class:`ProcessCancelled`, so a waiter that *does* still hold a
        reference sees an exception rather than a silent no-value.

        Cancelling a finished (or already-cancelled) process is a
        no-op.  Returns True if the process was actually cancelled.
        """
        if self.triggered or self.scheduled:
            return False
        waited = self._detach()
        if waited is not None:
            waited.withdraw()
        try:
            self.generator.close()
        except RuntimeError as exc:
            raise SimulationError(
                f"process {self.name!r} refused cancellation "
                f"(generator yielded during close)") from exc
        except ValueError as exc:
            raise SimulationError(
                f"cannot cancel process {self.name!r} from inside "
                f"its own execution") from exc
        self.fail(ProcessCancelled(cause if cause is not None else self.name))
        return True

    def withdraw(self) -> None:
        """Withdrawing a process (its waiter was cancelled) cancels it."""
        self.cancel()

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.failed:
                target = self.generator.throw(event.value)
            else:
                target = self.generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value, priority=URGENT)
            return
        except StopProcess as stop:
            self.generator.close()
            self.succeed(stop.value, priority=URGENT)
            return
        except Interrupt as exc:
            # Uncaught interrupt terminates the process as failed.
            self.fail(exc)
            return
        except Exception as exc:
            self.fail(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered or self.scheduled:
            # The process finished (or was cancelled) between the
            # interrupt request and its delivery; nothing to deliver to.
            return
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value, priority=URGENT)
            return
        except StopProcess as stop:
            self.generator.close()
            self.succeed(stop.value, priority=URGENT)
            return
        except Exception as err:
            self.fail(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}, which is not an Event"))
            return
        if target.sim is not self.sim:
            self.fail(SimulationError(
                f"process {self.name!r} yielded an event from another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'done' if self.triggered else 'alive'}>"
