"""Schedule-perturbation fuzzing: a race detector for the DES.

The engine tie-breaks simultaneous events by insertion order, so any
model result can silently depend on the order processes happen to be
spawned.  The fuzzer re-runs a scenario with the tie-break among
same-(time, priority) events randomized under K different seeds and
asserts the *end state* is equivalent to the unperturbed baseline:
timings may legitimately shift, but conserved totals (work done, bytes
moved, failures observed) must not, the event heap must drain, no
process may be orphaned, and every registered resource must audit
clean.

Usage::

    from repro.sim.fuzz import ScheduleFuzzer, perturbed

    fuzzer = ScheduleFuzzer(run_scenario, seeds=range(25))
    report = fuzzer.run()        # raises ScheduleDivergence on a race
    assert report.ok

``run_scenario`` builds its own simulator(s), runs them to completion,
and returns a JSON-ish fingerprint of the end state (everything the
scenario considers order-independent).  Simulators created inside a
:func:`perturbed` context pick up the perturbation seed automatically,
so existing harnesses (``run_experiment``, ``run_parallel_blast``)
need no plumbing.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence

from repro.sim import engine
from repro.sim.check import InvariantViolation


class ScheduleDivergence(AssertionError):
    """A perturbed schedule produced a different end state than the
    baseline — the scenario's outcome depends on event insertion order."""

    def __init__(self, seed: int, baseline: Any, perturbed: Any,
                 diff: Sequence[str]):
        lines = "\n  ".join(diff) or "(fingerprints differ)"
        super().__init__(
            f"schedule perturbation seed={seed} changed the end state:\n  {lines}")
        self.seed = seed
        self.baseline = baseline
        self.perturbed = perturbed


@contextlib.contextmanager
def perturbed(seed: Optional[int]):
    """Context manager: simulators constructed inside pick up
    ``tie_break_seed=seed`` (``None`` restores insertion order)."""
    prev = engine._TIE_BREAK_OVERRIDE
    engine._TIE_BREAK_OVERRIDE = seed
    try:
        yield
    finally:
        engine._TIE_BREAK_OVERRIDE = prev


@contextlib.contextmanager
def strict_checking(enabled: bool = True):
    """Context manager: simulators constructed inside run their
    invariant monitor in strict mode."""
    prev = engine._STRICT_OVERRIDE
    engine._STRICT_OVERRIDE = enabled
    try:
        yield
    finally:
        engine._STRICT_OVERRIDE = prev


def job_fingerprint(job: Any) -> dict:
    """Order-independent end-state summary of a
    :class:`~repro.parallel.master.JobResult`.

    Which worker searched which fragment legitimately depends on message
    arrival order, so per-worker assignments are folded into conserved
    totals: the multiset of searched fragments, total bytes moved, and
    the set of aborted workers.
    """
    return {
        "fragments_done": job.fragments_done,
        "fragments_searched": sorted(
            f for w in job.workers for f in w.fragments),
        "requeues": job.requeues,
        "aborted_workers": list(job.aborted_workers),
        "workers_accounted": len(job.workers),
        "read_bytes_total": sum(w.read_bytes for w in job.workers),
        "write_bytes_total": sum(w.write_bytes for w in job.workers),
    }


def _diff(baseline: Any, other: Any, prefix: str = "") -> List[str]:
    """Human-readable path-wise diff of two fingerprints."""
    if isinstance(baseline, dict) and isinstance(other, dict):
        out: List[str] = []
        for key in sorted(set(baseline) | set(other)):
            sub = f"{prefix}.{key}" if prefix else str(key)
            if key not in baseline:
                out.append(f"{sub}: only in perturbed ({other[key]!r})")
            elif key not in other:
                out.append(f"{sub}: only in baseline ({baseline[key]!r})")
            else:
                out.extend(_diff(baseline[key], other[key], sub))
        return out
    if baseline != other:
        return [f"{prefix or 'value'}: baseline {baseline!r} != perturbed {other!r}"]
    return []


@dataclass
class FuzzReport:
    """Outcome of one :meth:`ScheduleFuzzer.run`."""

    baseline: Any
    seeds_passed: List[int] = field(default_factory=list)
    #: (seed, exception) pairs when running with ``raise_on_divergence=False``.
    failures: List[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


class ScheduleFuzzer:
    """Replay a scenario under K perturbed schedules and compare end
    states against the unperturbed baseline.

    Parameters
    ----------
    scenario:
        Zero-argument callable that builds and runs one simulation to
        completion and returns a fingerprint (any ==-comparable,
        preferably dict-of-scalars).  It must construct its simulators
        *inside* the call so the perturbation context applies.
    seeds:
        Perturbation seeds to try (default ``range(25)``).
    strict:
        Run every simulator (baseline and perturbed) with strict
        invariant checking on.
    """

    def __init__(self, scenario: Callable[[], Any],
                 seeds: Iterable[int] = range(25), strict: bool = True):
        self.scenario = scenario
        self.seeds = list(seeds)
        self.strict = strict

    def _run_once(self, seed: Optional[int]) -> Any:
        with strict_checking(self.strict), perturbed(seed):
            return self.scenario()

    def run(self, raise_on_divergence: bool = True) -> FuzzReport:
        """Run baseline + every seed.

        With ``raise_on_divergence`` (default), the first divergent or
        invariant-violating seed raises — :class:`ScheduleDivergence`
        names the seed, so the failure is replayable with
        ``perturbed(seed)``.  Otherwise failures are collected in the
        report.
        """
        baseline = self._run_once(None)
        report = FuzzReport(baseline=baseline)
        for seed in self.seeds:
            try:
                result = self._run_once(seed)
            except (InvariantViolation, AssertionError) as exc:
                exc = type(exc)(f"[perturbation seed={seed}] {exc}")
                if raise_on_divergence:
                    raise exc from None
                report.failures.append((seed, exc))
                continue
            diff = _diff(baseline, result)
            if diff:
                exc = ScheduleDivergence(seed, baseline, result, diff)
                if raise_on_divergence:
                    raise exc
                report.failures.append((seed, exc))
            else:
                report.seeds_passed.append(seed)
        return report
