"""Deterministic per-component random streams.

Every stochastic component in the simulation draws from its own named
stream, derived from a single root seed.  Adding a new component or
reordering draws in one component therefore never perturbs another
component's sequence — the standard trick for reproducible parallel
simulations.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """Factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called *name*."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"
