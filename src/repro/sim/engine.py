"""The event loop at the heart of the simulation.

The :class:`Simulator` owns virtual time and an event heap.  Events are
scheduled with a (time, priority, rank, sequence) key so that
simultaneous events fire in a deterministic order: first by priority
(lower first), then by insertion order.  ``rank`` is 0 in normal runs;
under schedule perturbation (``tie_break_seed``, see
:mod:`repro.sim.fuzz`) it is a seeded random draw, which permutes the
firing order of same-(time, priority) events while leaving the time and
priority semantics untouched — a race detector for models that silently
depend on insertion order.
"""

from __future__ import annotations

import heapq
import os
import random
from typing import Any, Callable, Generator, Iterable, Optional

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for "urgent" bookkeeping events (fire before NORMAL).
URGENT = 0

#: Process-wide overrides installed by :func:`repro.sim.fuzz.perturbed`
#: / :func:`repro.sim.fuzz.strict_checking`; ``None`` means "consult
#: the environment".  Simulators read these once, at construction.
_TIE_BREAK_OVERRIDE: Optional[int] = None
_STRICT_OVERRIDE: Optional[bool] = None


def default_tie_break_seed() -> Optional[int]:
    """The tie-break seed new simulators pick up when none is given:
    the active :func:`repro.sim.fuzz.perturbed` context, else the
    ``REPRO_TIE_BREAK_SEED`` environment variable, else ``None``
    (insertion order)."""
    if _TIE_BREAK_OVERRIDE is not None:
        return _TIE_BREAK_OVERRIDE
    env = os.environ.get("REPRO_TIE_BREAK_SEED", "")
    return int(env) if env else None


def default_strict() -> bool:
    """Whether new simulators run their invariant monitor in strict
    mode: the active :func:`repro.sim.fuzz.strict_checking` context,
    else the ``REPRO_STRICT_INVARIANTS`` environment variable."""
    if _STRICT_OVERRIDE is not None:
        return _STRICT_OVERRIDE
    return os.environ.get("REPRO_STRICT_INVARIANTS", "") not in ("", "0")


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class StopProcess(Exception):
    """Raised inside a process generator to terminate it early.

    ``raise StopProcess(value)`` behaves like ``return value`` but also
    works from helper functions called by the process body.
    """

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Simulator:
    """Discrete-event simulation engine.

    Parameters
    ----------
    start:
        Initial value of the simulation clock, in seconds.
    tie_break_seed:
        When given, same-(time, priority) events fire in a seeded
        pseudo-random order instead of insertion order (schedule
        perturbation, see :mod:`repro.sim.fuzz`).  Still fully
        deterministic for a fixed seed.
    strict:
        Run the :class:`~repro.sim.check.InvariantMonitor` in strict
        mode (extra conservation-ledger checks during audits).

    Notes
    -----
    The simulator is single-threaded and deterministic: two runs with the
    same seed and the same process structure produce identical event
    orderings.  All user code runs inside generator-based processes (see
    :class:`repro.sim.process.Process`).
    """

    def __init__(self, start: float = 0.0,
                 tie_break_seed: Optional[int] = None,
                 strict: Optional[bool] = None):
        from repro.sim.check import InvariantMonitor

        self._now = float(start)
        self._heap: list = []
        self._seq = 0
        self._active: int = 0  # events on the heap that are not cancelled
        self._processes: set = set()  # live Process objects (see orphans())
        if tie_break_seed is None:
            tie_break_seed = default_tie_break_seed()
        self.tie_break_seed = tie_break_seed
        self._tie_rng = (random.Random(tie_break_seed)
                         if tie_break_seed is not None else None)
        if strict is None:
            strict = default_strict()
        #: Runtime invariant checker (see :mod:`repro.sim.check`).
        self.check = InvariantMonitor(self, strict=strict)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    def schedule(self, event: "Event", delay: float = 0.0, priority: int = NORMAL) -> None:
        """Schedule *event* to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        if event.scheduled:
            raise SimulationError(f"event {event!r} scheduled twice")
        event.scheduled = True
        self._seq += 1
        rank = self._tie_rng.getrandbits(32) if self._tie_rng is not None else 0
        heapq.heappush(self._heap,
                       (self._now + delay, priority, rank, self._seq, event))
        self._active += 1

    # ------------------------------------------------------------------
    def process(self, generator: Generator, name: Optional[str] = None,
                daemon: bool = False) -> "Process":
        """Launch *generator* as a new simulation process.

        Returns the :class:`~repro.sim.process.Process`, which is itself
        an event that fires when the process finishes.  *daemon*
        processes are infrastructure loops (disk schedulers, monitors)
        that run forever by design and are excluded from the
        :meth:`orphans` accounting.
        """
        from repro.sim.process import Process

        return Process(self, generator, name=name, daemon=daemon)

    # ------------------------------------------------------------------
    def orphans(self) -> list:
        """Non-daemon processes that are alive but have no way to make
        progress.

        Meaningful after the event heap has drained (``run()``
        returned): any surviving non-daemon process is then blocked on
        an event that can never fire — a leaked resource or an orphaned
        fan-out branch.  The failure-injection tests assert this is
        empty.
        """
        return [p for p in self._processes
                if p.is_alive and not p.daemon]

    def find_process(self, name: str) -> Optional["Process"]:
        """First alive process with the given *name*, or ``None``.

        Failure-injection harnesses use this to target a process
        (e.g. a named worker) without threading handles through every
        layer."""
        for p in self._processes:
            if p.name == name and p.is_alive:
                return p
        return None

    # ------------------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> "Event":
        """Convenience constructor for :class:`repro.sim.events.Timeout`."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    # ------------------------------------------------------------------
    def event(self) -> "Event":
        """Create a bare, untriggered event bound to this simulator."""
        from repro.sim.events import Event

        return Event(self)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event on the heap.

        Raises
        ------
        SimulationError
            If the heap is empty (instead of leaking ``IndexError``
            from the underlying ``heapq``).
        """
        if not self._heap:
            raise SimulationError("step on empty heap")
        when, _prio, _rank, _seq, event = heapq.heappop(self._heap)
        self._active -= 1
        if event.cancelled:
            return
        if when < self._now:
            raise SimulationError("time ran backwards")
        self._now = when
        self.check.note_fire(when)
        event.fire()

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock passes *until*.

        Returns the final simulation time.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    # ------------------------------------------------------------------
    def run_until_complete(self, *processes: "Event", limit: float = 1e12) -> None:
        """Run until every event in *processes* has fired.

        Raises
        ------
        SimulationError
            If the event heap drains (deadlock) before all the given
            events have triggered, or the time *limit* is exceeded.
        """
        pending = [p for p in processes if not p.triggered]
        while pending:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: {len(pending)} process(es) never completed"
                )
            if self._now > limit:
                raise SimulationError(f"simulation exceeded time limit {limit}")
            self.step()
            pending = [p for p in pending if not p.triggered]

    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self._now:.6f} pending={len(self._heap)}>"
