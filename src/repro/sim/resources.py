"""Shared-resource primitives: counted resources, priority queues, stores,
and continuous containers.

All follow the same protocol: an acquire operation returns an
:class:`~repro.sim.events.Event` that the caller ``yield``s; when it
fires the caller holds the resource and must later release it.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event


class Request(Event):
    """The event returned by :meth:`Resource.request`."""

    __slots__ = ("resource", "priority", "released")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.released = False

    def release(self) -> None:
        """Give the slot back (idempotent)."""
        self.resource.release(self)

    def withdraw(self) -> None:
        """Waiter cancelled: give up the queue position (or the slot,
        if the grant was scheduled but not yet seen)."""
        self.cancelled = True
        self.release()

    # Context-manager sugar for the common acquire/release pattern:
    #     with (yield disk.request()):
    #         ...
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class Resource:
    """A counted FCFS resource (e.g. a disk head, a CPU core).

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of simultaneous holders.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        self._queue: Deque[Request] = deque()
        #: Conservation ledger: slots handed out / given back.
        self.acquires = 0
        self.releases = 0
        sim.check.register(self)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    # ------------------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        req = Request(self, priority)
        if len(self._users) < self.capacity:
            self._users.append(req)
            self.acquires += 1
            req.succeed(req)
        else:
            self._enqueue(req)
        return req

    def _enqueue(self, req: Request) -> None:
        self._queue.append(req)

    def _dequeue(self) -> Optional[Request]:
        return self._queue.popleft() if self._queue else None

    # ------------------------------------------------------------------
    def release(self, req: Request) -> None:
        if req.released:
            return
        req.released = True
        if req in self._users:
            self._users.remove(req)
            self.releases += 1
        elif req in self._queue:
            self._queue.remove(req)
            req.cancelled = True
            return
        nxt = self._dequeue()
        if nxt is not None:
            self._users.append(nxt)
            self.acquires += 1
            if len(self._users) > self.capacity:
                self.sim.check.fail(
                    f"resource {self.name!r}: {len(self._users)} holders "
                    f"exceed capacity {self.capacity}")
            nxt.succeed(nxt)

    # ------------------------------------------------------------------
    # Invariant hooks (see repro.sim.check)
    # ------------------------------------------------------------------
    def invariant_errors(self, strict: bool) -> List[str]:
        errs: List[str] = []
        if len(self._users) > self.capacity:
            errs.append(f"resource {self.name!r}: {len(self._users)} holders "
                        f"exceed capacity {self.capacity}")
        if strict and self.acquires - self.releases != len(self._users):
            errs.append(f"resource {self.name!r}: ledger out of balance "
                        f"(acquires={self.acquires} releases={self.releases} "
                        f"holders={len(self._users)})")
        return errs

    def drain_errors(self) -> List[str]:
        errs: List[str] = []
        if self._users:
            errs.append(f"resource {self.name!r}: {len(self._users)} "
                        f"slot(s) still held at drain")
        if self.queue_length:
            errs.append(f"resource {self.name!r}: {self.queue_length} "
                        f"waiter(s) still queued at drain")
        return errs

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{type(self).__name__} {self.name!r} {self.count}/{self.capacity}"
                f" queued={self.queue_length}>")


class PriorityResource(Resource):
    """A resource whose queue is ordered by (priority, arrival)."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        super().__init__(sim, capacity, name)
        self._pqueue: List[Tuple[int, int, Request]] = []
        self._seq = 0

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)

    def _enqueue(self, req: Request) -> None:
        self._seq += 1
        heapq.heappush(self._pqueue, (req.priority, self._seq, req))

    def _dequeue(self) -> Optional[Request]:
        while self._pqueue:
            _, _, req = heapq.heappop(self._pqueue)
            if not req.released:
                return req
        return None

    def release(self, req: Request) -> None:
        if req.released:
            return
        if req not in self._users:
            # Still queued: lazy-delete from the heap.
            req.released = True
            req.cancelled = True
            return
        super().release(req)

    def drain_errors(self) -> List[str]:
        errs: List[str] = []
        if self._users:
            errs.append(f"resource {self.name!r}: {len(self._users)} "
                        f"slot(s) still held at drain")
        # Lazily-deleted (withdrawn) entries still sit on the heap; only
        # live waiters count as leaks.
        pending = sum(1 for _, _, req in self._pqueue if not req.released)
        if pending:
            errs.append(f"resource {self.name!r}: {pending} "
                        f"waiter(s) still queued at drain")
        return errs


class StoreGet(Event):
    """The event returned by :meth:`Store.get`; withdrawing it leaves
    the waiter queue so a later ``put`` is not silently swallowed."""

    __slots__ = ("store",)

    def __init__(self, store: "Store"):
        super().__init__(store.sim)
        self.store = store

    def withdraw(self) -> None:
        if self.triggered:
            return
        self.cancelled = True
        try:
            self.store._getters.remove(self)
        except ValueError:
            pass


class StorePut(Event):
    """The event returned by :meth:`Store.put`; withdrawing it retracts
    the pending item from a full store's waiter queue."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.store = store
        self.item = item

    def withdraw(self) -> None:
        if self.triggered:
            return
        self.cancelled = True
        try:
            self.store._putters.remove(self)
        except ValueError:
            pass


class Store:
    """An unbounded (or bounded) FIFO of Python objects.

    ``put`` is an event that fires when the item is accepted; ``get`` is
    an event that fires with the next item.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = ""):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()
        #: Conservation ledger: items accepted / items handed out.
        self.puts_accepted = 0
        self.gets_served = 0
        sim.check.register(self)

    # ------------------------------------------------------------------
    @property
    def items(self) -> Tuple[Any, ...]:
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------
    def put(self, item: Any) -> Event:
        ev = StorePut(self, item)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            self.puts_accepted += 1
            self.gets_served += 1
            ev.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            self.puts_accepted += 1
            ev.succeed()
        else:
            self._putters.append(ev)
        return ev

    def get(self) -> Event:
        ev = StoreGet(self)
        if self._items:
            ev.succeed(self._items.popleft())
            self.gets_served += 1
            if self._putters:
                pev = self._putters.popleft()
                self._items.append(pev.item)
                self.puts_accepted += 1
                pev.succeed()
        elif self._putters:
            pev = self._putters.popleft()
            pev.succeed()
            ev.succeed(pev.item)
            self.puts_accepted += 1
            self.gets_served += 1
        else:
            self._getters.append(ev)
        return ev

    # ------------------------------------------------------------------
    # Invariant hooks (see repro.sim.check)
    # ------------------------------------------------------------------
    def invariant_errors(self, strict: bool) -> List[str]:
        errs: List[str] = []
        if len(self._items) > self.capacity:
            errs.append(f"store {self.name!r}: {len(self._items)} items "
                        f"exceed capacity {self.capacity}")
        if strict and self.puts_accepted - self.gets_served != len(self._items):
            errs.append(f"store {self.name!r}: ledger out of balance "
                        f"(puts={self.puts_accepted} gets={self.gets_served} "
                        f"items={len(self._items)})")
        return errs

    def drain_errors(self) -> List[str]:
        # Leftover *items* are legal (an abandoned pipeline buffer);
        # leftover *waiters* mean a process is blocked forever.
        errs: List[str] = []
        if self._getters:
            errs.append(f"store {self.name!r}: {len(self._getters)} "
                        f"getter(s) still waiting at drain")
        if self._putters:
            errs.append(f"store {self.name!r}: {len(self._putters)} "
                        f"putter(s) still waiting at drain")
        return errs


class ContainerOp(Event):
    """A pending container get/put; withdrawing it leaves the waiter
    queue (and unblocks anyone queued behind it)."""

    __slots__ = ("container", "amount")

    def __init__(self, container: "Container", amount: float):
        super().__init__(container.sim)
        self.container = container
        self.amount = amount

    def withdraw(self) -> None:
        if self.triggered:
            return
        self.cancelled = True
        for q in (self.container._getters, self.container._putters):
            try:
                q.remove(self)
            except ValueError:
                continue
            break
        # Our queue slot may have been head-of-line blocking.
        self.container._drain_putters()
        self.container._drain_getters()


class Container:
    """A continuous quantity (bytes of buffer space, tokens, ...).

    ``get(amount)`` blocks until at least *amount* is present; ``put``
    adds and wakes waiters in FIFO order.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 init: float = 0.0, name: str = ""):
        if init < 0 or init > capacity:
            raise ValueError("init outside [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = float(init)
        self._init = float(init)
        self._getters: Deque[ContainerOp] = deque()
        self._putters: Deque[ContainerOp] = deque()
        #: Conservation ledger: amount accepted / amount withdrawn.
        self.total_put = 0.0
        self.total_got = 0.0
        sim.check.register(self)

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        ev = ContainerOp(self, amount)
        if self._level + amount <= self.capacity:
            self._level += amount
            self.total_put += amount
            ev.succeed()
            self._drain_getters()
        else:
            self._putters.append(ev)
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        if amount > self.capacity:
            raise SimulationError(f"get({amount}) exceeds capacity {self.capacity}")
        ev = ContainerOp(self, amount)
        if not self._getters and self._level >= amount:
            self._level -= amount
            self.total_got += amount
            if self._level < -1e-9:
                self.sim.check.fail(
                    f"container {self.name!r}: level went negative "
                    f"({self._level})")
            ev.succeed()
            self._drain_putters()
        else:
            self._getters.append(ev)
        return ev

    def _drain_getters(self) -> None:
        while self._getters and self._level >= self._getters[0].amount:
            ev = self._getters.popleft()
            self._level -= ev.amount
            self.total_got += ev.amount
            ev.succeed()

    def _drain_putters(self) -> None:
        while self._putters and self._level + self._putters[0].amount <= self.capacity:
            ev = self._putters.popleft()
            self._level += ev.amount
            self.total_put += ev.amount
            if self._level > self.capacity + 1e-9:
                self.sim.check.fail(
                    f"container {self.name!r}: level {self._level} exceeds "
                    f"capacity {self.capacity}")
            ev.succeed()
            self._drain_getters()

    # ------------------------------------------------------------------
    # Invariant hooks (see repro.sim.check)
    # ------------------------------------------------------------------
    def invariant_errors(self, strict: bool) -> List[str]:
        errs: List[str] = []
        if self._level < -1e-9:
            errs.append(f"container {self.name!r}: negative level {self._level}")
        if self._level > self.capacity + 1e-9:
            errs.append(f"container {self.name!r}: level {self._level} "
                        f"exceeds capacity {self.capacity}")
        if strict:
            expect = self._init + self.total_put - self.total_got
            scale = max(1.0, abs(self.total_put), abs(self.total_got))
            if abs(self._level - expect) > 1e-9 * scale:
                errs.append(f"container {self.name!r}: ledger out of balance "
                            f"(level={self._level} expected={expect})")
        return errs

    def drain_errors(self) -> List[str]:
        errs: List[str] = []
        if self._getters:
            errs.append(f"container {self.name!r}: {len(self._getters)} "
                        f"getter(s) still waiting at drain")
        if self._putters:
            errs.append(f"container {self.name!r}: {len(self._putters)} "
                        f"putter(s) still waiting at drain")
        return errs
