"""Statistics collection for simulation runs."""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.sim.engine import Simulator


class Monitor:
    """Records (time, value) observations and computes summary stats."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.times.append(self.sim.now)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else math.nan

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else math.nan

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else math.nan

    @property
    def variance(self) -> float:
        n = len(self.values)
        if n < 2:
            return 0.0 if n == 1 else math.nan
        mu = self.mean
        return sum((v - mu) ** 2 for v in self.values) / (n - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def series(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Monitor {self.name!r} n={self.count} mean={self.mean:.4g}>"


class TimeWeightedMonitor:
    """Tracks a piecewise-constant level (e.g. queue length, utilization)
    and integrates it over time."""

    def __init__(self, sim: Simulator, initial: float = 0.0, name: str = ""):
        self.sim = sim
        self.name = name
        self._level = float(initial)
        self._last_t = sim.now
        self._start_t = sim.now
        self._area = 0.0
        self._max = float(initial)

    @property
    def level(self) -> float:
        return self._level

    def set(self, value: float) -> None:
        self._advance()
        self._level = float(value)
        self._max = max(self._max, self._level)

    def add(self, delta: float) -> None:
        self.set(self._level + delta)

    def _advance(self) -> None:
        now = self.sim.now
        self._area += self._level * (now - self._last_t)
        self._last_t = now

    @property
    def time_average(self) -> float:
        self._advance()
        elapsed = self._last_t - self._start_t
        return self._area / elapsed if elapsed > 0 else self._level

    @property
    def maximum(self) -> float:
        return self._max

    def busy_fraction(self) -> float:
        """Alias for :attr:`time_average` when the level is 0/1 busy."""
        return self.time_average

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TimeWeightedMonitor {self.name!r} level={self._level:.4g}>"
