"""repro — reproduction of *A Case Study of Parallel I/O for Biological
Sequence Search on Linux Clusters* (Zhu, Jiang, Qin, Swanson; IEEE
CLUSTER 2003).

The package provides:

* :mod:`repro.blast` — a real BLAST-family sequence-search engine
  (blastn/blastp/blastx/tblastn/tblastx) usable as a plain library.
* :mod:`repro.sim`, :mod:`repro.cluster`, :mod:`repro.fs` — a calibrated
  discrete-event simulation of the paper's Linux cluster, PVFS, and
  CEFT-PVFS parallel file systems.
* :mod:`repro.parallel` — the mpiBLAST-style master/worker parallel
  BLAST with the paper's three I/O variants (local-copy, over-PVFS,
  over-CEFT-PVFS).
* :mod:`repro.core` — the experiment layer that regenerates every table
  and figure of the paper's evaluation section.

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "blast",
    "cluster",
    "core",
    "fs",
    "parallel",
    "sim",
    "trace",
    "workloads",
]
