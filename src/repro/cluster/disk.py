"""IDE disk model with an elevator-style scheduler.

The model captures the three behaviours the paper's results depend on:

1. **Sequential vs. random access** — a request contiguous with the
   previously serviced request of the same stream pays no positioning
   cost; anything else pays an average seek + rotational delay.
2. **Bandwidth asymmetry** — 26 MB/s reads vs 32 MB/s writes (Bonnie,
   Section 4.1 of the paper).
3. **Write batching / read starvation** — the Linux 2.4 elevator
   services bursts of writes before a queued read.  Under the paper's
   Figure 8 stressor (a tight loop of synchronous 1 MB appends) this is
   the mechanism that degrades interleaved reads by more than an order
   of magnitude, and — because the penalty is paid per read *request* —
   punishes small-granularity readers (PVFS 64 KB stripe units) harder
   than large-granularity ones (128 KB mmap readahead).  That asymmetry
   is why the paper measures 21× degradation for over-PVFS but "only"
   10× for the original BLAST (Section 4.5).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.sim import AnyOf, Event, Monitor, Simulator, TimeWeightedMonitor, Timeout
from repro.cluster.params import DiskParams

READ = "read"
WRITE = "write"


class _DiskCompletion(Event):
    """The completion event of a :class:`DiskRequest`.

    Withdrawing it (the waiting process was cancelled) pulls the
    request back out of the disk queue, so a cancelled reader stops
    consuming spindle time instead of silently perturbing every later
    measurement.
    """

    __slots__ = ("disk", "request")

    def __init__(self, disk: "Disk", request: "DiskRequest"):
        super().__init__(disk.sim)
        self.disk = disk
        self.request = request

    def withdraw(self) -> None:
        if self.triggered:
            return
        self.cancelled = True
        self.disk._cancel_request(self.request)


class DiskRequest:
    """One block-level request."""

    __slots__ = ("kind", "offset", "size", "stream", "done", "submitted")

    def __init__(self, disk: "Disk", kind: str, offset: int, size: int, stream: str):
        if kind not in (READ, WRITE):
            raise ValueError(f"bad request kind {kind!r}")
        if size <= 0:
            raise ValueError("request size must be positive")
        if offset < 0:
            raise ValueError("offset must be >= 0")
        self.kind = kind
        self.offset = int(offset)
        self.size = int(size)
        self.stream = stream
        self.done = _DiskCompletion(disk, self)
        self.submitted = disk.sim.now

    @property
    def cancelled(self) -> bool:
        return self.done.cancelled

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DiskRequest {self.kind} off={self.offset} size={self.size} stream={self.stream!r}>"


class Disk:
    """A single simulated disk with its own scheduler process."""

    def __init__(self, sim: Simulator, params: Optional[DiskParams] = None, name: str = "disk"):
        self.sim = sim
        self.params = params or DiskParams()
        self.name = name
        self._reads: Deque[DiskRequest] = deque()
        self._writes: Deque[DiskRequest] = deque()
        self._wakeup: Optional[Event] = None
        self._write_arrival: Optional[Event] = None
        self._last_pos: Optional[Tuple[str, str, int]] = None  # (kind, stream, end offset)
        # Statistics -----------------------------------------------------
        self.busy = TimeWeightedMonitor(sim, name=f"{name}.busy")
        self.queue_len = TimeWeightedMonitor(sim, name=f"{name}.queue")
        self.read_latency = Monitor(sim, name=f"{name}.read_latency")
        self.bytes_read = 0
        self.bytes_written = 0
        self.reads_serviced = 0
        self.writes_serviced = 0
        self._util_checkpoint_time = sim.now
        self._util_checkpoint_area = 0.0
        self._last_write_time = float("-inf")
        self._in_service = 0
        sim.check.register(self)
        sim.process(self._scheduler(), name=f"{name}.sched", daemon=True)

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def submit(self, kind: str, offset: int, size: int, stream: str = "") -> Event:
        """Queue a request; the returned event fires on completion."""
        req = DiskRequest(self, kind, offset, size, stream)
        if kind == READ:
            self._reads.append(req)
        else:
            self._writes.append(req)
            if self._write_arrival is not None and not self._write_arrival.scheduled:
                self._write_arrival.succeed()
                self._write_arrival = None
        self.queue_len.add(1)
        if self.queue_len.level != self.queue_length + self._in_service:
            self.sim.check.fail(
                f"disk {self.name!r}: queue accounting out of sync "
                f"(monitor={self.queue_len.level} queued={self.queue_length} "
                f"in_service={self._in_service})")
        if self._wakeup is not None and not self._wakeup.scheduled:
            self._wakeup.succeed()
            self._wakeup = None
        return req.done

    def read(self, offset: int, size: int, stream: str = "") -> Event:
        return self.submit(READ, offset, size, stream)

    def write(self, offset: int, size: int, stream: str = "") -> Event:
        return self.submit(WRITE, offset, size, stream)

    def _cancel_request(self, req: DiskRequest) -> None:
        """Retract a queued request (its waiter was cancelled).

        A request already being serviced cannot be retracted — the
        spindle finishes it, but its completion event never fires.
        """
        queue = self._reads if req.kind == READ else self._writes
        try:
            queue.remove(req)
        except ValueError:
            return  # in service (or already done): nothing to retract
        self.queue_len.add(-1)
        if self.queue_len.level != self.queue_length + self._in_service:
            self.sim.check.fail(
                f"disk {self.name!r}: queue accounting out of sync after "
                f"cancel (monitor={self.queue_len.level} "
                f"queued={self.queue_length} in_service={self._in_service})")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self._reads) + len(self._writes)

    def service_time(self, kind: str, size: int, sequential: bool) -> float:
        """Raw service time for a request (excludes queueing)."""
        bw = self.params.read_bandwidth if kind == READ else self.params.write_bandwidth
        t = self.params.request_overhead + size / bw
        if not sequential:
            t += self.params.seek_time
        return t

    def sample_utilization(self) -> float:
        """Busy fraction since the previous call (used by the CEFT-PVFS
        metadata server's periodic load collection)."""
        # TimeWeightedMonitor integrates level over time; difference the
        # integral between checkpoints.
        self.busy._advance()
        area = self.busy._area
        now = self.sim.now
        elapsed = now - self._util_checkpoint_time
        util = 0.0 if elapsed <= 0 else (area - self._util_checkpoint_area) / elapsed
        self._util_checkpoint_time = now
        self._util_checkpoint_area = area
        return util

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _pop_contiguous_read(self) -> Optional[DiskRequest]:
        """Pop the queued read (if any) that continues the stream just
        serviced — the elevator's locality preference."""
        last = self._last_pos
        if last is None or last[0] != READ:
            return None
        for i, req in enumerate(self._reads):
            if req.stream == last[1] and req.offset == last[2]:
                del self._reads[i]
                return req
        return None

    def _has_contiguous_read(self) -> bool:
        last = self._last_pos
        if last is None or last[0] != READ:
            return False
        return any(r.stream == last[1] and r.offset == last[2]
                   for r in self._reads)

    def _pick(self) -> Optional[DiskRequest]:
        """Elevator policy.

        Writes are preferred up to ``write_batch`` in a row while reads
        wait (Linux 2.4 write preference — the read-starvation mechanism
        of the paper's Section 4.5).  Among reads, a request contiguous
        with the last serviced read is preferred up to ``read_batch`` in
        a row, so concurrent sequential streams time-share the spindle
        in bursts instead of seeking per request.
        """
        p = self.params
        if self._writes and self._reads:
            if self._writes_in_batch < p.write_batch:
                self._writes_in_batch += 1
                return self._writes.popleft()
            self._writes_in_batch = 0
            self._reads_in_batch = 0
            return self._reads.popleft()
        if self._writes:
            self._writes_in_batch += 1
            return self._writes.popleft()
        if self._reads:
            self._writes_in_batch = 0
            if self._reads_in_batch < p.read_batch:
                req = self._pop_contiguous_read()
                if req is not None:
                    self._reads_in_batch += 1
                    return req
            self._reads_in_batch = 0
            return self._reads.popleft()
        return None

    def _scheduler(self):
        self._writes_in_batch = 0
        self._reads_in_batch = 0
        p = self.params
        may_anticipate_read = True
        while True:
            # Read anticipation: mid-batch, the stream just serviced will
            # likely submit its next contiguous request within an event
            # tick; wait a moment before switching streams (or going
            # idle) so sequential bursts are not broken up by seeks.
            # Never engaged while writes are pending — which is exactly
            # why the Figure 8 write stressor reduces readers to one
            # request per write batch.
            if (may_anticipate_read
                    and not self._writes
                    and self._last_pos is not None
                    and self._last_pos[0] == READ
                    and self._reads_in_batch < p.read_batch
                    and p.read_anticipation > 0
                    and not self._has_contiguous_read()):
                may_anticipate_read = False
                self._wakeup = Event(self.sim)
                timer = Timeout(self.sim, p.read_anticipation)
                yield AnyOf(self.sim, [self._wakeup, timer])
                self._wakeup = None
                continue
            if not self._reads and not self._writes:
                self._wakeup = Event(self.sim)
                yield self._wakeup
                self._wakeup = None
                continue
            # Write anticipation: a read is queued, no write is queued,
            # but the write stream has been active recently — hold the
            # read briefly to see whether another write arrives
            # (dirty-page writeback burst).
            if (self._reads and not self._writes
                    and self.sim.now - self._last_write_time < 10 * p.write_anticipation
                    and self._writes_in_batch < p.write_batch
                    and p.write_anticipation > 0):
                self._write_arrival = Event(self.sim)
                timer = Timeout(self.sim, p.write_anticipation)
                yield AnyOf(self.sim, [self._write_arrival, timer])
                if self._write_arrival is not None:
                    # Timer fired first: give up anticipating writes.
                    self._write_arrival = None
                    self._writes_in_batch = 0
                continue
            req = self._pick()
            if req is None:  # pragma: no cover - defensive
                continue
            may_anticipate_read = True
            self._in_service = 1
            sequential = self._last_pos == (req.kind, req.stream, req.offset)
            svc = self.service_time(req.kind, req.size, sequential)
            self.busy.set(1)
            yield Timeout(self.sim, svc)
            self.busy.set(0)
            self._last_pos = (req.kind, req.stream, req.offset + req.size)
            self.queue_len.add(-1)
            self._in_service = 0
            if req.kind == READ:
                self.bytes_read += req.size
                self.reads_serviced += 1
                self.read_latency.observe(self.sim.now - req.submitted)
            else:
                self.bytes_written += req.size
                self.writes_serviced += 1
                self._last_write_time = self.sim.now
            req.done.succeed(req)

    # ------------------------------------------------------------------
    # Invariant hooks (see repro.sim.check)
    # ------------------------------------------------------------------
    def invariant_errors(self, strict: bool) -> list:
        errs = []
        if self.queue_len.level != self.queue_length + self._in_service:
            errs.append(f"disk {self.name!r}: queue monitor "
                        f"{self.queue_len.level} != queued "
                        f"{self.queue_length} + in-service {self._in_service}")
        if self.busy.level not in (0, 1):
            errs.append(f"disk {self.name!r}: busy level {self.busy.level} "
                        f"outside {{0, 1}}")
        if strict and (self.bytes_read < 0 or self.bytes_written < 0):
            errs.append(f"disk {self.name!r}: negative byte counters")
        return errs

    def drain_errors(self) -> list:
        errs = []
        if self._reads or self._writes:
            errs.append(f"disk {self.name!r}: {self.queue_length} "
                        f"request(s) still queued at drain")
        if self._in_service:
            errs.append(f"disk {self.name!r}: request still in service "
                        f"at drain")
        if self.busy.level != 0:
            errs.append(f"disk {self.name!r}: spindle busy at drain")
        return errs

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Disk {self.name!r} queue={self.queue_length}>"
