"""Cluster assembly: N identical nodes on one Myrinet switch."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim import RandomStreams, Simulator
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.params import NodeParams, prairiefire_params


class Cluster:
    """A simulated Linux cluster.

    Parameters
    ----------
    sim:
        The simulator everything runs in.
    n_nodes:
        Number of nodes (named ``node00``, ``node01``, ...).
    params:
        Per-node hardware parameters (PrairieFire defaults).
    seed:
        Root seed for the cluster's random streams.
    """

    def __init__(self, sim: Optional[Simulator] = None, n_nodes: int = 8,
                 params: Optional[NodeParams] = None, seed: int = 0):
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.sim = sim or Simulator()
        self.params = params or prairiefire_params()
        self.network = Network(self.sim, self.params.network)
        self.streams = RandomStreams(seed)
        self.nodes: List[Node] = [
            Node(self.sim, f"node{i:02d}", self.network, self.params)
            for i in range(n_nodes)
        ]
        self._by_name: Dict[str, Node] = {n.name: n for n in self.nodes}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index: int) -> Node:
        return self.nodes[index]

    def node(self, name: str) -> Node:
        return self._by_name[name]

    def __iter__(self):
        return iter(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Cluster n={len(self.nodes)}>"
