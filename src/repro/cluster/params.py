"""Hardware parameter sets.

All sizes are in bytes, rates in bytes/second, times in seconds.
``MB`` here means 10**6 bytes, matching how Bonnie/Netperf figures are
quoted in the paper (the absolute numbers only need to be right to the
precision the paper reports them).

The defaults are calibrated to Section 4.1 of the paper:

* Bonnie: disk write 32 MB/s, read 26 MB/s (20 GB IDE ATA100);
* Netperf: TCP over 2 Gb/s Myrinet ≈ 112 MB/s at 47 % utilisation;
* two Athlon MP CPUs and 2 GB RAM per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30


@dataclass(frozen=True)
class DiskParams:
    """IDE disk model parameters."""

    #: Sequential read bandwidth (Bonnie: 26 MB/s).
    read_bandwidth: float = 26 * MB
    #: Sequential write bandwidth (Bonnie: 32 MB/s).
    write_bandwidth: float = 32 * MB
    #: Average seek + rotational positioning cost paid when a request is
    #: not sequential with the previously serviced one.
    seek_time: float = 8e-3
    #: Fixed per-request command overhead.
    request_overhead: float = 2e-4
    #: Disk capacity (20 GB IDE drive).
    capacity: int = 20 * GB
    #: Elevator write-batching: when a streaming writer and readers
    #: contend, up to this many write requests are serviced between
    #: consecutive reads.  Models the Linux 2.4 elevator's write
    #: preference, which is what starves BLAST reads under the paper's
    #: Figure 8 stressor (Section 4.5).  Calibrated so the Figure 9
    #: degradation factors land in the paper's bands.
    write_batch: int = 18
    #: After a write completes, the scheduler waits this long for a
    #: follow-up write before admitting a queued read (anticipatory
    #: batching of the dirty-page stream).
    write_anticipation: float = 5e-3
    #: Elevator read locality: up to this many *contiguous same-stream*
    #: reads are serviced in a row before switching to another stream,
    #: and the scheduler anticipates briefly for the stream's next
    #: request.  This is what lets several sequential readers share one
    #: spindle without paying a seek per request — but it is preempted
    #: whenever writes are pending, so the Figure 8 stressor reduces
    #: reads to one request per write batch.
    read_batch: int = 8
    #: Anticipation window for the current read stream's next request.
    read_anticipation: float = 1e-3


@dataclass(frozen=True)
class NetworkParams:
    """Myrinet + TCP stack parameters."""

    #: Effective TCP bandwidth per NIC direction (Netperf: ~112 MB/s).
    bandwidth: float = 112 * MB
    #: One-way message latency (Myrinet + TCP stack).
    latency: float = 100e-6
    #: CPU time consumed per message on each endpoint (TCP processing).
    per_message_cpu: float = 30e-6
    #: CPU time consumed per byte on each endpoint (checksum/copy).
    per_byte_cpu: float = 0.2e-9
    #: Transfers are chopped into segments of this size so that
    #: concurrent flows share a NIC direction fairly.
    segment_size: int = 256 * KiB
    #: Effective bandwidth of node-local (loopback) TCP transfers —
    #: the data still traverses the stack and is copied twice.  This is
    #: part of why one-worker PVFS loses to local disk in the paper's
    #: Figure 5 even though client and server share the node.
    loopback_bandwidth: float = 350 * MB


@dataclass(frozen=True)
class CPUParams:
    """Node compute parameters."""

    #: Number of processors per node (dual Athlon MP).
    cores: int = 2


@dataclass(frozen=True)
class MemoryParams:
    """RAM / page-cache parameters."""

    #: Physical memory per node.
    ram: int = 2 * GB
    #: Fraction of RAM usable as page cache.
    cache_fraction: float = 0.8
    #: Page-cache block granularity.
    page_size: int = 64 * KiB
    #: Bandwidth for reads served from the page cache.
    cache_bandwidth: float = 800 * MB
    #: Readahead cluster size for buffered/mmap reads from local disk.
    #: Linux 2.4 clustered page faults into 128 KB chunks.
    readahead: int = 128 * KiB


@dataclass(frozen=True)
class NodeParams:
    """Everything that describes one cluster node."""

    cpu: CPUParams = field(default_factory=CPUParams)
    disk: DiskParams = field(default_factory=DiskParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    network: NetworkParams = field(default_factory=NetworkParams)

    def with_disk(self, **kwargs) -> "NodeParams":
        """Copy with some disk parameters overridden."""
        return replace(self, disk=replace(self.disk, **kwargs))


def prairiefire_params() -> NodeParams:
    """Node parameters for the PrairieFire cluster (paper Section 4.1)."""
    return NodeParams()
