"""Processor-sharing CPU model.

A node has ``cores`` processors shared by any number of tasks.  With
``k`` active tasks each runs at rate ``min(1, cores / k)`` — the ideal
egalitarian processor-sharing discipline, which is what a multitasking
Linux scheduler approximates at this timescale.

The implementation is event-driven: task remaining-work values are
advanced lazily whenever the active set changes, and a single pending
completion timer is kept for the earliest-finishing task.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.sim import Event, Simulator, TimeWeightedMonitor, Timeout


class _TaskCompletion(Event):
    """Completion event of one CPU task.  Withdrawing it (the waiting
    process was cancelled) removes the task from the active set so the
    surviving tasks speed back up."""

    __slots__ = ("cpu", "tid")

    def __init__(self, cpu: "CPU", tid: int):
        super().__init__(cpu.sim)
        self.cpu = cpu
        self.tid = tid

    def withdraw(self) -> None:
        if self.triggered:
            return
        self.cancelled = True
        self.cpu._cancel_task(self.tid)


class _Task:
    __slots__ = ("remaining", "done")

    def __init__(self, cpu: "CPU", tid: int, work: float):
        self.remaining = float(work)
        self.done = _TaskCompletion(cpu, tid)


class CPU:
    """Shared processors of one node."""

    def __init__(self, sim: Simulator, cores: int = 2, name: str = "cpu"):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.sim = sim
        self.cores = cores
        self.name = name
        self._tasks: Dict[int, _Task] = {}
        self._ids = itertools.count()
        self._last_update = sim.now
        self._timer: Optional[Event] = None
        self.load = TimeWeightedMonitor(sim, name=f"{name}.load")
        self.busy_cores = TimeWeightedMonitor(sim, name=f"{name}.busy")
        self.total_work_done = 0.0
        sim.check.register(self)

    # ------------------------------------------------------------------
    @property
    def active_tasks(self) -> int:
        return len(self._tasks)

    def rate(self) -> float:
        """Per-task execution rate with the current active set."""
        k = len(self._tasks)
        return 0.0 if k == 0 else min(1.0, self.cores / k)

    def utilization(self) -> float:
        """Time-averaged fraction of cores busy since t=0."""
        return self.busy_cores.time_average / self.cores

    # ------------------------------------------------------------------
    def consume(self, work: float) -> Event:
        """Execute *work* seconds of CPU time; returns a completion event.

        ``work`` is wall-clock seconds the task would take if it had a
        whole core to itself.
        """
        if work < 0:
            raise ValueError("work must be >= 0")
        self._advance()
        tid = next(self._ids)
        task = _Task(self, tid, work)
        if work == 0:
            task.done.succeed()
            return task.done
        self._tasks[tid] = task
        self._update_monitors()
        self._reschedule()
        return task.done

    def run(self, work: float):
        """Generator form of :meth:`consume` for ``yield from`` use."""
        yield self.consume(work)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Charge elapsed time against every active task."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._tasks:
            return
        progress = dt * self.rate()
        self.total_work_done += progress * len(self._tasks)
        finished = []
        for tid, task in self._tasks.items():
            task.remaining -= progress
            if task.remaining <= 1e-12:
                finished.append(tid)
        for tid in finished:
            task = self._tasks.pop(tid)
            task.done.succeed()
        if finished:
            self._update_monitors()

    def _update_monitors(self) -> None:
        k = len(self._tasks)
        self.load.set(k)
        self.busy_cores.set(min(k, self.cores))

    def _reschedule(self) -> None:
        """(Re)arm the completion timer for the earliest finisher."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._tasks:
            return
        soonest = min(t.remaining for t in self._tasks.values())
        delay = soonest / self.rate()
        timer = Timeout(self.sim, delay)
        timer.add_callback(self._on_timer)
        self._timer = timer

    def _cancel_task(self, tid: int) -> None:
        """Drop a task whose waiter was cancelled; remaining work is
        abandoned and the other tasks' share grows accordingly."""
        self._advance()
        if self._tasks.pop(tid, None) is not None:
            self._update_monitors()
            self._reschedule()

    # ------------------------------------------------------------------
    # Invariant hooks (see repro.sim.check)
    # ------------------------------------------------------------------
    def invariant_errors(self, strict: bool) -> list:
        errs = []
        k = len(self._tasks)
        if self.load.level != k:
            errs.append(f"cpu {self.name!r}: load monitor {self.load.level} "
                        f"!= {k} active task(s)")
        if self.busy_cores.level != min(k, self.cores):
            errs.append(f"cpu {self.name!r}: busy monitor "
                        f"{self.busy_cores.level} != min({k}, {self.cores})")
        if strict:
            # Stored remaining-work values are stale-high between lazy
            # advances but must never be meaningfully negative.
            for tid, task in self._tasks.items():
                if task.remaining < -1e-9:
                    errs.append(f"cpu {self.name!r}: task {tid} has negative "
                                f"remaining work {task.remaining}")
        return errs

    def drain_errors(self) -> list:
        errs = []
        if self._tasks:
            errs.append(f"cpu {self.name!r}: {len(self._tasks)} task(s) "
                        f"still active at drain")
        return errs

    def _on_timer(self, event: Event) -> None:
        if event.cancelled:  # pragma: no cover - cancelled timers are skipped upstream
            return
        self._timer = None
        self._advance()
        self._reschedule()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CPU {self.name!r} tasks={len(self._tasks)} cores={self.cores}>"
