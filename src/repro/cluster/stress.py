"""Background-load generators.

:func:`disk_stressor` is a faithful transcription of the paper's
Figure 8 program::

    1. M = allocate(1 MBytes);
    2. Create a file named F;
    3. While(1)
    4.   If(size(F) > 2 GB)
    5.     Truncate F to zero byte;
    6.   Else
    7.     Synchronously append the data in M to the end of F;

The synchronous append guarantees every iteration touches the disk.  As
the paper measures, the stressor leaves the CPUs ~95 % idle, so it
perturbs only the I/O subsystem.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.params import GB, MiB

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

#: CPU time per iteration (memcpy of the 1 MB buffer + syscall overhead).
#: Tiny on purpose: the paper reports the stressed node's CPUs stay
#: nearly 95% idle.
_STRESSOR_CPU_PER_ITER = 2.5e-3


def disk_stressor(node: "Node", buffer_size: int = MiB, limit: int = 2 * GB,
                  stream: str = "stressor"):
    """Generator process implementing the Figure 8 disk stressor.

    Run it with ``sim.process(disk_stressor(node))``; it loops forever
    (stop it by interrupting the process or ending the simulation).
    """
    offset = 0
    while True:
        yield node.cpu.consume(_STRESSOR_CPU_PER_ITER)
        if offset > limit:
            offset = 0          # truncate F to zero bytes
            node.cache.invalidate(stream)
            continue
        yield node.disk.write(offset, buffer_size, stream=stream)
        offset += buffer_size


def cpu_stressor(node: "Node", tasks: int = 1, slice_seconds: float = 0.1):
    """Generator process that keeps *tasks* CPU hogs running forever.

    Used by the resource-contention extension experiments (the paper's
    Section 6 lists CPU/memory/network contention as future work).
    """
    def hog(node):
        while True:
            yield node.cpu.consume(slice_seconds)

    for _ in range(tasks):
        node.sim.process(hog(node), daemon=True)
    # Keep this process alive as a handle.
    while True:
        yield node.sim.timeout(3600.0)


def network_stressor(src: "Node", dst: "Node", message_size: int = MiB,
                     gap: float = 0.0):
    """Generator process: a bulk transfer loop saturating the path from
    *src* to *dst* (a neighbouring job moving data through the same
    NICs).  Part of the paper's Section 6 future-work axis."""
    while True:
        yield from src.network.transfer(src, dst, message_size)
        if gap > 0:
            yield src.sim.timeout(gap)


def memory_stressor(node: "Node", fraction: float = 0.75):
    """Shrink *node*'s page cache, as a memory-hungry co-located job
    would (its anonymous pages evict cached file pages).

    Immediate (not a process): returns the number of cached pages
    dropped.  ``fraction`` is the share of the cache taken away.
    """
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    cache = node.cache
    new_capacity = int(cache.capacity_pages * (1 - fraction))
    dropped = 0
    while cache.cached_pages > new_capacity:
        cache._pages.popitem(last=False)
        dropped += 1
    cache.capacity_pages = new_capacity
    return dropped
