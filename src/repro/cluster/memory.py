"""Page-cache model.

An LRU cache of fixed-size pages keyed by (file id, page index).  Local
file systems consult it before touching the disk; this is what makes a
second pass over a database fragment essentially free when it fits in
RAM — and is the reason the paper notes (Section 4.3) that the nt
database being only 2–3× RAM size limits how much parallel I/O can help.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from repro.cluster.params import MemoryParams


class PageCache:
    """LRU page cache for one node."""

    def __init__(self, params: MemoryParams | None = None, name: str = "pagecache"):
        self.params = params or MemoryParams()
        self.name = name
        self.page_size = self.params.page_size
        self.capacity_pages = int(self.params.ram * self.params.cache_fraction) // self.page_size
        self._pages: "OrderedDict[Tuple[str, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _page_range(self, offset: int, size: int) -> range:
        first = offset // self.page_size
        last = (offset + size - 1) // self.page_size
        return range(first, last + 1)

    # ------------------------------------------------------------------
    def lookup(self, file_id: str, offset: int, size: int) -> Tuple[int, int]:
        """Return (hit_bytes, miss_bytes) for a read, updating LRU order
        and hit/miss counters.  Byte accounting is per page."""
        if size <= 0:
            return (0, 0)
        hit = miss = 0
        end = offset + size
        for page in self._page_range(offset, size):
            lo = max(offset, page * self.page_size)
            hi = min(end, (page + 1) * self.page_size)
            span = hi - lo
            key = (file_id, page)
            if key in self._pages:
                self._pages.move_to_end(key)
                hit += span
                self.hits += 1
            else:
                miss += span
                self.misses += 1
        return (hit, miss)

    def contains(self, file_id: str, offset: int, size: int) -> bool:
        """True if the whole byte range is cached (no LRU side effects)."""
        return all((file_id, p) in self._pages for p in self._page_range(offset, size))

    # ------------------------------------------------------------------
    def insert(self, file_id: str, offset: int, size: int) -> None:
        """Populate pages covering the range, evicting LRU pages."""
        if size <= 0:
            return
        for page in self._page_range(offset, size):
            key = (file_id, page)
            if key in self._pages:
                self._pages.move_to_end(key)
            else:
                self._pages[key] = None
                while len(self._pages) > self.capacity_pages:
                    self._pages.popitem(last=False)

    def invalidate(self, file_id: str) -> None:
        """Drop every cached page of *file_id* (e.g. on truncate)."""
        doomed = [k for k in self._pages if k[0] == file_id]
        for k in doomed:
            del self._pages[k]

    # ------------------------------------------------------------------
    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    @property
    def cached_bytes(self) -> int:
        return len(self._pages) * self.page_size

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<PageCache {self.name!r} pages={len(self._pages)}/"
                f"{self.capacity_pages}>")
