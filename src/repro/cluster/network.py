"""Myrinet/TCP network model.

Each node owns a full-duplex :class:`NIC`: an independent transmit and
receive channel, each serialising traffic at the effective TCP bandwidth
(Netperf: ~112 MB/s on the paper's 2 Gb/s Myrinet).  The switch itself
is non-blocking (Myrinet crossbar), so the only shared contention points
are the endpoint NICs.

Transfers are chopped into ``segment_size`` chunks so that concurrent
flows through the same NIC direction interleave fairly, approximating
TCP's per-flow fair share.  Endpoint CPU cost of the TCP stack is
charged to both nodes' CPUs — this is the "additional TCP/IP layer"
overhead that makes over-PVFS *slower* than local disk at one worker
(paper Figure 5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.sim import Resource, Simulator, TimeWeightedMonitor, Timeout
from repro.cluster.params import NetworkParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node


class NIC:
    """One node's network interface: a tx channel and an rx channel."""

    def __init__(self, sim: Simulator, params: NetworkParams, name: str = "nic"):
        self.sim = sim
        self.params = params
        self.name = name
        self.tx = Resource(sim, capacity=1, name=f"{name}.tx")
        self.rx = Resource(sim, capacity=1, name=f"{name}.rx")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.tx_busy = TimeWeightedMonitor(sim, name=f"{name}.tx_busy")
        self.rx_busy = TimeWeightedMonitor(sim, name=f"{name}.rx_busy")
        sim.check.register(self)

    # ------------------------------------------------------------------
    # Invariant hooks (see repro.sim.check); the tx/rx channel Resources
    # register themselves, so only the NIC-level stats need checking.
    # ------------------------------------------------------------------
    def invariant_errors(self, strict: bool) -> list:
        errs = []
        if strict and (self.bytes_sent < 0 or self.bytes_received < 0):
            errs.append(f"nic {self.name!r}: negative byte counters")
        return errs

    def drain_errors(self) -> list:
        errs = []
        if self.tx_busy.level != 0 or self.rx_busy.level != 0:
            errs.append(f"nic {self.name!r}: channel busy at drain "
                        f"(tx={self.tx_busy.level} rx={self.rx_busy.level})")
        return errs


class Network:
    """The cluster interconnect."""

    def __init__(self, sim: Simulator, params: Optional[NetworkParams] = None):
        self.sim = sim
        self.params = params or NetworkParams()
        self._nics: Dict[str, NIC] = {}
        self.messages_delivered = 0
        self.bytes_delivered = 0

    # ------------------------------------------------------------------
    def attach(self, node: "Node") -> NIC:
        """Create and register the NIC for *node*."""
        if node.name in self._nics:
            raise ValueError(f"node {node.name!r} already attached")
        nic = NIC(self.sim, self.params, name=f"{node.name}.nic")
        self._nics[node.name] = nic
        return nic

    def nic(self, node_name: str) -> NIC:
        return self._nics[node_name]

    # ------------------------------------------------------------------
    def transfer(self, src: "Node", dst: "Node", size: int, charge_cpu: bool = True):
        """Generator: move *size* bytes from *src* to *dst*.

        Completes when the last byte is delivered.  Local transfers
        (``src is dst``) cost only the stack CPU time.
        """
        p = self.params
        if size < 0:
            raise ValueError("size must be >= 0")
        if charge_cpu:
            cpu_cost = p.per_message_cpu + size * p.per_byte_cpu
            # TCP stack work on both endpoints; overlapped with transfer
            # on the wire, so charge it first (send side) and last
            # (receive side) without double-counting wall time.
            yield src.cpu.consume(cpu_cost)
        if src is dst and size > 0:
            # Loopback: no wire, but the stack still moves the bytes.
            yield src.cpu.consume(size / p.loopback_bandwidth)
        if src is not dst and size > 0:
            snic, dnic = self._nics[src.name], self._nics[dst.name]
            remaining = size
            first = True
            txreq = rxreq = None
            try:
                while remaining > 0:
                    seg = min(remaining, p.segment_size)
                    txreq = snic.tx.request()
                    yield txreq
                    snic.tx_busy.set(1)
                    rxreq = dnic.rx.request()
                    yield rxreq
                    dnic.rx_busy.set(1)
                    wire = seg / p.bandwidth
                    if first:
                        wire += p.latency
                        first = False
                    yield Timeout(self.sim, wire)
                    snic.tx_busy.set(0 if snic.tx.queue_length == 0 else 1)
                    dnic.rx_busy.set(0 if dnic.rx.queue_length == 0 else 1)
                    txreq.release()
                    rxreq.release()
                    txreq = rxreq = None
                    remaining -= seg
            finally:
                # Cancelled mid-segment: give the channels back so the
                # dead flow stops serialising everyone else's traffic.
                # ``release`` is idempotent, so the normal path's own
                # releases above are unaffected.
                if txreq is not None:
                    txreq.release()
                    snic.tx_busy.set(1 if snic.tx.count else 0)
                if rxreq is not None:
                    rxreq.release()
                    dnic.rx_busy.set(1 if dnic.rx.count else 0)
            snic.bytes_sent += size
            dnic.bytes_received += size
        if charge_cpu:
            cpu_cost = p.per_message_cpu + size * p.per_byte_cpu
            yield dst.cpu.consume(cpu_cost)
        self.messages_delivered += 1
        self.bytes_delivered += size

    # ------------------------------------------------------------------
    def message_time(self, size: int) -> float:
        """Uncontended wire time for a message of *size* bytes."""
        return self.params.latency + size / self.params.bandwidth
