"""A cluster node: CPU + disk + page cache + NIC."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim import Simulator
from repro.cluster.cpu import CPU
from repro.cluster.disk import Disk
from repro.cluster.memory import PageCache
from repro.cluster.params import NodeParams, prairiefire_params

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import NIC, Network


class Node:
    """One machine in the cluster.

    Construction wires the node into *network* (creating its NIC) and
    instantiates its hardware from *params*.
    """

    def __init__(self, sim: Simulator, name: str, network: "Network",
                 params: Optional[NodeParams] = None):
        self.sim = sim
        self.name = name
        self.params = params or prairiefire_params()
        self.network = network
        self.cpu = CPU(sim, cores=self.params.cpu.cores, name=f"{name}.cpu")
        self.disk = Disk(sim, self.params.disk, name=f"{name}.disk")
        self.cache = PageCache(self.params.memory, name=f"{name}.cache")
        self.nic: "NIC" = network.attach(self)

    # ------------------------------------------------------------------
    def send(self, dst: "Node", size: int):
        """Generator: transmit *size* bytes to *dst* (yield from it)."""
        yield from self.network.transfer(self, dst, size)

    def compute(self, work: float):
        """Generator: burn *work* seconds of CPU."""
        yield self.cpu.consume(work)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name!r}>"
