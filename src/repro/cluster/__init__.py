"""Simulated cluster hardware: nodes, disks, CPUs, network, stressors.

The default parameters model the PrairieFire cluster of the paper's
Section 4.1: dual AMD Athlon MP nodes with 2 GB RAM, a 20 GB IDE disk
(26 MB/s read / 32 MB/s write per Bonnie), and 2 Gb/s full-duplex
Myrinet with ~112 MB/s effective TCP bandwidth per Netperf.
"""

from repro.cluster.params import (
    CPUParams,
    DiskParams,
    MemoryParams,
    NetworkParams,
    NodeParams,
    prairiefire_params,
)
from repro.cluster.cpu import CPU
from repro.cluster.disk import Disk, DiskRequest
from repro.cluster.memory import PageCache
from repro.cluster.network import NIC, Network
from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.cluster.stress import (cpu_stressor, disk_stressor,
                                  memory_stressor, network_stressor)

__all__ = [
    "CPU",
    "CPUParams",
    "Cluster",
    "Disk",
    "DiskParams",
    "DiskRequest",
    "MemoryParams",
    "NIC",
    "Network",
    "NetworkParams",
    "Node",
    "NodeParams",
    "PageCache",
    "cpu_stressor",
    "disk_stressor",
    "memory_stressor",
    "network_stressor",
    "prairiefire_params",
]
