"""Shared-memory fragment packs.

A fragment's packed scan structures (the flat sentinel-separated
concatenation, rolling word codes, offsets tables — see
:mod:`repro.blast.scankernel`) are immutable once built, which makes
them ideal for ``multiprocessing.shared_memory``: the master packs each
fragment **once**, and every pool worker attaches the segment and
reconstructs zero-copy ``numpy`` views over it.  The description
strings ride along in the same segment (a UTF-8 blob plus an offsets
table), so a worker needs nothing but the :class:`PackSpec` — a small
picklable descriptor — to serve searches against the fragment.

Lifetime discipline (the same orphan-cleanup lesson PR 1 applied to
simulated I/O processes):

* every segment this process creates is tracked in a
  :class:`ShmRegistry` whose ``release_all`` runs at interpreter exit;
* Python's own ``resource_tracker`` is the crash net — if the creating
  process is SIGKILLed, the tracker daemon unlinks every registered
  segment when the pipe to its parent drops;
* workers *attach* but never own: the resource-tracker daemon is
  shared across the process tree (its fd is inherited under fork and
  spawn alike), so a worker's attach merely re-registers the name into
  the same set — workers only ``close()`` on teardown and must never
  unregister, or they would strip the creator's crash-net entry.

Segment names carry the ``repro_`` prefix so a leak check is one
``ls /dev/shm`` away (CI fails the job if any survive the suite).
"""

from __future__ import annotations

import atexit
import os
import secrets
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blast.scankernel import ScanStructures, build_scan_structures

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

#: Offsets inside a segment are aligned so every reconstructed array
#: view is at least cacheline-aligned.
_ALIGN = 64

#: Every segment this package creates starts with this prefix; the CI
#: leak check greps ``/dev/shm`` for it (and for ``psm_``, the stdlib's
#: anonymous default, which we never use on purpose).
NAME_PREFIX = "repro"

#: The ScanStructures array fields serialized into a pack, in layout
#: order.  ``hdr_blob``/``hdr_offsets`` carry the description strings.
_FIELDS = ("concat", "starts", "lengths", "codes", "code_pos",
           "hdr_blob", "hdr_offsets")


class PackIntegrityError(RuntimeError):
    """A shared-memory pack failed CRC32 verification.

    Raised at publish time (a torn write — the read-back of the fresh
    segment differs from the source arrays) or at attach time (the
    segment was corrupted between publish and attach).  Typed so the
    pool and CLI can fail loudly and distinctly instead of serving
    silent garbage hits from a damaged mapping.  Takes a plain message
    so it pickles across worker pipes.
    """


def _integrity_error(name: str, field: str, expected: int,
                     got: int) -> PackIntegrityError:
    return PackIntegrityError(
        f"pack {name!r}: field {field!r} CRC32 mismatch "
        f"(expected {expected:#010x}, got {got:#010x})")


def _crc(arr: np.ndarray) -> int:
    """CRC32 over an array's raw bytes (contiguous by construction)."""
    try:
        return zlib.crc32(memoryview(arr).cast("B"))
    except TypeError:  # pragma: no cover - non-contiguous fallback
        return zlib.crc32(arr.tobytes())


@dataclass(frozen=True)
class PackSpec:
    """Picklable descriptor of one shared-memory fragment pack.

    ``cache_token`` is the pack's ScanCache identity, minted from the
    parent database's existing token+version scheme as
    ``(parent_token, parent_version, fragment_id)`` — unique per
    fragment even when greedy binning yields fragments of identical
    shape, and stale by construction once the parent mutates.
    """

    name: str                     # shared-memory segment name
    cache_token: tuple
    seqtype: str
    fragment_id: Optional[int]
    k: int
    base: int
    n_sequences: int
    total_residues: int
    source_ids: Tuple[int, ...]   # parent ordinal of each local sequence
    arrays: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    size: int
    #: CRC32 per serialized field, computed from the published segment
    #: itself (read-back) so a torn publish fails immediately; attach
    #: re-verifies unless explicitly told not to.  Empty = unverified
    #: legacy spec.
    checksums: Tuple[Tuple[str, int], ...] = ()


def _segment_name(fragment_id: Optional[int]) -> str:
    frag = "x" if fragment_id is None else str(fragment_id)
    return (f"{NAME_PREFIX}_{os.getpid()}_f{frag}_{secrets.token_hex(6)}")


def ensure_tracker() -> None:
    """Start the resource-tracker daemon in *this* process now.

    The pool calls this before spawning workers: the tracker starts
    lazily on first shared-memory use, and a worker forked before that
    point would lazily spawn its *own* tracker whose attach
    registrations nothing ever unlinks (spurious leak warnings at
    worker exit).  Started eagerly, every child inherits the parent
    tracker's fd and all registrations land in one shared cache where
    create/attach re-registration is idempotent and the single
    unlink-time unregister clears the name for good.
    """
    try:  # pragma: no cover - trivial passthrough to stdlib
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:
        pass


class ShmRegistry:
    """Owner-side ledger of created segments with guaranteed unlink.

    ``release_all`` runs via ``atexit`` in the creating process only
    (children forked from it inherit the ledger but never own the
    segments, so release checks the pid).
    """

    def __init__(self):
        self._segments: Dict[str, object] = {}
        self._pid = os.getpid()
        atexit.register(self.release_all)

    def register(self, shm) -> None:
        self._segments[shm.name] = shm

    def names(self) -> List[str]:
        return list(self._segments)

    def release(self, name: str) -> bool:
        """Unlink and close one segment; idempotent, crash-tolerant."""
        if os.getpid() != self._pid:  # pragma: no cover - child ledger copy
            self._segments.pop(name, None)
            return False
        shm = self._segments.pop(name, None)
        if shm is None:
            return False
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        try:
            shm.close()
        except BufferError:  # pragma: no cover - live views; exit soon
            pass
        return True

    def release_all(self) -> int:
        released = 0
        for name in list(self._segments):
            released += bool(self.release(name))
        return released

    def __len__(self) -> int:
        return len(self._segments)


_DEFAULT_REGISTRY: Optional[ShmRegistry] = None


def default_registry() -> ShmRegistry:
    """The process-wide registry (created on first use, per process)."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None or _DEFAULT_REGISTRY._pid != os.getpid():
        _DEFAULT_REGISTRY = ShmRegistry()
    return _DEFAULT_REGISTRY


# ----------------------------------------------------------------------
def pack_layout(structs: ScanStructures, descriptions: Sequence[str]):
    """Compute the canonical pack byte layout for *structs*.

    Returns ``(arrays, layout, size)`` where *arrays* maps field name →
    contiguous ndarray, *layout* is the ``(field, dtype, shape, offset)``
    section table with every offset rounded up to :data:`_ALIGN`, and
    *size* is the total data-region length.  This single function
    defines the layout for **both** shared-memory segments
    (:func:`create_pack`) and on-disk packs
    (:mod:`repro.exec.diskpack`), which is what lets a pack file be
    bulk-copied into a segment without re-encoding.
    """
    hdr_parts = [d.encode() for d in descriptions]
    hdr_offsets = np.zeros(len(hdr_parts) + 1, dtype=np.int64)
    if hdr_parts:
        np.cumsum([len(b) for b in hdr_parts], out=hdr_offsets[1:])
    hdr_blob = np.frombuffer(b"".join(hdr_parts), dtype=np.uint8)

    arrays = {
        "concat": structs.concat, "starts": structs.starts,
        "lengths": structs.lengths, "codes": structs.codes,
        "code_pos": structs.code_pos,
        "hdr_blob": hdr_blob, "hdr_offsets": hdr_offsets,
    }
    layout = []
    offset = 0
    for field in _FIELDS:
        arr = np.ascontiguousarray(arrays[field])
        arrays[field] = arr
        layout.append((field, arr.dtype.str, tuple(arr.shape), offset))
        offset += -(-arr.nbytes // _ALIGN) * _ALIGN
    return arrays, tuple(layout), offset


def create_pack(structs: ScanStructures, descriptions: Sequence[str],
                seqtype: str, cache_token: tuple,
                fragment_id: Optional[int] = None,
                source_ids: Optional[Sequence[int]] = None,
                registry: Optional[ShmRegistry] = None) -> PackSpec:
    """Copy packed scan structures into a fresh shared-memory segment.

    Returns the :class:`PackSpec` workers attach with.  The segment is
    registered for unlink in *registry* (default: the process-wide
    one).
    """
    if _shm is None:  # pragma: no cover
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    arrays, layout, offset = pack_layout(structs, descriptions)

    name = _segment_name(fragment_id)
    shm = _shm.SharedMemory(name=name, create=True, size=max(offset, 1))
    checksums = []
    for field, dtype, shape, off in layout:
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        view[...] = arrays[field]
        # Publish-time integrity: checksum the segment's own bytes and
        # cross-check against the source — a torn write fails here, and
        # the recorded CRC lets every attach re-verify cheaply.
        written = _crc(view)
        expected = _crc(arrays[field])
        if written != expected:  # pragma: no cover - torn publish
            shm.close()
            shm.unlink()
            raise _integrity_error(name, field, expected, written)
        checksums.append((field, written))
    # Explicit None check: an *empty* ShmRegistry is falsy (__len__).
    (registry if registry is not None else default_registry()).register(shm)
    return PackSpec(
        name=name, cache_token=cache_token, seqtype=seqtype,
        fragment_id=fragment_id,
        k=structs.k, base=structs.base, n_sequences=structs.n_sequences,
        total_residues=structs.total_residues,
        source_ids=tuple(int(i) for i in (source_ids or range(structs.n_sequences))),
        arrays=tuple(layout), size=max(offset, 1),
        checksums=tuple(checksums),
    )


def pack_fragment(db, k: int, base: int, cache_token: tuple,
                  registry: Optional[ShmRegistry] = None) -> PackSpec:
    """Build scan structures for a fragment database and publish them
    as a shared-memory pack in one step."""
    structs = build_scan_structures(db, k, base)
    descriptions = [db.description(i) for i in range(len(db))]
    return create_pack(structs, descriptions, db.seqtype, cache_token,
                       fragment_id=db.fragment_id,
                       source_ids=getattr(db, "source_ids", None),
                       registry=registry)


def publish_pack_bytes(data, layout, checksums, *, seqtype: str,
                       cache_token: tuple, fragment_id: Optional[int],
                       k: int, base: int, n_sequences: int,
                       total_residues: int,
                       source_ids: Sequence[int], size: int,
                       registry: Optional[ShmRegistry] = None) -> PackSpec:
    """Publish an already-encoded pack data region into shared memory.

    *data* is the raw byte region of a pack whose sections follow the
    canonical :func:`pack_layout` — in practice a ``memoryview`` over a
    mmapped on-disk pack (:class:`repro.exec.diskpack.DiskPack`).  The
    bytes are bulk-copied into a fresh segment (one memcpy, no
    re-encoding) and every field is re-checksummed from the segment
    itself against the recorded CRC32s, so a torn copy or a corrupted
    source fails with :class:`PackIntegrityError` before any worker can
    attach.  This is the pool's cold-start path: disk → shm without
    rebuilding a single scan structure.
    """
    if _shm is None:  # pragma: no cover
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    if len(data) != size:
        raise PackIntegrityError(
            f"pack data region is {len(data)} bytes, layout expects {size}")
    name = _segment_name(fragment_id)
    shm = _shm.SharedMemory(name=name, create=True, size=max(size, 1))
    try:
        if size:
            shm.buf[:size] = data
        crc_map = dict(checksums)
        for field, dtype, shape, off in layout:
            view = np.ndarray(tuple(shape), dtype=dtype, buffer=shm.buf,
                              offset=off)
            got = _crc(view)
            expected = crc_map.get(field)
            if expected is None or got != expected:
                raise _integrity_error(name, field, expected or 0, got)
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    (registry if registry is not None else default_registry()).register(shm)
    return PackSpec(
        name=name, cache_token=cache_token, seqtype=seqtype,
        fragment_id=fragment_id, k=k, base=base,
        n_sequences=n_sequences, total_residues=total_residues,
        source_ids=tuple(int(i) for i in source_ids),
        arrays=tuple((f, d, tuple(s), o) for f, d, s, o in layout),
        size=max(size, 1), checksums=tuple((f, int(c)) for f, c in checksums),
    )


def read_pack_bytes(spec: PackSpec) -> bytes:
    """Copy a published pack's whole data region out of shared memory.

    This is the master-side half of pack *shipping*: the bytes follow
    the canonical :func:`pack_layout` (the same region an on-disk
    ``.rpk`` pack carries), so a remote node can republish them through
    :func:`publish_pack_bytes` — which re-verifies every per-field
    CRC32 from its own fresh segment, catching corruption introduced
    anywhere along the copy → frame → copy chain.
    """
    if _shm is None:  # pragma: no cover
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    seg = _shm.SharedMemory(name=spec.name)
    try:
        return bytes(seg.buf[:spec.size])
    finally:
        seg.close()


def corrupt_segment(spec: PackSpec, field: Optional[str] = None,
                    nbytes: int = 8) -> str:
    """Flip bytes inside one field of a published pack (fault hook).

    Damages *nbytes* in the middle of *field*'s data region (default:
    the largest field, usually the concatenation) so the corruption is
    guaranteed to land on checksummed payload rather than alignment
    padding.  Returns the corrupted field name.  Test/chaos use only —
    this is the torn-segment fault that attach-time CRC verification
    must catch.
    """
    if _shm is None:  # pragma: no cover
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    layout = {f: (dtype, shape, off) for f, dtype, shape, off in spec.arrays}
    if field is None:
        field = max(layout, key=lambda f: int(
            np.prod(layout[f][1], dtype=np.int64))
            * np.dtype(layout[f][0]).itemsize)
    dtype, shape, off = layout[field]
    size = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
    if size == 0:
        raise ValueError(f"field {field!r} is empty; nothing to corrupt")
    seg = _shm.SharedMemory(name=spec.name)
    try:
        start = off + max(0, size // 2 - 1)
        for pos in range(start, min(off + size, start + nbytes)):
            seg.buf[pos] ^= 0xFF
    finally:
        seg.close()
    return field


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable descriptor of one worker's shm result arena."""

    name: str
    size: int


class ResultArena:
    """A per-worker shared-memory slab for batched result shipping.

    The worker serializes a completed task's results
    (:mod:`repro.exec.results`), writes the blob into its arena, and
    sends only a small ``(offset, nbytes, crc)`` descriptor over the
    pipe; the master reads the blob back and verifies the CRC32 before
    decoding — the same integrity discipline as pack fields, so a torn
    or scribbled arena raises :class:`PackIntegrityError` instead of
    producing silent garbage hits.  One writer (the worker), one
    reader (the master), strictly alternating: the master consumes a
    descriptor before it dispatches the worker's next task, so a
    single slot at offset 0 is race-free.
    """

    def __init__(self, spec: ArenaSpec, create: bool = False,
                 registry: Optional[ShmRegistry] = None):
        if _shm is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        self.spec = spec
        self._shm = _shm.SharedMemory(name=spec.name, create=create,
                                      size=spec.size if create else 0)
        if create:
            (registry if registry is not None
             else default_registry()).register(self._shm)

    @classmethod
    def create(cls, size: int, tag: str = "a",
               registry: Optional[ShmRegistry] = None) -> "ResultArena":
        """Allocate a fresh arena (master side; registered for unlink)."""
        name = (f"{NAME_PREFIX}_{os.getpid()}_arena_{tag}_"
                f"{secrets.token_hex(6)}")
        return cls(ArenaSpec(name=name, size=max(int(size), 1)), create=True,
                   registry=registry)

    @property
    def size(self) -> int:
        return self.spec.size

    def write(self, blob: bytes, offset: int = 0) -> Tuple[int, int, int]:
        """Copy *blob* into the arena; returns ``(offset, nbytes, crc)``
        — the descriptor the pipe carries instead of the payload."""
        n = len(blob)
        if offset < 0 or offset + n > self.spec.size:
            raise ValueError(f"blob of {n} bytes does not fit arena "
                             f"{self.spec.name!r} ({self.spec.size} bytes) "
                             f"at offset {offset}")
        self._shm.buf[offset:offset + n] = blob
        return offset, n, zlib.crc32(blob)

    def read(self, offset: int, nbytes: int, crc: int) -> bytes:
        """Read a descriptor's payload back, verifying its CRC32;
        raises :class:`PackIntegrityError` on mismatch."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.spec.size:
            raise PackIntegrityError(
                f"arena {self.spec.name!r}: descriptor ({offset}, {nbytes}) "
                f"exceeds arena size {self.spec.size}")
        blob = bytes(self._shm.buf[offset:offset + nbytes])
        got = zlib.crc32(blob)
        if got != crc:
            raise PackIntegrityError(
                f"arena {self.spec.name!r}: result blob CRC32 mismatch "
                f"(expected {crc:#010x}, got {got:#010x})")
        return blob

    def close(self) -> None:
        """Drop the mapping (the creating registry owns the unlink)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - live views; exit soon
            pass


class AttachedPack:
    """A pack mapped into this process: zero-copy views, no ownership.

    Attach verifies the segment against the spec's recorded CRC32s by
    default (*verify=False* skips it, e.g. for hot re-attach of a
    segment this process just published), so a corrupted or torn
    mapping raises :class:`PackIntegrityError` before a single hit can
    be computed from it.
    """

    def __init__(self, spec: PackSpec, verify: bool = True):
        if _shm is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        self.spec = spec
        self._shm = _shm.SharedMemory(name=spec.name)
        views = {}
        for field, dtype, shape, off in spec.arrays:
            views[field] = np.ndarray(shape, dtype=dtype,
                                      buffer=self._shm.buf, offset=off)
        self._views = views
        if verify:
            try:
                self.verify()
            except PackIntegrityError:
                self.close()
                raise
        self.hdr_blob: np.ndarray = views["hdr_blob"]
        self.hdr_offsets: np.ndarray = views["hdr_offsets"]
        self.structs = ScanStructures(
            k=spec.k, base=spec.base, n_sequences=spec.n_sequences,
            total_residues=spec.total_residues, concat=views["concat"],
            starts=views["starts"], lengths=views["lengths"],
            codes=views["codes"], code_pos=views["code_pos"])

    def verify(self) -> None:
        """Re-checksum every field against the spec; raises
        :class:`PackIntegrityError` on the first mismatch."""
        for field, expected in self.spec.checksums:
            got = _crc(self._views[field])
            if got != expected:
                raise _integrity_error(self.spec.name, field, expected, got)

    def close(self) -> None:
        """Drop the mapping (never unlinks — the creator owns that).
        Tolerates still-exported views; the mapping then lives until
        process exit, which is where teardown calls this anyway."""
        try:
            self._shm.close()
        except BufferError:
            pass


class PackDB:
    """Duck-typed ``SequenceDB`` surface over an attached pack.

    Serves ``search(engine="scan")`` in a worker without ever copying
    sequence payloads: ``sequence(i)`` is a slice view into the shared
    concatenation, descriptions decode lazily from the shared header
    blob.  Carries the pack's ScanCache identity so a worker cache
    primed via :meth:`~repro.blast.scankernel.ScanCache.put` hits.
    """

    def __init__(self, pack: AttachedPack):
        spec = pack.spec
        self._pack = pack
        self.seqtype = spec.seqtype
        self.name = spec.name
        self.fragment_id = spec.fragment_id
        self.source_ids = list(spec.source_ids)
        # ScanCache key compatibility: the pack's token is the whole
        # identity, so a primed entry is an exact hit and two packs can
        # never alias (tokens are tuples, but the cache only needs
        # hashability and equality).
        self._scan_token = spec.cache_token
        self._version = 0
        self._hdr_cache: Dict[int, str] = {}

    def __len__(self) -> int:
        return self._pack.spec.n_sequences

    @property
    def n_sequences(self) -> int:
        return self._pack.spec.n_sequences

    @property
    def total_residues(self) -> int:
        return self._pack.spec.total_residues

    def lengths(self) -> List[int]:
        return [int(x) for x in self._pack.structs.lengths]

    def scan_structures(self, k: int, base: int):
        """The pack's pre-built structures when they match ``(k, base)``.

        ``search(engine="scan")`` prefers this provider over a
        :class:`~repro.blast.scankernel.ScanCache` rebuild — the pack
        already *is* the scan structure, in shm or mmapped from disk —
        and falls back to the cache on mismatch (``None``).
        """
        s = self._pack.structs
        return s if (s.k == k and s.base == base) else None

    def sequence(self, i: int) -> np.ndarray:
        return self._pack.structs.subject(i)

    def description(self, i: int) -> str:
        desc = self._hdr_cache.get(i)
        if desc is None:
            lo = int(self._pack.hdr_offsets[i])
            hi = int(self._pack.hdr_offsets[i + 1])
            desc = bytes(self._pack.hdr_blob[lo:hi]).decode()
            self._hdr_cache[i] = desc
        return desc

    def __iter__(self):
        return ((self.description(i), self.sequence(i))
                for i in range(len(self)))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<PackDB {self.name!r} {self.seqtype} n={len(self)} "
                f"residues={self.total_residues}>")
