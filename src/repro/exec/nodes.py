"""Worker-node agent and master-side node client.

This module takes the execution pool across the machine boundary: a
:class:`NodeAgent` is a long-lived process (``repro-node`` / ``python
-m repro.cli node``) that listens on a TCP socket, accepts a master's
session, receives fragment packs **once** as raw bytes (republished
locally through :func:`~repro.exec.shm.publish_pack_bytes`, CRC-checked
field by field), and then serves ``(query batch, fragment range)``
tasks with exactly the same execution core as a local pipe worker —
byte-identical results by construction.

Pack caching is the CEFT mirroring substrate: the agent keys every
received pack by its ``(token, version, fragment_id)`` identity and
keeps it across sessions, so a master that reconnects after a network
drop ships nothing — the hello reply lists the held identities and the
master sends a tiny ``adopt`` instead of megabytes of pack bytes (a
re-read, not a re-ship).

The master side is :class:`NodeClient` (dial with bounded backoff,
hello handshake, ship-or-adopt accounting) and :class:`_NodeProcess`, a
duck-typed stand-in for ``multiprocessing.Process`` so a remote worker
slots into the pool's existing ``_Worker`` bookkeeping — liveness
sweeps, hang kills, and close() escalation all reuse one code path.

:class:`NodeFleet` spawns local agents for tests, chaos sweeps, CI and
benchmarks: the parent keeps each listening socket open, so respawning
a killed agent re-serves the *same* port with no rebind race, and
reaps any shared-memory segments a SIGKILLed agent left behind.
"""

from __future__ import annotations

import glob
import multiprocessing as mp
import os
import signal
import socket
import sys
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.blast.scankernel import ScanCache
from repro.blast.search import search, search_batch
from repro.exec.faults import FaultInjector, FaultPlan
from repro.exec.net import (FrameConnection, FrameError, NodeConnectError,
                            connect_backoff, pack_wire_meta, parse_address)
from repro.exec.results import encode_result_pairs
from repro.exec.shm import (AttachedPack, PackDB, PackIntegrityError,
                            ShmRegistry, ensure_tracker, publish_pack_bytes,
                            read_pack_bytes)

#: Wire protocol version, negotiated in the hello handshake.
PROTO_VERSION = 1

#: Exit code of an injected ``kill`` fault (SIGKILL semantics, no
#: cleanup) — mirrors the pipe worker's ``_FAULT_EXIT``.
_FAULT_EXIT = 86


def execute_task(packs, jobs, qis, names, cache):
    """Scan a fragment range for a query batch.

    The execution core shared by the pipe worker loop
    (:func:`repro.exec.pool._worker_main`) and the socket node agent:
    *packs* maps pack name → ``(AttachedPack, PackDB)``, *jobs* maps
    query index → job spec.  Returns ``(pairs, elapsed, fragment_ids)``
    where *pairs* is the ``(name, query_index, SearchResults)`` list a
    result message carries.
    """
    specs = [jobs[q] for q in qis]
    t0 = time.perf_counter()
    pairs = []
    frag_ids = []
    for name in names:
        pack, db = packs[name]
        if len(specs) == 1:
            job = specs[0]
            res = search(job.query, db, job.scheme, job.params,
                         query_id=job.query_id, ka=job.ka,
                         both_strands=job.both_strands,
                         engine="scan", scan_cache=cache,
                         effective_space=job.effective_space)
            pairs.append((name, qis[0], res))
        else:
            # Multi-query batch: one pass over this pack for every
            # query in the group.  scheme / params / ka / both_strands
            # are batch-wide (search_many builds them once); the
            # effective space is per query.
            job = specs[0]
            batch_res = search_batch(
                [s.query for s in specs], db, job.scheme, job.params,
                query_ids=[s.query_id for s in specs],
                ka=job.ka, both_strands=job.both_strands,
                engine="scan", scan_cache=cache,
                effective_spaces=[s.effective_space for s in specs])
            for q, res in zip(qis, batch_res):
                pairs.append((name, q, res))
        frag_ids.append(pack.spec.fragment_id)
    return pairs, time.perf_counter() - t0, frag_ids


# ----------------------------------------------------------------------
# Node side
# ----------------------------------------------------------------------
class NodeAgent:
    """A worker-node daemon serving pool tasks over a socket.

    One session at a time (the paper's topology: each node serves one
    master), but the agent outlives sessions: a master that stops or
    vanishes returns the agent to ``accept``, and the pack cache —
    keyed by ``(token, version, fragment_id)`` — survives, which is
    what makes a reconnect a re-read instead of a re-ship.

    *fault_plan* arms the same deterministic faults as a pipe worker
    plus the network kinds (``disconnect`` / ``partition`` / ``delay``
    / ``reorder``) applied at result-send time; ``None`` in
    production.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 listen_sock: Optional[socket.socket] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 task_sleep: float = 0.0,
                 cache_entries: int = 1024,
                 cache_bytes: int = 1 << 40,
                 node_id: Optional[str] = None):
        if listen_sock is None:
            listen_sock = socket.socket()
            listen_sock.setsockopt(socket.SOL_SOCKET,
                                   socket.SO_REUSEADDR, 1)
            listen_sock.bind((host, port))
            listen_sock.listen(8)
        self._lsock = listen_sock
        self.address: Tuple[str, int] = listen_sock.getsockname()[:2]
        self.node_id = node_id or f"node-{os.getpid()}"
        self.task_sleep = task_sleep
        self.fault_plan = fault_plan
        self._registry = ShmRegistry()
        self._cache = ScanCache(max_entries=cache_entries,
                                max_bytes=cache_bytes)
        #: cache_token -> (local PackSpec, AttachedPack, PackDB)
        self._store: Dict[tuple, tuple] = {}
        #: master-side pack name -> cache_token (task messages address
        #: packs by the *master's* segment names)
        self._aliases: Dict[str, tuple] = {}
        self.sessions_served = 0
        self.tasks_served = 0
        self._shutdown = False
        #: Created at the first hello and kept across sessions: a
        #: ``once`` fault must fire once per agent *process*, not once
        #: per session — re-arming on every reconnect would poison the
        #: faulted task forever (the same rule that makes the pool's
        #: local respawns healthy).  A fresh agent (fleet respawn)
        #: naturally re-arms, which keeps seeded chaos plans finite.
        self._injector: Optional[FaultInjector] = None

    # -- pack cache ----------------------------------------------------
    def held_tokens(self) -> List[tuple]:
        return list(self._store)

    def _release_token(self, token: tuple) -> None:
        entry = self._store.pop(token, None)
        if entry is None:
            return
        spec, pack, db = entry
        self._cache.evict(db._scan_token)
        del db, entry
        pack.close()
        self._registry.release(spec.name)

    def _packs_for(self, names) -> Dict[str, tuple]:
        out = {}
        for name in names:
            spec, pack, db = self._store[self._aliases[name]]
            out[name] = (pack, db)
        return out

    # -- serving -------------------------------------------------------
    def serve(self, max_sessions: Optional[int] = None) -> None:
        """Accept masters until shut down (or *max_sessions* served)."""
        try:
            while not self._shutdown:
                try:
                    sock, _peer = self._lsock.accept()
                except OSError:
                    break
                try:
                    self._session(sock)
                except Exception:  # pragma: no cover - keep serving
                    traceback.print_exc()
                self.sessions_served += 1
                if (max_sessions is not None
                        and self.sessions_served >= max_sessions):
                    break
        finally:
            self.close()

    def _session(self, sock: socket.socket) -> None:
        conn = FrameConnection(sock, name="master")
        rank = -1
        injector: Optional[FaultInjector] = None
        jobs: Dict[int, object] = {}
        held_result: Optional[tuple] = None   # reorder-fault holdback
        try:
            while True:
                msg = conn.recv()
                kind = msg[0]
                if kind == "hello":
                    info = msg[1] if len(msg) > 1 else {}
                    rank = int(info.get("rank", 0))
                    if self.fault_plan is not None:
                        if self._injector is None:
                            self._injector = FaultInjector(self.fault_plan,
                                                           rank)
                        injector = self._injector
                    conn.send(("ready", rank, {
                        "node": self.node_id,
                        "proto": PROTO_VERSION,
                        "pid": os.getpid(),
                        "held": self.held_tokens(),
                    }))
                elif kind == "publish":
                    meta, data = msg[1], msg[2]
                    token = tuple(meta["cache_token"])
                    try:
                        if injector is not None:
                            fault = injector.on_attach(meta["fragment_id"])
                            if fault is not None:
                                data = bytearray(data)
                                mid = len(data) // 2
                                for pos in range(mid, min(len(data),
                                                          mid + 8)):
                                    data[pos] ^= 0xFF
                        if token not in self._store:
                            spec = publish_pack_bytes(
                                data, meta["arrays"], meta["checksums"],
                                seqtype=meta["seqtype"], cache_token=token,
                                fragment_id=meta["fragment_id"],
                                k=meta["k"], base=meta["base"],
                                n_sequences=meta["n_sequences"],
                                total_residues=meta["total_residues"],
                                source_ids=meta["source_ids"],
                                size=meta["size"], registry=self._registry)
                            pack = AttachedPack(spec, verify=False)
                            db = PackDB(pack)
                            self._cache.put(db, spec.k, spec.base,
                                            pack.structs)
                            self._store[token] = (spec, pack, db)
                        self._aliases[meta["name"]] = token
                    except PackIntegrityError as exc:
                        conn.send(("integrity", rank, meta["name"],
                                   str(exc)))
                    except Exception:
                        conn.send(("error", rank, None, meta["name"],
                                   traceback.format_exc(), -1))
                elif kind == "adopt":
                    name, token = msg[1], tuple(msg[2])
                    if token in self._store:
                        self._aliases[name] = token
                    else:
                        conn.send(("error", rank, None, name,
                                   f"pack {token!r} is not cached on "
                                   f"{self.node_id}", -1))
                elif kind == "detach":
                    token = self._aliases.pop(msg[1], None)
                    if (token is not None
                            and token not in self._aliases.values()):
                        self._release_token(token)
                elif kind == "job":
                    jobs[msg[1]] = msg[2]
                elif kind == "forget_job":
                    jobs.pop(msg[1], None)
                elif kind == "task":
                    qis, names = msg[1], msg[2]
                    epoch = msg[3] if len(msg) > 3 else 0
                    frag_ids = tuple(
                        self._store[self._aliases[n]][0].fragment_id
                        if n in self._aliases else None for n in names)
                    if injector is not None:
                        fault = injector.on_task(qis, frag_ids)
                        if fault is not None:
                            if fault.kind == "kill":
                                os._exit(_FAULT_EXIT)
                            elif fault.kind in ("hang", "slow"):
                                time.sleep(fault.stall)
                            if fault.kind == "drop_result":
                                continue    # serve nothing, say nothing
                    try:
                        if self.task_sleep > 0:
                            time.sleep(self.task_sleep)
                        pairs, elapsed, _ = execute_task(
                            self._packs_for(names), jobs, qis, names,
                            self._cache)
                        out = ("result", rank, qis, names,
                               ("blob", encode_result_pairs(pairs)),
                               elapsed, epoch)
                        self.tasks_served += 1
                    except Exception:
                        out = ("error", rank, qis, names,
                               traceback.format_exc(), epoch)
                    if injector is not None:
                        nf = injector.on_result(qis, frag_ids)
                        if nf is not None:
                            if nf.kind == "disconnect":
                                return      # close without a goodbye
                            if nf.kind in ("partition", "delay"):
                                # Silent for the stall: no result, no
                                # heartbeat replies (we are not in
                                # recv), then resume as if healed.
                                time.sleep(nf.stall)
                            elif nf.kind == "reorder":
                                held_result = out
                                continue
                    conn.send(out)
                    if held_result is not None:
                        conn.send(held_result)   # delivered out of order
                        held_result = None
                elif kind == "stop":
                    if held_result is not None:
                        conn.send(held_result)
                        held_result = None
                    conn.send(("stopped", rank, {
                        "node": self.node_id, "rank": rank,
                        "tasks": self.tasks_served,
                        "held": len(self._store),
                    }))
                    return
                else:
                    conn.send(("error", rank, None, None,
                               f"unknown message {kind!r}", -1))
        except (EOFError, OSError, FrameError):
            return          # master went away; keep cache, re-accept
        finally:
            conn.close()

    def close(self) -> None:
        """Release every cached pack and the listening socket."""
        self._shutdown = True
        for token in list(self._store):
            try:
                self._release_token(token)
            except Exception:  # pragma: no cover - teardown best effort
                pass
        try:
            self._lsock.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
class NodeClient:
    """Master-side handle on one worker node.

    Owns the dial/backoff/hello lifecycle and the ship-or-adopt
    decision: packs whose identity the node already reported holding
    are adopted (bytes saved — the mirror re-read), everything else is
    shipped once and remembered.
    """

    def __init__(self, address, rank: int, *,
                 connect_attempts: int = 3,
                 connect_timeout: float = 2.0,
                 backoff_base: float = 0.05):
        self.address = parse_address(address)
        self.rank = rank
        self.connect_attempts = max(1, int(connect_attempts))
        self.connect_timeout = connect_timeout
        self.backoff_base = backoff_base
        self.conn: Optional[FrameConnection] = None
        self.node_info: dict = {}
        self.held: set = set()
        self.connects = 0
        self.packs_shipped = 0
        self.packs_adopted = 0
        self.bytes_shipped = 0
        self.bytes_saved = 0
        #: Reconnect pacing (pool-side): next attempt not before
        #: *retry_at*, with *retry_n* driving the exponential backoff.
        self.retry_n = 0
        self.retry_at = 0.0

    @property
    def alive(self) -> bool:
        return self.conn is not None and not self.conn.closed

    @property
    def label(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    def connect(self, attempts: Optional[int] = None,
                hello_timeout: float = 10.0) -> dict:
        """Dial, shake hands, learn what the node already holds.

        Raises :class:`~repro.exec.net.NodeConnectError` (never hangs:
        the hello reply is awaited under *hello_timeout*).
        """
        self.abort()
        sock = connect_backoff(
            self.address,
            attempts=self.connect_attempts if attempts is None else attempts,
            base_delay=self.backoff_base, timeout=self.connect_timeout)
        conn = FrameConnection(sock, name=f"node{self.rank}@{self.label}")
        try:
            conn.send(("hello", {"proto": PROTO_VERSION,
                                 "rank": self.rank}))
            if not conn.poll(hello_timeout):
                raise NodeConnectError(
                    f"node {self.label} accepted but did not answer "
                    f"hello within {hello_timeout}s")
            msg = conn.recv()
            if not (isinstance(msg, tuple) and msg
                    and msg[0] == "ready"):
                raise NodeConnectError(
                    f"node {self.label} answered {msg!r}, expected ready")
        except NodeConnectError:
            conn.close()
            raise
        except (EOFError, OSError, FrameError) as exc:
            conn.close()
            raise NodeConnectError(
                f"handshake with node {self.label} failed: {exc}") from exc
        except BaseException:
            conn.close()
            raise
        self.conn = conn
        self.node_info = msg[2] if len(msg) > 2 else {}
        self.held = {tuple(t) for t in self.node_info.get("held", ())}
        self.connects += 1
        self.retry_n = 0
        return self.node_info

    def ship(self, spec, data: Optional[bytes] = None) -> int:
        """Make the node hold *spec*'s pack under the master's name.

        Returns the bytes actually sent over the wire: the full data
        region on a cold ship, ~0 for an ``adopt`` of an identity the
        node caches (the reconnect / mirror fast path).
        """
        if self.conn is None:
            raise OSError("node client is not connected")
        if spec.cache_token in self.held:
            self.conn.send(("adopt", spec.name, spec.cache_token))
            self.packs_adopted += 1
            self.bytes_saved += spec.size
            return 0
        payload = bytes(data) if data is not None else read_pack_bytes(spec)
        self.conn.send(("publish", pack_wire_meta(spec), payload))
        self.held.add(spec.cache_token)
        self.packs_shipped += 1
        self.bytes_shipped += len(payload)
        return len(payload)

    def abort(self) -> None:
        """Drop the connection (idempotent)."""
        if self.conn is not None:
            self.conn.close()
            self.conn = None

    def ship_stats(self) -> dict:
        return {"address": self.label, "connects": self.connects,
                "packs_shipped": self.packs_shipped,
                "packs_adopted": self.packs_adopted,
                "bytes_shipped": self.bytes_shipped,
                "bytes_saved": self.bytes_saved}


class _NodeProcess:
    """Duck-typed ``multiprocessing.Process`` stand-in over a
    :class:`NodeClient`, so remote workers ride the pool's existing
    ``_Worker`` bookkeeping (liveness sweep, hang kill, close
    escalation) unchanged.  "Kill" means "drop the connection": the
    agent process on the far node is not ours to signal."""

    def __init__(self, client: NodeClient):
        self._client = client

    @property
    def pid(self) -> Optional[int]:
        return self._client.node_info.get("pid")

    @property
    def exitcode(self) -> Optional[int]:
        return None if self._client.alive else 0

    def is_alive(self) -> bool:
        return self._client.alive

    def terminate(self) -> None:
        self._client.abort()

    def kill(self) -> None:
        self._client.abort()

    def join(self, timeout: Optional[float] = None) -> None:
        return None


# ----------------------------------------------------------------------
# Local fleets (tests / chaos / CI / benchmarks)
# ----------------------------------------------------------------------
def _agent_main(lsock: socket.socket, fault_plan: Optional[FaultPlan],
                task_sleep: float, node_id: Optional[str]) -> None:
    """Forked-child entry point: serve on an inherited listen socket."""
    # SIGTERM must run atexit (the agent's ShmRegistry unlinks its
    # segments there); the default handler would skip it.
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    ensure_tracker()
    agent = NodeAgent(listen_sock=lsock, fault_plan=fault_plan,
                      task_sleep=task_sleep, node_id=node_id)
    try:
        agent.serve()
    except SystemExit:
        raise
    finally:
        agent.close()


def _reap_agent_segments(pid: Optional[int]) -> int:
    """Unlink /dev/shm segments a SIGKILLed agent left behind.

    Agent segment names embed the agent's pid
    (``repro_<pid>_f*``), so the fleet supervisor can clean up after
    an agent that died without running atexit (injected kill faults,
    hard SIGKILL).  No-op off Linux-style /dev/shm.
    """
    if pid is None or not os.path.isdir("/dev/shm"):
        return 0
    reaped = 0
    for path in glob.glob(f"/dev/shm/repro_{pid}_*"):
        try:
            os.unlink(path)
            reaped += 1
        except OSError:  # pragma: no cover - raced with tracker
            pass
        # The dead agent was forked, so its segments are registered in
        # *this* process tree's shared resource tracker; clear those
        # entries too or the tracker warns about (and re-unlinks)
        # already-reaped names at interpreter exit.
        try:
            from multiprocessing import resource_tracker
            resource_tracker.unregister(
                "/" + os.path.basename(path), "shared_memory")
        except Exception:  # pragma: no cover - tracker not running
            pass
    return reaped


class NodeFleet:
    """*n* local node agents for tests, chaos sweeps, CI, benchmarks.

    The parent binds every listening socket itself and keeps it open:
    a forked agent serves on the inherited socket, and
    :meth:`respawn` forks a replacement onto the *same* port with no
    rebind race — the deterministic substrate for kill-and-recover
    scenarios.  Requires the ``fork`` start method (socket inheritance).
    """

    def __init__(self, n: int, *, fault_plan: Optional[FaultPlan] = None,
                 plans: Optional[Sequence[Optional[FaultPlan]]] = None,
                 task_sleep: float = 0.0, host: str = "127.0.0.1"):
        if "fork" not in mp.get_all_start_methods():  # pragma: no cover
            raise RuntimeError("NodeFleet needs the fork start method")
        self._ctx = mp.get_context("fork")
        # Agents must inherit *this* process's resource tracker: forked
        # before one exists, each agent would lazily spawn its own,
        # which then "cleans up" (and warns about) the agent's segments
        # the moment the agent is killed — racing the supervisor reap.
        ensure_tracker()
        self.task_sleep = task_sleep
        self._plans = list(plans) if plans is not None else [fault_plan] * n
        self.socks: List[socket.socket] = []
        self.addresses: List[Tuple[str, int]] = []
        self.procs: List[Optional[mp.process.BaseProcess]] = [None] * n
        for _ in range(n):
            s = socket.socket()
            s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            s.bind((host, 0))
            s.listen(8)
            self.socks.append(s)
            self.addresses.append(s.getsockname()[:2])
        for i in range(n):
            self.respawn(i)

    def __len__(self) -> int:
        return len(self.socks)

    def respawn(self, i: int, fault_plan="inherit") -> None:
        """(Re)fork agent *i* onto its existing port.  A respawned
        agent is a fresh process with an empty pack cache; pass
        ``fault_plan=None`` to respawn it healthy (the chaos default
        keeps the configured plan)."""
        old = self.procs[i]
        if old is not None:
            if old.is_alive():
                old.terminate()
            old.join(timeout=5.0)
            _reap_agent_segments(old.pid)
        plan = self._plans[i] if fault_plan == "inherit" else fault_plan
        proc = self._ctx.Process(
            target=_agent_main,
            args=(self.socks[i], plan, self.task_sleep, f"fleet-{i}"),
            name=f"repro-node-{i}", daemon=True)
        proc.start()
        self.procs[i] = proc

    def kill(self, i: int) -> None:
        """SIGKILL agent *i* (it stays down until :meth:`respawn`)."""
        proc = self.procs[i]
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        if proc is not None:
            _reap_agent_segments(proc.pid)

    def alive(self) -> List[bool]:
        return [p is not None and p.is_alive() for p in self.procs]

    def stop(self) -> None:
        for i, proc in enumerate(self.procs):
            if proc is None:
                continue
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM immune
                proc.kill()
                proc.join(timeout=5.0)
            _reap_agent_segments(proc.pid)
            self.procs[i] = None
        for s in self.socks:
            try:
                s.close()
            except OSError:  # pragma: no cover
                pass
        self.socks = []

    def __enter__(self) -> "NodeFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
def run_node(host: str = "0.0.0.0", port: int = 0, *,
             node_id: Optional[str] = None,
             max_sessions: Optional[int] = None,
             announce=None) -> None:
    """Serve one worker-node agent until interrupted (the
    ``repro-node`` / ``blastall node`` entry point).

    Binds, announces the bound address via *announce* (so a caller
    scripting ``port=0`` can learn the kernel-chosen port), then blocks
    in the agent's accept loop.  SIGTERM and Ctrl-C both exit through
    the agent's cleanup path, releasing every cached shm segment.
    """
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    ensure_tracker()
    agent = NodeAgent(host, port, node_id=node_id)
    bound = agent.address
    if announce is not None:
        announce(f"repro-node listening on {bound[0]}:{bound[1]} "
                 f"(pid {os.getpid()})")
    try:
        agent.serve(max_sessions=max_sessions)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        agent.close()
