"""The multi-core execution runtime: persistent workers, greedy
dynamic scheduling, byte-identical cross-fragment merging.

This is the real-execution twin of the simulated master/worker in
:mod:`repro.parallel`: the paper's database-segmented BLAST, run on
actual cores instead of simulated nodes.  A persistent
:class:`ExecPool` of worker *processes* (not threads — the scan kernel
is numpy-heavy but the seeding/extension half is pure Python and GIL-
bound) attaches each fragment's shared-memory pack once, then serves
``(query, fragment)`` tasks handed out greedily by the master-side
:class:`~repro.exec.schedule.GreedyScheduler`.  Queries stream through
the same work queue, so a multi-query workload keeps every core busy
across query boundaries.

Fault handling mirrors PR 1's hardened failure path: a worker dying
mid-task is detected on its pipe, the task is requeued at the front
for the next idle worker (bounded retries per task), and when the
budget is exhausted the job fails *cleanly* — outstanding work drains,
shared-memory segments stay accounted, and the pool remains usable.

Byte-identity with the serial engine is a hard invariant, not a
goal: workers receive the master's Karlin–Altschul parameters and the
*whole-database* effective search space (so per-fragment E-values and
cutoff filtering match a serial run exactly), fragment-local subject
ids map back through each pack's ``source_ids``, and the merge
pre-sorts hits by global subject id before the standard result sort —
the same deterministic tie-break order a serial scan produces.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blast.alphabet import DNA, PROTEIN
from repro.blast.scankernel import ScanCache, db_token
from repro.blast.search import (SearchParams, SearchResults, resolve_ka,
                                search)
from repro.blast.seqdb import AA
from repro.blast.stats import KarlinAltschul, effective_search_space
from repro.exec.schedule import GreedyScheduler, RetriesExceeded, plan_fragments
from repro.exec.shm import (AttachedPack, PackDB, PackSpec, ShmRegistry,
                            default_registry, ensure_tracker, pack_fragment)


class PoolJobError(RuntimeError):
    """A parallel job could not be completed (workers exhausted or a
    task burned through its retry budget)."""


@dataclass
class PoolConfig:
    """Worker-side knobs (picklable; shipped once at spawn).

    ``task_sleep`` stalls every task by that many seconds — a test and
    benchmark hook (set via ``REPRO_EXEC_TASK_SLEEP``) that widens the
    window for mid-task fault injection; 0 in production.
    """

    task_sleep: float = 0.0
    cache_entries: int = 1024
    cache_bytes: int = 1 << 40


@dataclass
class JobSpec:
    """Everything a worker needs to search one query against any
    fragment of the prepared database — statistics included, so every
    fragment is scored exactly as the serial whole-database search
    would score it."""

    query: np.ndarray
    query_id: str
    scheme: object
    params: SearchParams
    both_strands: bool
    ka: KarlinAltschul
    effective_space: Tuple[int, int]


@dataclass
class PoolStats:
    """Accounting for the most recent pool run."""

    tasks_done: int = 0
    requeues: int = 0
    worker_errors: int = 0
    worker_deaths: List[int] = field(default_factory=list)


@dataclass
class _Worker:
    rank: int
    process: object
    conn: object
    alive: bool = True
    jobs_sent: set = field(default_factory=set)


@dataclass
class _PreparedDB:
    """Parent-side record of one published fragment set."""

    key: tuple                       # (token, version, k, base, n_fragments)
    specs: List[PackSpec]
    ids_by_name: Dict[str, List[int]]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(rank: int, conn, cfg: PoolConfig) -> None:
    """Worker loop: attach packs once, then serve tasks until stopped.

    Runs in a child process, but takes any connection-like object so
    the protocol is unit-testable in-process with a scripted pipe.
    """
    cache = ScanCache(max_entries=cfg.cache_entries,
                      max_bytes=cfg.cache_bytes)
    packs: Dict[str, Tuple[AttachedPack, PackDB]] = {}
    jobs: Dict[int, JobSpec] = {}
    fragments_done: List[Optional[int]] = []

    def _drop_pack(name: str) -> None:
        entry = packs.pop(name, None)
        if entry is None:
            return
        pack, db = entry
        # Explicit eviction: the weakref finalizer only fires on GC,
        # and the cache must release its views before the mapping goes.
        cache.evict(db._scan_token)
        del db, entry
        pack.close()

    try:
        conn.send(("ready", rank))
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "attach":
                spec = msg[1]
                try:
                    if spec.name not in packs:
                        pack = AttachedPack(spec)
                        db = PackDB(pack)
                        cache.put(db, spec.k, spec.base, pack.structs)
                        packs[spec.name] = (pack, db)
                except Exception:
                    conn.send(("error", rank, None, spec.name,
                               traceback.format_exc()))
            elif kind == "detach":
                _drop_pack(msg[1])
            elif kind == "job":
                jobs[msg[1]] = msg[2]
            elif kind == "forget_job":
                jobs.pop(msg[1], None)
            elif kind == "task":
                qi, name = msg[1], msg[2]
                try:
                    if cfg.task_sleep > 0:
                        time.sleep(cfg.task_sleep)
                    job = jobs[qi]
                    pack, db = packs[name]
                    t0 = time.perf_counter()
                    res = search(job.query, db, job.scheme, job.params,
                                 query_id=job.query_id, ka=job.ka,
                                 both_strands=job.both_strands,
                                 engine="scan", scan_cache=cache,
                                 effective_space=job.effective_space)
                    fragments_done.append(pack.spec.fragment_id)
                    conn.send(("result", rank, qi, name, res,
                               time.perf_counter() - t0))
                except Exception:
                    conn.send(("error", rank, qi, name,
                               traceback.format_exc()))
            elif kind == "stop":
                for name in list(packs):
                    _drop_pack(name)
                conn.send(("stopped", rank,
                           {"rank": rank, "tasks": len(fragments_done),
                            "fragments": fragments_done}))
                return
            else:
                conn.send(("error", rank, None, None,
                           f"unknown message {kind!r}"))
    except (EOFError, KeyboardInterrupt, OSError):  # parent went away
        pass
    finally:
        for name in list(packs):
            try:
                _drop_pack(name)
            except Exception:  # pragma: no cover - teardown best effort
                pass


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
def _effective_space(ka: KarlinAltschul, params: SearchParams,
                     query_len: int, db) -> Tuple[int, int]:
    """The (m_eff, n_eff) a serial whole-database search would use."""
    if params.effective_lengths:
        return effective_search_space(ka, query_len, db.total_residues,
                                      len(db))
    return query_len, db.total_residues


def _terminate_workers(workers: List[_Worker]) -> None:  # pragma: no cover
    """GC/exit safety net (module-level so weakref.finalize can hold it
    without keeping the pool alive); ``close()`` is the normal path."""
    for w in workers:
        try:
            if w.process.is_alive():
                w.process.terminate()
        except Exception:
            pass


class ExecPool:
    """A persistent pool of search workers over shared fragment packs.

    Usage::

        with ExecPool(jobs=4) as pool:
            results = pool.search(query, db, scheme, params)

    The pool prepares a database once (greedy fragment plan, one
    shared-memory pack per fragment, attach broadcast), then any number
    of searches against it reuse the packs — the warm path a query
    stream lives on.  ``search_many`` runs a whole batch through one
    scheduler pass, so fragments of different queries interleave and
    no core idles at query boundaries.
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 n_fragments: Optional[int] = None,
                 max_retries: int = 2,
                 task_sleep: Optional[float] = None,
                 start_method: Optional[str] = None,
                 heartbeat: float = 0.2):
        self.jobs = (os.cpu_count() or 1) if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.default_fragments = n_fragments
        self.max_retries = max_retries
        if task_sleep is None:
            task_sleep = float(os.environ.get("REPRO_EXEC_TASK_SLEEP") or 0.0)
        self._cfg = PoolConfig(task_sleep=task_sleep)
        if start_method is None:
            start_method = os.environ.get("REPRO_EXEC_START_METHOD") or (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self._ctx = mp.get_context(start_method)
        self._heartbeat = heartbeat
        self._registry: ShmRegistry = default_registry()
        self._workers: List[_Worker] = []
        self._prepared: Dict[tuple, _PreparedDB] = {}
        self._started = False
        self._closed = False
        self.last_stats: Optional[PoolStats] = None
        self._finalizer = weakref.finalize(self, _terminate_workers,
                                           self._workers)

    # ------------------------------------------------------------------
    def start(self) -> "ExecPool":
        if self._closed:
            raise PoolJobError("pool is closed")
        if self._started:
            return self
        # Workers must inherit the parent's resource tracker (see
        # ensure_tracker) — start it before the first fork.
        ensure_tracker()
        for rank in range(self.jobs):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main, args=(rank, child_conn, self._cfg),
                name=f"repro-exec-{rank}", daemon=True)
            proc.start()
            child_conn.close()
            self._workers.append(_Worker(rank, proc, parent_conn))
        for w in self._workers:
            if not w.conn.poll(30):
                raise PoolJobError(f"worker {w.rank} failed to start")
            msg = w.conn.recv()
            if msg[0] != "ready":  # pragma: no cover - protocol error
                raise PoolJobError(f"worker {w.rank}: expected ready, "
                                   f"got {msg!r}")
        self._started = True
        return self

    def __enter__(self) -> "ExecPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _live(self) -> List[_Worker]:
        return [w for w in self._workers if w.alive]

    def worker_pids(self) -> Dict[int, int]:
        """rank -> pid of the live workers (fault-injection hook)."""
        return {w.rank: w.process.pid for w in self._live()}

    # ------------------------------------------------------------------
    def _prepare(self, db, k: int, base: int,
                 n_fragments: Optional[int]) -> _PreparedDB:
        token = db_token(db)
        version = getattr(db, "_version", 0)
        nf = n_fragments or max(1, min(len(db) or 1, 2 * self.jobs))
        key = (token, version, k, base, nf)
        prep = self._prepared.get(key)
        if prep is not None:
            return prep
        # The registry is keyed by token+version: a mutated database
        # invalidates every pack built from its previous version.
        stale = [kk for kk in self._prepared
                 if kk[0] == token and kk[1] != version]
        for kk in stale:
            self._release_prepared(self._prepared.pop(kk))
        specs: List[PackSpec] = []
        for frag_id, ids in enumerate(plan_fragments(db, nf)
                                      if len(db) else []):
            sub = db.subset(ids, name=f"{getattr(db, 'name', 'db')}"
                                      f".{frag_id:03d}",
                            fragment_id=frag_id)
            specs.append(pack_fragment(sub, k, base,
                                       cache_token=(token, version, frag_id),
                                       registry=self._registry))
        prep = _PreparedDB(key=key, specs=specs,
                           ids_by_name={s.name: list(s.source_ids)
                                        for s in specs})
        for w in self._live():
            try:
                for spec in specs:
                    w.conn.send(("attach", spec))
            except OSError:
                w.alive = False
        self._prepared[key] = prep
        return prep

    def _release_prepared(self, prep: _PreparedDB,
                          notify: bool = True) -> None:
        for spec in prep.specs:
            if notify:
                for w in self._live():
                    try:
                        w.conn.send(("detach", spec.name))
                    except OSError:
                        w.alive = False
            self._registry.release(spec.name)

    def release_db(self, db) -> int:
        """Drop every pack prepared from *db* (any version); returns
        how many fragment sets were released."""
        token = getattr(db, "_scan_token", None)
        keys = [kk for kk in self._prepared if kk[0] == token]
        for kk in keys:
            self._release_prepared(self._prepared.pop(kk))
        return len(keys)

    # ------------------------------------------------------------------
    def _handle_death(self, w: _Worker, sched: GreedyScheduler,
                      stats: PoolStats) -> Optional[PoolJobError]:
        w.alive = False
        stats.worker_deaths.append(w.rank)
        try:
            w.process.join(timeout=0.5)
        except Exception:  # pragma: no cover
            pass
        try:
            sched.fail(w.rank)
        except RetriesExceeded as exc:
            sched.drop_pending()
            return PoolJobError(
                f"fragment task {exc.key!r} failed {exc.attempts} times "
                f"(worker deaths: {stats.worker_deaths})")
        return None

    def _run_tasks(self, jobs: Dict[int, JobSpec],
                   tasks: Sequence[Tuple[tuple, float]]
                   ) -> Tuple[Dict[int, Dict[str, SearchResults]], PoolStats]:
        sched = GreedyScheduler(tasks, max_retries=self.max_retries)
        stats = PoolStats()
        results: Dict[int, Dict[str, SearchResults]] = {qi: {} for qi in jobs}

        try:
            self._pump(jobs, sched, stats, results)
        finally:
            # Drop the job tables win or lose: a failed run must not
            # leave workers holding stale specs for reused query ids.
            for w in self._live():
                try:
                    for qi in w.jobs_sent:
                        w.conn.send(("forget_job", qi))
                    w.jobs_sent.clear()
                except OSError:
                    w.alive = False
            stats.requeues = sched.requeues
            self.last_stats = stats
        return results, stats

    def _pump(self, jobs: Dict[int, JobSpec], sched: GreedyScheduler,
              stats: PoolStats,
              results: Dict[int, Dict[str, SearchResults]]) -> None:
        from multiprocessing.connection import wait

        failure: Optional[PoolJobError] = None
        while not sched.done:
            live = self._live()
            if not live:
                failure = failure or PoolJobError(
                    f"no workers left (deaths: {stats.worker_deaths})")
                break
            # Greedy dispatch: every idle worker gets the next task.
            for w in live:
                if failure is not None or not sched.has_pending:
                    break
                if w.rank in sched.outstanding or not w.alive:
                    continue
                key = sched.assign(w.rank)
                qi, pack_name = key
                try:
                    if qi not in w.jobs_sent:
                        w.conn.send(("job", qi, jobs[qi]))
                        w.jobs_sent.add(qi)
                    w.conn.send(("task", qi, pack_name))
                except OSError:
                    failure = failure or self._handle_death(w, sched, stats)
            if sched.done:
                break
            conns = {w.conn: w for w in self._live()}
            if not conns:
                continue
            ready = wait(list(conns), timeout=self._heartbeat)
            if not ready:
                # Belt and braces: a worker can die without its pipe
                # waking wait() promptly; sweep liveness on idle ticks.
                for w in self._live():
                    if not w.process.is_alive():
                        failure = failure or self._handle_death(
                            w, sched, stats)
                continue
            for conn in ready:
                w = conns[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    failure = failure or self._handle_death(w, sched, stats)
                    continue
                kind = msg[0]
                if kind == "result":
                    _, rank, qi, pack_name, res, _elapsed = msg
                    sched.complete(rank)
                    stats.tasks_done += 1
                    if failure is None:
                        results[qi][pack_name] = res
                elif kind == "error":
                    stats.worker_errors += 1
                    try:
                        sched.fail(w.rank)
                    except RetriesExceeded as exc:
                        sched.drop_pending()
                        failure = failure or PoolJobError(
                            f"fragment task {exc.key!r} failed "
                            f"{exc.attempts} times; last worker error:\n"
                            f"{msg[4]}")
                elif kind == "stopped":  # pragma: no cover - close path
                    w.alive = False

        if failure is not None:
            raise failure

    # ------------------------------------------------------------------
    def search_many(self, queries: Sequence[np.ndarray], db, scheme,
                    params: Optional[SearchParams] = None, *,
                    query_ids: Optional[Sequence[str]] = None,
                    both_strands: bool = True,
                    n_fragments: Optional[int] = None,
                    keep_fragment_ids: bool = False
                    ) -> List[SearchResults]:
        """Search a batch of encoded queries through one scheduler pass.

        Returns one :class:`SearchResults` per query, in input order,
        each byte-identical to ``search(query, db, ...)`` run serially.
        """
        self.start()
        params = params or SearchParams()
        is_protein = db.seqtype == AA
        base = len(PROTEIN) if is_protein else len(DNA)
        queries = [np.asarray(q, dtype=np.uint8) for q in queries]
        if query_ids is None:
            query_ids = ["query"] * len(queries)
        if len(query_ids) != len(queries):
            raise ValueError("query_ids must match queries")
        if not queries:
            return []

        ka = resolve_ka(scheme, params, is_protein)
        prep = self._prepare(db, params.word_size, base,
                             n_fragments or self.default_fragments)
        jobs = {
            qi: JobSpec(query=q, query_id=query_ids[qi], scheme=scheme,
                        params=params, both_strands=both_strands, ka=ka,
                        effective_space=_effective_space(ka, params,
                                                         len(q), db))
            for qi, q in enumerate(queries)
        }
        tasks = [((qi, spec.name), float(spec.total_residues))
                 for qi in jobs for spec in prep.specs]
        if tasks:
            results, _stats = self._run_tasks(jobs, tasks)
        else:
            results = {qi: {} for qi in jobs}
            self.last_stats = PoolStats()

        out: List[SearchResults] = []
        for qi, q in enumerate(queries):
            merged = SearchResults(
                query_id=query_ids[qi], query_len=len(q),
                db_residues=db.total_residues, db_sequences=len(db))
            for pack_name, res in results[qi].items():
                ids = prep.ids_by_name[pack_name]
                for hit in res.hits:
                    hit.subject_id = ids[hit.subject_id]
                    if not keep_fragment_ids:
                        hit.fragment_id = db.fragment_id
                    merged.hits.append(hit)
            # Deterministic cross-fragment tie-break: pre-order by
            # global subject id (the order a serial scan appends hits
            # in), then the standard stable result sort.
            merged.hits.sort(key=lambda h: h.subject_id)
            merged.sort()
            out.append(merged)
        return out

    def search(self, query: np.ndarray, db, scheme,
               params: Optional[SearchParams] = None, *,
               query_id: str = "query", both_strands: bool = True,
               n_fragments: Optional[int] = None,
               keep_fragment_ids: bool = False) -> SearchResults:
        """One query through the pool; byte-identical to serial
        :func:`repro.blast.search.search`."""
        return self.search_many(
            [query], db, scheme, params, query_ids=[query_id],
            both_strands=both_strands, n_fragments=n_fragments,
            keep_fragment_ids=keep_fragment_ids)[0]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and release all shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        for w in self._live():
            try:
                w.conn.send(("stop",))
            except OSError:
                w.alive = False
        for w in self._workers:
            if w.alive:
                try:
                    while w.conn.poll(2):
                        if w.conn.recv()[0] == "stopped":
                            break
                except (EOFError, OSError):
                    pass
            w.process.join(timeout=2)
            if w.process.is_alive():  # pragma: no cover - stuck worker
                w.process.terminate()
                w.process.join(timeout=2)
            if w.process.is_alive():  # pragma: no cover
                w.process.kill()
                w.process.join()
            try:
                w.conn.close()
            except OSError:  # pragma: no cover
                pass
            w.alive = False
        for key in list(self._prepared):
            self._release_prepared(self._prepared.pop(key), notify=False)
        self._workers.clear()


# ----------------------------------------------------------------------
def search_parallel(query: np.ndarray, db, scheme,
                    params: Optional[SearchParams] = None, *,
                    jobs: Optional[int] = None,
                    n_fragments: Optional[int] = None,
                    pool: Optional[ExecPool] = None,
                    query_id: str = "query", both_strands: bool = True,
                    keep_fragment_ids: bool = False) -> SearchResults:
    """Multi-core :func:`repro.blast.search.search`, byte-identical.

    With *pool*, reuses its workers and any packs it already holds for
    *db* (the warm path); otherwise a transient pool of *jobs* workers
    is spun up and torn down around the call.
    """
    if pool is not None:
        return pool.search(query, db, scheme, params, query_id=query_id,
                           both_strands=both_strands,
                           n_fragments=n_fragments,
                           keep_fragment_ids=keep_fragment_ids)
    with ExecPool(jobs=jobs, n_fragments=n_fragments) as transient:
        return transient.search(query, db, scheme, params,
                                query_id=query_id,
                                both_strands=both_strands,
                                keep_fragment_ids=keep_fragment_ids)
