"""The multi-core execution runtime: persistent workers, greedy
dynamic scheduling, byte-identical cross-fragment merging.

This is the real-execution twin of the simulated master/worker in
:mod:`repro.parallel`: the paper's database-segmented BLAST, run on
actual cores instead of simulated nodes.  A persistent
:class:`ExecPool` of worker *processes* (not threads — the scan kernel
is numpy-heavy but the seeding/extension half is pure Python and GIL-
bound) attaches each fragment's shared-memory pack once, then serves
``(query, fragment)`` tasks handed out greedily by the master-side
:class:`~repro.exec.schedule.GreedyScheduler`.  Queries stream through
the same work queue, so a multi-query workload keeps every core busy
across query boundaries.

Fault handling upgrades PR 1's "fail cleanly" into CEFT-style "keep
serving" (the paper's dead-server and hot-spot experiments, Figs 7–9):

* a worker dying mid-task is detected on its pipe (plus a heartbeat
  liveness sweep), the task is requeued at the front, and — new — the
  pool **respawns** the lost worker so capacity recovers instead of
  shrinking toward job failure;
* a task stuck past its **soft deadline** is **hedged**: re-issued
  speculatively to an idle worker, the direct analog of skipping a hot
  server and reading from the mirror group — first result wins, the
  loser's late duplicate is discarded by run-epoch tag;
* a worker stuck past the **hard deadline** (a hang or a dropped
  reply) is killed, its task requeued if still needed, and its slot
  respawned;
* every pack carries CRC32 checksums verified at publish and attach,
  so a corrupted or torn segment raises a typed
  :class:`~repro.exec.shm.PackIntegrityError` before any hit is
  produced from it;
* when the pool still cannot finish a job (retry budget exhausted,
  capacity collapsed below ``min_workers`` and respawn cannot recover
  it), ``search_many`` **degrades gracefully** to the serial scan
  engine with a warning — results stay byte-identical, and the
  structured :class:`~repro.exec.faults.FailureLedger` records every
  fault, requeue, hedge, respawn, and the fallback itself.

Deterministic fault injection for all of the above lives in
:mod:`repro.exec.faults`; arm a plan via the ``fault_plan`` argument
or the ``REPRO_EXEC_FAULT_PLAN`` environment variable and the chaos
suite drives this exact, unmodified code path.

Byte-identity with the serial engine is a hard invariant, not a
goal: workers receive the master's Karlin–Altschul parameters and the
*whole-database* effective search space (so per-fragment E-values and
cutoff filtering match a serial run exactly), fragment-local subject
ids map back through each pack's ``source_ids``, and the merge
pre-sorts hits by global subject id before the standard result sort —
the same deterministic tie-break order a serial scan produces.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
import warnings
import weakref
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blast.alphabet import DNA, PROTEIN
from repro.blast.scankernel import ScanCache, db_token
from repro.blast.search import (SearchParams, SearchResults,
                                merge_fragment_results, resolve_ka, search)
from repro.blast.seqdb import AA
from repro.blast.stats import KarlinAltschul, effective_search_space
from repro.exec.faults import FailureLedger, FaultInjector, FaultPlan
from repro.exec.net import FrameError, NodeConnectError, backoff_delay
from repro.exec.nodes import NodeClient, _NodeProcess, execute_task
from repro.exec.results import (decode_result_pairs, encode_result_pairs,
                                estimate_payload_size)
from repro.exec.schedule import (DEFAULT_MAX_QUERY_BATCH, DEFAULT_SCAN_RATE,
                                 DEFAULT_TASK_OVERHEAD_S, GreedyScheduler,
                                 RetriesExceeded, plan_fragments,
                                 plan_mirror_groups, plan_query_batches,
                                 plan_task_ranges)
from repro.exec.shm import (ArenaSpec, AttachedPack, PackDB,
                            PackIntegrityError, PackSpec, ResultArena,
                            ShmRegistry, corrupt_segment, default_registry,
                            ensure_tracker, pack_fragment,
                            publish_pack_bytes, read_pack_bytes)

#: Adaptive soft-deadline floor and multiplier: with no observed task
#: times yet a task is hedge-eligible after this many seconds; once an
#: EMA exists the deadline is ``max(floor, mult * ema)``.
_HEDGE_FLOOR = 0.5
_HEDGE_MULT = 4.0

#: Worker exit code used by the injected ``kill`` fault (``os._exit``,
#: i.e. SIGKILL semantics: no cleanup, no goodbye on the pipe).
_FAULT_EXIT = 86


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name) or ""
    return float(raw) if raw.strip() else default


def _env_opt_float(name: str) -> Optional[float]:
    raw = os.environ.get(name) or ""
    return float(raw) if raw.strip() else None


class PoolJobError(RuntimeError):
    """A parallel job could not be completed (workers exhausted or a
    task burned through its retry budget)."""


@dataclass
class PoolConfig:
    """Worker-side knobs (picklable; shipped once at spawn).

    ``task_sleep`` stalls every task by that many seconds — a test and
    benchmark hook (set via ``REPRO_EXEC_TASK_SLEEP``) that widens the
    window for mid-task fault injection; 0 in production.
    ``fault_plan`` arms deterministic worker-side faults (see
    :mod:`repro.exec.faults`); ``None`` in production.
    ``arena_threshold`` is the estimated payload size (bytes) above
    which a worker ships results through its shared-memory arena
    instead of pickling them over the pipe; small results stay inline
    because the arena's encode/copy costs more than a tiny pickle.
    """

    task_sleep: float = 0.0
    cache_entries: int = 1024
    cache_bytes: int = 1 << 40
    fault_plan: Optional[FaultPlan] = None
    arena_threshold: int = 32768


@dataclass
class JobSpec:
    """Everything a worker needs to search one query against any
    fragment of the prepared database — statistics included, so every
    fragment is scored exactly as the serial whole-database search
    would score it."""

    query: np.ndarray
    query_id: str
    scheme: object
    params: SearchParams
    both_strands: bool
    ka: KarlinAltschul
    effective_space: Tuple[int, int]


@dataclass
class PoolStats:
    """Accounting for the most recent pool run."""

    tasks_done: int = 0
    fragments_done: int = 0
    requeues: int = 0
    worker_errors: int = 0
    worker_deaths: List[int] = field(default_factory=list)
    hedges: int = 0
    hedge_wins: int = 0
    stale_results: int = 0
    respawns: int = 0
    #: Respawns *tried*, successful or not; the budget counts attempts
    #: so a slot whose replacement keeps failing to start cannot spin
    #: the pump loop forever.
    respawn_attempts: int = 0
    hang_kills: int = 0
    integrity_failures: int = 0
    #: Result payloads shipped through the shm arena vs pickled inline
    #: vs RRES blobs framed over a node socket.
    arena_results: int = 0
    inline_results: int = 0
    remote_results: int = 0
    #: Remote nodes re-dialed (successfully) during this run; these
    #: also count into ``respawns`` — a reconnect *is* the socket
    #: transport's respawn.
    reconnects: int = 0
    #: Idle nodes declared dead for missing heartbeats.
    heartbeat_losses: int = 0
    fallback: bool = False


@dataclass
class _Worker:
    rank: int
    process: object
    conn: object
    alive: bool = True
    jobs_sent: set = field(default_factory=set)
    #: The task this worker is serving: ``(epoch, qis, names)`` where
    #: ``qis`` is the tuple of query indexes in the batch and ``names``
    #: the tuple of pack names in the fragment range.
    #: Pool-level (not scheduler-level) so a straggler from a previous
    #: run is still recognised — and reaped — across run boundaries.
    busy: Optional[tuple] = None
    busy_since: float = 0.0
    #: The :class:`~repro.exec.nodes.NodeClient` behind a remote
    #: worker; ``None`` for a local pipe worker.
    remote: Optional[NodeClient] = None


@dataclass
class _PreparedDB:
    """Parent-side record of one published fragment set."""

    key: tuple                       # (token, version, k, base, n_fragments)
    specs: List[PackSpec]
    ids_by_name: Dict[str, List[int]]
    #: CEFT-style mirror placement (empty without nodes): fragment
    #: index groups, the node ranks holding each group, and per-pack
    #: name → holder ranks.
    groups: List[Tuple[int, ...]] = field(default_factory=list)
    group_nodes: List[Tuple[int, ...]] = field(default_factory=list)
    placement: Dict[str, Tuple[int, ...]] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(rank: int, conn, cfg: PoolConfig,
                 arena_spec: Optional[ArenaSpec] = None) -> None:
    """Worker loop: attach packs once, then serve tasks until stopped.

    Runs in a child process, but takes any connection-like object so
    the protocol is unit-testable in-process with a scripted pipe.
    A task is a *query batch* (a tuple of query indexes) crossed with a
    contiguous *range* of fragment packs (a tuple of pack names); the
    worker scans every pack once for the whole batch — via
    :func:`~repro.blast.search.search_batch` when the batch holds more
    than one query — and ships the per-(pack, query) results back in
    one message — through its shared-memory result arena when
    the payload is large (descriptor over the pipe, CRC-checked),
    pickled inline when it is small.  Task messages carry the master's
    run epoch, echoed back on every result/error so the master can
    discard cross-run stragglers.
    """
    cache = ScanCache(max_entries=cfg.cache_entries,
                      max_bytes=cfg.cache_bytes)
    packs: Dict[str, Tuple[AttachedPack, PackDB]] = {}
    frag_ids: Dict[str, Optional[int]] = {}
    jobs: Dict[int, JobSpec] = {}
    fragments_done: List[Optional[int]] = []
    injector = (FaultInjector(cfg.fault_plan, rank)
                if cfg.fault_plan is not None else None)
    arena = ResultArena(arena_spec) if arena_spec is not None else None

    def _ship(pairs) -> tuple:
        """Pick the transport for a task's result pairs: the shm arena
        for large payloads (one copy + a tiny descriptor), inline
        pickle for small ones."""
        if arena is not None and \
                estimate_payload_size(pairs) >= cfg.arena_threshold:
            blob = encode_result_pairs(pairs)
            if len(blob) <= arena.size:
                return ("arena",) + arena.write(blob)
        return ("inline", pairs)

    def _drop_pack(name: str) -> None:
        entry = packs.pop(name, None)
        frag_ids.pop(name, None)
        if entry is None:
            return
        pack, db = entry
        # Explicit eviction: the weakref finalizer only fires on GC,
        # and the cache must release its views before the mapping goes.
        cache.evict(db._scan_token)
        del db, entry
        pack.close()

    try:
        conn.send(("ready", rank))
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "attach":
                spec = msg[1]
                try:
                    if injector is not None:
                        fault = injector.on_attach(spec.fragment_id)
                        if fault is not None:
                            corrupt_segment(spec)
                    if spec.name not in packs:
                        pack = AttachedPack(spec)
                        db = PackDB(pack)
                        cache.put(db, spec.k, spec.base, pack.structs)
                        packs[spec.name] = (pack, db)
                        frag_ids[spec.name] = spec.fragment_id
                except PackIntegrityError as exc:
                    conn.send(("integrity", rank, spec.name, str(exc)))
                except Exception:
                    conn.send(("error", rank, None, spec.name,
                               traceback.format_exc(), -1))
            elif kind == "detach":
                _drop_pack(msg[1])
            elif kind == "job":
                jobs[msg[1]] = msg[2]
            elif kind == "forget_job":
                jobs.pop(msg[1], None)
            elif kind == "task":
                qis, names = msg[1], msg[2]
                if isinstance(qis, int):     # legacy single-query task
                    qis = (qis,)
                if isinstance(names, str):   # legacy single-name task
                    names = (names,)
                epoch = msg[3] if len(msg) > 3 else 0
                if injector is not None:
                    fault = injector.on_task(
                        qis, tuple(frag_ids.get(n) for n in names))
                    if fault is not None:
                        if fault.kind == "kill":
                            os._exit(_FAULT_EXIT)
                        elif fault.kind in ("hang", "slow"):
                            time.sleep(fault.stall)
                        if fault.kind == "drop_result":
                            continue    # serve nothing, say nothing
                try:
                    if cfg.task_sleep > 0:
                        time.sleep(cfg.task_sleep)
                    # The execution core is shared with the socket node
                    # agent (repro.exec.nodes): one implementation, two
                    # transports, byte-identical either way.
                    pairs, elapsed, done_ids = execute_task(
                        packs, jobs, qis, names, cache)
                    fragments_done.extend(done_ids)
                    conn.send(("result", rank, qis, names, _ship(pairs),
                               elapsed, epoch))
                except Exception:
                    conn.send(("error", rank, qis, names,
                               traceback.format_exc(), epoch))
            elif kind == "stop":
                for name in list(packs):
                    _drop_pack(name)
                conn.send(("stopped", rank,
                           {"rank": rank, "tasks": len(fragments_done),
                            "fragments": fragments_done}))
                return
            else:
                conn.send(("error", rank, None, None,
                           f"unknown message {kind!r}", -1))
    except (EOFError, KeyboardInterrupt, OSError):  # parent went away
        pass
    finally:
        for name in list(packs):
            try:
                _drop_pack(name)
            except Exception:  # pragma: no cover - teardown best effort
                pass
        if arena is not None:
            arena.close()


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
def _effective_space(ka: KarlinAltschul, params: SearchParams,
                     query_len: int, db) -> Tuple[int, int]:
    """The (m_eff, n_eff) a serial whole-database search would use."""
    if params.effective_lengths:
        return effective_search_space(ka, query_len, db.total_residues,
                                      len(db))
    return query_len, db.total_residues


def _terminate_workers(workers: List[_Worker]) -> None:  # pragma: no cover
    """GC/exit safety net (module-level so weakref.finalize can hold it
    without keeping the pool alive); ``close()`` is the normal path."""
    for w in workers:
        try:
            if w.process.is_alive():
                w.process.terminate()
        except Exception:
            pass


class ExecPool:
    """A persistent pool of search workers over shared fragment packs.

    Usage::

        with ExecPool(jobs=4) as pool:
            results = pool.search(query, db, scheme, params)

    The pool prepares a database once (greedy fragment plan, one
    shared-memory pack per fragment, attach broadcast), then any number
    of searches against it reuse the packs — the warm path a query
    stream lives on.  ``search_many`` runs a whole batch through one
    scheduler pass, so fragments of different queries interleave and
    no core idles at query boundaries.

    Fault-tolerance knobs (all optional; environment fallbacks in
    parentheses):

    ``heartbeat``
        idle-tick interval for the liveness/deadline sweeps, seconds
        (``REPRO_EXEC_HEARTBEAT``, default 0.2).
    ``join_timeout``
        budget for draining and joining workers at ``close()``; a
        worker that survives it is escalated ``terminate()`` →
        ``kill()`` so teardown can never hang
        (``REPRO_EXEC_JOIN_TIMEOUT``, default 2.0).
    ``hedge_after``
        soft per-task deadline before speculative re-issue to an idle
        worker; ``None`` adapts from the observed task-time EMA
        (``REPRO_EXEC_HEDGE_AFTER``).
    ``task_timeout``
        hard per-task deadline before the holding worker is presumed
        hung, killed, and respawned; ``None`` adapts from the soft
        deadline (``REPRO_EXEC_TASK_TIMEOUT``).
    ``respawn`` / ``max_respawns``
        whether (and how often per run) lost workers are replaced so
        the pool recovers its configured capacity.
    ``serial_fallback`` / ``min_workers``
        degrade to the serial scan engine (byte-identical, with a
        ``RuntimeWarning`` and a ledger entry) when a job fails or the
        pool collapses below ``min_workers``.
    ``fault_plan``
        a :class:`~repro.exec.faults.FaultPlan` armed in every worker
        (``REPRO_EXEC_FAULT_PLAN``); ``None`` in production.
    ``query_batch``
        max queries per batched task (``REPRO_EXEC_QUERY_BATCH``,
        default 32): ``search_many`` groups its queries into batches
        of at most this size and each task scans its fragment range
        once for the whole batch via
        :func:`~repro.blast.search.search_batch`.  ``0`` (or ``1``)
        disables batching — one query per task, the pre-batch
        protocol.
    ``nodes`` / ``replication``
        remote worker nodes (``host:port`` strings or pairs; see
        :mod:`repro.exec.nodes`; ``REPRO_EXEC_NODES`` comma list /
        ``REPRO_EXEC_REPLICATION``).  Fragment packs are shipped once
        per holding node, every fragment is mirrored onto
        ``replication`` nodes (CEFT-style, default 2, clamped to the
        node count), and the scheduler prefers the nodes already
        holding a fragment.  A node death re-issues its tasks to a
        mirror — a re-read, not a re-ship; losing the *last* mirror
        of any pending fragment fails the job into the usual serial
        fallback (exit code 5 semantics), never a partial result.
        With nodes configured, ``jobs`` may be 0 (remote-only pool);
        local workers, when present, hold every fragment and are
        eligible for everything.
    ``node_timeout``
        seconds of heartbeat silence from an *idle* node before it is
        declared dead (``REPRO_EXEC_NODE_TIMEOUT``, default
        ``max(1.0, 5 * heartbeat)``); a *busy* node is covered by the
        hard task deadline.  Dead nodes are re-dialed with bounded
        exponential backoff + jitter under the same respawn budget as
        local workers.

    Every recovery action is appended to :attr:`ledger`, a
    :class:`~repro.exec.faults.FailureLedger` spanning the pool's
    lifetime.
    """

    def __init__(self, jobs: Optional[int] = None, *,
                 n_fragments: Optional[int] = None,
                 max_retries: int = 2,
                 task_sleep: Optional[float] = None,
                 start_method: Optional[str] = None,
                 heartbeat: Optional[float] = None,
                 join_timeout: Optional[float] = None,
                 hedge_after: Optional[float] = None,
                 task_timeout: Optional[float] = None,
                 respawn: bool = True,
                 max_respawns: Optional[int] = None,
                 serial_fallback: bool = True,
                 min_workers: int = 1,
                 fault_plan: Optional[FaultPlan] = None,
                 query_batch: Optional[int] = None,
                 task_granularity: Optional[int] = None,
                 task_overhead: Optional[float] = None,
                 result_arena_bytes: Optional[int] = None,
                 arena_threshold: Optional[int] = None,
                 start_timeout: float = 30.0,
                 nodes: Optional[Sequence] = None,
                 replication: Optional[int] = None,
                 node_timeout: Optional[float] = None,
                 node_connect_attempts: int = 3):
        if nodes is None:
            raw = os.environ.get("REPRO_EXEC_NODES") or ""
            nodes = [a for a in raw.split(",") if a.strip()] or None
        from repro.exec.net import parse_address
        self.node_addresses = [parse_address(a) for a in (nodes or [])]
        if replication is None:
            raw = os.environ.get("REPRO_EXEC_REPLICATION") or ""
            replication = int(raw) if raw.strip() else 2
        self.replication = max(1, int(replication))
        self.node_connect_attempts = max(1, int(node_connect_attempts))
        if jobs is None and self.node_addresses:
            jobs = 0            # remote-only by default when nodes given
        self.jobs = (os.cpu_count() or 1) if jobs is None else int(jobs)
        if self.jobs < 1 and not self.node_addresses:
            raise ValueError("jobs must be >= 1 (or give nodes=...)")
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0")
        self.default_fragments = n_fragments
        self.max_retries = max_retries
        if task_sleep is None:
            task_sleep = float(os.environ.get("REPRO_EXEC_TASK_SLEEP") or 0.0)
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        if task_granularity is None:
            raw = os.environ.get("REPRO_EXEC_TASK_GRANULARITY") or ""
            task_granularity = int(raw) if raw.strip() else None
        self.task_granularity = task_granularity
        if query_batch is None:
            raw = os.environ.get("REPRO_EXEC_QUERY_BATCH") or ""
            query_batch = (int(raw) if raw.strip()
                           else DEFAULT_MAX_QUERY_BATCH)
        #: Max queries per batched task; <= 1 disables query batching
        #: (every task carries a single query, the pre-batch protocol).
        self.query_batch = int(query_batch)
        self.task_overhead = (task_overhead if task_overhead is not None
                              else _env_float("REPRO_EXEC_TASK_OVERHEAD",
                                              DEFAULT_TASK_OVERHEAD_S))
        self.result_arena_bytes = int(
            result_arena_bytes if result_arena_bytes is not None
            else _env_float("REPRO_EXEC_ARENA_BYTES", float(4 << 20)))
        self._cfg = PoolConfig(task_sleep=task_sleep, fault_plan=fault_plan,
                               arena_threshold=(
                                   PoolConfig.arena_threshold
                                   if arena_threshold is None
                                   else int(arena_threshold)))
        if start_method is None:
            start_method = os.environ.get("REPRO_EXEC_START_METHOD") or (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self._ctx = mp.get_context(start_method)
        self._heartbeat = (heartbeat if heartbeat is not None
                           else _env_float("REPRO_EXEC_HEARTBEAT", 0.2))
        self.join_timeout = (join_timeout if join_timeout is not None
                             else _env_float("REPRO_EXEC_JOIN_TIMEOUT", 2.0))
        self.hedge_after = (hedge_after if hedge_after is not None
                            else _env_opt_float("REPRO_EXEC_HEDGE_AFTER"))
        self.task_timeout = (task_timeout if task_timeout is not None
                             else _env_opt_float("REPRO_EXEC_TASK_TIMEOUT"))
        self.respawn = respawn
        n_slots = self.jobs + len(self.node_addresses)
        self.max_respawns = (2 * n_slots + 2 if max_respawns is None
                             else int(max_respawns))
        self.serial_fallback = serial_fallback
        self.min_workers = max(1, int(min_workers))
        self._start_timeout = start_timeout
        self.node_timeout = (
            node_timeout if node_timeout is not None
            else _env_opt_float("REPRO_EXEC_NODE_TIMEOUT"))
        self._registry: ShmRegistry = default_registry()
        self._workers: List[_Worker] = []
        #: rank -> NodeClient for every configured node (connected or
        #: not) — close() aborts these regardless of worker-slot state,
        #: so a client whose connection never made it into _workers
        #: (a death mid-_ensure_capacity) cannot leak a half-open
        #: socket.
        self._node_clients: Dict[int, NodeClient] = {}
        #: Transports created but never installed into a worker slot
        #: (e.g. a pipe pair whose process failed to start); close()
        #: sweeps them.
        self._strays: List[object] = []
        self._prepared: Dict[tuple, _PreparedDB] = {}
        self._arenas: Dict[int, ResultArena] = {}
        self._pack_residues: Dict[str, int] = {}
        self._started = False
        self._closed = False
        self._epoch = 0
        self._task_ema: Optional[float] = None
        #: Observed scan rate (residues/second) EMA; feeds the range
        #: planner so task sizing tracks the actual machine.
        self._rate_ema: Optional[float] = None
        self.last_stats: Optional[PoolStats] = None
        self.ledger = FailureLedger()
        self.total_respawns = 0
        self._finalizer = weakref.finalize(self, _terminate_workers,
                                           self._workers)

    # ------------------------------------------------------------------
    def _arena_for(self, rank: int) -> Optional[ResultArena]:
        """The rank's result arena, created on first use (and reused by
        a respawned replacement — its predecessor is dead, and the
        master consumed or abandoned any descriptor it had written)."""
        if self.result_arena_bytes <= 0:
            return None
        arena = self._arenas.get(rank)
        if arena is None:
            arena = ResultArena.create(self.result_arena_bytes,
                                       tag=str(rank),
                                       registry=self._registry)
            self._arenas[rank] = arena
        return arena

    def _spawn_worker(self, rank: int,
                      cfg: Optional[PoolConfig] = None) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        arena = self._arena_for(rank)
        proc = self._ctx.Process(
            target=_worker_main, args=(rank, child_conn, cfg or self._cfg,
                                       arena.spec if arena else None),
            name=f"repro-exec-{rank}", daemon=True)
        try:
            proc.start()
        except BaseException:
            # A failed fork/spawn must not leak the pipe pair: nothing
            # downstream will ever see this transport, so close both
            # ends here and let close() sweep the registered strays of
            # any end a racing failure left half-open.
            for end in (parent_conn, child_conn):
                self._strays.append(end)
                try:
                    end.close()
                except OSError:  # pragma: no cover
                    pass
            raise
        child_conn.close()
        return _Worker(rank, proc, parent_conn)

    def _await_ready(self, w: _Worker) -> bool:
        try:
            if not w.conn.poll(self._start_timeout):
                return False
            return w.conn.recv()[0] == "ready"
        except (EOFError, OSError):  # pragma: no cover - spawn crash
            return False

    def start(self) -> "ExecPool":
        if self._closed:
            raise PoolJobError("pool is closed")
        if self._started:
            # A restarted run begins at full strength: respawn any
            # capacity lost to deaths since the previous run.
            self._ensure_capacity()
            return self
        # Workers must inherit the parent's resource tracker (see
        # ensure_tracker) — start it before the first fork.
        ensure_tracker()
        for rank in range(self.jobs):
            self._workers.append(self._spawn_worker(rank))
        for w in self._workers:
            if not self._await_ready(w):
                raise PoolJobError(f"worker {w.rank} failed to start")
        # Remote workers: one slot per configured node, ranks above the
        # local ones.  An unreachable node starts as a dead slot — the
        # reconnect machinery keeps re-dialing it under backoff, and
        # the mirror placement covers its fragments meanwhile.
        for i, address in enumerate(self.node_addresses):
            rank = self.jobs + i
            client = NodeClient(
                address, rank,
                connect_attempts=self.node_connect_attempts)
            self._node_clients[rank] = client
            w = _Worker(rank, _NodeProcess(client), None, alive=False,
                        remote=client)
            try:
                client.connect()
            except NodeConnectError as exc:
                self.ledger.record("node_unreachable", rank=rank,
                                   detail=str(exc))
                warnings.warn(f"worker node {client.label} unreachable at "
                              f"start ({exc}); continuing without it",
                              RuntimeWarning, stacklevel=2)
            else:
                w.conn = client.conn
                w.alive = True
            self._workers.append(w)
        if not self._live():
            raise PoolJobError(
                f"no workers came up ({self.jobs} local, "
                f"{len(self.node_addresses)} nodes)")
        self._started = True
        return self

    def __enter__(self) -> "ExecPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _live(self) -> List[_Worker]:
        return [w for w in self._workers if w.alive]

    def worker_pids(self) -> Dict[int, int]:
        """rank -> pid of the live *local* workers (fault-injection
        hook); remote nodes are not ours to signal."""
        return {w.rank: w.process.pid for w in self._live()
                if w.remote is None}

    def node_ship_stats(self) -> List[dict]:
        """Per-node pack shipping counters (ship-once accounting)."""
        return [self._node_clients[r].ship_stats()
                for r in sorted(self._node_clients)]

    # ------------------------------------------------------------------
    def _respawn_slot(self, idx: int,
                      stats: Optional[PoolStats] = None) -> Optional[_Worker]:
        """Replace the dead worker in slot *idx* with a fresh process
        (same rank, new pipe) and re-attach every prepared pack.

        The replacement is a *healthy* machine: it carries no fault
        plan (otherwise a once-per-process fault re-arms on every
        respawn and a single injected kill poisons its task forever,
        which no real crash does — and seeded chaos plans would never
        converge)."""
        old = self._workers[idx]
        try:
            old.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        clean = (replace(self._cfg, fault_plan=None)
                 if self._cfg.fault_plan is not None else self._cfg)
        if stats is not None:
            stats.respawn_attempts += 1
        w = self._spawn_worker(old.rank, clean)
        if not self._await_ready(w):
            # The replacement never came up: reap it completely (kill
            # *and* join, it is in no worker list) and leave the dead
            # slot as-is — the attempt above still consumed budget, so
            # a permanently failing spawn cannot loop forever.
            self._reap_stillborn(w)
            self.ledger.record("respawn_failed", rank=old.rank)
            return None
        try:
            for prep in self._prepared.values():
                for spec in prep.specs:
                    w.conn.send(("attach", spec))
        except OSError:  # instant death during re-attach
            self._reap_stillborn(w)
            self.ledger.record("respawn_failed", rank=old.rank,
                               detail="died during pack re-attach")
            return None
        self._workers[idx] = w
        self.total_respawns += 1
        if stats is not None:
            stats.respawns += 1
        self.ledger.record("respawn", rank=w.rank)
        return w

    def _reap_stillborn(self, w: _Worker) -> None:
        """Kill and join a replacement that failed before it was ever
        placed in ``_workers`` — nothing else will, so skipping this
        leaks a live process."""
        w.alive = False
        try:
            w.process.kill()
            w.process.join(timeout=self.join_timeout)
        except Exception:  # pragma: no cover - teardown best effort
            pass
        try:
            w.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _reconnect_slot(self, idx: int,
                        stats: Optional[PoolStats] = None,
                        force: bool = False) -> Optional[_Worker]:
        """Re-dial the dead remote worker in slot *idx* and re-ship (or
        re-adopt) every pack its mirror placement assigns it.

        Paced by per-client exponential backoff + jitter: a node that
        stays down costs one quick refused dial per backoff window, not
        per pump tick.  Each *actual* attempt consumes respawn budget,
        exactly like a local respawn.  A reconnected node that still
        holds its packs (network blip, agent survived) re-registers
        them by identity — the adopt path — so recovery ships ~0 bytes.
        """
        w = self._workers[idx]
        client = w.remote
        now = time.monotonic()
        if not force and now < client.retry_at:
            return None
        if stats is not None:
            stats.respawn_attempts += 1
        try:
            # The hello wait runs inside the single-threaded pump: a
            # port that accepts but never answers (agent dead, its
            # supervisor still holds the listening socket) must cost
            # one node-timeout, not the generous session-start default.
            client.connect(
                attempts=1,
                hello_timeout=self.node_timeout or max(
                    1.0, 5 * self._heartbeat))
        except NodeConnectError as exc:
            client.retry_n += 1
            client.retry_at = now + backoff_delay(client.retry_n,
                                                  base=0.2, max_delay=5.0)
            self.ledger.record("reconnect_failed", rank=w.rank,
                               detail=str(exc))
            return None
        try:
            self._ship_packs_to(client)
        except (OSError, EOFError, FrameError) as exc:
            client.abort()
            client.retry_n += 1
            client.retry_at = now + backoff_delay(client.retry_n,
                                                  base=0.2, max_delay=5.0)
            self.ledger.record("reconnect_failed", rank=w.rank,
                               detail=f"died during pack re-ship: {exc}")
            return None
        w.conn = client.conn
        w.alive = True
        w.busy = None
        w.jobs_sent.clear()
        self.total_respawns += 1
        if stats is not None:
            stats.respawns += 1
            stats.reconnects += 1
        self.ledger.record("reconnect", rank=w.rank, detail=client.label)
        return w

    def _recover_slot(self, idx: int,
                      stats: Optional[PoolStats] = None) -> Optional[_Worker]:
        w = self._workers[idx]
        if w.remote is not None:
            return self._reconnect_slot(idx, stats)
        return self._respawn_slot(idx, stats)

    def _ensure_capacity(self) -> int:
        """Recover every dead slot (between-runs capacity recovery):
        local slots respawn, remote slots re-dial (ignoring backoff
        pacing — a new run is worth one fresh dial per node)."""
        if not self.respawn or self._closed:
            return 0
        restored = 0
        for idx, w in enumerate(self._workers):
            if w.alive:
                continue
            if w.remote is not None:
                restored += self._reconnect_slot(idx, force=True) is not None
            else:
                restored += self._respawn_slot(idx) is not None
        return restored

    def _maybe_respawn(self, stats: PoolStats) -> None:
        """Budgeted per-run capacity recovery.  The budget counts
        *attempts* (not successes): one worker death must consume at
        most one unit even when its send failure and the liveness
        sweep both observe it, and a slot whose replacements keep
        dying cannot burn the pump loop on endless spawns.  Remote
        slots additionally pace themselves with per-client backoff, so
        a hard-down node consumes budget slowly instead of instantly."""
        if not self.respawn:
            return
        for idx, w in enumerate(self._workers):
            if not w.alive and stats.respawn_attempts < self.max_respawns:
                self._recover_slot(idx, stats)

    # ------------------------------------------------------------------
    def _prepare(self, db, k: int, base: int,
                 n_fragments: Optional[int]) -> _PreparedDB:
        if getattr(db, "is_pack_store", False):
            return self._prepare_from_store(db, k, base)
        token = db_token(db)
        version = getattr(db, "_version", 0)
        n_slots = self.jobs + len(self.node_addresses)
        nf = n_fragments or max(1, min(len(db) or 1, 2 * n_slots))
        key = (token, version, k, base, nf)
        prep = self._prepared.get(key)
        if prep is not None:
            return prep
        self._drop_stale(token, version)
        specs: List[PackSpec] = []
        for frag_id, ids in enumerate(plan_fragments(db, nf)
                                      if len(db) else []):
            sub = db.subset(ids, name=f"{getattr(db, 'name', 'db')}"
                                      f".{frag_id:03d}",
                            fragment_id=frag_id)
            specs.append(pack_fragment(sub, k, base,
                                       cache_token=(token, version, frag_id),
                                       registry=self._registry))
        return self._install_prepared(key, specs)

    def _prepare_from_store(self, store, k: int, base: int) -> _PreparedDB:
        """Cold start from an on-disk pack store: mmap each committed
        pack, bulk-copy its data region into a fresh shm segment (one
        memcpy per fragment — no scan structures are rebuilt), verify
        CRCs from the segment, and drop the mappings immediately.  The
        packs keep their own ``(("rpk", store_id), version,
        fragment_id)`` ScanCache identities, so worker caches and
        stale-version invalidation behave exactly as for in-RAM
        databases."""
        from repro.exec.diskpack import DiskPack
        if k != store.k or base != store.base:
            raise ValueError(
                f"pack store {store.directory!r} was built with word size "
                f"{store.k} over base {store.base}; this search needs "
                f"({k}, {base}) — rebuild the store")
        token = db_token(store)
        version = store._version
        key = (token, version, k, base, len(store.packs))
        prep = self._prepared.get(key)
        if prep is not None:
            return prep
        self._drop_stale(token, version)
        specs: List[PackSpec] = []
        packs: List[DiskPack] = []
        try:
            packs = store.open_packs(verify=True)
            for pack in packs:
                specs.append(publish_pack_bytes(
                    pack.data, pack.layout, pack.checksums,
                    seqtype=pack.spec.seqtype,
                    cache_token=pack.spec.cache_token,
                    fragment_id=pack.spec.fragment_id,
                    k=pack.spec.k, base=pack.spec.base,
                    n_sequences=pack.spec.n_sequences,
                    total_residues=pack.spec.total_residues,
                    source_ids=pack.spec.source_ids,
                    size=pack.spec.size, registry=self._registry))
        except BaseException:
            for spec in specs:
                self._registry.release(spec.name)
            raise
        finally:
            # Publish-and-close: after this point the pool serves from
            # shm only; no mmap or store fd survives (ExecPool.close()
            # therefore has nothing disk-side to leak).
            for pack in packs:
                pack.close()
        return self._install_prepared(key, specs)

    def _drop_stale(self, token, version) -> None:
        """The registry is keyed by token+version: a mutated database
        invalidates every pack built from its previous version."""
        stale = [kk for kk in self._prepared
                 if kk[0] == token and kk[1] != version]
        for kk in stale:
            self._release_prepared(self._prepared.pop(kk))

    def _node_ranks(self) -> List[int]:
        return sorted(self._node_clients)

    def _install_prepared(self, key: tuple,
                          specs: List[PackSpec]) -> _PreparedDB:
        prep = _PreparedDB(key=key, specs=specs,
                           ids_by_name={s.name: list(s.source_ids)
                                        for s in specs})
        if specs and self._node_clients:
            # CEFT-style mirror placement over the configured node
            # ranks (dead ones included: they may reconnect, and their
            # groups' other mirrors cover them meanwhile).
            groups, group_nodes = plan_mirror_groups(
                [s.total_residues for s in specs],
                self._node_ranks(), self.replication)
            prep.groups = groups
            prep.group_nodes = group_nodes
            prep.placement = {specs[i].name: group_nodes[g]
                              for g, idx in enumerate(groups)
                              for i in idx}
        for s in specs:
            self._pack_residues[s.name] = s.total_residues
        for w in self._live():
            if w.remote is not None:
                continue            # nodes get pack bytes, not shm names
            try:
                for spec in specs:
                    w.conn.send(("attach", spec))
            except OSError:
                w.alive = False
        self._prepared[key] = prep
        for w in self._live():
            if w.remote is None:
                continue
            try:
                self._ship_packs_to(w.remote)
            except (OSError, EOFError, FrameError) as exc:
                w.remote.abort()
                w.alive = False
                self.ledger.record("node_ship_failed", rank=w.rank,
                                   detail=str(exc))
        return prep

    def _ship_packs_to(self, client: NodeClient) -> int:
        """Ship (or adopt) every pack *client*'s placement assigns it,
        across all prepared fragment sets; returns bytes sent."""
        sent = 0
        for prep in self._prepared.values():
            for spec in prep.specs:
                holders = prep.placement.get(spec.name, ())
                if client.rank in holders:
                    sent += client.ship(spec)
        return sent

    def _release_prepared(self, prep: _PreparedDB,
                          notify: bool = True) -> None:
        for spec in prep.specs:
            if notify:
                for w in self._live():
                    try:
                        w.conn.send(("detach", spec.name))
                    except OSError:
                        w.alive = False
            self._registry.release(spec.name)
            self._pack_residues.pop(spec.name, None)

    def release_db(self, db) -> int:
        """Drop every pack prepared from *db* (any version); returns
        how many fragment sets were released."""
        token = getattr(db, "_scan_token", None)
        keys = [kk for kk in self._prepared if kk[0] == token]
        for kk in keys:
            self._release_prepared(self._prepared.pop(kk))
        return len(keys)

    # ------------------------------------------------------------------
    def _soft_deadline(self) -> float:
        """Seconds before an outstanding task becomes hedge-eligible."""
        if self.hedge_after is not None:
            return self.hedge_after
        ema = self._task_ema
        return max(_HEDGE_FLOOR, _HEDGE_MULT * ema if ema else 0.0)

    def _hard_deadline(self) -> float:
        """Seconds before a busy worker is presumed hung and killed."""
        if self.task_timeout is not None:
            return self.task_timeout
        return max(4 * self._soft_deadline(), 2.0)

    def _fail_current(self, w: _Worker, sched: GreedyScheduler,
                      stats: PoolStats,
                      epoch: int) -> Optional[PoolJobError]:
        """Resolve the task a lost worker was holding: requeue it (or
        fail the job) when it belongs to the current run, ignore it
        when it is a cross-run straggler or already hedge-completed."""
        task = w.busy
        w.busy = None
        if task is None or task[0] != epoch:
            return None
        try:
            key = sched.fail(w.rank)
        except RetriesExceeded as exc:
            sched.drop_pending()
            self.ledger.record("retries_exceeded", rank=w.rank,
                               task=task[1:], detail=str(exc))
            return PoolJobError(
                f"fragment task {exc.key!r} failed {exc.attempts} times "
                f"(worker deaths: {stats.worker_deaths})")
        if key is not None:
            self.ledger.record("requeue", rank=w.rank, task=key)
        return None

    def _handle_death(self, w: _Worker, sched: GreedyScheduler,
                      stats: PoolStats,
                      epoch: int) -> Optional[PoolJobError]:
        if not w.alive:
            return None
        w.alive = False
        stats.worker_deaths.append(w.rank)
        self.ledger.record("worker_death", rank=w.rank,
                           task=w.busy[1:] if w.busy else None)
        if w.remote is not None:
            # Drop the socket now: a half-dead connection must not
            # keep waking the pump, and the reconnect path dials fresh.
            w.remote.abort()
        try:
            w.process.join(timeout=min(0.5, self.join_timeout))
        except Exception:  # pragma: no cover
            pass
        return self._fail_current(w, sched, stats, epoch)

    def _send_task(self, w: _Worker, jobs: Dict[int, JobSpec],
                   qis: Tuple[int, ...], names: Tuple[str, ...], epoch: int,
                   sched: GreedyScheduler,
                   stats: PoolStats) -> Optional[PoolJobError]:
        """Ship (any new jobs, then task) to *w*; busy bookkeeping is
        set first so a send failure resolves the assignment as a death.
        ``jobs_sent`` is only updated after every send succeeded — a
        half-delivered dispatch must not leave the record claiming the
        worker holds a job spec it never received."""
        w.busy = (epoch, qis, names)
        w.busy_since = time.monotonic()
        try:
            for qi in qis:
                if qi not in w.jobs_sent:
                    w.conn.send(("job", qi, jobs[qi]))
            w.conn.send(("task", qis, names, epoch))
        except OSError:
            return self._handle_death(w, sched, stats, epoch)
        w.jobs_sent.update(qis)
        return None

    def _payload_pairs(self, w: "_Worker", payload: tuple,
                       stats: PoolStats
                       ) -> List[Tuple[str, int, SearchResults]]:
        """Materialize a result payload: inline pickled triples, or a
        CRC-checked read from the worker's shared result arena.

        The single-slot arena is safe because this read happens inside
        the result-message handler — before the dispatch phase can hand
        the same worker another task that would overwrite the slot.
        Hedge copies run on *other* workers, which own their own arenas.
        """
        mode = payload[0]
        if mode == "inline":
            stats.inline_results += 1
            return payload[1]
        if mode == "blob":
            # Socket-node result: the RRES blob travelled inside a
            # CRC-checked frame, so the codec's own truncation guards
            # are the only verification left to do here.
            stats.remote_results += 1
            return decode_result_pairs(payload[1])
        _, offset, nbytes, crc = payload
        arena = self._arenas.get(w.rank)
        if arena is None:
            raise PackIntegrityError(
                f"worker {w.rank} shipped an arena result but the master "
                f"holds no arena for that rank")
        stats.arena_results += 1
        return decode_result_pairs(arena.read(offset, nbytes, crc))

    def _hedge_candidate(self, sched: GreedyScheduler, epoch: int,
                         now: float, soft: float,
                         rank: Optional[int] = None) -> Optional[tuple]:
        """The most-overdue unhedged current-run task — restricted,
        when *rank* is given, to tasks that worker is eligible for
        (a node cannot hedge a fragment range it does not hold)."""
        best, best_age = None, soft
        for w in self._live():
            if w.busy is None or w.busy[0] != epoch:
                continue
            key = (w.busy[1], w.busy[2])
            if sched.is_completed(key) or sched.holder_count(key) != 1:
                continue
            if rank is not None and not sched.eligible(rank, key):
                continue
            age = now - w.busy_since
            if age > best_age:
                best, best_age = key, age
        return best

    def _run_tasks(self, jobs: Dict[int, JobSpec],
                   tasks: Sequence[Tuple[tuple, float]],
                   affinity: Optional[Dict[tuple, Tuple[int, ...]]] = None
                   ) -> Tuple[Dict[int, Dict[str, SearchResults]], PoolStats]:
        self._epoch += 1
        epoch = self._epoch
        sched = GreedyScheduler(tasks, max_retries=self.max_retries,
                                affinity=affinity)
        stats = PoolStats()
        results: Dict[int, Dict[str, SearchResults]] = {qi: {} for qi in jobs}

        try:
            self._pump(jobs, sched, stats, results, epoch)
        finally:
            # Drop the job tables win or lose: a failed run must not
            # leave workers holding stale specs for reused query ids.
            for w in self._live():
                try:
                    for qi in w.jobs_sent:
                        w.conn.send(("forget_job", qi))
                    w.jobs_sent.clear()
                except OSError:
                    w.alive = False
            stats.requeues = sched.requeues
            self.last_stats = stats
        return results, stats

    def _pump(self, jobs: Dict[int, JobSpec], sched: GreedyScheduler,
              stats: PoolStats,
              results: Dict[int, Dict[str, SearchResults]],
              epoch: int) -> None:
        from multiprocessing.connection import wait

        failure: Optional[Exception] = None
        while not sched.done:
            now = time.monotonic()
            # Belt and braces: a worker can die without its pipe waking
            # wait() promptly; sweep liveness every tick.
            for w in self._live():
                if not w.process.is_alive():
                    # NB: the recovery call must run even with a failure
                    # already latched (`failure or f()` would skip it and
                    # leave a dead worker marked alive forever).
                    err = self._handle_death(w, sched, stats, epoch)
                    failure = failure or err
            # Hard deadline: a worker stuck this long is hung (or its
            # reply was lost) — kill it and recover the capacity.  The
            # CEFT analog: stop waiting on a dead server, period.
            hard = self._hard_deadline()
            for w in self._live():
                if w.busy is not None and now - w.busy_since > hard:
                    stats.hang_kills += 1
                    self.ledger.record("hang_kill", rank=w.rank,
                                       task=w.busy[1:],
                                       detail=f"busy {now - w.busy_since:.2f}s"
                                              f" > {hard:.2f}s")
                    try:
                        w.process.kill()
                    except Exception:  # pragma: no cover
                        pass
                    err = self._handle_death(w, sched, stats, epoch)
                    failure = failure or err
            # Missed-heartbeat detection for *idle* remote workers: a
            # busy one is covered by the hard deadline above, but an
            # idle node that stops answering PINGs would otherwise
            # look healthy forever.  PINGs are rate-limited to the
            # heartbeat interval; PONGs refresh last_heard inside the
            # connection's poll/recv.
            node_timeout = self.node_timeout or max(
                1.0, 5 * self._heartbeat)
            for w in self._live():
                if w.remote is None or w.busy is not None:
                    continue
                conn = w.conn
                if now - conn.last_ping >= self._heartbeat:
                    try:
                        conn.ping()
                    except OSError:
                        err = self._handle_death(w, sched, stats, epoch)
                        failure = failure or err
                        continue
                if now - conn.last_heard > node_timeout:
                    stats.heartbeat_losses += 1
                    self.ledger.record(
                        "heartbeat_lost", rank=w.rank,
                        detail=f"silent {now - conn.last_heard:.2f}s "
                               f"> {node_timeout:.2f}s")
                    err = self._handle_death(w, sched, stats, epoch)
                    failure = failure or err
            if failure is None:
                self._maybe_respawn(stats)
            else:
                # A failed run stops dispatching, so anything requeued
                # after the failure could never drain — drop it.
                sched.drop_pending()
            live = self._live()
            if len(live) < self.min_workers:
                failure = failure or PoolJobError(
                    f"pool collapsed to {len(live)}/"
                    f"{len(self._workers)} workers "
                    f"(min_workers={self.min_workers}; "
                    f"deaths: {stats.worker_deaths})")
                if not live:
                    break
            # Last-mirror loss: pending work whose every eligible
            # holder is dead can never drain.  Fail the job now — the
            # serial fallback serves it whole — instead of waiting on
            # a reconnect that may never come.
            if failure is None:
                stranded = sched.unplaceable([w.rank for w in live])
                if stranded:
                    self.ledger.record(
                        "mirror_lost", task=stranded[0],
                        detail=f"{len(stranded)} task(s) lost their last "
                               f"holder (deaths: {stats.worker_deaths})")
                    failure = PoolJobError(
                        f"{len(stranded)} pending task(s) lost the last "
                        f"node holding their fragments "
                        f"(deaths: {stats.worker_deaths})")
                    sched.drop_pending()
            # Greedy dispatch: every idle worker gets the next task it
            # is eligible for (locality: its own fragments first).
            for w in live:
                if failure is not None or not sched.has_pending:
                    break
                if not w.alive or w.busy is not None:
                    continue
                task = sched.assign(w.rank)
                if task is None:
                    continue        # nothing this worker can serve
                qis, names = task
                err = self._send_task(w, jobs, qis, names,
                                      epoch, sched, stats)
                failure = failure or err
            # Hedged re-issue: idle workers with nothing pending take a
            # speculative copy of the most-overdue task (the mirror-
            # group read around a hot primary).  First result wins.
            if failure is None and not sched.has_pending:
                soft = self._soft_deadline()
                now = time.monotonic()
                for w in live:
                    if not w.alive or w.busy is not None:
                        continue
                    cand = self._hedge_candidate(sched, epoch, now, soft,
                                                 rank=w.rank)
                    if cand is None:
                        continue
                    sched.hedge(w.rank, cand)
                    stats.hedges += 1
                    self.ledger.record("hedge", rank=w.rank, task=cand)
                    err = self._send_task(w, jobs, cand[0], cand[1],
                                          epoch, sched, stats)
                    failure = failure or err
            if sched.done:
                break
            conns = {w.conn: w for w in self._live()}
            if not conns:
                continue
            # Buffered socket messages first: wait() watches fds, but
            # one socket read can decode several frames — a message
            # already queued inside a FrameConnection generates no fd
            # activity and would otherwise wait for the peer's next
            # send (or the hard deadline) to be noticed.
            ready = [c for c in conns if getattr(c, "queued", 0)]
            if not ready:
                ready = wait(list(conns), timeout=self._heartbeat)
            for conn in ready:
                w = conns[conn]
                try:
                    # A socket wakeup may carry only a control frame
                    # (PONG); poll(0) absorbs those and answers whether
                    # a data message is actually queued.  A framing
                    # violation (bad CRC, bad magic, sequence gap) is a
                    # typed transport error, handled as a node death —
                    # never a hang, never a silently-accepted payload.
                    if not conn.poll(0):
                        continue
                    msg = conn.recv()
                except FrameError as exc:
                    self.ledger.record("transport_error", rank=w.rank,
                                       detail=str(exc))
                    err = self._handle_death(w, sched, stats, epoch)
                    failure = failure or err
                    continue
                except (EOFError, OSError):
                    err = self._handle_death(w, sched, stats, epoch)
                    failure = failure or err
                    continue
                kind = msg[0]
                if kind == "result":
                    _, rank, qis, names, payload, elapsed = msg[:6]
                    m_epoch = msg[6] if len(msg) > 6 else epoch
                    w.busy = None
                    if m_epoch != epoch:
                        stats.stale_results += 1
                        self.ledger.record("stale_result", rank=w.rank,
                                           task=(qis, names),
                                           detail="cross-run straggler")
                        continue
                    key = (qis, names)
                    was_done = sched.is_completed(key)
                    hedged = sched.holder_count(key) > 1
                    if w.rank in sched.outstanding:
                        sched.complete(w.rank)
                    if was_done:
                        stats.stale_results += 1
                        self.ledger.record("stale_result", rank=w.rank,
                                           task=key, detail="hedge loser")
                        continue
                    stats.tasks_done += 1
                    stats.fragments_done += len(names)
                    if not hedged:
                        # Only clean, sole-holder completions feed the
                        # adaptive deadlines: a hedged task's elapsed
                        # time is either the straggler's stall or a
                        # duplicate — letting one straggler inflate the
                        # soft deadline would disable hedging for the
                        # rest of the run.
                        self._task_ema = (elapsed if self._task_ema is None
                                          else 0.5 * self._task_ema
                                          + 0.5 * elapsed)
                        if elapsed > 0:
                            # A batched task scans the range once per
                            # query in the batch, so its effective scan
                            # throughput is residues x batch size.
                            rate = (len(qis)
                                    * sum(self._pack_residues.get(n, 0)
                                          for n in names)) / elapsed
                            if rate > 0:
                                self._rate_ema = (
                                    rate if self._rate_ema is None
                                    else 0.5 * self._rate_ema + 0.5 * rate)
                    if hedged:
                        stats.hedge_wins += 1
                        self.ledger.record("hedge_win", rank=w.rank, task=key)
                    if failure is None:
                        try:
                            pairs = self._payload_pairs(w, payload, stats)
                        except PackIntegrityError as exc:
                            stats.integrity_failures += 1
                            self.ledger.record(
                                "integrity", rank=w.rank,
                                detail=f"result arena: {exc}")
                            failure = exc
                            sched.drop_pending()
                            continue
                        for pack_name, tqi, res in pairs:
                            results[tqi][pack_name] = res
                elif kind == "error":
                    _, rank, qis, names, tb = msg[:5]
                    m_epoch = msg[5] if len(msg) > 5 else epoch
                    stats.worker_errors += 1
                    self.ledger.record("worker_error", rank=w.rank,
                                       task=(qis, names),
                                       detail=tb.strip().splitlines()[-1]
                                       if tb else "")
                    if qis is None:
                        continue            # attach-time failure
                    w.busy = None
                    if m_epoch != epoch:
                        continue            # cross-run straggler error
                    try:
                        key = sched.fail(w.rank)
                    except RetriesExceeded as exc:
                        sched.drop_pending()
                        self.ledger.record("retries_exceeded", rank=w.rank,
                                           task=(qis, names),
                                           detail=str(exc))
                        failure = failure or PoolJobError(
                            f"fragment task {exc.key!r} failed "
                            f"{exc.attempts} times; last worker error:\n"
                            f"{tb}")
                        continue
                    if key is not None:
                        self.ledger.record("requeue", rank=w.rank, task=key)
                elif kind == "integrity":
                    _, rank, pack_name, detail = msg
                    stats.integrity_failures += 1
                    self.ledger.record("integrity", rank=w.rank,
                                       detail=f"{pack_name}: {detail}")
                    failure = failure or PackIntegrityError(detail)
                    sched.drop_pending()
                elif kind == "stopped":  # pragma: no cover - close path
                    w.alive = False

        if failure is not None:
            raise failure

    # ------------------------------------------------------------------
    def _serial_rescue(self, queries: Sequence[np.ndarray],
                       query_ids: Sequence[str], db, scheme,
                       params: SearchParams, both_strands: bool,
                       exc: PoolJobError) -> List[SearchResults]:
        """Graceful degradation: the pool could not finish the job, so
        serve it with the serial scan engine (byte-identical by
        construction) instead of failing the caller."""
        self.ledger.record("fallback", detail=str(exc))
        stats = self.last_stats or PoolStats()
        stats.fallback = True
        self.last_stats = stats
        warnings.warn(
            f"exec pool degraded ({exc}); serving this batch with the "
            f"serial scan engine", RuntimeWarning, stacklevel=3)
        if getattr(db, "is_pack_store", False):
            from repro.exec.diskpack import search_store
            return [search_store(q, db, scheme, params,
                                 query_id=query_ids[qi],
                                 both_strands=both_strands)
                    for qi, q in enumerate(queries)]
        return [search(q, db, scheme, params, query_id=query_ids[qi],
                       both_strands=both_strands)
                for qi, q in enumerate(queries)]

    def search_many(self, queries: Sequence[np.ndarray], db, scheme,
                    params: Optional[SearchParams] = None, *,
                    query_ids: Optional[Sequence[str]] = None,
                    both_strands: bool = True,
                    n_fragments: Optional[int] = None,
                    keep_fragment_ids: bool = False,
                    query_batch: Optional[int] = None
                    ) -> List[SearchResults]:
        """Search a batch of encoded queries through one scheduler pass.

        Returns one :class:`SearchResults` per query, in input order,
        each byte-identical to ``search(query, db, ...)`` run serially.
        Queries are grouped into batches of at most *query_batch*
        (default: the pool's ``query_batch`` knob) and each task scans
        its fragment range once for a whole batch, so a multi-query
        workload amortizes the database pass itself.  If the pool
        cannot finish the batch (capacity collapse, retry exhaustion)
        and ``serial_fallback`` is on, the batch is served by the
        serial engine instead — same bytes, plus a ``RuntimeWarning``
        and a ledger ``fallback`` entry.  A pack failing CRC
        verification always raises
        :class:`~repro.exec.shm.PackIntegrityError`.
        """
        params = params or SearchParams()
        is_protein = db.seqtype == AA
        base = len(PROTEIN) if is_protein else len(DNA)
        queries = [np.asarray(q, dtype=np.uint8) for q in queries]
        if query_ids is None:
            query_ids = ["query"] * len(queries)
        if len(query_ids) != len(queries):
            raise ValueError("query_ids must match queries")
        if not queries:
            return []
        try:
            self.start()
        except PoolJobError as exc:
            # Startup collapse (every node unreachable, every local
            # spawn failed) degrades exactly like a mid-run collapse.
            if not self.serial_fallback or self._closed:
                raise
            return self._serial_rescue(queries, query_ids, db, scheme,
                                       params, both_strands, exc)

        ka = resolve_ka(scheme, params, is_protein)
        prep = self._prepare(db, params.word_size, base,
                             n_fragments or self.default_fragments)
        jobs = {
            qi: JobSpec(query=q, query_id=query_ids[qi], scheme=scheme,
                        params=params, both_strands=both_strands, ka=ka,
                        effective_space=_effective_space(ka, params,
                                                         len(q), db))
            for qi, q in enumerate(queries)
        }
        # Query-batch x fragment-range tasks: queries are grouped into
        # contiguous batches (one shared database pass per batch) and
        # contiguous fragments grouped per task so the master's
        # dispatch/merge overhead is amortized (the 0.83x fix), sized
        # by the observed scan rate once the pool has one.
        max_qb = self.query_batch if query_batch is None else int(query_batch)
        if max_qb > 1:
            qgroups = plan_query_batches(len(jobs), self.jobs, max_qb)
        else:
            qgroups = [(qi,) for qi in jobs]
        weights = [float(spec.total_residues) for spec in prep.specs]
        local_ranks = tuple(range(self.jobs))
        range_affinity: List[Optional[Tuple[int, ...]]] = []
        if prep.groups and any(prep.group_nodes):
            # Mirror-aware planning: ranges are cut *inside* each
            # placement group so no task ever spans fragments held by
            # different node sets.  Each range's affinity lists the
            # group's holders (primary rotated across the mirrors for
            # balance) plus every local rank — local workers attach all
            # packs and stay eligible for everything.
            n_slots = max(1, self.jobs + len(self.node_addresses))
            ranges = []
            for g, idx in enumerate(prep.groups):
                gjobs = max(1, round(n_slots * len(idx)
                                     / max(1, len(prep.specs))))
                for j, rng in enumerate(plan_task_ranges(
                        [weights[i] for i in idx],
                        n_queries=len(qgroups), jobs=gjobs,
                        granularity=self.task_granularity,
                        overhead_s=self.task_overhead,
                        scan_rate=self._rate_ema or DEFAULT_SCAN_RATE,
                        queries_per_task=max((len(g) for g in qgroups),
                                             default=1))):
                    ranges.append(tuple(idx[i] for i in rng))
                    gn = prep.group_nodes[g]
                    rot = gn[j % len(gn):] + gn[:j % len(gn)] if gn else ()
                    range_affinity.append(rot + local_ranks)
        else:
            ranges = plan_task_ranges(
                weights, n_queries=len(qgroups), jobs=self.jobs,
                granularity=self.task_granularity,
                overhead_s=self.task_overhead,
                scan_rate=self._rate_ema or DEFAULT_SCAN_RATE,
                queries_per_task=max((len(g) for g in qgroups), default=1))
            range_affinity = [None] * len(ranges)
        tasks = []
        affinity: Dict[tuple, Tuple[int, ...]] = {}
        for qg in qgroups:
            for rng, aff in zip(ranges, range_affinity):
                key = (qg, tuple(prep.specs[i].name for i in rng))
                tasks.append((key, len(qg) * sum(weights[i] for i in rng)))
                if aff is not None:
                    affinity[key] = aff
        if tasks:
            try:
                results, _stats = self._run_tasks(jobs, tasks,
                                                  affinity or None)
            except PackIntegrityError:
                raise               # never served silently — see shm.py
            except PoolJobError as exc:
                if not self.serial_fallback:
                    raise
                return self._serial_rescue(queries, query_ids, db, scheme,
                                           params, both_strands, exc)
        else:
            results = {qi: {} for qi in jobs}
            self.last_stats = PoolStats()

        return [
            merge_fragment_results(
                results[qi], prep.ids_by_name,
                query_id=query_ids[qi], query_len=len(q),
                db_residues=db.total_residues, db_sequences=len(db),
                fragment_id=None if keep_fragment_ids else db.fragment_id,
                keep_fragment_ids=keep_fragment_ids)
            for qi, q in enumerate(queries)
        ]

    def search(self, query: np.ndarray, db, scheme,
               params: Optional[SearchParams] = None, *,
               query_id: str = "query", both_strands: bool = True,
               n_fragments: Optional[int] = None,
               keep_fragment_ids: bool = False) -> SearchResults:
        """One query through the pool; byte-identical to serial
        :func:`repro.blast.search.search`."""
        return self.search_many(
            [query], db, scheme, params, query_ids=[query_id],
            both_strands=both_strands, n_fragments=n_fragments,
            keep_fragment_ids=keep_fragment_ids)[0]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and release all shared-memory segments.

        Bounded: draining and joining share one ``join_timeout``
        budget per worker, after which the worker is escalated
        ``terminate()`` → ``kill()`` — a hung or fault-injected worker
        can therefore never hang teardown (or CI).
        """
        if self._closed:
            return
        self._closed = True
        for w in self._live():
            try:
                w.conn.send(("stop",))
            except (OSError, FrameError):
                w.alive = False
        for w in self._workers:
            deadline = time.monotonic() + self.join_timeout
            if w.alive and w.conn is not None:
                try:
                    while True:
                        left = deadline - time.monotonic()
                        if left <= 0 or not w.conn.poll(left):
                            break
                        if w.conn.recv()[0] == "stopped":
                            break
                except (EOFError, OSError, FrameError):
                    pass
            w.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=max(0.5, self.join_timeout / 2))
            if w.process.is_alive():  # pragma: no cover - SIGTERM immune
                w.process.kill()
                w.process.join()
            if w.conn is not None:
                try:
                    w.conn.close()
                except OSError:  # pragma: no cover
                    pass
            w.alive = False
        # Node clients are aborted regardless of worker-slot state:
        # a connection opened during a failed _ensure_capacity (or a
        # reconnect that never made it back into a slot) must not
        # survive close() as a half-open socket.
        for client in self._node_clients.values():
            client.abort()
        for end in self._strays:
            try:
                end.close()
            except Exception:  # pragma: no cover - best effort
                pass
        self._strays.clear()
        for key in list(self._prepared):
            self._release_prepared(self._prepared.pop(key), notify=False)
        for arena in self._arenas.values():
            arena.close()
            self._registry.release(arena.spec.name)
        self._arenas.clear()
        self._workers.clear()


# ----------------------------------------------------------------------
def search_parallel(query: np.ndarray, db, scheme,
                    params: Optional[SearchParams] = None, *,
                    jobs: Optional[int] = None,
                    n_fragments: Optional[int] = None,
                    pool: Optional[ExecPool] = None,
                    query_id: str = "query", both_strands: bool = True,
                    keep_fragment_ids: bool = False) -> SearchResults:
    """Multi-core :func:`repro.blast.search.search`, byte-identical.

    With *pool*, reuses its workers and any packs it already holds for
    *db* (the warm path); otherwise a transient pool of *jobs* workers
    is spun up and torn down around the call.
    """
    if pool is not None:
        return pool.search(query, db, scheme, params, query_id=query_id,
                           both_strands=both_strands,
                           n_fragments=n_fragments,
                           keep_fragment_ids=keep_fragment_ids)
    with ExecPool(jobs=jobs, n_fragments=n_fragments) as transient:
        return transient.search(query, db, scheme, params,
                                query_id=query_id,
                                both_strands=both_strands,
                                keep_fragment_ids=keep_fragment_ids)
