"""Multi-core execution runtime for the real BLAST engine.

The simulated cluster in :mod:`repro.parallel` answers the paper's
*what-if* questions; this package runs the same database-segmented
master/worker design on actual cores:

* :mod:`repro.exec.shm` — immutable fragment scan-structures published
  once in ``multiprocessing.shared_memory`` and attached zero-copy by
  every worker;
* :mod:`repro.exec.schedule` — greedy heaviest-first dynamic fragment
  scheduling with front-requeue on failure and bounded retries;
* :mod:`repro.exec.pool` — the persistent worker pool and the
  :func:`search_parallel` entry point, byte-identical to the serial
  engine.
"""

from repro.exec.pool import (ExecPool, JobSpec, PoolConfig, PoolJobError,
                             PoolStats, search_parallel)
from repro.exec.schedule import GreedyScheduler, RetriesExceeded, plan_fragments
from repro.exec.shm import (AttachedPack, PackDB, PackSpec, ShmRegistry,
                            create_pack, default_registry, pack_fragment)

__all__ = [
    "ExecPool", "JobSpec", "PoolConfig", "PoolJobError", "PoolStats",
    "search_parallel",
    "GreedyScheduler", "RetriesExceeded", "plan_fragments",
    "AttachedPack", "PackDB", "PackSpec", "ShmRegistry",
    "create_pack", "default_registry", "pack_fragment",
]
