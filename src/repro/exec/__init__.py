"""Multi-core execution runtime for the real BLAST engine.

The simulated cluster in :mod:`repro.parallel` answers the paper's
*what-if* questions; this package runs the same database-segmented
master/worker design on actual cores:

* :mod:`repro.exec.shm` — immutable fragment scan-structures published
  once in ``multiprocessing.shared_memory`` and attached zero-copy by
  every worker, with CRC32 integrity verification at publish and
  attach;
* :mod:`repro.exec.schedule` — greedy heaviest-first dynamic fragment
  scheduling with front-requeue on failure, bounded retries, and
  hedged re-issue of stuck tasks;
* :mod:`repro.exec.pool` — the persistent worker pool and the
  :func:`search_parallel` entry point, byte-identical to the serial
  engine, with worker respawn and graceful serial fallback;
* :mod:`repro.exec.faults` — deterministic fault injection (kill /
  hang / slow / drop-result / corrupt-pack) and the structured
  :class:`FailureLedger` the pool's recovery actions append to.
"""

from repro.exec.faults import (ANOMALY_KINDS, FAULT_KINDS, FAULT_PLAN_ENV,
                               FailureLedger, Fault, FaultInjector,
                               FaultPlan, LedgerEntry, random_plan)
from repro.exec.pool import (ExecPool, JobSpec, PoolConfig, PoolJobError,
                             PoolStats, search_parallel)
from repro.exec.schedule import GreedyScheduler, RetriesExceeded, plan_fragments
from repro.exec.shm import (AttachedPack, PackDB, PackIntegrityError,
                            PackSpec, ShmRegistry, corrupt_segment,
                            create_pack, default_registry, pack_fragment)

__all__ = [
    "ExecPool", "JobSpec", "PoolConfig", "PoolJobError", "PoolStats",
    "search_parallel",
    "GreedyScheduler", "RetriesExceeded", "plan_fragments",
    "AttachedPack", "PackDB", "PackIntegrityError", "PackSpec",
    "ShmRegistry", "corrupt_segment", "create_pack", "default_registry",
    "pack_fragment",
    "ANOMALY_KINDS", "FAULT_KINDS", "FAULT_PLAN_ENV",
    "Fault", "FaultInjector", "FaultPlan", "FailureLedger", "LedgerEntry",
    "random_plan",
]
