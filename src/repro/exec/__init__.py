"""Multi-core execution runtime for the real BLAST engine.

The simulated cluster in :mod:`repro.parallel` answers the paper's
*what-if* questions; this package runs the same database-segmented
master/worker design on actual cores:

* :mod:`repro.exec.shm` — immutable fragment scan-structures published
  once in ``multiprocessing.shared_memory`` and attached zero-copy by
  every worker, with CRC32 integrity verification at publish and
  attach, plus per-worker CRC-checked result arenas for shipping large
  hit sets back without pickling them through the pipe;
* :mod:`repro.exec.schedule` — greedy heaviest-first dynamic fragment
  scheduling with front-requeue on failure, bounded retries, hedged
  re-issue of stuck tasks, and an overhead-aware planner that groups
  fragments into contiguous range tasks;
* :mod:`repro.exec.pool` — the persistent worker pool and the
  :func:`search_parallel` entry point, byte-identical to the serial
  engine, with worker respawn and graceful serial fallback;
* :mod:`repro.exec.faults` — deterministic fault injection (kill /
  hang / slow / drop-result / corrupt-pack) and the structured
  :class:`FailureLedger` the pool's recovery actions append to;
* :mod:`repro.exec.diskpack` — the persistent on-disk pack format
  (``formatdb`` for this engine): checksummed mmap-able pack files
  whose data region matches the shm layout byte-for-byte, a streaming
  bounded-memory builder with atomic commit, and the pool's
  mmap-then-memcpy cold-start path;
* :mod:`repro.exec.net` — the framed socket transport (CRC32-checked
  length-prefixed frames, per-connection sequence numbers, PING/PONG
  keepalives, bounded reconnect backoff) that lets pool workers live
  on remote hosts;
* :mod:`repro.exec.nodes` — the worker-node agent (``repro-node``) and
  its master-side client: fragment packs shipped once and cached by
  identity, CEFT-style mirroring so a node death is a mirror re-read,
  plus the local :class:`NodeFleet` test/chaos harness.
"""

from repro.exec.diskpack import (DiskPack, PackFormatError, PackStore,
                                 PackStoreBuilder, build_pack_store,
                                 corrupt_pack_file, search_store,
                                 sweep_build_leftovers, write_pack)
from repro.exec.faults import (ANOMALY_KINDS, FAULT_KINDS, FAULT_PLAN_ENV,
                               FailureLedger, Fault, FaultInjector,
                               FaultPlan, LedgerEntry, random_plan)
from repro.exec.net import (FrameConnection, FrameCRCError, FrameDecoder,
                            FrameError, FrameSequenceError, FrameTruncated,
                            NodeConnectError, TransportError, backoff_delay,
                            connect_backoff, parse_address)
from repro.exec.nodes import (NodeAgent, NodeClient, NodeFleet, execute_task,
                              run_node)
from repro.exec.pool import (ExecPool, JobSpec, PoolConfig, PoolJobError,
                             PoolStats, search_parallel)
from repro.exec.results import (decode_result_pairs, encode_result_pairs,
                                estimate_payload_size)
from repro.exec.schedule import (DEFAULT_SCAN_RATE, DEFAULT_TASK_OVERHEAD_S,
                                 GreedyScheduler, RetriesExceeded,
                                 plan_fragments, plan_task_ranges)
from repro.exec.shm import (ArenaSpec, AttachedPack, PackDB,
                            PackIntegrityError, PackSpec, ResultArena,
                            ShmRegistry, corrupt_segment, create_pack,
                            default_registry, pack_fragment, pack_layout,
                            publish_pack_bytes)

__all__ = [
    "DiskPack", "PackFormatError", "PackStore", "PackStoreBuilder",
    "build_pack_store", "corrupt_pack_file", "search_store",
    "sweep_build_leftovers", "write_pack",
    "pack_layout", "publish_pack_bytes",
    "ExecPool", "JobSpec", "PoolConfig", "PoolJobError", "PoolStats",
    "search_parallel",
    "DEFAULT_SCAN_RATE", "DEFAULT_TASK_OVERHEAD_S",
    "GreedyScheduler", "RetriesExceeded", "plan_fragments",
    "plan_task_ranges",
    "decode_result_pairs", "encode_result_pairs", "estimate_payload_size",
    "ArenaSpec", "AttachedPack", "PackDB", "PackIntegrityError", "PackSpec",
    "ResultArena", "ShmRegistry", "corrupt_segment", "create_pack",
    "default_registry", "pack_fragment",
    "ANOMALY_KINDS", "FAULT_KINDS", "FAULT_PLAN_ENV",
    "Fault", "FaultInjector", "FaultPlan", "FailureLedger", "LedgerEntry",
    "random_plan",
    "FrameConnection", "FrameCRCError", "FrameDecoder", "FrameError",
    "FrameSequenceError", "FrameTruncated", "NodeConnectError",
    "TransportError", "backoff_delay", "connect_backoff", "parse_address",
    "NodeAgent", "NodeClient", "NodeFleet", "execute_task", "run_node",
]
