"""Deterministic fault injection for the real execution pool.

The paper's robustness experiments (dead server, Figure 7; hot-spot
server, Figures 8–9) perturb a *running* system and measure how the
I/O layer degrades.  This module is the real-runtime analog of those
perturbations: a seeded :class:`FaultPlan` arms kill / hang / slow /
drop-result / corrupt-pack faults against specific workers or tasks,
and the pool's workers consult a :class:`FaultInjector` built from the
plan at the two points where a real machine would betray them — pack
attach and task execution.  The production code path is unchanged:
with no plan armed the injector never exists, and a plan can be fed
through the ``REPRO_EXEC_FAULT_PLAN`` environment variable so the CLI
and CI chaos suites exercise the exact code users run.

Every recovery action the pool takes — death, requeue, hedge, respawn,
integrity failure, serial fallback — is recorded in a structured
:class:`FailureLedger`, the runtime twin of the simulator's violation
ledger (PR 2): chaos runs assert on its counters instead of scraping
logs, and CI fails on any *anomaly* entry (an event the hardened pool
should never produce, like a cross-run result mismatch).

Fault semantics (all applied worker-side):

``kill``
    ``os._exit`` at task receipt — the process dies without cleanup,
    exactly like the paper's dead data server (SIGKILL semantics).
``hang``
    sleep ``delay`` (default effectively forever) before serving the
    task — the hot server that stops answering; only the master's
    hard deadline gets the capacity back.
``slow``
    sleep ``delay`` then serve normally — the straggling hot server
    of Figures 8–9; the soft deadline hedges around it.
``drop_result``
    serve nothing and send nothing — a lost reply; indistinguishable
    from a hang at the master, and recovered the same way.
``corrupt_pack``
    scribble into the shared segment before attaching it — the torn
    or corrupted read that CRC verification must catch *before* any
    hit is produced.

Network fault kinds (applied by a socket worker *node* at
result-send time — see :mod:`repro.exec.nodes`; a pipe worker never
consults them because a pipe cannot fail these ways):

``disconnect``
    close the socket abruptly instead of sending the result — the
    dropped TCP connection; the master sees EOF, requeues to a
    mirror, and the node's agent survives to accept a reconnect.
``partition``
    go completely silent for ``delay`` seconds (no result, no
    heartbeat replies), then resume — the network partition that is
    indistinguishable from a hang until it heals; the master's
    deadlines decide first.
``delay``
    sleep ``delay`` then send normally — the slow link; the hedge
    races it and the late duplicate is discarded as stale.
``reorder``
    hold this result and release it *after* the next one — delivery
    reordering, which per-task keys make harmless and per-connection
    frame sequence numbers keep distinguishable from loss.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Recognised fault kinds, in documentation order.
FAULT_KINDS = ("kill", "hang", "slow", "drop_result", "corrupt_pack",
               "disconnect", "partition", "delay", "reorder")

#: The subset applied at result-send time by socket worker nodes;
#: pipe workers ignore these (a pipe cannot drop, partition, delay,
#: or reorder by itself).
NET_FAULT_KINDS = frozenset({"disconnect", "partition", "delay", "reorder"})

#: Environment variable carrying a JSON fault plan (or ``@/path/to``
#: a JSON file); read by :class:`~repro.exec.pool.ExecPool` when no
#: explicit plan is passed, so chaos suites drive unmodified callers.
FAULT_PLAN_ENV = "REPRO_EXEC_FAULT_PLAN"

#: A ``hang`` with no explicit delay sleeps this long — far past any
#: reasonable hard deadline, i.e. "forever" for the pool's purposes.
HANG_FOREVER = 3600.0


@dataclass(frozen=True)
class Fault:
    """One armed fault: a kind plus selectors that must all match.

    ``rank`` selects a worker (``None`` = any worker), ``task_index``
    the n-th task *that worker* serves (0-based, counted per worker),
    ``query`` the query index inside a batch, and ``fragment`` the
    fragment id of the pack the task (or attach, for ``corrupt_pack``)
    touches.  Unset selectors match everything, so ``Fault("kill")``
    kills every worker on its first matching task — ``once=True``
    (the default) disarms a fault after its first firing, which keeps
    seeded plans finite and chaos runs convergent.  Workers the pool
    *respawns* carry no plan at all: a replacement is a healthy
    machine, so an injected crash cannot poison its own requeued task
    forever.
    """

    kind: str
    rank: Optional[int] = None
    task_index: Optional[int] = None
    query: Optional[int] = None
    fragment: Optional[int] = None
    delay: Optional[float] = None
    once: bool = True

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")

    @property
    def stall(self) -> float:
        """Seconds a ``hang``/``slow`` fault sleeps for."""
        if self.delay is not None:
            return float(self.delay)
        return HANG_FOREVER if self.kind == "hang" else 0.75


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable set of armed faults.

    Plans ride to workers inside :class:`~repro.exec.pool.PoolConfig`
    (shipped once at spawn), round-trip through JSON for the
    ``REPRO_EXEC_FAULT_PLAN`` env hook, and carry the seed that
    generated them so a failing chaos run is reproducible from its
    one-line report.
    """

    faults: Tuple[Fault, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise to the JSON form ``from_json`` accepts."""
        return json.dumps({
            "seed": self.seed,
            "faults": [{k: v for k, v in vars(f).items() if v is not None
                        and not (k == "once" and v is True)}
                       for f in self.faults],
        })

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON; raises ``ValueError`` on bad input."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"bad fault plan JSON: {exc}") from None
        if isinstance(doc, list):        # bare fault list shorthand
            doc = {"faults": doc}
        if not isinstance(doc, dict) or not isinstance(
                doc.get("faults", []), list):
            raise ValueError("fault plan must be a JSON object with a "
                             "'faults' list (or a bare list of faults)")
        try:
            faults = tuple(Fault(**f) for f in doc.get("faults", []))
        except TypeError as exc:
            raise ValueError(f"bad fault entry: {exc}") from None
        return cls(faults=faults, seed=doc.get("seed"))

    @classmethod
    def from_env(cls, value: Optional[str] = None) -> Optional["FaultPlan"]:
        """Build a plan from ``REPRO_EXEC_FAULT_PLAN`` (inline JSON, or
        ``@/path`` to a JSON file).  Returns ``None`` when unset/empty."""
        if value is None:
            value = os.environ.get(FAULT_PLAN_ENV, "")
        value = value.strip()
        if not value:
            return None
        if value.startswith("@"):
            with open(value[1:]) as f:
                value = f.read()
        return cls.from_json(value)


def random_plan(seed: int, n_workers: int,
                kinds: Sequence[str] = ("kill", "hang", "slow",
                                        "drop_result"),
                n_faults: int = 2, max_task_index: int = 3,
                slow_delay: float = 1.0) -> FaultPlan:
    """A seeded random plan for chaos sweeps.

    Picks *n_faults* (kind, rank, task_index) triples from the given
    kinds; ``slow`` faults get a short *slow_delay* so sweeps stay
    fast, ``hang``/``drop_result`` rely on the pool's deadlines.  The
    same seed always yields the same plan (plain ``random.Random``, no
    global state).
    """
    import random

    rng = random.Random(seed)
    faults = []
    for _ in range(max(0, n_faults)):
        kind = rng.choice(list(kinds))
        faults.append(Fault(
            kind=kind,
            rank=rng.randrange(n_workers),
            task_index=rng.randrange(max_task_index + 1),
            delay=slow_delay if kind == "slow" else None,
        ))
    return FaultPlan(faults=tuple(faults), seed=seed)


class FaultInjector:
    """Worker-side fault arbiter: matches plan entries to events.

    Built per worker from the shipped plan; stateful only in which
    one-shot faults have fired and how many tasks this worker has
    served (the ``task_index`` selector counts per worker, so a plan
    is deterministic regardless of global scheduling order).
    """

    def __init__(self, plan: FaultPlan, rank: int):
        self.rank = rank
        self._armed: List[Fault] = [
            f for f in plan.faults if f.rank is None or f.rank == rank]
        self._task_no = -1

    def _take(self, match) -> Optional[Fault]:
        for i, f in enumerate(self._armed):
            if match(f):
                if f.once:
                    del self._armed[i]
                return f
        return None

    def on_attach(self, fragment_id: Optional[int]) -> Optional[Fault]:
        """The fault (if any) armed against attaching this fragment."""
        return self._take(lambda f: f.kind == "corrupt_pack" and (
            f.fragment is None or f.fragment == fragment_id))

    def on_task(self, query, fragment_id=None) -> Optional[Fault]:
        """The fault (if any) armed against the task just received.

        *query* is one query index or, for a multi-query batched task,
        a sequence of indices; *fragment_id* likewise is one fragment
        id or, for a fragment-range task, a sequence of ids.  A
        ``query``/``fragment`` selector matches when the armed value is
        anywhere in the batch/range.  Either way the task counter
        advances once per task (one batch × range = one task), so
        ``task_index`` keeps counting what the worker actually serves.
        """
        self._task_no += 1
        if query is None or isinstance(query, int):
            queries = (query,)
        else:
            queries = tuple(query)
        if fragment_id is None or isinstance(fragment_id, int):
            frags = (fragment_id,)
        else:
            frags = tuple(fragment_id)
        return self._take(lambda f: f.kind != "corrupt_pack"
                          and f.kind not in NET_FAULT_KINDS
                          and (f.task_index is None
                               or f.task_index == self._task_no)
                          and (f.query is None or f.query in queries)
                          and (f.fragment is None
                               or f.fragment in frags))

    def on_result(self, query, fragment_id=None) -> Optional[Fault]:
        """The network fault (if any) armed against the result the
        worker node is about to send.  Selector semantics match
        :meth:`on_task` but against the task counter *as already
        advanced* by the paired ``on_task`` call — the two hooks see
        the same task index for the same task."""
        if query is None or isinstance(query, int):
            queries = (query,)
        else:
            queries = tuple(query)
        if fragment_id is None or isinstance(fragment_id, int):
            frags = (fragment_id,)
        else:
            frags = tuple(fragment_id)
        return self._take(lambda f: f.kind in NET_FAULT_KINDS
                          and (f.task_index is None
                               or f.task_index == self._task_no)
                          and (f.query is None or f.query in queries)
                          and (f.fragment is None
                               or f.fragment in frags))


# ----------------------------------------------------------------------
#: Ledger kinds that a hardened pool must never produce; CI chaos runs
#: fail when any appear.  (``integrity``/``fallback`` etc. are expected
#: outcomes of the faults that provoke them, not anomalies.)
ANOMALY_KINDS = frozenset({"result_mismatch", "anomaly"})


@dataclass(frozen=True)
class LedgerEntry:
    """One recovery event: what happened, to whom, about which task."""

    kind: str
    rank: Optional[int] = None
    task: Optional[tuple] = None
    detail: str = ""
    time: float = 0.0


class FailureLedger:
    """Structured record of every fault, requeue, hedge, and respawn.

    The runtime counterpart of the simulator's violation ledger: the
    pool appends an entry for each recovery action, chaos suites
    assert on :meth:`summary` counters, and :meth:`anomalies` gates CI
    (non-zero means the hardening itself misbehaved).
    """

    def __init__(self):
        self.entries: List[LedgerEntry] = []
        self._t0 = time.monotonic()

    def record(self, kind: str, rank: Optional[int] = None,
               task: Optional[tuple] = None, detail: str = "") -> LedgerEntry:
        """Append one event; returns the entry for convenience."""
        entry = LedgerEntry(kind=kind, rank=rank, task=task, detail=detail,
                            time=time.monotonic() - self._t0)
        self.entries.append(entry)
        return entry

    def count(self, kind: Optional[str] = None) -> int:
        """Entries of one kind (or all of them)."""
        if kind is None:
            return len(self.entries)
        return sum(1 for e in self.entries if e.kind == kind)

    def summary(self) -> Dict[str, int]:
        """``{kind: count}`` over every recorded entry."""
        out: Dict[str, int] = {}
        for e in self.entries:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def anomalies(self) -> int:
        """Events the hardened pool should never produce (CI gate)."""
        return sum(1 for e in self.entries if e.kind in ANOMALY_KINDS)

    def clear(self) -> None:
        """Drop all entries (per-sweep reuse in chaos tools)."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FailureLedger {self.summary()!r}>"
