"""Columnar serialization of fragment search results.

The pool's original protocol pickled every ``SearchResults`` over the
worker pipe — per-object pickle overhead that mpiBLAST's profile
(PAPERS.md) identifies as the parallel-BLAST bottleneck: result
movement.  This module flattens a task's ``(pack_name, query_index,
SearchResults)`` triples into a handful of fixed-dtype numpy arrays
plus two byte blobs, so a large result set ships through the worker's
shared-memory :class:`~repro.exec.shm.ResultArena` as one CRC-checked
copy instead of thousands of pickled objects.  Version 2 of the format
added the per-result query index — a batched task returns results for
several queries per pack, and the master demultiplexes them by the
``qi`` column.

The round trip is exact: float fields (``bit_score``, ``evalue``)
travel as raw float64 bytes, so a decoded result compares equal to the
original down to the last ULP — the pool's byte-identity invariant
holds through the arena exactly as it does through pickle.
"""

from __future__ import annotations

import json
from typing import List, Sequence, Tuple

import numpy as np

from repro.blast.search import HSP, Hit, SearchResults

#: Format magic + version; a mismatched blob fails loudly.
_MAGIC = b"RRES2\n"

#: Per-hit int64 columns.
_HIT_COLS = 5      # subject_id, subject_len, n_hsps, desc_len, fragment_id
#: Per-HSP int64 columns.
_HSP_ICOLS = 9     # q_start q_end s_start s_end score identities align_len
#                    strand ops_len
#: Per-HSP float64 columns.
_HSP_FCOLS = 2     # bit_score, evalue


def estimate_payload_size(
        pairs: Sequence[Tuple[str, int, SearchResults]]) -> int:
    """Cheap upper-bound estimate of the encoded size, used to decide
    inline-pickle vs arena shipping without encoding twice."""
    est = 256
    for name, _qi, res in pairs:
        est += 176 + len(name) + len(res.query_id)
        for hit in res.hits:
            est += _HIT_COLS * 8 + len(hit.description)
            for hsp in hit.hsps:
                est += (_HSP_ICOLS + _HSP_FCOLS) * 8 + len(hsp.ops)
    return est


def encode_result_pairs(
        pairs: Sequence[Tuple[str, int, SearchResults]]) -> bytes:
    """Flatten ``(pack_name, query_index, SearchResults)`` triples into
    one blob."""
    meta: List[dict] = []
    hit_rows: List[Tuple[int, int, int, int, int]] = []
    hsp_irows: List[Tuple[int, ...]] = []
    hsp_frows: List[Tuple[float, float]] = []
    desc_parts: List[bytes] = []
    ops_parts: List[bytes] = []
    for name, qi, res in pairs:
        meta.append({
            "name": name,
            "qi": int(qi),
            "query_id": res.query_id,
            "query_len": int(res.query_len),
            "db_residues": int(res.db_residues),
            "db_sequences": int(res.db_sequences),
            "n_hits": len(res.hits),
        })
        for hit in res.hits:
            desc = hit.description.encode()
            desc_parts.append(desc)
            frag = -1 if hit.fragment_id is None else int(hit.fragment_id)
            hit_rows.append((int(hit.subject_id), int(hit.subject_len),
                             len(hit.hsps), len(desc), frag))
            for h in hit.hsps:
                ops = h.ops.encode()
                ops_parts.append(ops)
                hsp_irows.append((int(h.q_start), int(h.q_end),
                                  int(h.s_start), int(h.s_end),
                                  int(h.score), int(h.identities),
                                  int(h.align_len), int(h.strand), len(ops)))
                hsp_frows.append((float(h.bit_score), float(h.evalue)))
    hit_arr = np.asarray(hit_rows, dtype=np.int64).reshape(-1, _HIT_COLS)
    hsp_iarr = np.asarray(hsp_irows, dtype=np.int64).reshape(-1, _HSP_ICOLS)
    hsp_farr = np.asarray(hsp_frows, dtype=np.float64).reshape(-1, _HSP_FCOLS)
    desc_blob = b"".join(desc_parts)
    ops_blob = b"".join(ops_parts)
    header = json.dumps({
        "results": meta,
        "n_hits": hit_arr.shape[0],
        "n_hsps": hsp_iarr.shape[0],
        "desc_bytes": len(desc_blob),
        "ops_bytes": len(ops_blob),
    }).encode()
    return b"".join([
        _MAGIC, len(header).to_bytes(8, "little"), header,
        hit_arr.tobytes(), hsp_iarr.tobytes(), hsp_farr.tobytes(),
        desc_blob, ops_blob,
    ])


def decode_result_pairs(blob: bytes
                        ) -> List[Tuple[str, int, SearchResults]]:
    """Inverse of :func:`encode_result_pairs`; exact round trip."""
    if blob[:len(_MAGIC)] != _MAGIC:
        raise ValueError("not an encoded result blob (bad magic)")
    pos = len(_MAGIC)
    if len(blob) < pos + 8:
        raise ValueError("truncated result blob (header length cut short)")
    hlen = int.from_bytes(blob[pos:pos + 8], "little")
    pos += 8
    if len(blob) < pos + hlen:
        raise ValueError("truncated result blob (header cut short)")
    header = json.loads(blob[pos:pos + hlen])
    pos += hlen
    n_hits, n_hsps = header["n_hits"], header["n_hsps"]
    expect = (pos + (n_hits * _HIT_COLS + n_hsps * _HSP_ICOLS) * 8
              + n_hsps * _HSP_FCOLS * 8
              + header["desc_bytes"] + header["ops_bytes"])
    if len(blob) < expect:
        # Explicit guard: byte-blob slices further down would silently
        # shorten, decoding truncated descriptions as valid results.
        raise ValueError(f"truncated result blob ({len(blob)} bytes, "
                         f"header describes {expect})")
    hit_arr = np.frombuffer(blob, dtype=np.int64, count=n_hits * _HIT_COLS,
                            offset=pos).reshape(-1, _HIT_COLS)
    pos += hit_arr.nbytes
    hsp_iarr = np.frombuffer(blob, dtype=np.int64,
                             count=n_hsps * _HSP_ICOLS,
                             offset=pos).reshape(-1, _HSP_ICOLS)
    pos += hsp_iarr.nbytes
    hsp_farr = np.frombuffer(blob, dtype=np.float64,
                             count=n_hsps * _HSP_FCOLS,
                             offset=pos).reshape(-1, _HSP_FCOLS)
    pos += hsp_farr.nbytes
    desc_blob = blob[pos:pos + header["desc_bytes"]]
    pos += header["desc_bytes"]
    ops_blob = blob[pos:pos + header["ops_bytes"]]

    pairs: List[Tuple[str, int, SearchResults]] = []
    hi = pi = dpos = opos = 0
    for m in header["results"]:
        res = SearchResults(query_id=m["query_id"],
                            query_len=m["query_len"],
                            db_residues=m["db_residues"],
                            db_sequences=m["db_sequences"])
        for _ in range(m["n_hits"]):
            sid, slen, n, dlen, frag = (int(x) for x in hit_arr[hi])
            hi += 1
            hit = Hit(subject_id=sid,
                      description=desc_blob[dpos:dpos + dlen].decode(),
                      subject_len=slen,
                      fragment_id=None if frag < 0 else frag)
            dpos += dlen
            for _ in range(n):
                (q0, q1, s0, s1, score, ident,
                 alen, strand, olen) = (int(x) for x in hsp_iarr[pi])
                bit, ev = (float(x) for x in hsp_farr[pi])
                pi += 1
                hit.hsps.append(HSP(
                    q_start=q0, q_end=q1, s_start=s0, s_end=s1,
                    score=score, bit_score=bit, evalue=ev,
                    identities=ident, align_len=alen, strand=strand,
                    ops=ops_blob[opos:opos + olen].decode()))
                opos += olen
            res.hits.append(hit)
        pairs.append((m["name"], int(m["qi"]), res))
    return pairs
