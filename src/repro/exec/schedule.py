"""Dynamic fragment scheduling for the process pool.

The paper's master/worker protocol is greedy: every worker that
announces itself idle is immediately handed the next fragment, so fast
workers naturally absorb more of the database and a straggler never
holds more than one fragment hostage (`parallel/master.py` implements
the same policy for the *simulated* cluster; this module is its
real-execution twin).  Two refinements on top of plain FIFO:

* tasks are issued **heaviest-first** (longest-processing-time order,
  the same greedy bound `seqdb.segment_db` uses for binning), which
  tightens the makespan tail when fragments are uneven;
* a task whose worker died or errored is requeued **at the front**
  (matching the degraded-mode `appendleft` of the simulated master),
  with a bounded per-task attempt budget — exhausting it raises
  :class:`RetriesExceeded` and fails the job cleanly instead of
  looping forever on a poisoned fragment.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple


class RetriesExceeded(RuntimeError):
    """A task failed more times than the retry budget allows."""

    def __init__(self, key, attempts: int):
        super().__init__(f"task {key!r} failed {attempts} times")
        self.key = key
        self.attempts = attempts


def plan_fragments(db, n_fragments: int) -> List[List[int]]:
    """Partition a database's sequence ids into balanced fragments.

    Greedy longest-first binning by residue count — the exact policy of
    :func:`repro.blast.seqdb.segment_db`, returning id lists instead of
    materialized databases.  Clamps to ``len(db)`` fragments and drops
    nothing: every id lands in exactly one fragment.
    """
    n = len(db)
    if n_fragments < 1:
        raise ValueError("n_fragments must be >= 1")
    if n == 0:
        return []
    n_fragments = min(n_fragments, n)
    lengths = db.lengths()
    bins: List[List[int]] = [[] for _ in range(n_fragments)]
    loads = [0] * n_fragments
    for i in sorted(range(n), key=lambda i: -lengths[i]):
        target = loads.index(min(loads))
        bins[target].append(i)
        loads[target] += lengths[i]
    return bins


class GreedyScheduler:
    """Hand tasks to idle workers, heaviest first, requeue on failure.

    *tasks* is an iterable of ``(key, weight)`` pairs; keys must be
    hashable and unique.  The scheduler never talks to processes — the
    pool translates ``assign``/``complete``/``fail`` into messages.
    """

    def __init__(self, tasks: Iterable[Tuple[Hashable, float]],
                 max_retries: int = 2):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        ordered = sorted(enumerate(tasks), key=lambda t: (-t[1][1], t[0]))
        self._pending = deque(key for _, (key, _w) in ordered)
        if len({*self._pending}) != len(self._pending):
            raise ValueError("duplicate task keys")
        self.max_retries = max_retries
        self.outstanding: Dict[int, Hashable] = {}   # rank -> key
        self._attempts: Dict[Hashable, int] = {}
        self.completed: List[Hashable] = []
        self.requeues = 0

    # ------------------------------------------------------------------
    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    @property
    def done(self) -> bool:
        return not self._pending and not self.outstanding

    def assign(self, rank: int) -> Optional[Hashable]:
        """Give the next task to an idle worker (None when drained)."""
        if rank in self.outstanding:
            raise ValueError(f"worker {rank} already holds a task")
        if not self._pending:
            return None
        key = self._pending.popleft()
        self.outstanding[rank] = key
        return key

    def complete(self, rank: int) -> Hashable:
        """The worker finished its task; it is idle again."""
        key = self.outstanding.pop(rank)
        self.completed.append(key)
        return key

    def fail(self, rank: int) -> Optional[Hashable]:
        """The worker died or errored mid-task: requeue its task at the
        front for the next idle worker.  Raises :class:`RetriesExceeded`
        once the task burns through its attempt budget."""
        key = self.outstanding.pop(rank, None)
        if key is None:
            return None
        attempts = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempts
        if attempts > self.max_retries:
            raise RetriesExceeded(key, attempts)
        self._pending.appendleft(key)
        self.requeues += 1
        return key

    def drop_pending(self) -> int:
        """Abandon queued work (job-failure drain); outstanding tasks
        still complete so the pool stays message-consistent."""
        dropped = len(self._pending)
        self._pending.clear()
        return dropped
