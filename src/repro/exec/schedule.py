"""Dynamic fragment scheduling for the process pool.

The paper's master/worker protocol is greedy: every worker that
announces itself idle is immediately handed the next fragment, so fast
workers naturally absorb more of the database and a straggler never
holds more than one fragment hostage (`parallel/master.py` implements
the same policy for the *simulated* cluster; this module is its
real-execution twin).  Two refinements on top of plain FIFO:

* tasks are issued **heaviest-first** (longest-processing-time order,
  the same greedy bound `seqdb.segment_db` uses for binning), which
  tightens the makespan tail when fragments are uneven;
* a task whose worker died or errored is requeued **at the front**
  (matching the degraded-mode `appendleft` of the simulated master),
  with a bounded per-task attempt budget — exhausting it raises
  :class:`RetriesExceeded` and fails the job cleanly instead of
  looping forever on a poisoned fragment;
* a task stuck past its soft deadline can be **hedged**: the same key
  is speculatively issued to an idle worker (the CEFT move of skipping
  a hot primary server and reading the mirror group instead).  The
  first completion wins; late duplicates and failures of the losing
  holders neither requeue the task nor burn its retry budget.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

#: Default master-side cost of one task round-trip (dispatch, pipe
#: send/recv, result unpack), seconds.  Measured on the dev box at
#: ~1–2 ms; the pool refines nothing here — the planner only needs the
#: order of magnitude to size ranges.
DEFAULT_TASK_OVERHEAD_S = 1.5e-3

#: Default scan throughput (residues/second) assumed before the pool
#: has observed any completions; the pool feeds its measured rate EMA
#: back in once it has one.
DEFAULT_SCAN_RATE = 30e6

#: A range is considered overhead-amortized when its expected scan time
#: is at least this many times the per-task overhead.
AMORTIZE_FACTOR = 8

#: Load-balance target: with plentiful work, aim for about this many
#: tasks per worker per query batch so the greedy scheduler can still
#: absorb stragglers (one giant task per worker would reintroduce the
#: paper's static-partitioning tail).
BALANCE_TASKS_PER_WORKER = 2

#: Most queries one batched task carries.  Past this the multi-query
#: kernel's shared-scan saving has flattened out while the task's
#: result payload and straggler cost keep growing, so query streams
#: are cut into groups of at most this size.
DEFAULT_MAX_QUERY_BATCH = 32


class RetriesExceeded(RuntimeError):
    """A task failed more times than the retry budget allows."""

    def __init__(self, key, attempts: int):
        super().__init__(f"task {key!r} failed {attempts} times")
        self.key = key
        self.attempts = attempts


def plan_fragments(db, n_fragments: int) -> List[List[int]]:
    """Partition a database's sequence ids into balanced fragments.

    Greedy longest-first binning by residue count — the exact policy of
    :func:`repro.blast.seqdb.segment_db`, returning id lists instead of
    materialized databases.  Clamps to ``len(db)`` fragments and drops
    nothing: every id lands in exactly one fragment.
    """
    n = len(db)
    if n_fragments < 1:
        raise ValueError("n_fragments must be >= 1")
    if n == 0:
        return []
    n_fragments = min(n_fragments, n)
    lengths = db.lengths()
    bins: List[List[int]] = [[] for _ in range(n_fragments)]
    loads = [0] * n_fragments
    for i in sorted(range(n), key=lambda i: -lengths[i]):
        target = loads.index(min(loads))
        bins[target].append(i)
        loads[target] += lengths[i]
    return bins


def plan_query_batches(n_queries: int, jobs: int,
                       max_batch: int = DEFAULT_MAX_QUERY_BATCH
                       ) -> List[Tuple[int, ...]]:
    """Cut a query stream into contiguous batches for multi-query tasks.

    Pure batching: the group count is the fewest needed to respect
    *max_batch*, with near-equal sizes (remainder spread one-per-group
    from the front).  Keeping workers fed is :func:`plan_task_ranges`'s
    job — its capacity pressure sees ``n_queries = len(batches)`` and
    issues more ranges per batch when there are fewer batches than
    workers.  ``max_batch <= 1`` (or a single query) degenerates to one
    query per group, the legacy per-query protocol.

    Returns tuples of query indices covering ``range(n_queries)`` in
    order.
    """
    n_queries = int(n_queries)
    if n_queries <= 0:
        return []
    max_batch = max(1, int(max_batch))
    n_groups = -(-n_queries // max_batch)
    base, extra = divmod(n_queries, n_groups)
    out: List[Tuple[int, ...]] = []
    lo = 0
    for g in range(n_groups):
        size = base + (1 if g < extra else 0)
        out.append(tuple(range(lo, lo + size)))
        lo += size
    return out


def plan_task_ranges(weights: Sequence[float], n_queries: int, jobs: int,
                     granularity: Optional[int] = None, *,
                     overhead_s: float = DEFAULT_TASK_OVERHEAD_S,
                     scan_rate: float = DEFAULT_SCAN_RATE,
                     queries_per_task: int = 1
                     ) -> List[Tuple[int, ...]]:
    """Group fragment indices into contiguous ranges sized so the
    per-task round-trip overhead is amortized.

    This is the paper's fragment-granularity trade-off made explicit:
    too many fragments per job and the master's dispatch/merge overhead
    dominates (our measured 0.83x at 2 jobs / 4 per-fragment tasks);
    too few and a straggler holds the whole makespan hostage.  The
    planner balances three pressures per query:

    * **amortization** — a range should scan for at least
      ``AMORTIZE_FACTOR * overhead_s`` seconds (at *scan_rate*
      residues/s), which caps the useful number of ranges;
    * **capacity** — with ``n_queries`` queries streaming through the
      same task queue, each query needs at least ``jobs / n_queries``
      ranges for every worker to have work at all;
    * **balance** — given room, prefer about
      ``BALANCE_TASKS_PER_WORKER`` tasks per worker so the greedy
      scheduler can still route around stragglers.

    *weights* is the per-fragment residue count, in fragment order.
    An explicit *granularity* (fragments per task; ``1`` reproduces
    the legacy one-task-per-fragment protocol) bypasses the adaptive
    logic.  *queries_per_task* scales only the amortization pressure:
    a task carrying a batch of Q queries scans Q times the residues of
    its range, so the same range amortizes its round-trip Q times
    sooner.  Returns a list of index tuples, each contiguous in
    fragment order, together covering every index exactly once.
    """
    n = len(weights)
    if n == 0:
        return []
    indices = list(range(n))
    if granularity is not None:
        g = max(1, int(granularity))
        return [tuple(indices[i:i + g]) for i in range(0, n, g)]
    jobs = max(1, int(jobs))
    n_queries = max(1, int(n_queries))
    total_w = float(sum(weights))
    # A batched task re-scans its range once per query it carries.
    total_scan_w = total_w * max(1, int(queries_per_task))
    amortized_w = AMORTIZE_FACTOR * max(overhead_s, 1e-9) * max(scan_rate, 1.0)
    c_amortize = max(1, int(total_scan_w // amortized_w))
    c_capacity = -(-jobs // n_queries)
    c_balance = -(-BALANCE_TASKS_PER_WORKER * jobs // n_queries)
    c = min(max(c_balance, c_capacity), n)
    if c > c_amortize:
        # Not enough work to amortize that many round-trips; shrink to
        # the amortized count but never below what keeps workers fed.
        c = min(n, max(c_amortize, c_capacity))
    return weighted_contiguous_cuts(weights, c)


def weighted_contiguous_cuts(weights: Sequence[float],
                             c: int) -> List[Tuple[int, ...]]:
    """Cut ``range(len(weights))`` into *c* contiguous, non-empty index
    ranges with boundaries at equal shares of cumulative weight, so a
    fat fragment does not land a fat range.  Shared by the task-range
    planner and the mirror-group planner — both need the same
    balance-under-contiguity primitive."""
    n = len(weights)
    indices = list(range(n))
    c = max(1, min(int(c), n))
    if c <= 1:
        return [tuple(indices)]
    total_w = float(sum(weights))
    cum = []
    acc = 0.0
    for w in weights:
        acc += float(w)
        cum.append(acc)
    cuts = [0]
    for j in range(1, c):
        target = total_w * j / c
        lo = cuts[-1] + 1
        pos = lo
        while pos < n and cum[pos - 1] < target:
            pos += 1
        # Leave room for the remaining c - j ranges to be non-empty.
        pos = min(pos, n - (c - j))
        cuts.append(max(pos, lo))
    cuts.append(n)
    return [tuple(indices[cuts[j]:cuts[j + 1]]) for j in range(c)]


def plan_mirror_groups(weights: Sequence[float],
                       node_ranks: Sequence[int], replication: int
                       ) -> Tuple[List[Tuple[int, ...]],
                                  List[Tuple[int, ...]]]:
    """CEFT-style fragment placement: contiguous, weight-balanced
    fragment groups, each mirrored onto *replication* nodes.

    Returns ``(groups, group_nodes)``: ``groups[g]`` is the tuple of
    fragment indices in group *g*, ``group_nodes[g]`` the node ranks
    holding a full copy of every fragment in it.  Mirrors are the
    rotationally-next nodes (group *g* lives on nodes ``g, g+1, …``
    mod the node count — the paper's RAID-10-over-CEFT-PVFS stripe
    layout), so replicas spread evenly and losing any single node
    leaves every group with at least one surviving holder whenever
    ``replication >= 2``.  With no nodes at all the placement is empty
    (the pool serves everything locally).
    """
    nodes = list(node_ranks)
    n = len(weights)
    if not nodes or n == 0:
        return ([tuple(range(n))] if n else []), ([()] if n else [])
    r = max(1, min(int(replication), len(nodes)))
    groups = weighted_contiguous_cuts(weights, min(len(nodes), n))
    group_nodes = [tuple(nodes[(g + j) % len(nodes)] for j in range(r))
                   for g in range(len(groups))]
    return groups, group_nodes


class GreedyScheduler:
    """Hand tasks to idle workers, heaviest first, requeue on failure.

    *tasks* is an iterable of ``(key, weight)`` pairs; keys must be
    hashable and unique.  The scheduler never talks to processes — the
    pool translates ``assign``/``complete``/``fail`` into messages.

    *affinity* (optional) maps a task key to the ordered tuple of
    worker ranks that can serve it — in the multi-node runtime, the
    nodes holding the task's fragment packs (primary first) plus any
    local workers.  ``assign`` then implements the paper's "original"
    locality scheme as a cache policy: an idle worker first takes the
    heaviest pending task it is *primary* for, then any it is eligible
    for, and never one whose packs it does not hold.  Keys absent from
    the map are unconstrained.  With no affinity map at all the
    scheduler behaves exactly as before.
    """

    def __init__(self, tasks: Iterable[Tuple[Hashable, float]],
                 max_retries: int = 2,
                 affinity: Optional[Dict[Hashable,
                                         Sequence[int]]] = None):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        ordered = sorted(enumerate(tasks), key=lambda t: (-t[1][1], t[0]))
        self._pending = deque(key for _, (key, _w) in ordered)
        if len({*self._pending}) != len(self._pending):
            raise ValueError("duplicate task keys")
        self._affinity: Dict[Hashable, Tuple[int, ...]] = {
            k: tuple(v) for k, v in (affinity or {}).items()}
        self.max_retries = max_retries
        self.outstanding: Dict[int, Hashable] = {}   # rank -> key
        self._holders: Dict[Hashable, Set[int]] = {}  # key -> ranks holding it
        self._done: Set[Hashable] = set()
        self._attempts: Dict[Hashable, int] = {}
        self.completed: List[Hashable] = []
        self.requeues = 0
        self.hedges = 0

    # ------------------------------------------------------------------
    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    @property
    def done(self) -> bool:
        """No queued work and every issued key completed.  A straggler
        still *holding* a completed key (the losing side of a hedge)
        does not keep the run alive — the pool reaps it separately."""
        return not self._pending and all(
            key in self._done for key in self.outstanding.values())

    def is_completed(self, key: Hashable) -> bool:
        """Whether some holder already delivered this key's result."""
        return key in self._done

    def holder_count(self, key: Hashable) -> int:
        """How many workers currently hold this key (>1 = hedged)."""
        return len(self._holders.get(key, ()))

    def eligible(self, rank: int, key: Hashable) -> bool:
        """Whether *rank* may serve *key* (no affinity = anyone may)."""
        aff = self._affinity.get(key)
        return aff is None or rank in aff

    def unplaceable(self, live_ranks) -> List[Hashable]:
        """Pending keys no live rank is eligible for — in CEFT terms,
        fragments whose *last mirror* is gone.  The pool checks this
        each tick and fails the job (into serial fallback) rather than
        spin forever on work nobody can serve."""
        if not self._affinity:
            return []
        live = set(live_ranks)
        return [k for k in self._pending
                if self._affinity.get(k) is not None
                and not live.intersection(self._affinity[k])]

    def assign(self, rank: int) -> Optional[Hashable]:
        """Give the next task to an idle worker.

        Heaviest-first among tasks *rank* is eligible for, preferring
        ones it is the *primary* holder of (locality: scan your own
        fragments before relieving a mirror).  ``None`` when the queue
        is drained — or, under affinity, when nothing pending can run
        on this worker.
        """
        if rank in self.outstanding:
            raise ValueError(f"worker {rank} already holds a task")
        if not self._pending:
            return None
        if not self._affinity:
            key = self._pending.popleft()
        else:
            key = None
            fallback = None
            for k in self._pending:
                aff = self._affinity.get(k)
                if aff is not None and aff[0] == rank:
                    key = k              # heaviest task we are primary for
                    break
                if fallback is None and (aff is None or rank in aff):
                    fallback = k
            if key is None:
                key = fallback
            if key is None:
                return None
            self._pending.remove(key)
        self.outstanding[rank] = key
        self._holders.setdefault(key, set()).add(rank)
        return key

    def hedge(self, rank: int, key: Hashable) -> Hashable:
        """Speculatively issue an already-outstanding *key* to the idle
        worker *rank* as well: whichever holder answers first wins."""
        if rank in self.outstanding:
            raise ValueError(f"worker {rank} already holds a task")
        holders = self._holders.get(key)
        if not holders or key in self._done:
            raise ValueError(f"task {key!r} is not outstanding")
        self.outstanding[rank] = key
        holders.add(rank)
        self.hedges += 1
        return key

    def complete(self, rank: int) -> Hashable:
        """The worker finished its task; it is idle again.  Only the
        first completion of a key counts — a hedge loser's late result
        just clears its bookkeeping (the pool discards the payload)."""
        key = self.outstanding.pop(rank)
        holders = self._holders.get(key)
        if holders is not None:
            holders.discard(rank)
            if not holders:
                del self._holders[key]
        if key not in self._done:
            self._done.add(key)
            self.completed.append(key)
        return key

    def fail(self, rank: int) -> Optional[Hashable]:
        """The worker died or errored mid-task: requeue its task at the
        front for the next idle worker.  Raises :class:`RetriesExceeded`
        once the task burns through its attempt budget.  A failure on a
        key that is already completed, or that another (hedge) holder
        still carries, requeues nothing and costs no attempt."""
        key = self.outstanding.pop(rank, None)
        if key is None:
            return None
        holders = self._holders.get(key)
        if holders is not None:
            holders.discard(rank)
            if not holders:
                del self._holders[key]
        if key in self._done or self._holders.get(key):
            return None
        attempts = self._attempts.get(key, 0) + 1
        self._attempts[key] = attempts
        if attempts > self.max_retries:
            raise RetriesExceeded(key, attempts)
        self._pending.appendleft(key)
        self.requeues += 1
        return key

    def drop_pending(self) -> int:
        """Abandon queued work (job-failure drain); outstanding tasks
        still complete so the pool stays message-consistent."""
        dropped = len(self._pending)
        self._pending.clear()
        return dropped
