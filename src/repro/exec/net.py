"""Framed socket transport for the multi-node execution runtime.

The paper's cluster runs the master and its workers on *separate*
nodes; everything the pipe transport in :mod:`repro.exec.pool` does —
attach, task, result, stop — must therefore also survive a real
network, where the failure modes are nastier than a dead child
process: connections drop mid-frame, bytes arrive corrupted, replies
get delayed past deadlines, and a partitioned peer looks exactly like
a slow one.  Following the ParaStation lesson from "Fast Parallel I/O
on Cluster Computers" (PAPERS.md) the transport is engineered
failure-first:

* every message travels in a **length-prefixed frame** carrying a
  magic, a type byte, a per-connection **sequence number**, the
  payload length, and a CRC32 of the payload — a truncated stream,
  flipped bit, or mis-ordered frame raises a *typed* error
  (:class:`FrameTruncated`, :class:`FrameCRCError`,
  :class:`FrameSequenceError`) instead of hanging or deserializing
  garbage;
* **heartbeat keepalives** (PING/PONG frames, handled inside the
  connection so callers never see them) let the master distinguish a
  live-but-idle node from a silently dead one via
  :attr:`FrameConnection.last_heard`;
* connection establishment uses **bounded retry with exponential
  backoff + jitter** (:func:`connect_backoff`), with the clock, RNG,
  and connect function injectable so the retry schedule is testable
  against a fake clock.

:class:`FrameConnection` deliberately mimics the
``multiprocessing.Connection`` surface (``send`` / ``recv`` / ``poll``
/ ``fileno`` / ``close``, EOF surfaces as :class:`EOFError`), so the
pool's single ``connection.wait`` pump serves pipe workers and socket
nodes side by side without a second event loop.
"""

from __future__ import annotations

import errno
import io
import pickle
import random
import select
import socket
import struct
import time
import zlib
from collections import deque
from typing import Callable, Iterator, List, Optional, Tuple

#: Frame magic: 4 bytes at the start of every frame.  A connection that
#: delivers anything else is not speaking this protocol (or the stream
#: lost sync), which is a framing error, never a guess.
FRAME_MAGIC = b"RXF1"

#: Frame types.  DATA carries a pickled message (result payloads inside
#: it are RRES-encoded blobs — the same columnar codec the shm arena
#: uses, so the wire format and the arena format are one codec).
DATA, PING, PONG = b"D", b"P", b"O"

_HEADER = struct.Struct("<4sc Q I I")   # magic, type, seq, length, crc
HEADER_SIZE = _HEADER.size

#: Sanity cap on a single frame's payload (1 GiB): a corrupted length
#: field must fail as a framing error, not as a memory allocation.
MAX_FRAME_PAYLOAD = 1 << 30

#: How many bytes one socket read requests.
_CHUNK = 1 << 16


class TransportError(RuntimeError):
    """Base class for socket-transport failures."""


class FrameError(TransportError):
    """The byte stream violated the framing protocol."""


class FrameTruncated(FrameError):
    """The connection closed in the middle of a frame."""


class FrameCRCError(FrameError):
    """A frame's payload failed its CRC32 check."""


class FrameSequenceError(FrameError):
    """A frame arrived out of sequence (lost or replayed frame)."""


class NodeConnectError(TransportError):
    """Could not establish a connection within the retry budget."""


def encode_frame(ftype: bytes, seq: int, payload: bytes = b"") -> bytes:
    """One wire frame: header (magic, type, seq, length, crc) + payload."""
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ValueError(f"frame payload of {len(payload)} bytes exceeds "
                         f"the {MAX_FRAME_PAYLOAD}-byte cap")
    return _HEADER.pack(FRAME_MAGIC, ftype, seq, len(payload),
                        zlib.crc32(payload)) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    ``feed(data)`` buffers bytes; ``frames()`` yields complete
    ``(type, seq, payload)`` triples, verifying magic, CRC32, and the
    per-connection sequence number as it goes.  ``check_eof()`` is
    called by the connection when the peer closes: a partial frame
    still buffered at that point is a :class:`FrameTruncated`, not a
    clean EOF.
    """

    def __init__(self, check_sequence: bool = True):
        self._buf = bytearray()
        self._expect_seq = 0
        self._check_sequence = check_sequence
        self.frames_in = 0

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    def frames(self) -> Iterator[Tuple[bytes, int, bytes]]:
        while len(self._buf) >= HEADER_SIZE:
            magic, ftype, seq, length, crc = _HEADER.unpack_from(self._buf)
            if magic != FRAME_MAGIC:
                raise FrameError(
                    f"bad frame magic {bytes(magic)!r} (stream lost sync)")
            if ftype not in (DATA, PING, PONG):
                raise FrameError(f"unknown frame type {bytes(ftype)!r}")
            if length > MAX_FRAME_PAYLOAD:
                raise FrameError(
                    f"frame length {length} exceeds the "
                    f"{MAX_FRAME_PAYLOAD}-byte cap (corrupt header?)")
            if len(self._buf) < HEADER_SIZE + length:
                return                      # incomplete; wait for more bytes
            payload = bytes(self._buf[HEADER_SIZE:HEADER_SIZE + length])
            del self._buf[:HEADER_SIZE + length]
            got = zlib.crc32(payload)
            if got != crc:
                raise FrameCRCError(
                    f"frame {seq} payload CRC32 mismatch "
                    f"(expected {crc:#010x}, got {got:#010x})")
            if self._check_sequence:
                if seq != self._expect_seq:
                    raise FrameSequenceError(
                        f"expected frame {self._expect_seq}, got {seq} "
                        f"(lost or replayed frame)")
                self._expect_seq += 1
            self.frames_in += 1
            yield ftype, seq, payload

    def check_eof(self) -> None:
        """Raise :class:`FrameTruncated` if EOF split a frame."""
        if self._buf:
            raise FrameTruncated(
                f"connection closed mid-frame "
                f"({len(self._buf)} bytes of an incomplete frame buffered)")


class FrameConnection:
    """A framed, heartbeat-aware message connection over one socket.

    Pipe-compatible surface: ``send(obj)`` / ``recv()`` move pickled
    Python messages, ``poll(timeout)`` reports whether ``recv`` would
    return immediately, ``fileno()`` plugs into
    ``multiprocessing.connection.wait``, and a closed peer surfaces as
    :class:`EOFError` (clean close at a frame boundary) or
    :class:`FrameTruncated` (close mid-frame).  PING/PONG keepalives
    are answered inside ``poll``/``recv`` — callers only ever see DATA
    messages — and every received frame (of any type) refreshes
    :attr:`last_heard`, the master's missed-heartbeat signal.
    """

    def __init__(self, sock: socket.socket, name: str = "peer"):
        self.name = name
        self._sock = sock
        sock.setblocking(True)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - AF_UNIX / socketpair
            pass
        self._decoder = FrameDecoder()
        self._queue: deque = deque()
        self._send_seq = 0
        self._eof = False
        self._closed = False
        self.last_heard = time.monotonic()
        self.last_ping = 0.0
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- outbound ------------------------------------------------------
    def _send_frame(self, ftype: bytes, payload: bytes = b"") -> None:
        if self._closed:
            raise OSError(errno.EBADF, "connection is closed")
        frame = encode_frame(ftype, self._send_seq, payload)
        self._send_seq += 1
        self._sock.sendall(frame)
        self.bytes_sent += len(frame)

    def send(self, obj) -> None:
        """Pickle *obj* into one DATA frame.  Raises ``OSError`` when
        the peer is gone — the same failure surface as a dead pipe."""
        self._send_frame(DATA, pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))

    def ping(self) -> None:
        """Send one keepalive frame (the reply refreshes *last_heard*)."""
        self.last_ping = time.monotonic()
        self._send_frame(PING)

    # -- inbound -------------------------------------------------------
    def _on_frame(self, ftype: bytes, payload: bytes) -> None:
        self.last_heard = time.monotonic()
        if ftype == DATA:
            self._queue.append(pickle.loads(payload))
        elif ftype == PING:
            try:
                self._send_frame(PONG)
            except OSError:  # pragma: no cover - peer died mid-exchange
                pass
        # PONG: nothing beyond the last_heard refresh.

    def _read_chunk(self) -> bool:
        """One blocking socket read; returns False on EOF."""
        try:
            data = self._sock.recv(_CHUNK)
        except (ConnectionResetError, BrokenPipeError):
            data = b""
        if not data:
            self._eof = True
            return False
        self.bytes_received += len(data)
        self._decoder.feed(data)
        for ftype, _seq, payload in self._decoder.frames():
            self._on_frame(ftype, payload)
        return True

    def poll(self, timeout: float = 0.0) -> bool:
        """True when ``recv`` would return (or raise) immediately."""
        if self._queue or self._eof:
            return True
        if self._closed:
            raise OSError(errno.EBADF, "connection is closed")
        deadline = time.monotonic() + max(0.0, timeout or 0.0)
        while True:
            left = max(0.0, deadline - time.monotonic())
            readable, _, _ = select.select([self._sock], [], [], left)
            if not readable:
                return False
            if not self._read_chunk():
                return True             # EOF pending: recv() raises it
            if self._queue:
                return True
            if time.monotonic() >= deadline:
                return bool(self._queue)

    def recv(self):
        """The next DATA message; blocks until one arrives.  A closed
        peer raises :class:`EOFError` (frame boundary) or
        :class:`FrameTruncated` (mid-frame)."""
        while True:
            if self._queue:
                return self._queue.popleft()
            if self._eof:
                self._decoder.check_eof()
                raise EOFError(f"{self.name}: connection closed")
            if self._closed:
                raise OSError(errno.EBADF, "connection is closed")
            self._read_chunk()

    # -- plumbing ------------------------------------------------------
    @property
    def queued(self) -> int:
        """Decoded DATA messages waiting in the connection (``recv``
        returns immediately).  The pool's pump must consult this before
        blocking in ``connection.wait``: wait() watches the socket fd,
        and one read can decode *several* frames — messages already
        buffered here generate no fd activity and would otherwise sit
        unserved until the peer's next send."""
        return len(self._queue)

    def fileno(self) -> int:
        return self._sock.fileno()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("eof" if self._eof else "open")
        return f"<FrameConnection {self.name} {state} q={len(self._queue)}>"


# ----------------------------------------------------------------------
def parse_address(value) -> Tuple[str, int]:
    """``"host:port"`` (or an already-split pair) → ``(host, port)``."""
    if isinstance(value, (tuple, list)) and len(value) == 2:
        return str(value[0]), int(value[1])
    text = str(value).strip()
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"bad node address {value!r}; expected host:port")
    return host or "127.0.0.1", int(port)


def backoff_delay(attempt: int, *, base: float = 0.05, factor: float = 2.0,
                  max_delay: float = 2.0, jitter: float = 0.25,
                  rng: Optional[random.Random] = None) -> float:
    """The delay before retry *attempt* (0-based): capped exponential
    growth plus proportional jitter so a cluster of reconnecting
    masters cannot stampede one recovering node in lockstep."""
    delay = min(max_delay, base * (factor ** max(0, attempt)))
    if jitter > 0:
        delay *= 1.0 + jitter * (rng or random).random()
    return delay


def _tcp_connect(address: Tuple[str, int], timeout: float) -> socket.socket:
    return socket.create_connection(address, timeout=timeout)


def connect_backoff(address, *, attempts: int = 5,
                    base_delay: float = 0.05, factor: float = 2.0,
                    max_delay: float = 2.0, jitter: float = 0.25,
                    timeout: float = 2.0,
                    sleep: Callable[[float], None] = time.sleep,
                    rng: Optional[random.Random] = None,
                    connect: Optional[Callable] = None) -> socket.socket:
    """Connect to *address* with bounded exponential-backoff retries.

    Raises :class:`NodeConnectError` once *attempts* tries have failed;
    the clock (*sleep*), jitter source (*rng*), and the connect
    function itself are injectable so the schedule is assertable with a
    fake clock (no real sockets, no real sleeping).
    """
    address = parse_address(address)
    attempts = max(1, int(attempts))
    dial = connect or _tcp_connect
    last: Optional[BaseException] = None
    for attempt in range(attempts):
        try:
            return dial(address, timeout)
        except OSError as exc:
            last = exc
        if attempt + 1 < attempts:
            sleep(backoff_delay(attempt, base=base_delay, factor=factor,
                                max_delay=max_delay, jitter=jitter, rng=rng))
    raise NodeConnectError(
        f"could not connect to {address[0]}:{address[1]} after "
        f"{attempts} attempt(s): {last}")


# ----------------------------------------------------------------------
def pack_wire_meta(spec) -> dict:
    """The picklable metadata a node needs to republish a shipped pack
    through :func:`repro.exec.shm.publish_pack_bytes` — everything in
    the :class:`~repro.exec.shm.PackSpec` except the master-local
    segment name, which the node replaces with its own."""
    return {
        "name": spec.name,              # master-side name: the task alias
        "cache_token": spec.cache_token,
        "seqtype": spec.seqtype,
        "fragment_id": spec.fragment_id,
        "k": spec.k,
        "base": spec.base,
        "n_sequences": spec.n_sequences,
        "total_residues": spec.total_residues,
        "source_ids": spec.source_ids,
        "arrays": spec.arrays,
        "size": spec.size,
        "checksums": spec.checksums,
    }
