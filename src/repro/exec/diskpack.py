"""Persistent on-disk fragment packs: the paper-scale database format.

The paper formats a 2.7 GB ``nt`` once with ``formatdb`` and then every
search run attaches to the preformatted files; our fragment packs were
rebuilt in RAM per process, so every restart repaid the whole publish
cost.  This module makes a pack *persistent*: a versioned, checksummed,
mmap-able file whose data region is **byte-identical** to a
shared-memory segment's (:func:`repro.exec.shm.pack_layout` defines the
layout for both), so a cold start is either a zero-copy ``mmap``
(serial search) or one ``memcpy`` into shm (the pool) — never a
re-encode.

Layout of one ``.rpk`` pack file::

    [preamble, 32 B ]  magic ``RPKPACK1``, format version, flags,
                       header length, header CRC32, padding
    [header,   JSON ]  seqtype, word size/base, counts, global source
                       ids, the ScanCache identity, the section table
                       ``(field, dtype, shape, offset)`` and per-field
                       CRC32s — the same fields, order and 64-byte
                       alignment as a shm segment
    [pad to 64 B    ]
    [data region    ]  the sections themselves

A *pack store* is a directory of pack files plus a ``manifest.json``
naming them.  The manifest is written last via atomic rename, making it
the commit point: a build crashing at any earlier moment leaves no
readable store (only a stale ``.rpk-build-*`` spool directory and
``*.tmp`` files, which the next build sweeps), and each pack file is
itself committed with the same ``tmp → fsync → rename`` discipline, so
a readable ``.rpk`` is always complete.

Integrity taxonomy (the "never a wrong answer" contract):

* :class:`PackFormatError` — wrong magic or an unsupported format
  version: this reader must not interpret the bytes at all;
* :class:`~repro.exec.shm.PackIntegrityError` (its base) — right
  format, damaged content: truncation, header CRC mismatch, a
  section failing its CRC32 at open/attach, or a manifest entry not
  matching the pack file it names.

Both are raised before a single hit can be computed from the data.

The streaming builder (:class:`PackStoreBuilder`) formats arbitrarily
large FASTA in bounded memory: records stream in one at a time
(:func:`repro.blast.fasta.iter_fasta`), each is assigned to the
currently lightest fragment (online greedy — the streaming analog of
the LPT binning the in-RAM path uses) and spilled to a per-fragment
spool file immediately; finalize then packs one fragment at a time, so
peak memory is one fragment's scan structures, never the corpus.
"""

from __future__ import annotations

import json
import mmap
import os
import secrets
import shutil
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.blast.alphabet import DNA, PROTEIN, encode_dna, encode_protein
from repro.blast.fasta import FastaRecord, iter_fasta
from repro.blast.scankernel import ScanStructures, build_scan_structures
from repro.blast.search import (SearchParams, SearchResults,
                                merge_fragment_results, resolve_ka, search)
from repro.blast.seqdb import AA, NT, SequenceDB
from repro.blast.stats import effective_search_space
from repro.exec.shm import (_ALIGN, _FIELDS, PackDB, PackIntegrityError,
                            PackSpec, _crc, _integrity_error, pack_layout)

#: File magic: 8 bytes, ASCII, format generation baked into the name.
MAGIC = b"RPKPACK1"

#: On-disk format version; bumped on any incompatible layout change.
#: Readers reject any other version (version negotiation is explicit:
#: there is exactly one readable version per build).
FORMAT_VERSION = 1

#: Pack files end in this; the manifest names them relative to the
#: store directory.
PACK_SUFFIX = ".rpk"

#: The store's commit point: written last, atomically.
MANIFEST_NAME = "manifest.json"

#: Streaming builds spool into a dot-directory with this prefix inside
#: the destination store (same filesystem — ``os.replace`` must be
#: atomic); leftovers from a crashed build are swept by the next one.
BUILD_DIR_PREFIX = ".rpk-build-"

#: ``<8sIIQI``: magic, format version, flags, header length, header
#: CRC32 — 28 bytes, padded to 32.
_PREAMBLE = struct.Struct("<8sIIQI")
_PREAMBLE_SIZE = 32

#: Crash hooks for the atomic-commit tests: after N section writes the
#: builder ``os._exit``\ s, simulating a mid-build kill; the manifest
#: hook dies after every pack is committed but before the store is.
_CRASH_SECTIONS_ENV = "REPRO_DISKPACK_CRASH_AFTER_SECTIONS"
_CRASH_MANIFEST_ENV = "REPRO_DISKPACK_CRASH_BEFORE_MANIFEST"
_CRASH_EXIT = 86

#: Every store directory a builder of this process has targeted; the
#: test suite's leak fixture sweeps these for stray build artifacts.
_BUILD_ROOTS: Set[str] = set()

#: Live DiskPack mappings in this process (id → path): the pool's
#: cold start must publish-and-close, and ``ExecPool.close()`` must
#: leave this empty — the mmap-still-open regression check.
_OPEN_PACKS: Dict[int, str] = {}


class PackFormatError(PackIntegrityError):
    """The file is not a pack this reader can interpret: wrong magic or
    an unsupported format version.  Subclasses
    :class:`~repro.exec.shm.PackIntegrityError` so every open failure
    is typed and catchable as one family, while version-negotiation
    failures stay distinguishable from damage to a well-formed pack."""


def _align64(n: int) -> int:
    return -(-n // _ALIGN) * _ALIGN


def build_roots() -> Set[str]:
    """Store directories builders of this process have written into."""
    return set(_BUILD_ROOTS)


def open_pack_count() -> int:
    """Live mmapped packs in this process (leak/regression checks)."""
    return len(_OPEN_PACKS)


def open_pack_paths() -> List[str]:
    return sorted(_OPEN_PACKS.values())


_section_writes = 0


def _maybe_crash_after_section() -> None:
    global _section_writes
    raw = os.environ.get(_CRASH_SECTIONS_ENV) or ""
    if not raw.strip():
        return
    _section_writes += 1
    if _section_writes >= int(raw):
        os._exit(_CRASH_EXIT)


def _maybe_crash_before_manifest() -> None:
    if (os.environ.get(_CRASH_MANIFEST_ENV) or "").strip():
        os._exit(_CRASH_EXIT)


# ----------------------------------------------------------------------
# One pack file
# ----------------------------------------------------------------------
def write_pack(path: str, structs: ScanStructures,
               descriptions: Sequence[str], *, seqtype: str,
               store_id: str, version: int, fragment_id: int,
               source_ids: Sequence[int]) -> dict:
    """Serialize one fragment's scan structures to *path*, atomically.

    The data region follows the canonical
    :func:`~repro.exec.shm.pack_layout` byte-for-byte.  The file is
    assembled as ``path + ".tmp"``, fsynced, then renamed into place —
    a crash at any point leaves either no file or a ``.tmp`` no reader
    ever opens, never a readable partial pack.  Returns the header
    dict.
    """
    arrays, layout, size = pack_layout(structs, descriptions)
    checksums = [(field, _crc(arrays[field]))
                 for field, _d, _s, _o in layout]
    header = {
        "format_version": FORMAT_VERSION,
        "seqtype": seqtype,
        "k": int(structs.k),
        "base": int(structs.base),
        "n_sequences": int(structs.n_sequences),
        "total_residues": int(structs.total_residues),
        "fragment_id": int(fragment_id),
        "store_id": store_id,
        "version": int(version),
        "source_ids": [int(i) for i in source_ids],
        "sections": [[f, d, list(s), o] for f, d, s, o in layout],
        "data_size": int(size),
        "checksums": [[f, int(c)] for f, c in checksums],
    }
    blob = json.dumps(header, separators=(",", ":")).encode()
    preamble = _PREAMBLE.pack(MAGIC, FORMAT_VERSION, 0, len(blob),
                              zlib.crc32(blob))
    preamble += b"\0" * (_PREAMBLE_SIZE - len(preamble))
    data_off = _align64(_PREAMBLE_SIZE + len(blob))

    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(preamble)
        f.write(blob)
        f.write(b"\0" * (data_off - _PREAMBLE_SIZE - len(blob)))
        pos = 0
        for field, _dtype, _shape, off in layout:
            if off > pos:
                f.write(b"\0" * (off - pos))
                pos = off
            arr = arrays[field]
            f.write(memoryview(arr).cast("B"))
            pos += arr.nbytes
            _maybe_crash_after_section()
        if size > pos:
            f.write(b"\0" * (size - pos))
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return header


def _read_header(f, path: str) -> Tuple[dict, int]:
    """Parse and validate preamble + header; returns
    ``(header, data_offset)``."""
    raw = f.read(_PREAMBLE_SIZE)
    if len(raw) < _PREAMBLE_SIZE:
        raise PackIntegrityError(
            f"pack {path!r}: truncated preamble "
            f"({len(raw)} of {_PREAMBLE_SIZE} bytes)")
    magic, version, _flags, hlen, hcrc = _PREAMBLE.unpack(
        raw[:_PREAMBLE.size])
    if magic != MAGIC:
        raise PackFormatError(
            f"pack {path!r}: bad magic {magic!r} (not an {MAGIC.decode()}"
            f" pack)")
    if version != FORMAT_VERSION:
        raise PackFormatError(
            f"pack {path!r}: unsupported format version {version} "
            f"(this build reads version {FORMAT_VERSION})")
    blob = f.read(hlen)
    if len(blob) < hlen:
        raise PackIntegrityError(
            f"pack {path!r}: truncated header ({len(blob)} of {hlen} bytes)")
    got = zlib.crc32(blob)
    if got != hcrc:
        raise PackIntegrityError(
            f"pack {path!r}: header CRC32 mismatch "
            f"(expected {hcrc:#010x}, got {got:#010x})")
    try:
        header = json.loads(blob)
    except ValueError as exc:  # pragma: no cover - CRC passed, bad JSON
        raise PackIntegrityError(f"pack {path!r}: undecodable header "
                                 f"({exc})") from exc
    return header, _align64(_PREAMBLE_SIZE + hlen)


class DiskPack:
    """One pack file mapped read-only into this process.

    Opening verifies the preamble, the header CRC32 and (by default)
    every section's CRC32 against the header's table, so a corrupted
    file raises a typed :class:`~repro.exec.shm.PackIntegrityError`
    before any search can see its bytes.  The reconstructed
    :attr:`structs` views are zero-copy into the mapping; :attr:`data`
    exposes the raw data region for the pool's bulk copy into shm
    (:func:`~repro.exec.shm.publish_pack_bytes`).
    """

    def __init__(self, path: str, verify: bool = True):
        self.path = path
        self._file = open(path, "rb")
        self._mmap: Optional[mmap.mmap] = None
        try:
            header, data_off = _read_header(self._file, path)
            size = int(header["data_size"])
            file_size = os.fstat(self._file.fileno()).st_size
            if file_size < data_off + size:
                raise PackIntegrityError(
                    f"pack {path!r}: truncated data region "
                    f"({file_size} bytes on disk, header expects "
                    f"{data_off + size})")
            self._mmap = mmap.mmap(self._file.fileno(), 0,
                                   access=mmap.ACCESS_READ)
        except BaseException:
            self.close()
            raise
        self.header = header
        self.data_offset = data_off
        self.layout: Tuple[Tuple[str, str, Tuple[int, ...], int], ...] = \
            tuple((f, d, tuple(s), o) for f, d, s, o in header["sections"])
        self.checksums: Tuple[Tuple[str, int], ...] = \
            tuple((f, int(c)) for f, c in header["checksums"])
        self.data = memoryview(self._mmap)[data_off:data_off + size]
        views = {field: np.ndarray(shape, dtype=dtype, buffer=self._mmap,
                                   offset=data_off + off)
                 for field, dtype, shape, off in self.layout}
        self._views: Optional[dict] = views
        _OPEN_PACKS[id(self)] = path
        if verify:
            try:
                self.verify()
            except PackIntegrityError:
                self.close()
                raise
        self.hdr_blob = views["hdr_blob"]
        self.hdr_offsets = views["hdr_offsets"]
        self.structs = ScanStructures(
            k=header["k"], base=header["base"],
            n_sequences=header["n_sequences"],
            total_residues=header["total_residues"],
            concat=views["concat"], starts=views["starts"],
            lengths=views["lengths"], codes=views["codes"],
            code_pos=views["code_pos"])
        self.spec = PackSpec(
            name=path, cache_token=self.identity, seqtype=header["seqtype"],
            fragment_id=header["fragment_id"], k=header["k"],
            base=header["base"], n_sequences=header["n_sequences"],
            total_residues=header["total_residues"],
            source_ids=tuple(int(i) for i in header["source_ids"]),
            arrays=self.layout, size=size, checksums=self.checksums)

    @property
    def identity(self) -> tuple:
        """The pack's ScanCache identity, ``(token, version,
        fragment_id)`` with the store's ``("rpk", store_id)`` as token —
        same shape as the in-RAM scheme, stale by construction once the
        fragment is rebuilt (its version bumps)."""
        h = self.header
        return (("rpk", h["store_id"]), h["version"], h["fragment_id"])

    def verify(self) -> None:
        """Re-checksum every mapped section against the header table."""
        for field, expected in self.checksums:
            got = _crc(self._views[field])
            if got != expected:
                raise _integrity_error(self.path, field, expected, got)

    def close(self) -> None:
        """Release the views and unmap.  A caller still holding
        exported views (e.g. a live :class:`~repro.exec.shm.PackDB`)
        keeps the mapping alive until those die; the file descriptor is
        closed either way."""
        _OPEN_PACKS.pop(id(self), None)
        for attr in ("structs", "hdr_blob", "hdr_offsets", "_views"):
            if hasattr(self, attr):
                setattr(self, attr, None)
        data = getattr(self, "data", None)
        if data is not None:
            data.release()
            self.data = None
        if self._mmap is not None:
            try:
                self._mmap.close()
                self._mmap = None
            except BufferError:  # pragma: no cover - external live views
                pass
        self._file.close()

    def __enter__(self) -> "DiskPack":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        h = self.header
        return (f"<DiskPack {self.path!r} {h['seqtype']} "
                f"frag={h['fragment_id']} n={h['n_sequences']} "
                f"residues={h['total_residues']}>")


def corrupt_pack_file(path: str, field: Optional[str] = None,
                      nbytes: int = 8) -> str:
    """Scribble bytes inside one region of a pack file (test hook).

    *field* is a section name from the header's table, or the pseudo
    targets ``"preamble"`` (damages the magic) and ``"header"``
    (damages the JSON blob — which also holds the CRC table, so this
    doubles as the corrupt-the-checksums case; the preamble's header
    CRC32 catches it).  Mirrors
    :func:`repro.exec.shm.corrupt_segment`: the damage lands mid-field,
    on checksummed payload, never on alignment padding.  Returns the
    corrupted region's name.
    """
    with open(path, "r+b") as f:
        if field == "preamble":
            f.seek(0)
            first = f.read(1)
            f.seek(0)
            f.write(bytes([first[0] ^ 0xFF]))
            return field
        raw = f.read(_PREAMBLE_SIZE)
        _magic, _ver, _flags, hlen, _hcrc = _PREAMBLE.unpack(
            raw[:_PREAMBLE.size])
        if field == "header":
            pos = _PREAMBLE_SIZE + hlen // 2
            f.seek(pos)
            b = f.read(1)
            f.seek(pos)
            f.write(bytes([b[0] ^ 0xFF]))
            return field
        # Re-read the header properly (validated) to find the section.
        f.seek(0)
        header, data_off = _read_header(f, path)
        layout = {sec[0]: (sec[1], sec[2], sec[3])
                  for sec in header["sections"]}
        if field is None:
            field = max(layout, key=lambda fl: int(
                np.prod(layout[fl][1], dtype=np.int64))
                * np.dtype(layout[fl][0]).itemsize)
        dtype, shape, off = layout[field]
        size = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        if size == 0:
            raise ValueError(f"field {field!r} is empty; nothing to corrupt")
        start = data_off + off + max(0, size // 2 - 1)
        end = min(data_off + off + size, start + nbytes)
        f.seek(start)
        chunk = bytes(b ^ 0xFF for b in f.read(end - start))
        f.seek(start)
        f.write(chunk)
    return field


# ----------------------------------------------------------------------
# The store: a directory of packs + an atomically committed manifest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PackEntry:
    """One pack as the manifest records it."""

    file: str
    fragment_id: int
    version: int
    n_sequences: int
    total_residues: int


class PackStore:
    """A committed directory of on-disk fragment packs.

    Duck-types the database surface the pool and CLI consume
    (``seqtype``, ``__len__``, ``total_residues``, ``fragment_id``,
    ``name``, plus the ScanCache identity pair ``_scan_token`` /
    ``_version``), so ``ExecPool.search_many(query, store, ...)`` cold-
    starts straight from disk.  ``_version`` is the store's
    ``db_version`` — bumped by :meth:`append` exactly like
    ``SequenceDB._version``, so the pool's stale-pack invalidation
    works unchanged.
    """

    is_pack_store = True
    fragment_id: Optional[int] = None

    def __init__(self, directory: str, manifest: dict):
        self.directory = directory
        self.manifest = manifest
        self.name = manifest["name"]
        self.seqtype = manifest["seqtype"]
        self.k = int(manifest["k"])
        self.base = int(manifest["base"])
        self.store_id = manifest["store_id"]
        self.packs: List[PackEntry] = [
            PackEntry(file=p["file"], fragment_id=int(p["fragment_id"]),
                      version=int(p["version"]),
                      n_sequences=int(p["n_sequences"]),
                      total_residues=int(p["total_residues"]))
            for p in manifest["packs"]]
        self._scan_token = ("rpk", self.store_id)
        self._version = int(manifest["db_version"])

    @classmethod
    def open(cls, directory: str) -> "PackStore":
        path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.isfile(path):
            raise PackFormatError(
                f"{directory!r}: no {MANIFEST_NAME} — not a pack store "
                f"(or an uncommitted build)")
        try:
            with open(path) as f:
                manifest = json.load(f)
        except ValueError as exc:
            raise PackFormatError(
                f"{directory!r}: unreadable manifest ({exc})") from exc
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise PackFormatError(
                f"{directory!r}: unsupported store format version "
                f"{version!r} (this build reads version {FORMAT_VERSION})")
        return cls(directory, manifest)

    def __len__(self) -> int:
        return int(self.manifest["n_sequences"])

    @property
    def n_sequences(self) -> int:
        return len(self)

    @property
    def total_residues(self) -> int:
        return int(self.manifest["total_residues"])

    def pack_path(self, entry: PackEntry) -> str:
        return os.path.join(self.directory, entry.file)

    def open_packs(self, verify: bool = True) -> List[DiskPack]:
        """Map every pack; on any failure, close what was opened and
        re-raise.  Each pack's recorded identity must match the
        manifest entry naming it — a swapped or stale file is damage,
        not a different answer."""
        packs: List[DiskPack] = []
        try:
            for entry in self.packs:
                pack = DiskPack(self.pack_path(entry), verify=verify)
                packs.append(pack)
                got = pack.identity
                want = (self._scan_token, entry.version, entry.fragment_id)
                if got != want:
                    raise PackIntegrityError(
                        f"pack {pack.path!r}: identity {got!r} does not "
                        f"match manifest entry {want!r} (swapped or stale "
                        f"pack file)")
        except BaseException:
            for pack in packs:
                pack.close()
            raise
        return packs

    def verify(self) -> int:
        """CRC-verify every pack; returns the number checked."""
        for pack in self.open_packs(verify=True):
            pack.close()
        return len(self.packs)

    def _write_manifest(self) -> None:
        path = os.path.join(self.directory, MANIFEST_NAME)
        _write_manifest_file(path, self.manifest)

    # ------------------------------------------------------------------
    def append(self, records: Iterable[FastaRecord]) -> int:
        """Incrementally add records: only the lightest fragment is
        re-packed (re-indexed), every other pack file is untouched.

        Bumps the store's ``db_version`` and the rebuilt pack's own
        version — the pool's ``(token, version, ...)`` invalidation
        then republishes exactly what changed... at today's pool
        granularity, the whole prepared set; the per-pack identities
        are what a finer-grained invalidation would key on.  Returns
        the number of sequences added.
        """
        encode = encode_dna if self.seqtype == NT else encode_protein
        added: List[Tuple[str, np.ndarray]] = []
        for rec in records:
            seq = rec.sequence
            enc = encode(seq) if isinstance(seq, str) else np.asarray(
                seq, dtype=np.uint8)
            if len(enc) == 0:
                raise ValueError(f"empty sequence for {rec.description!r}")
            added.append((rec.description, enc))
        if not added:
            return 0

        new_version = self._version + 1
        if self.packs:
            target = min(range(len(self.packs)),
                         key=lambda i: self.packs[i].total_residues)
            entry = self.packs[target]
            # Load the one fragment being rebuilt (bounded by fragment
            # size, not store size).
            sub = SequenceDB(self.seqtype,
                             name=f"{self.name}.{entry.fragment_id:03d}",
                             fragment_id=entry.fragment_id)
            source_ids: List[int] = []
            with DiskPack(self.pack_path(entry)) as pack:
                pdb = PackDB(pack)
                for i in range(len(pdb)):
                    sub.add(pdb.description(i), np.array(pdb.sequence(i)))
                source_ids = list(pack.spec.source_ids)
        else:
            target = 0
            entry = None
            sub = SequenceDB(self.seqtype, name=f"{self.name}.000",
                             fragment_id=0)
            source_ids = []

        next_gid = len(self)
        for desc, enc in added:
            sub.add(desc, enc)
            source_ids.append(next_gid)
            next_gid += 1

        structs = build_scan_structures(sub, self.k, self.base)
        fragment_id = entry.fragment_id if entry else 0
        fname = entry.file if entry else f"{self.name}.000{PACK_SUFFIX}"
        write_pack(self.pack_path(
            PackEntry(fname, fragment_id, 0, 0, 0)), structs,
            [sub.description(i) for i in range(len(sub))],
            seqtype=self.seqtype, store_id=self.store_id,
            version=new_version, fragment_id=fragment_id,
            source_ids=source_ids)
        new_entry = PackEntry(file=fname, fragment_id=fragment_id,
                              version=new_version,
                              n_sequences=len(sub),
                              total_residues=sub.total_residues)
        if entry:
            self.packs[target] = new_entry
        else:
            self.packs.append(new_entry)

        self.manifest["db_version"] = new_version
        self.manifest["n_sequences"] = len(self) + len(added)
        self.manifest["total_residues"] = (
            self.total_residues + sum(len(e) for _d, e in added))
        self.manifest["packs"] = [vars(p) for p in self.packs]
        self._version = new_version
        self._write_manifest()
        return len(added)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<PackStore {self.directory!r} {self.seqtype} "
                f"packs={len(self.packs)} n={len(self)} "
                f"residues={self.total_residues} v={self._version}>")


def _write_manifest_file(path: str, manifest: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(manifest, f, indent=1, sort_keys=True)
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def sweep_build_leftovers(directory: str) -> List[str]:
    """Remove crashed-build artifacts (spool dirs, ``*.tmp``) from a
    store directory; returns what was removed.  Committed packs and the
    manifest are never touched — this is why "rebuild succeeds" after a
    crash: the new build starts from a directory containing only
    committed state."""
    removed: List[str] = []
    if not os.path.isdir(directory):
        return removed
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        if name.startswith(BUILD_DIR_PREFIX) and os.path.isdir(path):
            shutil.rmtree(path, ignore_errors=True)
            removed.append(path)
        elif name.endswith(".tmp") and os.path.isfile(path):
            os.unlink(path)
            removed.append(path)
    return removed


# ----------------------------------------------------------------------
# Streaming builder
# ----------------------------------------------------------------------
class _Spool:
    """One fragment's on-disk spool during a streaming build: encoded
    residues and description bytes append to two flat files, only the
    per-sequence length/offset bookkeeping stays in memory."""

    def __init__(self, build_dir: str, idx: int):
        self.idx = idx
        self.seq_path = os.path.join(build_dir, f"frag{idx}.seq")
        self.hdr_path = os.path.join(build_dir, f"frag{idx}.hdr")
        self._seq_f = open(self.seq_path, "wb")
        self._hdr_f = open(self.hdr_path, "wb")
        self.lengths: List[int] = []
        self.hdr_lens: List[int] = []
        self.source_ids: List[int] = []

    @property
    def n(self) -> int:
        return len(self.lengths)

    @property
    def residues(self) -> int:
        return sum(self.lengths)

    def add(self, global_id: int, description: str,
            encoded: np.ndarray) -> None:
        self._seq_f.write(memoryview(np.ascontiguousarray(encoded)))
        blob = description.encode()
        self._hdr_f.write(blob)
        self.lengths.append(len(encoded))
        self.hdr_lens.append(len(blob))
        self.source_ids.append(global_id)

    def close_writes(self) -> None:
        self._seq_f.close()
        self._hdr_f.close()

    def load(self, seqtype: str) -> "_SpoolDB":
        return _SpoolDB(self, seqtype)

    def release(self) -> None:
        for path in (self.seq_path, self.hdr_path):
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass


class _SpoolDB:
    """Duck-typed read surface over one finished spool, for
    :func:`~repro.blast.scankernel.build_scan_structures`."""

    def __init__(self, spool: _Spool, seqtype: str):
        self.seqtype = seqtype
        self.fragment_id = spool.idx
        self._lengths = spool.lengths
        payload = np.fromfile(spool.seq_path, dtype=np.uint8)
        self._starts = np.zeros(len(self._lengths) + 1, dtype=np.int64)
        np.cumsum(self._lengths, out=self._starts[1:])
        self._payload = payload
        with open(spool.hdr_path, "rb") as f:
            blob = f.read()
        self.descriptions: List[str] = []
        pos = 0
        for n in spool.hdr_lens:
            self.descriptions.append(blob[pos:pos + n].decode())
            pos += n

    def __len__(self) -> int:
        return len(self._lengths)

    def lengths(self) -> List[int]:
        return list(self._lengths)

    def sequence(self, i: int) -> np.ndarray:
        return self._payload[self._starts[i]:self._starts[i + 1]]


class PackStoreBuilder:
    """Streaming pack-store builder (bounded memory, atomic commit).

    Records are assigned online to the currently lightest fragment and
    spilled to that fragment's spool immediately; :meth:`finalize`
    packs fragments one at a time and commits the manifest last.  Use
    as a context manager — an exception aborts the build and removes
    the spool directory, leaving the destination exactly as found.
    """

    def __init__(self, directory: str, *, seqtype: str = NT,
                 name: str = "db", n_fragments: int = 4,
                 word_size: Optional[int] = None):
        if seqtype not in (NT, AA):
            raise ValueError(f"seqtype must be 'nt' or 'aa', got {seqtype!r}")
        if n_fragments < 1:
            raise ValueError("n_fragments must be >= 1")
        self.directory = directory
        self.seqtype = seqtype
        self.name = name
        self.word_size = int(word_size if word_size is not None
                             else (3 if seqtype == AA else 11))
        self.base = len(PROTEIN) if seqtype == AA else len(DNA)
        self._encode = encode_dna if seqtype == NT else encode_protein
        os.makedirs(directory, exist_ok=True)
        sweep_build_leftovers(directory)
        _BUILD_ROOTS.add(os.path.abspath(directory))
        self._build_dir = os.path.join(
            directory, BUILD_DIR_PREFIX + secrets.token_hex(4))
        os.makedirs(self._build_dir)
        self._spools = [_Spool(self._build_dir, i)
                        for i in range(n_fragments)]
        self._loads = [0] * n_fragments
        self._n = 0
        self._residues = 0
        self._done = False

    def add(self, description: str, sequence) -> int:
        """Add one record; returns its global ordinal id."""
        if self._done:
            raise RuntimeError("builder already finalized/aborted")
        enc = (self._encode(sequence) if isinstance(sequence, str)
               else np.asarray(sequence, dtype=np.uint8))
        if len(enc) == 0:
            raise ValueError(f"empty sequence for {description!r}")
        target = self._loads.index(min(self._loads))
        self._spools[target].add(self._n, description, enc)
        self._loads[target] += len(enc)
        gid = self._n
        self._n += 1
        self._residues += len(enc)
        return gid

    def add_records(self, records: Iterable[FastaRecord]) -> int:
        n0 = self._n
        for rec in records:
            self.add(rec.description, rec.sequence)
        return self._n - n0

    def finalize(self) -> PackStore:
        """Pack every non-empty spool and commit the manifest."""
        if self._done:
            raise RuntimeError("builder already finalized/aborted")
        store_id = secrets.token_hex(8)
        entries: List[dict] = []
        fragment_id = 0
        for spool in self._spools:
            spool.close_writes()
            if spool.n == 0:
                spool.release()
                continue
            sdb = spool.load(self.seqtype)
            structs = build_scan_structures(sdb, self.word_size, self.base)
            fname = f"{self.name}.{fragment_id:03d}{PACK_SUFFIX}"
            write_pack(os.path.join(self.directory, fname), structs,
                       sdb.descriptions, seqtype=self.seqtype,
                       store_id=store_id, version=0,
                       fragment_id=fragment_id,
                       source_ids=spool.source_ids)
            entries.append({"file": fname, "fragment_id": fragment_id,
                            "version": 0, "n_sequences": spool.n,
                            "total_residues": spool.residues})
            fragment_id += 1
            del sdb, structs
            spool.release()
        _maybe_crash_before_manifest()
        manifest = {
            "format_version": FORMAT_VERSION,
            "store_id": store_id,
            "name": self.name,
            "seqtype": self.seqtype,
            "k": self.word_size,
            "base": self.base,
            "db_version": 0,
            "n_sequences": self._n,
            "total_residues": self._residues,
            "packs": entries,
        }
        _write_manifest_file(
            os.path.join(self.directory, MANIFEST_NAME), manifest)
        shutil.rmtree(self._build_dir, ignore_errors=True)
        self._done = True
        return PackStore(self.directory, manifest)

    def abort(self) -> None:
        """Drop the spool directory; committed files are untouched."""
        if self._done:
            return
        for spool in self._spools:
            try:
                spool.close_writes()
            except Exception:  # pragma: no cover - already closed
                pass
        shutil.rmtree(self._build_dir, ignore_errors=True)
        self._done = True

    def __enter__(self) -> "PackStoreBuilder":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is not None:
            self.abort()


def build_pack_store(source, directory: str, *, seqtype: str = NT,
                     name: str = "db", n_fragments: int = 4,
                     word_size: Optional[int] = None) -> PackStore:
    """Build a pack store from *source* and commit it.

    *source* is a FASTA path, an open text handle, an iterable of
    :class:`~repro.blast.fasta.FastaRecord`, or anything with the
    ``SequenceDB`` read surface (``__len__``/``sequence``/
    ``description``).  File and handle sources stream — memory stays
    bounded by the largest fragment, not the corpus.
    """
    builder = PackStoreBuilder(directory, seqtype=seqtype, name=name,
                               n_fragments=n_fragments,
                               word_size=word_size)
    with builder:
        if hasattr(source, "sequence") and hasattr(source, "description"):
            for i in range(len(source)):
                builder.add(source.description(i), source.sequence(i))
        elif isinstance(source, (str, os.PathLike)):
            with open(source) as f:
                builder.add_records(iter_fasta(f))
        elif hasattr(source, "read"):
            builder.add_records(iter_fasta(source))
        else:
            builder.add_records(source)
        return builder.finalize()


# ----------------------------------------------------------------------
# Serial search straight off the mapping
# ----------------------------------------------------------------------
def search_store(query: np.ndarray, store: PackStore, scheme,
                 params: Optional[SearchParams] = None, *,
                 query_id: str = "query", both_strands: bool = True,
                 keep_fragment_ids: bool = False,
                 verify: bool = True) -> SearchResults:
    """Serial search against a mmapped store, byte-identical to
    ``search(query, db, ...)`` over the equivalent in-RAM database.

    Exactly the pool's statistics discipline, minus the pool: one
    whole-store Karlin–Altschul resolution and effective search space
    shared by every fragment, per-fragment scans over zero-copy
    :class:`~repro.exec.shm.PackDB` views, then the same
    source-id-globalizing merge.
    """
    params = params or SearchParams()
    if params.word_size != store.k:
        raise ValueError(
            f"store {store.directory!r} was built with word size "
            f"{store.k}; searching at word size {params.word_size} "
            f"requires a rebuild (packdb build --word-size "
            f"{params.word_size})")
    is_protein = store.seqtype == AA
    query = np.asarray(query, dtype=np.uint8)
    ka = resolve_ka(scheme, params, is_protein)
    if params.effective_lengths:
        space = effective_search_space(ka, len(query),
                                       store.total_residues, len(store))
    else:
        space = (len(query), store.total_residues)

    by_pack: Dict[str, SearchResults] = {}
    ids_by_name: Dict[str, List[int]] = {}
    packs = store.open_packs(verify=verify)
    try:
        for pack in packs:
            db = PackDB(pack)
            by_pack[db.name] = search(
                query, db, scheme, params, query_id=query_id, ka=ka,
                both_strands=both_strands, engine="scan",
                effective_space=space)
            ids_by_name[db.name] = list(pack.spec.source_ids)
            del db
    finally:
        for pack in packs:
            pack.close()
    return merge_fragment_results(
        by_pack, ids_by_name, query_id=query_id, query_len=len(query),
        db_residues=store.total_residues, db_sequences=len(store),
        fragment_id=None,
        keep_fragment_ids=keep_fragment_ids)
