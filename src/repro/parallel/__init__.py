"""The parallel BLAST (mpiBLAST-style) master/worker system.

Implements the paper's Section 2.2/3 application: database
segmentation, a master that assigns fragments to idle workers and
merges their results, and workers that search fragments through one of
the three I/O schemes:

* ``Variant``: local-copy (the original), over-PVFS, over-CEFT-PVFS.

The worker's I/O + compute timeline inside the simulator comes from
:mod:`repro.parallel.iomodel`, fit to the paper's Figure 4 trace.
"""

from repro.parallel.mpi import Messenger
from repro.parallel.iomodel import FragmentSpec, Step, fragment_steps, fragment_files
from repro.parallel.ioadapters import LocalIO, ParallelIO, WorkerIO
from repro.parallel.master import JobResult, WorkerStats, master_proc
from repro.parallel.worker import worker_proc
from repro.parallel.mpiblast import run_parallel_blast, run_query_stream

__all__ = [
    "FragmentSpec",
    "JobResult",
    "LocalIO",
    "Messenger",
    "ParallelIO",
    "Step",
    "WorkerIO",
    "WorkerStats",
    "fragment_files",
    "fragment_steps",
    "master_proc",
    "run_parallel_blast",
    "run_query_stream",
    "worker_proc",
]
