"""The master side of parallel BLAST.

The master keeps a queue of un-searched fragments, hands one to each
worker that announces itself idle, merges results as they arrive
(a CPU cost per merge, as the real master sorts worker hits by
alignment score), and stops every worker once all fragments are done.

Failure handling depends on the file system underneath (the crux of
the paper's fault-tolerance argument).  A worker that hits an
unrecoverable I/O error sends an ``abort`` and dies.  Over plain PVFS
there is no second copy of the data, so the master drains the
surviving workers and raises :class:`JobAborted`.  Over CEFT-PVFS
(``degraded_mode=True``) the fragment the dead worker was holding is
requeued and the job completes on the survivors — degraded but done.
The requeue loop is naturally bounded: every abort permanently removes
a worker, so at most ``n_workers`` aborts can happen before the master
runs out of workers and gives up with :class:`JobAborted`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.parallel.iomodel import FragmentSpec
from repro.parallel.mpi import Messenger

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.calibration import BlastCostModel
    from repro.cluster.node import Node

MASTER_RANK = 0


class JobAborted(RuntimeError):
    """The job was aborted because a worker hit an unrecoverable I/O
    error (the mpiBLAST-over-PVFS outcome when a data server dies)."""

    def __init__(self, rank: int, fragment: int, cause: str):
        super().__init__(
            f"worker {rank} aborted on fragment {fragment}: {cause}")
        self.rank = rank
        self.fragment = fragment
        self.cause = cause


@dataclass
class WorkerStats:
    """Final per-worker accounting (from the worker's StepTotals)."""

    rank: int
    io_time: float
    compute_time: float
    read_bytes: int
    write_bytes: int
    fragments: List[int]
    finish_time: float


@dataclass
class JobResult:
    """Outcome of one parallel BLAST job."""

    #: Search makespan (first task issued -> last result merged).
    makespan: float
    #: Wall-clock time the whole job took, including worker start-up.
    total_time: float
    workers: List[WorkerStats] = field(default_factory=list)
    fragments_done: int = 0
    #: Fragments that had to be re-issued after their worker aborted
    #: (only ever non-zero in degraded mode).
    requeues: int = 0
    #: Ranks of workers that died on an I/O error.
    aborted_workers: List[int] = field(default_factory=list)

    @property
    def io_time_max(self) -> float:
        return max((w.io_time for w in self.workers), default=0.0)

    @property
    def compute_time_max(self) -> float:
        return max((w.compute_time for w in self.workers), default=0.0)

    def io_fraction(self) -> float:
        """Mean fraction of worker busy time spent in I/O."""
        fracs = [w.io_time / (w.io_time + w.compute_time)
                 for w in self.workers if w.io_time + w.compute_time > 0]
        return sum(fracs) / len(fracs) if fracs else 0.0


def master_proc(node: "Node", messenger: Messenger,
                fragments: Sequence[FragmentSpec], n_workers: int,
                cost: "BlastCostModel", degraded_mode: bool = False):
    """Simulation process for the master.  Returns :class:`JobResult`.

    With ``degraded_mode`` (set when the I/O scheme is fault tolerant,
    i.e. CEFT-PVFS) a worker abort requeues its fragment and the job
    continues on the surviving workers; otherwise the first abort
    drains the survivors and raises :class:`JobAborted`.
    """
    sim = node.sim
    # Broadcast the query to every worker first (query replication is
    # the database-segmentation approach's cheap half, Section 2.2).
    for rank in range(1, n_workers + 1):
        yield from messenger.send(MASTER_RANK, rank, ("query",),
                                  cost.query_msg_bytes)
    queue = deque(f.fragment_id for f in fragments)
    outstanding: Dict[int, int] = {}      # rank -> fragment id
    done = 0
    stats: Dict[int, object] = {}         # rank -> StepTotals
    finish_times: Dict[int, float] = {}
    requeues = 0
    aborted: List[int] = []
    last_abort: JobAborted | None = None
    abort: JobAborted | None = None
    active = set(range(1, n_workers + 1))
    start = sim.now

    while active:
        src, msg = yield from messenger.recv(MASTER_RANK)
        kind = msg[0]
        if kind == "stopped":
            # Stop ack: carries the worker's final accounting.
            active.discard(src)
            stats[src] = msg[2]
            finish_times[src] = sim.now
            continue
        if kind == "abort":
            # The worker is dead — never reply to it.  Its fragment is
            # either requeued (degraded mode) or the whole job aborts.
            frag = outstanding.pop(src, None)
            active.discard(src)
            aborted.append(src)
            stats[src] = msg[4]
            finish_times[src] = sim.now
            last_abort = JobAborted(msg[1], msg[2], msg[3])
            if degraded_mode:
                if frag is not None:
                    queue.appendleft(frag)
                    requeues += 1
            elif abort is None:
                abort = last_abort
            continue
        if kind == "result":
            done += 1
            outstanding.pop(src, None)
            yield node.cpu.consume(cost.merge_cpu)
        elif kind != "ready":  # pragma: no cover - protocol error
            raise RuntimeError(f"master: unexpected message {msg!r}")
        # The sender is now idle: assign more work or stop it.
        if queue and abort is None:
            frag = queue.popleft()
            outstanding[src] = frag
            yield from messenger.send(MASTER_RANK, src, ("task", frag),
                                      cost.task_msg_bytes)
        else:
            yield from messenger.send(MASTER_RANK, src, ("stop",),
                                      cost.control_msg_bytes)

    if abort is not None:
        raise abort
    if queue or outstanding:
        # Degraded mode ran out of workers with fragments unsearched.
        if last_abort is not None:
            raise last_abort
        raise JobAborted(-1, -1, "no workers left")  # pragma: no cover
    # Work conservation: every fragment was searched exactly once, even
    # across requeues — a duplicate or a drop here means the assignment
    # bookkeeping above lost track of a fragment.
    searched = sorted(f for t in stats.values() for f in t.fragments)
    expected = sorted(f.fragment_id for f in fragments)
    if searched != expected:
        sim.check.fail(
            f"master: fragment conservation violated "
            f"(searched {searched}, expected {expected})")
    result = JobResult(
        makespan=sim.now - start,
        total_time=sim.now,
        fragments_done=done,
        requeues=requeues,
        aborted_workers=sorted(aborted),
    )
    for rank in sorted(stats):
        t = stats[rank]
        result.workers.append(WorkerStats(
            rank=rank,
            io_time=t.io_time,
            compute_time=t.compute_time,
            read_bytes=t.read_bytes,
            write_bytes=t.write_bytes,
            fragments=t.fragments,
            finish_time=finish_times[rank],
        ))
    return result
