"""The master side of parallel BLAST.

The master keeps a queue of un-searched fragments, hands one to each
worker that announces itself idle, merges results as they arrive
(a CPU cost per merge, as the real master sorts worker hits by
alignment score), and stops every worker once all fragments are done.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.parallel.iomodel import FragmentSpec
from repro.parallel.mpi import Messenger

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.calibration import BlastCostModel
    from repro.cluster.node import Node

MASTER_RANK = 0


class JobAborted(RuntimeError):
    """The job was aborted because a worker hit an unrecoverable I/O
    error (the mpiBLAST-over-PVFS outcome when a data server dies)."""

    def __init__(self, rank: int, fragment: int, cause: str):
        super().__init__(
            f"worker {rank} aborted on fragment {fragment}: {cause}")
        self.rank = rank
        self.fragment = fragment
        self.cause = cause


@dataclass
class WorkerStats:
    """Final per-worker accounting (from the worker's StepTotals)."""

    rank: int
    io_time: float
    compute_time: float
    read_bytes: int
    write_bytes: int
    fragments: List[int]
    finish_time: float


@dataclass
class JobResult:
    """Outcome of one parallel BLAST job."""

    #: Search makespan (first task issued -> last result merged).
    makespan: float
    #: Wall-clock time the whole job took, including worker start-up.
    total_time: float
    workers: List[WorkerStats] = field(default_factory=list)
    fragments_done: int = 0

    @property
    def io_time_max(self) -> float:
        return max((w.io_time for w in self.workers), default=0.0)

    @property
    def compute_time_max(self) -> float:
        return max((w.compute_time for w in self.workers), default=0.0)

    def io_fraction(self) -> float:
        """Mean fraction of worker busy time spent in I/O."""
        fracs = [w.io_time / (w.io_time + w.compute_time)
                 for w in self.workers if w.io_time + w.compute_time > 0]
        return sum(fracs) / len(fracs) if fracs else 0.0


def master_proc(node: "Node", messenger: Messenger,
                fragments: Sequence[FragmentSpec], n_workers: int,
                cost: "BlastCostModel"):
    """Simulation process for the master.  Returns :class:`JobResult`."""
    sim = node.sim
    # Broadcast the query to every worker first (query replication is
    # the database-segmentation approach's cheap half, Section 2.2).
    for rank in range(1, n_workers + 1):
        yield from messenger.send(MASTER_RANK, rank, ("query",),
                                  cost.query_msg_bytes)
    queue = deque(f.fragment_id for f in fragments)
    outstanding: Dict[int, int] = {}      # rank -> fragment id
    done = 0
    stopped = 0
    abort: JobAborted | None = None
    start = sim.now

    while stopped < n_workers:
        src, msg = yield from messenger.recv(MASTER_RANK)
        kind = msg[0]
        if kind == "result":
            done += 1
            outstanding.pop(src, None)
            yield node.cpu.consume(cost.merge_cpu)
        elif kind == "abort":
            outstanding.pop(src, None)
            if abort is None:
                abort = JobAborted(msg[1], msg[2], msg[3])
        elif kind != "ready":  # pragma: no cover - protocol error
            raise RuntimeError(f"master: unexpected message {msg!r}")
        # The sender is now idle: assign more work or stop it.
        if queue and abort is None:
            frag = queue.popleft()
            outstanding[src] = frag
            yield from messenger.send(MASTER_RANK, src, ("task", frag),
                                      cost.task_msg_bytes)
        else:
            yield from messenger.send(MASTER_RANK, src, ("stop",),
                                      cost.control_msg_bytes)
            stopped += 1

    if abort is not None:
        raise abort
    return JobResult(
        makespan=sim.now - start,
        total_time=sim.now,
        fragments_done=done,
    )
