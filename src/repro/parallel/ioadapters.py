"""Adapters giving workers one I/O interface over the three schemes.

The worker executes :class:`~repro.parallel.iomodel.Step` timelines
against a :class:`WorkerIO`; the adapter hides whether reads go to the
node's local disk (original BLAST), a PVFS client, or a CEFT-PVFS
client.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.fs.localfs import LocalFS

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.fs.ceft import CEFTClient
    from repro.fs.pvfs import PVFSClient


class WorkerIO:
    """Interface: coroutine read/write plus setup hooks."""

    scheme = "abstract"

    def read(self, path: str, offset: int, size: int):  # pragma: no cover
        raise NotImplementedError
        yield

    def write(self, path: str, offset: int, size: int):  # pragma: no cover
        raise NotImplementedError
        yield

    def ensure_file(self, path: str, size: int) -> None:  # pragma: no cover
        """Make sure *path* exists with at least *size* bytes (setup)."""
        raise NotImplementedError


class LocalIO(WorkerIO):
    """Conventional I/O on the worker's own disk (original BLAST)."""

    scheme = "local"

    def __init__(self, fs: LocalFS, node: "Node"):
        self.fs = fs
        self.node = node

    def read(self, path: str, offset: int, size: int):
        yield from self.fs.read(self.node, path, offset, size)

    def write(self, path: str, offset: int, size: int):
        yield from self.fs.write(self.node, path, offset, size)

    def ensure_file(self, path: str, size: int) -> None:
        self.fs.populate(path, size)


class ParallelIO(WorkerIO):
    """Parallel I/O through a PVFS or CEFT-PVFS client library."""

    def __init__(self, client: Union["PVFSClient", "CEFTClient"]):
        self.client = client
        self.scheme = client.fs.scheme

    def read(self, path: str, offset: int, size: int):
        yield from self.client.read(path, offset, size)

    def write(self, path: str, offset: int, size: int):
        yield from self.client.write(path, offset, size)

    def ensure_file(self, path: str, size: int) -> None:
        fs = self.client.fs
        if fs.exists(path):
            meta = fs.lookup(path)
            meta.size = max(meta.size, size)
        else:
            fs.populate(path, size)
