"""A small message-passing layer over the simulated network.

Models what MPI point-to-point over TCP/Myrinet costs in this setting:
each ``send`` moves its payload size across the network (charging both
endpoints' CPUs for stack work) into the receiver's mailbox; ``recv``
blocks on the mailbox.  Message order between a pair of ranks is
preserved (mailboxes are FIFO).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Tuple

from repro.sim import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node


class Messenger:
    """Rank-addressed mailboxes on the cluster network."""

    def __init__(self):
        self._nodes: Dict[int, "Node"] = {}
        self._mailboxes: Dict[int, Store] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    def register(self, rank: int, node: "Node") -> None:
        if rank in self._nodes:
            raise ValueError(f"rank {rank} already registered")
        self._nodes[rank] = node
        self._mailboxes[rank] = Store(node.sim, name=f"mbox{rank}")

    def node(self, rank: int) -> "Node":
        return self._nodes[rank]

    @property
    def size(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any, size: int):
        """Generator: deliver *payload* (accounted as *size* bytes) from
        rank *src* to rank *dst*.  Completes when delivered."""
        src_node = self._nodes[src]
        dst_node = self._nodes[dst]
        yield from src_node.network.transfer(src_node, dst_node, size)
        yield self._mailboxes[dst].put((src, payload))
        self.messages_sent += 1
        self.bytes_sent += size

    def recv(self, rank: int):
        """Generator: block until a message arrives; returns
        (source rank, payload)."""
        msg = yield self._mailboxes[rank].get()
        return msg

    def pending(self, rank: int) -> int:
        return len(self._mailboxes[rank])
