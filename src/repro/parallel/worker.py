"""The worker side of parallel BLAST.

A worker announces itself to the master, receives fragment assignments,
replays each fragment's I/O + compute timeline through its
:class:`~repro.parallel.ioadapters.WorkerIO`, sends the result back,
and repeats until the master says stop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.fs.interface import FSError
from repro.sim import Interrupt
from repro.parallel.iomodel import SCAN_CHUNK, FragmentSpec, Step, fragment_steps
from repro.parallel.ioadapters import WorkerIO
from repro.parallel.mpi import Messenger

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.calibration import BlastCostModel
    from repro.cluster.node import Node
    from repro.trace.collector import TraceCollector

MASTER_RANK = 0


def _scan_chunks(size: int, rng: np.random.Generator) -> List[int]:
    """Jittered demand-paging chunk sizes summing to *size*.

    The jitter desynchronises concurrent workers so their striped read
    bursts interleave instead of colliding."""
    chunks: List[int] = []
    remaining = size
    while remaining > 0:
        c = int(rng.lognormal(np.log(SCAN_CHUNK), 0.35))
        c = max(64 * 1024, min(c, remaining))
        if remaining - c < 64 * 1024:
            c = remaining
        chunks.append(c)
        remaining -= c
    return chunks


@dataclass
class StepTotals:
    """Per-worker accumulated time split."""

    io_time: float = 0.0
    compute_time: float = 0.0
    read_bytes: int = 0
    write_bytes: int = 0
    fragments: List[int] = field(default_factory=list)


def execute_steps(node: "Node", io: WorkerIO, steps: List[Step],
                  totals: StepTotals,
                  rng: Optional[np.random.Generator] = None,
                  tracer: Optional["TraceCollector"] = None):
    """Generator: run one fragment timeline, accounting time split.

    *tracer*, when given, records operations at the application level
    (a whole scan is one read record, as in the paper's Figure 4)."""
    sim = node.sim
    rng = rng or np.random.default_rng(0)
    for step in steps:
        t0 = sim.now
        if step.kind == "compute":
            yield node.cpu.consume(step.seconds)
            totals.compute_time += sim.now - t0
        elif step.kind == "scan":
            # Demand-paged pass: alternate chunk reads with the compute
            # that consumes them.
            offset = step.offset
            io_acc = 0.0
            for chunk in _scan_chunks(step.size, rng):
                r0 = sim.now
                yield from io.read(step.path, offset, chunk)
                io_acc += sim.now - r0
                offset += chunk
                yield node.cpu.consume(step.seconds * chunk / step.size)
            totals.io_time += io_acc
            totals.compute_time += (sim.now - t0) - io_acc
            totals.read_bytes += step.size
            if tracer is not None:
                tracer.record(node.name, "read", step.path, step.size,
                              t0, sim.now)
        elif step.kind == "read":
            yield from io.read(step.path, step.offset, step.size)
            totals.io_time += sim.now - t0
            totals.read_bytes += step.size
            if tracer is not None:
                tracer.record(node.name, "read", step.path, step.size,
                              t0, sim.now)
        elif step.kind == "write":
            io.ensure_file(step.path, 0)
            yield from io.write(step.path, step.offset, step.size)
            totals.io_time += sim.now - t0
            totals.write_bytes += step.size
            if tracer is not None:
                tracer.record(node.name, "write", step.path, step.size,
                              t0, sim.now)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown step kind {step.kind!r}")


def worker_proc(rank: int, node: "Node", io: WorkerIO, messenger: Messenger,
                cost: "BlastCostModel",
                fragments: Dict[int, FragmentSpec],
                tracer: Optional["TraceCollector"] = None,
                warm_fragments: Optional[set] = None):
    """Simulation process for one worker.

    Returns the worker's :class:`StepTotals` (the process value).  The
    same totals travel to the master inside the final protocol message
    (``stopped`` ack or ``abort``), so the master can account for every
    worker — including ones that died mid-job.

    *warm_fragments*, when given, is the set of fragment ids whose scan
    structures this worker's engine already holds (its ScanCache): such
    fragments search at the cost model's ``warm_compute_factor``, and
    every fragment the worker completes is added to the set — pass the
    same set across jobs to model a long-lived service worker.
    """
    totals = StepTotals()
    yield from messenger.send(rank, MASTER_RANK, ("ready", rank),
                              cost.control_msg_bytes)
    current: Optional[int] = None
    try:
        while True:
            src, msg = yield from messenger.recv(rank)
            kind = msg[0]
            if kind == "stop":
                yield from messenger.send(rank, MASTER_RANK,
                                          ("stopped", rank, totals),
                                          cost.control_msg_bytes)
                return totals
            if kind == "query":
                continue  # the query broadcast; nothing to do yet
            if kind != "task":  # pragma: no cover - protocol error
                raise RuntimeError(f"worker {rank}: unexpected message {msg!r}")
            frag_id = msg[1]
            current = frag_id
            spec = fragments[frag_id]
            warm = warm_fragments is not None and frag_id in warm_fragments
            steps = fragment_steps(spec, cost, warm=warm)
            rng = np.random.default_rng(7000 + 131 * rank + frag_id)
            try:
                yield from execute_steps(node, io, steps, totals, rng=rng,
                                         tracer=tracer)
            except FSError as exc:
                # I/O failure (e.g. a dead data server): report the
                # fragment back and die, as the real worker process
                # does when the file system goes away underneath it.
                # The master decides whether the job survives.
                yield from messenger.send(
                    rank, MASTER_RANK,
                    ("abort", rank, frag_id, str(exc), totals),
                    cost.control_msg_bytes)
                return totals
            current = None
            totals.fragments.append(frag_id)
            if warm_fragments is not None:
                warm_fragments.add(frag_id)
            yield from messenger.send(rank, MASTER_RANK,
                                      ("result", rank, frag_id),
                                      cost.result_msg_bytes)
    except Interrupt as exc:
        # Killed from outside (crashed worker node).  Get a last-gasp
        # abort out so the master is not left waiting forever on a
        # fragment nobody is searching.
        yield from messenger.send(
            rank, MASTER_RANK,
            ("abort", rank, current if current is not None else -1,
             f"worker killed: {exc.cause}", totals),
            cost.control_msg_bytes)
        return totals
