"""Top-level parallel BLAST job runner.

Glues a master and N workers together on a simulated cluster with a
chosen I/O scheme.  File placement is set up before the clock starts
(fragments are already copied / striped — the paper measures the search
phase and subtracts copying; see EXPERIMENTS.md), so the returned
:class:`~repro.parallel.master.JobResult` is the search-phase timing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.parallel.iomodel import FragmentSpec, fragment_files
from repro.parallel.ioadapters import WorkerIO
from repro.parallel.master import MASTER_RANK, JobResult, master_proc
from repro.parallel.mpi import Messenger
from repro.parallel.worker import worker_proc

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.calibration import BlastCostModel
    from repro.cluster.node import Node
    from repro.trace.collector import TraceCollector


def run_parallel_blast(master_node: "Node", worker_nodes: Sequence["Node"],
                       worker_ios: Sequence[WorkerIO],
                       fragments: Sequence[FragmentSpec],
                       cost: "BlastCostModel",
                       time_limit: float = 1e9,
                       tracer: Optional["TraceCollector"] = None,
                       degraded_mode: Optional[bool] = None,
                       warm_fragments: Optional[Sequence[set]] = None
                       ) -> JobResult:
    """Run one job to completion and return its result.

    ``worker_ios[i]`` is the I/O adapter for ``worker_nodes[i]``.  The
    fragment files are created in each adapter's file system before the
    job starts.

    ``degraded_mode`` controls whether a worker abort requeues its
    fragment (CEFT-PVFS can serve the data from the mirror group) or
    aborts the whole job (PVFS/local have no second copy).  Left as
    ``None``, it is inferred from the I/O scheme.

    ``warm_fragments``, when given, holds one set of fragment ids per
    worker — the fragments whose scan structures that worker's engine
    already caches.  Workers update their sets in place, so passing the
    same sets to consecutive jobs models long-lived service workers
    (see :func:`run_query_stream`).
    """
    if len(worker_nodes) != len(worker_ios):
        raise ValueError("need one WorkerIO per worker node")
    if not worker_nodes:
        raise ValueError("need at least one worker")
    if warm_fragments is not None and len(warm_fragments) != len(worker_nodes):
        raise ValueError("need one warm-fragment set per worker node")
    if degraded_mode is None:
        degraded_mode = all(
            getattr(io, "scheme", None) == "ceft-pvfs" for io in worker_ios)
    sim = master_node.sim

    # Pre-place the database fragments.  Shared (parallel) file systems
    # are populated once; per-node local file systems each get a copy
    # (the original BLAST's copy step, accounted out-of-band).
    seen = set()
    for io in worker_ios:
        key = id(getattr(io, "fs", None) or getattr(io, "client").fs)
        for spec in fragments:
            for name, size in fragment_files(spec).items():
                if (key, name) not in seen:
                    io.ensure_file(name, size)
                    seen.add((key, name))

    messenger = Messenger()
    messenger.register(MASTER_RANK, master_node)
    for i, node in enumerate(worker_nodes):
        messenger.register(i + 1, node)

    frag_map: Dict[int, FragmentSpec] = {f.fragment_id: f for f in fragments}
    wprocs = [
        sim.process(worker_proc(i + 1, node, io, messenger, cost, frag_map,
                                tracer=tracer,
                                warm_fragments=(warm_fragments[i]
                                                if warm_fragments is not None
                                                else None)),
                    name=f"worker{i + 1}")
        for i, (node, io) in enumerate(zip(worker_nodes, worker_ios))
    ]
    mproc = sim.process(
        master_proc(master_node, messenger, fragments, len(worker_nodes),
                    cost, degraded_mode=degraded_mode),
        name="master")

    sim.run_until_complete(mproc, *wprocs, limit=time_limit)
    if mproc.failed:
        raise mproc.value
    for p in wprocs:
        if p.failed:
            raise p.value

    # The master assembles per-worker stats itself, from the totals
    # each worker sends with its final message — so even a worker that
    # aborted mid-job is accounted for.
    result: JobResult = mproc.value
    return result


def run_query_stream(master_node: "Node", worker_nodes: Sequence["Node"],
                     worker_ios: Sequence[WorkerIO],
                     fragments: Sequence[FragmentSpec],
                     cost: "BlastCostModel",
                     arrival_times: Sequence[float],
                     time_limit: float = 1e9):
    """Serve a stream of queries arriving at the given times.

    Models a BLAST service: queries queue FIFO and the cluster runs one
    parallel job per query (as mpiBLAST does); page caches stay warm
    between queries, and each worker keeps its engine's scan-structure
    cache across queries (a fragment re-searched by the same worker
    computes at ``cost.warm_compute_factor``; with the default factor
    of 1.0 this is a no-op).  Returns a list of per-query dicts with
    arrival, start, finish, service, and latency - enough to study the
    throughput/latency behaviour the paper's single-shot methodology
    cannot see.
    """
    sim = master_node.sim
    if list(arrival_times) != sorted(arrival_times):
        raise ValueError("arrival times must be non-decreasing")
    results = []
    t_free = sim.now
    warm_sets = [set() for _ in worker_nodes]
    for k, arrival in enumerate(arrival_times):
        start = max(arrival, t_free)
        if start > sim.now:
            sim.run(until=start)
        job = run_parallel_blast(master_node, worker_nodes, worker_ios,
                                 fragments, cost, time_limit=time_limit,
                                 warm_fragments=warm_sets)
        finish = sim.now
        t_free = finish
        results.append({
            "query": k,
            "arrival": arrival,
            "start": start,
            "finish": finish,
            "service": job.makespan,
            "latency": finish - arrival,
        })
    return results


def estimate_copy_time(fragment_bytes: int, network_bandwidth: float,
                       disk_write_bandwidth: float) -> float:
    """Time for one worker to copy its fragment to local disk.

    The paper measures this separately and subtracts it from the
    original BLAST's total (Section 4.3); the copy streams over the
    network and onto the local disk, bounded by the slower of the two.
    """
    return fragment_bytes / min(network_bandwidth, disk_write_bandwidth)
